# Development workflows for the PAWS reproduction.
#
#   make test        unit/integration suite
#   make bench       paper-artifact benchmarks (writes benchmarks/results/)
#   make bench-fit   training-engine throughput benchmark only
#   make bench-serve full 1.6k->1M serving scalability sweep (regenerates its results/ artifact)
#   make bench-daemon park-service load generator (latency percentiles + QPS)
#   make test-zoo    solver zoo only (pinned B&B search behaviour)
#   make test-chaos  fault-injection suite (fixed seed matrix; failures
#                    print their seed for exact replay)
#   make smoke       CLI entry points all exit 0
#   make serve-smoke end-to-end daemon smoke: subprocess `repro serve`,
#                    all endpoints answer, SIGTERM drains with exit 0
#   make lint        byte-compile every source tree AND run the invariant
#                    analyzer (zero-violations gate: all rules over src/,
#                    determinism + hygiene rules over benchmarks/,
#                    examples/ and scripts/)
#   make lint-flow   flow-sensitive rules only (RP007-RP011: lock order,
#                    atomicity, deadline propagation, exception contracts,
#                    resource discipline) over src/repro
#   make lint-json   machine-readable analyzer report (the CI artifact)
#   make check       lint + smoke + test

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-zoo test-chaos bench bench-fit bench-serve bench-daemon smoke serve-smoke lint lint-flow lint-json check

test:
	$(PYTHON) -m pytest tests -x -q

test-zoo:
	$(PYTHON) -m pytest tests/solver_zoo -q

test-chaos:
	$(PYTHON) -m pytest tests/test_chaos.py -q

bench:
	$(PYTHON) -m pytest benchmarks -q

bench-fit:
	$(PYTHON) -m pytest benchmarks/test_fit_throughput.py -q

bench-serve:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/test_serve_scalability.py -q

bench-daemon:
	$(PYTHON) -m pytest benchmarks/test_daemon_load.py -q

smoke:
	$(PYTHON) -m repro --help > /dev/null
	for cmd in stats maps evaluate fieldtest plan predict serve lint; do \
		$(PYTHON) -m repro $$cmd --help > /dev/null || exit 1; \
	done
	@echo "smoke: all CLI entry points exit 0"

serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples scripts
	$(PYTHON) -m repro.analysis src/repro
	$(PYTHON) -m repro.analysis --select RP001,RP006 benchmarks examples scripts
	@echo "lint: sources byte-compile and invariants hold"

lint-flow:
	$(PYTHON) -m repro.analysis src/repro --rule RP007,RP008,RP009,RP010,RP011

lint-json:
	$(PYTHON) -m repro.analysis src/repro --format json

check: lint smoke test
