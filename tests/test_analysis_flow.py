"""Tests for the flow-sensitive analysis engine and rules RP007-RP011.

The engine layers (CFG construction, dataflow fixpoint, call-graph
resolution) are unit-tested independently of any rule; each flow rule is
then pinned by a caught-violation fixture and a clean fixture under
``tests/analysis_fixtures/``, and a self-run pins ``src/repro`` at zero
violations under the whole RP007-RP011 suite — the ``make lint-flow``
gate.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis import ALL_CHECKERS, run_analysis
from repro.analysis.callgraph import CallGraph, module_name
from repro.analysis.cfg import EXCEPTION, build_cfg, stmt_may_raise
from repro.analysis.core import Project
from repro.analysis.dataflow import (
    UNREACHED,
    LockSets,
    iter_with_pre_states,
    run_forward,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

FLOW_RULES = ["RP007", "RP008", "RP009", "RP010", "RP011"]


def fn_cfg(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(func)


def resolve_upper(expr):
    """Lock resolver for unit tests: ALL-CAPS names are locks."""
    if isinstance(expr, ast.Name) and expr.id.isupper():
        return expr.id
    return None


def pre_state_at_call(cfg, analysis, func_name):
    """Must-held lock set immediately before the call to ``func_name``."""
    for stmt, state in iter_with_pre_states(cfg, analysis):
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == func_name
        ):
            return state
    raise AssertionError(f"no call to {func_name}() found")


def analyze_fixture(*names, select):
    paths = [FIXTURES / name for name in names]
    return run_analysis(paths, ALL_CHECKERS, select=select, test_roots=[])


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------

class TestCfg:
    def test_straight_line_reaches_exit(self):
        cfg = fn_cfg("""
            def f():
                a = 1
                b = a + 1
                return b
        """)
        assert any(pred is not cfg.entry for pred, _ in cfg.exit.preds) or (
            cfg.exit.preds
        )
        assert len(list(cfg.statements())) == 3

    def test_every_raising_stmt_feeds_raise_exit(self):
        cfg = fn_cfg("""
            def f(x):
                y = g(x)
                return h(y)
        """)
        # both the call statements can raise, so raise_exit is reachable
        assert cfg.raise_exit.preds

    def test_stmt_may_raise_is_precise_for_trivial_returns(self):
        ret_name = ast.parse("def f(x):\n    return x").body[0].body[0]
        ret_call = ast.parse("def f(x):\n    return g(x)").body[0].body[0]
        bare = ast.parse("def f():\n    pass").body[0].body[0]
        assert not stmt_may_raise(ret_name)
        assert stmt_may_raise(ret_call)
        assert not stmt_may_raise(bare)

    def test_while_true_without_break_has_no_loop_exit(self):
        cfg = fn_cfg("""
            def f():
                while True:
                    spin()
        """)
        # the only way out is an exception inside the body
        assert not cfg.exit.preds
        assert cfg.raise_exit.preds

    def test_break_escapes_the_loop(self):
        cfg = fn_cfg("""
            def f(items):
                for item in items:
                    if item:
                        break
                return None
        """)
        assert cfg.exit.preds


# ---------------------------------------------------------------------------
# Dataflow: the worklist engine and the must-held lock lattice
# ---------------------------------------------------------------------------

class TestLockSets:
    def test_with_statement_holds_inside_releases_after(self):
        cfg = fn_cfg("""
            def f():
                with LOCK:
                    touch()
                after()
        """)
        analysis = LockSets(resolve_upper)
        assert pre_state_at_call(cfg, analysis, "touch") == {"LOCK"}
        assert pre_state_at_call(cfg, analysis, "after") == frozenset()

    def test_exception_inside_with_still_releases(self):
        cfg = fn_cfg("""
            def f():
                with LOCK:
                    touch()
        """)
        analysis = LockSets(resolve_upper)
        states = run_forward(cfg, analysis)
        # __exit__ runs on the exceptional path too, so nothing is held
        # by the time the exception leaves the function
        assert states[cfg.raise_exit].in_state == frozenset()

    def test_acquire_release_through_try_finally(self):
        cfg = fn_cfg("""
            def f():
                LOCK.acquire()
                try:
                    touch()
                finally:
                    LOCK.release()
                after()
        """)
        analysis = LockSets(resolve_upper)
        assert pre_state_at_call(cfg, analysis, "touch") == {"LOCK"}
        assert pre_state_at_call(cfg, analysis, "after") == frozenset()
        states = run_forward(cfg, analysis)
        assert states[cfg.raise_exit].in_state == frozenset()

    def test_join_is_must_intersection(self):
        cfg = fn_cfg("""
            def f(flag):
                if flag:
                    LOCK.acquire()
                touch()
        """)
        analysis = LockSets(resolve_upper)
        # held on one branch only -> not must-held at the join
        assert pre_state_at_call(cfg, analysis, "touch") == frozenset()

    def test_unreachable_blocks_stay_unreached(self):
        cfg = fn_cfg("""
            def f():
                while True:
                    spin()
        """)
        states = run_forward(cfg, LockSets(resolve_upper))
        assert states[cfg.exit].in_state is UNREACHED


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------

CALLGRAPH_SRC = '''
import threading

from helpers import polish

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def public(self):
        return self._helper()

    def _helper(self):
        with self._lock:
            return self._value

def make():
    svc = Service()
    return svc.public()

def alias_call(x):
    return polish(x)
'''


class TestCallGraph:
    def build(self, tmp_path):
        module = tmp_path / "svc.py"
        module.write_text(CALLGRAPH_SRC, encoding="utf-8")
        return CallGraph(Project([module], test_roots=[]))

    def test_module_name_strips_src_roots(self):
        assert module_name("src/repro/runtime/daemon.py") == (
            "repro.runtime.daemon"
        )
        assert module_name("somewhere/else/svc.py") == "svc"
        assert module_name("src/repro/__init__.py") == "repro"

    def test_functions_and_classes_are_indexed(self, tmp_path):
        graph = self.build(tmp_path)
        assert "svc.Service.public" in graph.functions
        assert "svc.make" in graph.functions
        assert graph.classes["Service"].lock_attrs  # _lock was recorded

    def test_self_calls_resolve_to_methods(self, tmp_path):
        graph = self.build(tmp_path)
        public = graph.functions["svc.Service.public"]
        resolved = [callee.qualname for _, callee in graph.resolved_calls(public)]
        assert resolved == ["svc.Service._helper"]

    def test_constructor_and_inferred_receiver_resolve(self, tmp_path):
        graph = self.build(tmp_path)
        make = graph.functions["svc.make"]
        resolved = {callee.qualname for _, callee in graph.resolved_calls(make)}
        # Service() hits __init__; svc.public() resolves through the
        # one-hop `svc = Service()` inference
        assert resolved == {"svc.Service.__init__", "svc.Service.public"}

    def test_imported_names_stay_unresolved(self, tmp_path):
        graph = self.build(tmp_path)
        alias = graph.functions["svc.alias_call"]
        # helpers.polish is outside the project: no resolution, no lies
        assert list(graph.resolved_calls(alias)) == []

    def test_public_visibility_honours_every_dotted_part(self, tmp_path):
        graph = self.build(tmp_path)
        assert graph.functions["svc.Service.public"].is_public
        assert not graph.functions["svc.Service._helper"].is_public


# ---------------------------------------------------------------------------
# RP007 — lock-order consistency
# ---------------------------------------------------------------------------

class TestRP007:
    def test_catches_direct_cycle_call_edge_cycle_and_reacquire(self):
        result = analyze_fixture("rp007_bad.py", select=["RP007"])
        assert len(result.findings) == 3
        messages = " ".join(f.message for f in result.findings)
        # direct two-lock cycle, with both orders cited
        assert "LOCK_A -> rp007_bad.LOCK_B" in messages
        assert "LOCK_B -> rp007_bad.LOCK_A" in messages
        # interprocedural cycle reports the call edge explicitly
        assert "via call to helper()" in messages
        # non-reentrant self re-acquisition
        assert "re-acquires non-reentrant lock" in messages

    def test_consistent_order_and_rlock_are_clean(self):
        assert analyze_fixture("rp007_good.py", select=["RP007"]).ok


# ---------------------------------------------------------------------------
# RP008 — atomicity on @thread_shared state
# ---------------------------------------------------------------------------

class TestRP008:
    def test_catches_check_then_act_and_blocking_under_lock(self):
        result = analyze_fixture("rp008_bad.py", select=["RP008"])
        assert len(result.findings) == 2
        messages = " ".join(f.message for f in result.findings)
        assert "check-then-act race" in messages
        assert "double-check idiom" in messages
        assert "blocking call time.sleep()" in messages

    def test_double_check_and_condition_wait_are_clean(self):
        assert analyze_fixture("rp008_good.py", select=["RP008"]).ok


# ---------------------------------------------------------------------------
# RP009 — deadline propagation
# ---------------------------------------------------------------------------

class TestRP009:
    def test_catches_deadline_dropped_at_call_edges(self):
        result = analyze_fixture("rp009_bad.py", select=["RP009"])
        assert len(result.findings) == 2
        messages = " ".join(f.message for f in result.findings)
        assert "load_model()" in messages
        assert "render()" in messages
        assert "deadline_scope" in messages  # the fix is named

    def test_forwarding_kwargs_and_scope_are_clean(self):
        assert analyze_fixture("rp009_good.py", select=["RP009"]).ok


# ---------------------------------------------------------------------------
# RP010 — exception-contract flow
# ---------------------------------------------------------------------------

class TestRP010:
    def test_catches_escapes_and_unmapped_ladder_rows(self):
        result = analyze_fixture("rp010_bad.py", select=["RP010"])
        assert len(result.findings) == 4
        messages = " ".join(f.message for f in result.findings)
        # the local raise and the one reached through a call edge
        assert "can leak FixtureError" in messages
        assert "can leak TeapotError" in messages
        # the raise site is named even when it sits in a callee
        assert "in rp010_bad._brew" in messages
        assert "status ladder" in messages

    def test_reproerror_hierarchy_and_private_raises_are_clean(self):
        assert analyze_fixture("rp010_good.py", select=["RP010"]).ok


# ---------------------------------------------------------------------------
# RP011 — resource discipline
# ---------------------------------------------------------------------------

class TestRP011:
    def test_catches_leaks_across_kinds_and_paths(self):
        result = analyze_fixture("rp011_bad.py", select=["RP011"])
        assert len(result.findings) == 4
        messages = " ".join(f.message for f in result.findings)
        assert "file 'handle'" in messages
        assert "on an exceptional path" in messages  # close() skipped by a raise
        assert "lock 'GUARD'" in messages
        assert "executor 'pool'" in messages

    def test_with_try_finally_and_ownership_transfer_are_clean(self):
        assert analyze_fixture("rp011_good.py", select=["RP011"]).ok


# ---------------------------------------------------------------------------
# The gate: src/repro is clean under the whole flow suite
# ---------------------------------------------------------------------------

class TestFlowSelfRun:
    def test_src_repro_clean_under_flow_rules(self):
        result = run_analysis(
            [REPO_ROOT / "src" / "repro"], ALL_CHECKERS,
            select=FLOW_RULES,
            test_roots=[REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        )
        assert result.findings == []
        assert result.files_scanned > 70
