"""Tests for repro.planning.service (the multi-post PlanService)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.exceptions import ConfigurationError
from repro.planning import PatrolPlanner, RobustObjective
from repro.planning.service import PlanService
from repro.runtime.service import RiskMapService

SMALL = MFNP.scaled(0.4)
PLANNER_KW = dict(horizon=6, n_patrols=2, n_segments=4)


@pytest.fixture(scope="module")
def setup():
    data = generate_dataset(SMALL, seed=0)
    split = data.dataset.split_by_test_year(SMALL.years - 1)
    predictor = PawsPredictor(
        model="dtb", iware=True, n_classifiers=3, seed=1
    ).fit(split.train)
    features = predictor.cell_feature_matrix(data.park, data.recorded_effort[-1])
    return data, predictor, features


@pytest.fixture()
def service(setup):
    data, predictor, __ = setup
    return PlanService(
        RiskMapService(predictor),
        data.park.grid,
        data.park.patrol_posts,
        **PLANNER_KW,
    )


def assert_plans_equal(a, b):
    assert a.objective_value == b.objective_value
    assert a.beta == b.beta
    np.testing.assert_array_equal(a.coverage, b.coverage)
    np.testing.assert_array_equal(a.solution.edge_flows, b.solution.edge_flows)
    assert a.solution.method == b.solution.method
    assert [(r.cells, r.weight) for r in a.routes] == [
        (r.cells, r.weight) for r in b.routes
    ]


class TestPlanAll:
    def test_plans_every_post(self, setup, service):
        data, __, features = setup
        plans = service.plan_all(features, beta=0.5)
        assert sorted(plans) == sorted(int(p) for p in data.park.patrol_posts)
        t_times_k = PLANNER_KW["horizon"] * PLANNER_KW["n_patrols"]
        for post, plan in plans.items():
            assert plan.coverage.sum() == pytest.approx(t_times_k, rel=1e-6)
            assert plan.routes
            assert all(r.cells[0] == post for r in plan.routes)

    def test_parallel_bit_identical_to_serial(self, setup, service):
        __, __p, features = setup
        serial = service.plan_all(features, beta=0.5, n_jobs=1)
        parallel = service.plan_all(features, beta=0.5, n_jobs=3)
        assert sorted(serial) == sorted(parallel)
        for post in serial:
            assert_plans_equal(serial[post], parallel[post])

    def test_subset_of_posts(self, setup, service):
        data, __, features = setup
        subset = [int(data.park.patrol_posts[0])]
        plans = service.plan_all(features, beta=0.5, posts=subset)
        assert list(plans) == subset

    def test_duplicate_subset_rejected(self, setup, service):
        data, __, features = setup
        post = int(data.park.patrol_posts[0])
        with pytest.raises(ConfigurationError):
            service.plan_all(features, beta=0.5, posts=[post, post])

    def test_empty_subset_rejected(self, setup, service):
        __, __p, features = setup
        with pytest.raises(ConfigurationError):
            service.plan_all(features, beta=0.5, posts=[])

    def test_breakpoints_match_every_planner(self, setup, service):
        __, __p, __f = setup
        for post in service.posts:
            np.testing.assert_array_equal(
                service.breakpoints(), service.planner_for(post).breakpoints()
            )

    def test_timed_plan_all_reports_wall_clock(self, setup, service):
        __, __p, features = setup
        plans, elapsed = service.timed_plan_all(features, beta=0.5)
        assert len(plans) == len(service.posts)
        assert elapsed > 0


class TestBetaSweep:
    BETAS = (0.0, 0.5, 1.0)

    def test_matches_fresh_planner_bit_identically(self, setup, service):
        data, predictor, features = setup
        post = int(data.park.patrol_posts[0])
        sweep = service.beta_sweep(post, features, self.BETAS)

        xs = service.breakpoints()
        risk, nu = predictor.effort_response(features, xs)
        objective = RobustObjective(xs, risk, nu, beta=self.BETAS[0])
        for beta, plan in zip(self.BETAS, sweep):
            fresh = PatrolPlanner(
                data.park.grid, post, **PLANNER_KW
            ).plan(objective, beta=beta)
            assert_plans_equal(plan, fresh)

    def test_reuses_model_structure(self, setup):
        data, predictor, features = setup
        # Pin the solver so every beta shares one structure ("auto" may
        # legitimately build both an LP and a MILP structure when
        # concavity changes with beta).
        service = PlanService(
            RiskMapService(predictor), data.park.grid,
            data.park.patrol_posts, solver_mode="milp", **PLANNER_KW,
        )
        post = int(data.park.patrol_posts[0])
        service.beta_sweep(post, features, self.BETAS)
        info = service.cache_info()
        # One structure assembly, then objective-only swaps.
        assert info["structure"]["misses"] == 1
        assert info["structure"]["hits"] == len(self.BETAS) - 1
        assert info["structure"]["entries"] == 1

    def test_hits_prediction_cache(self, setup, service):
        __, __p, features = setup
        service.plan_all(features, beta=0.0)
        service.plan_all(features, beta=1.0)
        info = service.cache_info()
        assert info["prediction"]["hits"] >= 1
        assert info["prediction"]["misses"] == 1

    def test_empty_betas_rejected(self, setup, service):
        data, __, features = setup
        with pytest.raises(ConfigurationError):
            service.beta_sweep(int(data.park.patrol_posts[0]), features, [])


class TestConstruction:
    def test_wraps_bare_predictor(self, setup):
        data, predictor, __ = setup
        service = PlanService(
            predictor, data.park.grid, data.park.patrol_posts, **PLANNER_KW
        )
        assert isinstance(service.service, RiskMapService)

    def test_from_saved_plans_identically(self, setup, service, tmp_path):
        data, predictor, features = setup
        predictor.save(tmp_path / "model")
        loaded = PlanService.from_saved(
            tmp_path / "model", data.park.grid, data.park.patrol_posts,
            **PLANNER_KW,
        )
        post = int(data.park.patrol_posts[0])
        assert_plans_equal(
            loaded.plan_post(post, features, beta=0.5),
            service.plan_post(post, features, beta=0.5),
        )

    def test_unserved_post_rejected(self, setup, service):
        data, __, features = setup
        bad = int(max(data.park.patrol_posts)) + 1
        with pytest.raises(ConfigurationError):
            service.plan_post(bad, features, beta=0.5)

    def test_validation(self, setup):
        data, predictor, __ = setup
        grid = data.park.grid
        with pytest.raises(ConfigurationError):
            PlanService(object(), grid, [0])
        with pytest.raises(ConfigurationError):
            PlanService(predictor, grid, [])
        with pytest.raises(ConfigurationError):
            PlanService(predictor, grid, [0, 0])
        with pytest.raises(ConfigurationError):
            PlanService(predictor, grid, [0], solver_mode="fastest")

    def test_lazy_export_from_planning_package(self):
        import repro.planning as planning

        assert planning.PlanService is PlanService
        with pytest.raises(AttributeError):
            planning.no_such_symbol
