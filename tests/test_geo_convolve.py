"""Tests for repro.geo.convolve."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.geo import block_mean, box_filter


class TestBoxFilter:
    def test_radius_zero_is_identity(self, rng):
        raster = rng.random((6, 6))
        np.testing.assert_array_equal(box_filter(raster, radius=0), raster)

    def test_constant_raster_unchanged(self):
        raster = np.full((7, 7), 4.2)
        np.testing.assert_allclose(box_filter(raster, radius=1), 4.2)

    def test_interior_cell_averages_window(self):
        raster = np.arange(25, dtype=float).reshape(5, 5)
        out = box_filter(raster, radius=1)
        expected = raster[1:4, 1:4].mean()
        assert out[2, 2] == pytest.approx(expected)

    def test_edge_cells_average_partial_window(self):
        raster = np.arange(9, dtype=float).reshape(3, 3)
        out = box_filter(raster, radius=1)
        assert out[0, 0] == pytest.approx(raster[0:2, 0:2].mean())

    def test_nan_cells_stay_nan_and_are_skipped(self):
        raster = np.ones((4, 4))
        raster[1, 1] = np.nan
        out = box_filter(raster, radius=1)
        assert np.isnan(out[1, 1])
        assert out[0, 0] == pytest.approx(1.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            box_filter(np.zeros(4))
        with pytest.raises(ConfigurationError):
            box_filter(np.zeros((3, 3)), radius=-1)

    def test_preserves_mean_roughly(self, rng):
        raster = rng.random((12, 12))
        out = box_filter(raster, radius=2)
        assert abs(out.mean() - raster.mean()) < 0.05


class TestBlockMean:
    def test_exact_tiling(self):
        raster = np.arange(16, dtype=float).reshape(4, 4)
        out = block_mean(raster, block=2)
        assert out.shape == (2, 2)
        assert out[0, 0] == pytest.approx(raster[:2, :2].mean())
        assert out[1, 1] == pytest.approx(raster[2:, 2:].mean())

    def test_ragged_edges_use_partial_tiles(self):
        raster = np.ones((5, 5))
        out = block_mean(raster, block=3)
        assert out.shape == (2, 2)
        np.testing.assert_allclose(out, 1.0)

    def test_all_nan_tile_is_nan(self):
        raster = np.full((4, 4), np.nan)
        raster[0, 0] = 2.0
        out = block_mean(raster, block=2)
        assert out[0, 0] == pytest.approx(2.0)
        assert np.isnan(out[1, 1])

    def test_block_one_is_identity(self, rng):
        raster = rng.random((3, 5))
        np.testing.assert_allclose(block_mean(raster, 1), raster)

    def test_rejects_bad_block(self):
        with pytest.raises(ConfigurationError):
            block_mean(np.zeros((3, 3)), block=0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 9999), radius=st.integers(1, 3))
def test_box_filter_bounded_by_extremes(seed, radius):
    """A moving average can never exceed the raster's own range."""
    raster = np.random.default_rng(seed).random((10, 10))
    out = box_filter(raster, radius=radius)
    assert out.min() >= raster.min() - 1e-12
    assert out.max() <= raster.max() + 1e-12


def _ragged_holey_raster(seed: int, height: int, width: int) -> np.ndarray:
    """A non-square raster with ~30% NaN holes punched into it."""
    rng = np.random.default_rng(seed)
    raster = rng.random((height, width))
    raster[rng.random((height, width)) < 0.3] = np.nan
    return raster


class TestVectorizedEquivalence:
    """The numpy rewrites against the original per-cell double loops."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        height=st.integers(1, 13),
        width=st.integers(1, 13),
        radius=st.integers(1, 3),
    )
    def test_box_sum_bit_identical(self, seed, height, width, radius):
        from repro.geo.convolve import _box_sum, _box_sum_reference

        raster = np.nan_to_num(_ragged_holey_raster(seed, height, width))
        k = 2 * radius + 1
        np.testing.assert_array_equal(
            _box_sum(raster, k), _box_sum_reference(raster, k)
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        height=st.integers(1, 13),
        width=st.integers(1, 13),
        block=st.integers(1, 5),
    )
    def test_block_mean_equivalent_on_ragged_holey_rasters(
        self, seed, height, width, block
    ):
        """Exact NaN placement, values equal up to summation order."""
        from repro.geo.convolve import block_mean_reference

        raster = _ragged_holey_raster(seed, height, width)
        got = block_mean(raster, block)
        expected = block_mean_reference(raster, block)
        np.testing.assert_array_equal(np.isnan(got), np.isnan(expected))
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=0.0)

    def test_box_filter_on_holey_raster_matches_reference_sums(self):
        from repro.geo.convolve import _box_sum_reference

        raster = _ragged_holey_raster(7, 9, 12)
        finite = np.isfinite(raster)
        filled = np.where(finite, raster, 0.0)
        summed = _box_sum_reference(filled, 3)
        counts = _box_sum_reference(finite.astype(float), 3)
        expected = np.full_like(raster, np.nan)
        has_data = counts > 0
        expected[has_data] = summed[has_data] / counts[has_data]
        expected[~finite] = np.nan
        got = box_filter(raster, radius=1)
        np.testing.assert_array_equal(np.isnan(got), np.isnan(expected))
        np.testing.assert_array_equal(
            got[np.isfinite(got)], expected[np.isfinite(expected)]
        )
