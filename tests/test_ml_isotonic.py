"""Tests for isotonic calibration and calibration metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError, NotFittedError
from repro.ml.isotonic import IsotonicCalibrator, pava
from repro.ml.metrics import (
    calibration_curve,
    expected_calibration_error,
    roc_auc_score,
)


class TestPAVA:
    def test_already_monotone_unchanged(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(pava(values), values)

    def test_single_violation_pooled(self):
        values = np.array([1.0, 3.0, 2.0])
        out = pava(values)
        np.testing.assert_allclose(out, [1.0, 2.5, 2.5])

    def test_fully_decreasing_pools_to_mean(self):
        values = np.array([3.0, 2.0, 1.0])
        np.testing.assert_allclose(pava(values), 2.0)

    def test_weights_shift_pooling(self):
        values = np.array([0.0, 1.0, 0.0])
        out = pava(values, weights=np.array([1.0, 9.0, 1.0]))
        # The heavy middle value dominates the pooled block.
        assert out[1] > 0.8

    def test_output_nondecreasing_and_mean_preserving(self, rng):
        values = rng.normal(size=200)
        out = pava(values)
        assert (np.diff(out) >= -1e-12).all()
        assert out.mean() == pytest.approx(values.mean())

    def test_validation(self):
        with pytest.raises(DataError):
            pava(np.zeros((2, 2)))
        with pytest.raises(DataError):
            pava(np.array([]))
        with pytest.raises(DataError):
            pava(np.array([1.0]), weights=np.array([0.0]))


class TestIsotonicCalibrator:
    def test_preserves_ranking(self, rng):
        scores = rng.normal(size=400)
        y = (rng.random(400) < 1 / (1 + np.exp(-2 * scores))).astype(int)
        cal = IsotonicCalibrator().fit(scores, y)
        p = cal.transform(scores)
        # Isotonic maps are monotone, so AUC is unchanged up to ties.
        assert roc_auc_score(y, p) >= roc_auc_score(y, scores) - 0.02

    def test_improves_calibration_of_distorted_scores(self, rng):
        true_p = rng.random(2000)
        y = (rng.random(2000) < true_p).astype(int)
        distorted = true_p**3  # badly calibrated but perfectly ranked
        cal = IsotonicCalibrator().fit(distorted, y)
        recovered = cal.transform(distorted)
        ece_before = expected_calibration_error(y, distorted)
        ece_after = expected_calibration_error(y, recovered)
        assert ece_after < ece_before

    def test_transform_monotone(self, rng):
        scores = rng.normal(size=100)
        y = (scores + rng.normal(0, 1, 100) > 0).astype(int)
        cal = IsotonicCalibrator().fit(scores, y)
        grid = np.linspace(-3, 3, 50)
        assert (np.diff(cal.transform(grid)) >= -1e-12).all()

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            IsotonicCalibrator().transform(np.zeros(3))

    def test_validation(self):
        with pytest.raises(DataError):
            IsotonicCalibrator().fit(np.zeros(3), np.zeros(2))
        with pytest.raises(DataError):
            IsotonicCalibrator().fit(np.array([]), np.array([]))


class TestCalibrationMetrics:
    def test_perfectly_calibrated_has_low_ece(self, rng):
        p = rng.random(5000)
        y = (rng.random(5000) < p).astype(int)
        assert expected_calibration_error(y, p) < 0.05

    def test_overconfident_has_high_ece(self, rng):
        y = (rng.random(2000) < 0.5).astype(int)
        p = np.where(y == 1, 0.99, 0.98)  # confident and wrong half the time
        assert expected_calibration_error(y, p) > 0.3

    def test_curve_shapes(self, rng):
        p = rng.random(300)
        y = (rng.random(300) < p).astype(int)
        mean_pred, observed, counts = calibration_curve(y, p, n_bins=5)
        assert mean_pred.shape == observed.shape == counts.shape
        assert counts.sum() == 300
        assert (np.diff(mean_pred) > 0).all()

    def test_validation(self, rng):
        y = rng.integers(0, 2, 10)
        with pytest.raises(DataError):
            calibration_curve(y, np.full(10, 1.5))
        with pytest.raises(DataError):
            calibration_curve(y, rng.random(10), n_bins=0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 9999))
def test_pava_is_l2_projection_property(seed):
    """PAVA output is the closest nondecreasing sequence: it never loses to
    a simple monotone competitor (the cumulative maximum)."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=30)
    fitted = pava(values)
    competitor = np.maximum.accumulate(values)
    err_fit = np.sum((fitted - values) ** 2)
    err_comp = np.sum((competitor - values) ** 2)
    assert err_fit <= err_comp + 1e-9
