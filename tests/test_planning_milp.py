"""Tests for repro.planning.milp, branch_and_bound, robust, and paths."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.geo import Grid
from repro.planning import (
    BranchAndBoundSolver,
    PatrolMILP,
    PiecewiseLinear,
    RobustObjective,
    TimeUnrolledGraph,
    decompose_flow_into_routes,
    robust_utility,
)
from repro.planning.paths import coverage_of_routes, sample_routes


def make_instance(height=6, width=6, source=0, horizon=6, n_patrols=2,
                  n_breakpoints=6, seed=0, concave=True):
    grid = Grid.rectangular(height, width)
    graph = TimeUnrolledGraph(grid, source_cell=source, horizon=horizon)
    milp = PatrolMILP(graph, n_patrols=n_patrols)
    rng = np.random.default_rng(seed)
    xs = np.linspace(0.0, milp.max_coverage, n_breakpoints)
    utilities = {}
    for v in graph.reachable_cells:
        scale = rng.random()
        if concave:
            ys = scale * (1 - np.exp(-0.4 * xs))
        else:
            ys = scale * (1 - np.exp(-0.4 * xs)) * (1 - 0.8 * rng.random() * xs / xs[-1])
        utilities[int(v)] = PiecewiseLinear(xs, ys)
    return grid, graph, milp, utilities


class TestPatrolMILP:
    def test_coverage_sums_to_tk(self):
        __, graph, milp, utilities = make_instance()
        sol = milp.solve(utilities)
        assert sol.coverage.sum() == pytest.approx(milp.max_coverage, rel=1e-6)

    def test_unit_flow(self):
        __, graph, milp, utilities = make_instance()
        sol = milp.solve(utilities)
        out_edges, __in = graph.incidence_lists()
        src_flow = sol.edge_flows[out_edges[graph.source_node]].sum()
        assert src_flow == pytest.approx(1.0)

    def test_objective_matches_coverage_utility(self):
        __, graph, milp, utilities = make_instance()
        sol = milp.solve(utilities)
        recomputed = sum(
            utilities[int(v)](sol.coverage[int(v)]) for v in graph.reachable_cells
        )
        assert sol.objective_value == pytest.approx(recomputed, abs=1e-5)

    def test_prefers_high_utility_cells(self):
        grid = Grid.rectangular(3, 5)
        graph = TimeUnrolledGraph(grid, source_cell=grid.cell_id(1, 2), horizon=6)
        milp = PatrolMILP(graph, n_patrols=1)
        xs = np.linspace(0, milp.max_coverage, 5)
        utilities = {}
        hot = grid.cell_id(1, 3)
        for v in graph.reachable_cells:
            gain = 10.0 if v == hot else 0.01
            utilities[int(v)] = PiecewiseLinear(xs, gain * (1 - np.exp(-xs)))
        sol = milp.solve(utilities)
        assert sol.coverage[hot] > 1.0

    def test_nonconcave_utilities_handled(self):
        """Segment binaries make non-concave PWL objectives exact."""
        __, graph, milp, utilities = make_instance(concave=False, seed=3)
        sol = milp.solve(utilities)
        recomputed = sum(
            utilities[int(v)](sol.coverage[int(v)]) for v in graph.reachable_cells
        )
        assert sol.objective_value == pytest.approx(recomputed, abs=1e-5)

    def test_rejects_bad_domain(self):
        __, graph, milp, __u = make_instance()
        xs_bad = np.linspace(0, 1.0, 4)  # does not reach T*K
        bad = {int(v): PiecewiseLinear(xs_bad, np.zeros(4))
               for v in graph.reachable_cells}
        with pytest.raises(ConfigurationError):
            milp.solve(bad)

    def test_rejects_missing_cells(self):
        __, graph, milp, utilities = make_instance()
        utilities.pop(sorted(utilities)[-1])
        with pytest.raises(ConfigurationError):
            milp.solve(utilities)

    def test_rejects_unreachable_cells(self):
        grid, graph, milp, utilities = make_instance()
        xs = np.linspace(0, milp.max_coverage, 4)
        unreachable = grid.cell_id(5, 5)
        if unreachable not in set(int(v) for v in graph.reachable_cells):
            utilities[unreachable] = PiecewiseLinear(xs, np.zeros(4))
            with pytest.raises(ConfigurationError):
                milp.solve(utilities)

    def test_bad_n_patrols(self):
        __, graph, __m, __u = make_instance()
        with pytest.raises(ConfigurationError):
            PatrolMILP(graph, n_patrols=0)


class TestBranchAndBound:
    def test_simple_knapsack(self):
        # max 5a + 4b + 3c  s.t. 2a + 3b + c <= 4  (binary) -> a=1, c=1.
        c = np.array([-5.0, -4.0, -3.0])
        a_matrix = sparse.csr_matrix(np.array([[2.0, 3.0, 1.0]]))
        res = BranchAndBoundSolver().solve(
            c, a_matrix, np.array([-np.inf]), np.array([4.0]),
            binary_mask=np.array([True, True, True]),
        )
        assert res.objective_value == pytest.approx(-8.0)
        np.testing.assert_allclose(res.x, [1.0, 0.0, 1.0], atol=1e-6)

    def test_mixed_integer(self):
        # max x + 2z  s.t. x + z <= 1.5, z binary, x continuous in [0,1].
        c = np.array([-1.0, -2.0])
        a_matrix = sparse.csr_matrix(np.array([[1.0, 1.0]]))
        res = BranchAndBoundSolver().solve(
            c, a_matrix, np.array([-np.inf]), np.array([1.5]),
            binary_mask=np.array([False, True]),
        )
        assert res.objective_value == pytest.approx(-2.5)
        assert res.x[1] == pytest.approx(1.0)

    def test_infeasible(self):
        c = np.array([1.0])
        a_matrix = sparse.csr_matrix(np.array([[1.0]]))
        with pytest.raises(InfeasibleError):
            BranchAndBoundSolver().solve(
                c, a_matrix, np.array([2.0]), np.array([3.0]),
                binary_mask=np.array([True]),
            )

    def test_matches_highs_on_patrol_instance(self):
        """Cross-check the from-scratch solver against HiGHS."""
        __, graph, milp, utilities = make_instance(
            height=4, width=4, horizon=4, n_breakpoints=4, concave=False, seed=7
        )
        sol_highs = milp.solve(utilities)
        # Rebuild the same model and solve with our B&B via the internal API.
        from tests.helpers_milp import solve_patrol_with_bnb

        obj_bnb = solve_patrol_with_bnb(milp, utilities)
        assert obj_bnb == pytest.approx(sol_highs.objective_value, abs=1e-4)


class TestRobustUtility:
    def test_beta_zero_is_risk(self, rng):
        g = rng.random(10)
        nu = rng.random(10)
        np.testing.assert_allclose(robust_utility(g, nu, 0.0), g)

    def test_beta_one_full_penalty(self):
        g = np.array([0.5])
        nu = np.array([1.0])
        assert robust_utility(g, nu, 1.0)[0] == pytest.approx(0.0)

    def test_nonnegative_for_valid_inputs(self, rng):
        g = rng.random(50)
        nu = rng.random(50)
        assert (robust_utility(g, nu, 1.0) >= 0).all()

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            robust_utility(rng.random(3), rng.random(3), 1.5)
        with pytest.raises(ConfigurationError):
            robust_utility(rng.random(3), rng.random(4), 0.5)
        with pytest.raises(ConfigurationError):
            robust_utility(np.array([0.5]), np.array([2.0]), 0.5)


class TestRobustObjective:
    def make(self, rng, n_cells=6, beta=0.5):
        xs = np.linspace(0, 8, 5)
        risk = np.sort(rng.random((n_cells, 5)), axis=1)
        nu = rng.random((n_cells, 5))
        return RobustObjective(xs, risk, nu, beta)

    def test_utility_samples_shape(self, rng):
        obj = self.make(rng)
        assert obj.utility_samples().shape == (6, 5)

    def test_with_beta_shares_samples(self, rng):
        obj = self.make(rng, beta=0.0)
        robust = obj.with_beta(1.0)
        assert robust.beta == 1.0
        assert (robust.utility_samples() <= obj.utility_samples() + 1e-12).all()

    def test_evaluate_coverage(self, rng):
        obj = self.make(rng, beta=0.0)
        zero = obj.evaluate_coverage(np.zeros(6))
        some = obj.evaluate_coverage(np.full(6, 4.0))
        assert some >= zero  # risk rows are sorted increasing

    def test_evaluate_coverage_shape_check(self, rng):
        obj = self.make(rng)
        with pytest.raises(ConfigurationError):
            obj.evaluate_coverage(np.zeros(3))

    def test_beta_validation(self, rng):
        with pytest.raises(ConfigurationError):
            self.make(rng, beta=2.0)


class TestFlowDecomposition:
    def test_routes_start_and_end_at_post(self):
        __, graph, milp, utilities = make_instance()
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        assert routes
        for route in routes:
            assert route.cells[0] == graph.source_cell
            assert route.cells[-1] == graph.source_cell
            assert len(route.cells) == graph.horizon

    def test_weights_sum_to_one(self):
        __, graph, milp, utilities = make_instance(seed=2)
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        assert sum(r.weight for r in routes) == pytest.approx(1.0, abs=1e-4)

    def test_routes_follow_adjacency(self):
        grid, graph, milp, utilities = make_instance(seed=4)
        sol = milp.solve(utilities)
        for route in decompose_flow_into_routes(graph, sol.edge_flows):
            for a, b in zip(route.cells[:-1], route.cells[1:]):
                assert a == b or b in grid.neighbors(a, connectivity=4)

    def test_expected_coverage_matches_flow(self):
        __, graph, milp, utilities = make_instance(seed=5)
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        expected = np.zeros(graph.grid.n_cells)
        for r in routes:
            for cell in r.cells:
                expected[cell] += r.weight * milp.n_patrols
        np.testing.assert_allclose(expected, sol.coverage, atol=1e-4)

    def test_sample_routes(self, rng):
        __, graph, milp, utilities = make_instance(seed=6)
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        picked = sample_routes(routes, n_patrols=4, rng=rng)
        assert len(picked) == 4
        coverage = coverage_of_routes(graph, picked)
        assert coverage.sum() == pytest.approx(4 * graph.horizon)

    def test_bad_flow_shape(self):
        __, graph, __m, __u = make_instance()
        with pytest.raises(ConfigurationError):
            decompose_flow_into_routes(graph, np.zeros(3))

    def test_sample_routes_validation(self, rng):
        with pytest.raises(ConfigurationError):
            sample_routes([], 3, rng)
