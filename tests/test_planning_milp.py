"""Tests for repro.planning.milp, branch_and_bound, robust, and paths."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.geo import Grid
from repro.planning import (
    BranchAndBoundSolver,
    PatrolMILP,
    PiecewiseLinear,
    RobustObjective,
    TimeUnrolledGraph,
    decompose_flow_into_routes,
    robust_utility,
)
from repro.planning.paths import PatrolRoute, coverage_of_routes, sample_routes


def make_instance(height=6, width=6, source=0, horizon=6, n_patrols=2,
                  n_breakpoints=6, seed=0, concave=True):
    grid = Grid.rectangular(height, width)
    graph = TimeUnrolledGraph(grid, source_cell=source, horizon=horizon)
    milp = PatrolMILP(graph, n_patrols=n_patrols)
    rng = np.random.default_rng(seed)
    xs = np.linspace(0.0, milp.max_coverage, n_breakpoints)
    utilities = {}
    for v in graph.reachable_cells:
        scale = rng.random()
        if concave:
            ys = scale * (1 - np.exp(-0.4 * xs))
        else:
            # Sigmoid detection curves (anchored at 0) are genuinely
            # non-concave: convex below the inflection, concave above.
            mid = xs[-1] * (0.3 + 0.4 * rng.random())
            raw = 1.0 / (1.0 + np.exp(-1.5 * (xs - mid)))
            ys = scale * (raw - raw[0])
        utilities[int(v)] = PiecewiseLinear(xs, ys)
    return grid, graph, milp, utilities


class TestPatrolMILP:
    def test_coverage_sums_to_tk(self):
        __, graph, milp, utilities = make_instance()
        sol = milp.solve(utilities)
        assert sol.coverage.sum() == pytest.approx(milp.max_coverage, rel=1e-6)

    def test_unit_flow(self):
        __, graph, milp, utilities = make_instance()
        sol = milp.solve(utilities)
        out_edges, __in = graph.incidence_lists()
        src_flow = sol.edge_flows[out_edges[graph.source_node]].sum()
        assert src_flow == pytest.approx(1.0)

    def test_objective_matches_coverage_utility(self):
        __, graph, milp, utilities = make_instance()
        sol = milp.solve(utilities)
        recomputed = sum(
            utilities[int(v)](sol.coverage[int(v)]) for v in graph.reachable_cells
        )
        assert sol.objective_value == pytest.approx(recomputed, abs=1e-5)

    def test_prefers_high_utility_cells(self):
        grid = Grid.rectangular(3, 5)
        graph = TimeUnrolledGraph(grid, source_cell=grid.cell_id(1, 2), horizon=6)
        milp = PatrolMILP(graph, n_patrols=1)
        xs = np.linspace(0, milp.max_coverage, 5)
        utilities = {}
        hot = grid.cell_id(1, 3)
        for v in graph.reachable_cells:
            gain = 10.0 if v == hot else 0.01
            utilities[int(v)] = PiecewiseLinear(xs, gain * (1 - np.exp(-xs)))
        sol = milp.solve(utilities)
        assert sol.coverage[hot] > 1.0

    def test_nonconcave_utilities_handled(self):
        """Segment binaries make non-concave PWL objectives exact."""
        __, graph, milp, utilities = make_instance(concave=False, seed=3)
        sol = milp.solve(utilities)
        recomputed = sum(
            utilities[int(v)](sol.coverage[int(v)]) for v in graph.reachable_cells
        )
        assert sol.objective_value == pytest.approx(recomputed, abs=1e-5)

    def test_rejects_bad_domain(self):
        __, graph, milp, __u = make_instance()
        xs_bad = np.linspace(0, 1.0, 4)  # does not reach T*K
        bad = {int(v): PiecewiseLinear(xs_bad, np.zeros(4))
               for v in graph.reachable_cells}
        with pytest.raises(ConfigurationError):
            milp.solve(bad)

    def test_rejects_missing_cells(self):
        __, graph, milp, utilities = make_instance()
        utilities.pop(sorted(utilities)[-1])
        with pytest.raises(ConfigurationError):
            milp.solve(utilities)

    def test_rejects_unreachable_cells(self):
        grid, graph, milp, utilities = make_instance()
        xs = np.linspace(0, milp.max_coverage, 4)
        unreachable = grid.cell_id(5, 5)
        if unreachable not in set(int(v) for v in graph.reachable_cells):
            utilities[unreachable] = PiecewiseLinear(xs, np.zeros(4))
            with pytest.raises(ConfigurationError):
                milp.solve(utilities)

    def test_bad_n_patrols(self):
        __, graph, __m, __u = make_instance()
        with pytest.raises(ConfigurationError):
            PatrolMILP(graph, n_patrols=0)


class TestLPFastPath:
    def test_lp_matches_milp_on_concave(self):
        """Acceptance bar: LP and SOS2 MILP agree to 1e-6 when concave."""
        __, graph, milp, utilities = make_instance(seed=11)
        assert all(u.is_concave() for u in utilities.values())
        sol_lp = milp.solve(utilities, mode="lp")
        sol_milp = milp.solve(utilities, mode="milp")
        assert sol_lp.method == "lp"
        assert sol_milp.method == "milp"
        assert sol_lp.objective_value == pytest.approx(
            sol_milp.objective_value, abs=1e-6
        )

    def test_auto_takes_lp_on_concave(self):
        __, __g, milp, utilities = make_instance(seed=12)
        assert milp.solve(utilities).method == "lp"

    def test_auto_certified_on_nonconcave(self):
        """Auto mode handles non-concave utilities through the certified
        envelope path (or the full MILP when the certificate fails): the
        accepted solution is within the certified gap of the full SOS2
        MILP's optimum, and the certificate honours ``envelope_gap``."""
        __, __g, milp, utilities = make_instance(concave=False, seed=12)
        assert any(not u.is_concave() for u in utilities.values())
        sol_auto = milp.solve(utilities)
        sol_milp = milp.solve(utilities, mode="milp")
        assert sol_auto.method in ("lp-envelope", "milp-partial", "milp")
        scale = max(1.0, abs(sol_milp.objective_value))
        tol = max(milp.envelope_gap, milp.mip_gap)
        assert (
            sol_auto.objective_value
            >= sol_milp.objective_value - tol * scale - 1e-9
        )
        assert sol_auto.bound_gap <= tol + 1e-12

    def test_envelope_gap_zero_matches_milp_quality(self):
        """envelope_gap=0 tightens the certificate to mip_gap — auto-mode
        solutions then carry the same guarantee as the full SOS2 MILP."""
        __, graph, __m, utilities = make_instance(concave=False, seed=12)
        exact = PatrolMILP(graph, n_patrols=2, envelope_gap=0.0)
        sol_auto = exact.solve(utilities)
        sol_milp = exact.solve(utilities, mode="milp")
        assert sol_auto.objective_value == pytest.approx(
            sol_milp.objective_value, abs=1e-4
        )

    def test_forced_lp_rejects_nonconcave(self):
        __, __g, milp, utilities = make_instance(concave=False, seed=13)
        with pytest.raises(ConfigurationError):
            milp.solve(utilities, mode="lp")

    def test_unknown_mode_rejected(self):
        __, __g, milp, utilities = make_instance()
        with pytest.raises(ConfigurationError):
            milp.solve(utilities, mode="simplex")

    def test_is_concave_tolerance_is_relative(self):
        """Regression for the Fig. 9 cliff: slope noise scales with slope
        magnitude, so a steep concave function with float jitter above the
        old 1e-9 absolute tolerance must still register as concave."""
        xs = np.array([0.0, 1.0, 2.0])
        steep = PiecewiseLinear(xs, np.array([0.0, 1e7, 2e7 + 1e-3]))
        slopes = np.diff(steep.ys) / np.diff(steep.xs)
        assert np.diff(slopes).max() > 1e-9  # absolute test would misfire
        assert steep.is_concave()
        # A genuinely convex function is still rejected at any scale.
        convex = PiecewiseLinear(xs, np.array([0.0, 1e7, 3e7]))
        assert not convex.is_concave()

    def test_concave_envelope_is_least_concave_majorant(self):
        xs = np.linspace(0.0, 5.0, 11)
        rng = np.random.default_rng(3)
        ys = np.cumsum(rng.random(11))  # increasing, generically non-concave
        pwl = PiecewiseLinear(xs, ys)
        env = pwl.concave_envelope()
        assert env.is_concave()
        assert (env.ys >= pwl.ys - 1e-12).all()
        # Envelope of a concave function is the function itself.
        conc = PiecewiseLinear(xs, 1 - np.exp(-xs))
        np.testing.assert_allclose(conc.concave_envelope().ys, conc.ys)

    def test_envelope_path_reports_true_objective(self):
        """Certified envelope solutions report utility(coverage), not the
        relaxation's optimistic bound."""
        __, graph, milp, utilities = make_instance(concave=False, seed=21)
        sol = milp.solve(utilities, mode="auto")
        recomputed = sum(
            utilities[int(v)](sol.coverage[int(v)])
            for v in graph.reachable_cells
        )
        assert sol.objective_value == pytest.approx(recomputed, abs=1e-6)

    def test_partial_binary_structure_smaller_than_full(self):
        """Restoring binaries on a subset of cells yields strictly fewer
        integer variables than the classic all-binary MILP."""
        __, __g, milp, utilities = make_instance(concave=False, seed=22)
        cells = sorted(utilities)
        full = milp.build_structure(utilities, lp_mode=False)
        partial = milp.build_structure(
            utilities, lp_mode=False, binary_cells=cells[:3]
        )
        assert partial.integrality.sum() < full.integrality.sum()
        assert partial.binary_cells == tuple(cells[:3])

    def test_lp_coverage_objective_consistent(self):
        """LP-path solutions still report utility(coverage) exactly."""
        __, graph, milp, utilities = make_instance(seed=14)
        sol = milp.solve(utilities, mode="lp")
        recomputed = sum(
            utilities[int(v)](sol.coverage[int(v)]) for v in graph.reachable_cells
        )
        assert sol.objective_value == pytest.approx(recomputed, abs=1e-5)


class TestStructureCache:
    def test_objective_swap_hits_cache(self):
        """Same breakpoints, different utility values -> one structure."""
        __, graph, milp, utilities = make_instance(seed=21)
        milp.solve(utilities, mode="milp")
        assert milp.structure_cache_info() == {
            "hits": 0, "misses": 1, "entries": 1
        }
        # A beta-sweep-style change: same xs, scaled ys.
        swept = {
            v: PiecewiseLinear(u.xs, 0.5 * u.ys) for v, u in utilities.items()
        }
        milp.solve(swept, mode="milp")
        assert milp.structure_cache_info() == {
            "hits": 1, "misses": 1, "entries": 1
        }

    def test_lp_and_milp_structures_are_distinct(self):
        __, __g, milp, utilities = make_instance(seed=22)
        milp.solve(utilities, mode="lp")
        milp.solve(utilities, mode="milp")
        assert milp.structure_cache_info()["entries"] == 2

    def test_cached_solve_identical_to_fresh(self):
        """Re-solving through the cache is bit-identical to a cold solver."""
        __, __g, milp, utilities = make_instance(seed=23)
        swept = {
            v: PiecewiseLinear(u.xs, 0.7 * u.ys + 0.01 * u.xs / u.xs[-1])
            for v, u in utilities.items()
        }
        milp.solve(utilities, mode="milp")  # warm the structure cache
        warm = milp.solve(swept, mode="milp")
        assert milp.structure_cache_info()["hits"] >= 1

        __, __g2, cold_milp, __u = make_instance(seed=23)
        cold = cold_milp.solve(swept, mode="milp")
        assert warm.objective_value == cold.objective_value
        np.testing.assert_array_equal(warm.coverage, cold.coverage)
        np.testing.assert_array_equal(warm.edge_flows, cold.edge_flows)

    def test_new_breakpoints_miss_cache(self):
        __, graph, milp, utilities = make_instance(seed=24, n_breakpoints=6)
        milp.solve(utilities, mode="milp")
        xs2 = np.linspace(0.0, milp.max_coverage, 4)
        coarse = {
            v: PiecewiseLinear(xs2, u(xs2)) for v, u in utilities.items()
        }
        milp.solve(coarse, mode="milp")
        assert milp.structure_cache_info() == {
            "hits": 0, "misses": 2, "entries": 2
        }


class TestBranchAndBound:
    def test_simple_knapsack(self):
        # max 5a + 4b + 3c  s.t. 2a + 3b + c <= 4  (binary) -> a=1, c=1.
        c = np.array([-5.0, -4.0, -3.0])
        a_matrix = sparse.csr_matrix(np.array([[2.0, 3.0, 1.0]]))
        res = BranchAndBoundSolver().solve(
            c, a_matrix, np.array([-np.inf]), np.array([4.0]),
            binary_mask=np.array([True, True, True]),
        )
        assert res.objective_value == pytest.approx(-8.0)
        np.testing.assert_allclose(res.x, [1.0, 0.0, 1.0], atol=1e-6)

    def test_mixed_integer(self):
        # max x + 2z  s.t. x + z <= 1.5, z binary, x continuous in [0,1].
        c = np.array([-1.0, -2.0])
        a_matrix = sparse.csr_matrix(np.array([[1.0, 1.0]]))
        res = BranchAndBoundSolver().solve(
            c, a_matrix, np.array([-np.inf]), np.array([1.5]),
            binary_mask=np.array([False, True]),
        )
        assert res.objective_value == pytest.approx(-2.5)
        assert res.x[1] == pytest.approx(1.0)

    def test_infeasible(self):
        c = np.array([1.0])
        a_matrix = sparse.csr_matrix(np.array([[1.0]]))
        with pytest.raises(InfeasibleError):
            BranchAndBoundSolver().solve(
                c, a_matrix, np.array([2.0]), np.array([3.0]),
                binary_mask=np.array([True]),
            )

    def test_status_optimal_when_stack_exhausted_at_cap(self):
        """Regression: exhausting the stack exactly at max_nodes is still a
        complete search, not a node-limit stop."""
        c = np.array([-5.0, -4.0, -3.0])
        a_matrix = sparse.csr_matrix(np.array([[2.0, 3.0, 1.0]]))
        bounds = (np.array([-np.inf]), np.array([4.0]))
        mask = np.array([True, True, True])
        # Pin the naive search shape: root cuts would solve this knapsack
        # at the root, leaving nothing for the cap to interact with.
        free = BranchAndBoundSolver(strategy="dfs", cuts=False).solve(
            c, a_matrix, *bounds, binary_mask=mask
        )
        assert free.status == "optimal"
        capped = BranchAndBoundSolver(
            max_nodes=free.n_nodes_explored, strategy="dfs", cuts=False
        ).solve(c, a_matrix, *bounds, binary_mask=mask)
        assert capped.n_nodes_explored == free.n_nodes_explored
        assert capped.status == "optimal"
        assert capped.objective_value == pytest.approx(free.objective_value)

    def test_status_node_limit_when_nodes_remain(self):
        c = np.array([-5.0, -4.0, -3.0])
        a_matrix = sparse.csr_matrix(np.array([[2.0, 3.0, 1.0]]))
        bounds = (np.array([-np.inf]), np.array([4.0]))
        mask = np.array([True, True, True])
        free = BranchAndBoundSolver(strategy="dfs", cuts=False).solve(
            c, a_matrix, *bounds, binary_mask=mask
        )
        assert free.n_nodes_explored > 2
        capped = BranchAndBoundSolver(
            max_nodes=2, strategy="dfs", cuts=False
        ).solve(c, a_matrix, *bounds, binary_mask=mask)
        assert capped.status == "node-limit"
        # Satellite of the solver upgrade: a node-limit exit must carry a
        # certified bound, not just a status string.
        assert capped.best_bound <= capped.objective_value
        assert np.isfinite(capped.best_bound)

    def test_matches_highs_on_patrol_instance(self):
        """Cross-check the from-scratch solver against HiGHS."""
        __, graph, milp, utilities = make_instance(
            height=4, width=4, horizon=4, n_breakpoints=4, concave=False, seed=7
        )
        sol_highs = milp.solve(utilities, mode="milp")
        # Rebuild the same model and solve with our B&B via the internal API.
        from tests.helpers_milp import solve_patrol_with_bnb

        obj_bnb = solve_patrol_with_bnb(milp, utilities)
        assert obj_bnb == pytest.approx(sol_highs.objective_value, abs=1e-4)


class TestRobustUtility:
    def test_beta_zero_is_risk(self, rng):
        g = rng.random(10)
        nu = rng.random(10)
        np.testing.assert_allclose(robust_utility(g, nu, 0.0), g)

    def test_beta_one_full_penalty(self):
        g = np.array([0.5])
        nu = np.array([1.0])
        assert robust_utility(g, nu, 1.0)[0] == pytest.approx(0.0)

    def test_nonnegative_for_valid_inputs(self, rng):
        g = rng.random(50)
        nu = rng.random(50)
        assert (robust_utility(g, nu, 1.0) >= 0).all()

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            robust_utility(rng.random(3), rng.random(3), 1.5)
        with pytest.raises(ConfigurationError):
            robust_utility(rng.random(3), rng.random(4), 0.5)
        with pytest.raises(ConfigurationError):
            robust_utility(np.array([0.5]), np.array([2.0]), 0.5)


class TestRobustObjective:
    def make(self, rng, n_cells=6, beta=0.5):
        xs = np.linspace(0, 8, 5)
        risk = np.sort(rng.random((n_cells, 5)), axis=1)
        nu = rng.random((n_cells, 5))
        return RobustObjective(xs, risk, nu, beta)

    def test_utility_samples_shape(self, rng):
        obj = self.make(rng)
        assert obj.utility_samples().shape == (6, 5)

    def test_with_beta_shares_samples(self, rng):
        obj = self.make(rng, beta=0.0)
        robust = obj.with_beta(1.0)
        assert robust.beta == 1.0
        assert (robust.utility_samples() <= obj.utility_samples() + 1e-12).all()

    def test_evaluate_coverage(self, rng):
        obj = self.make(rng, beta=0.0)
        zero = obj.evaluate_coverage(np.zeros(6))
        some = obj.evaluate_coverage(np.full(6, 4.0))
        assert some >= zero  # risk rows are sorted increasing

    def test_evaluate_coverage_shape_check(self, rng):
        obj = self.make(rng)
        with pytest.raises(ConfigurationError):
            obj.evaluate_coverage(np.zeros(3))

    def test_beta_validation(self, rng):
        with pytest.raises(ConfigurationError):
            self.make(rng, beta=2.0)


class TestFlowDecomposition:
    def test_routes_start_and_end_at_post(self):
        __, graph, milp, utilities = make_instance()
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        assert routes
        for route in routes:
            assert route.cells[0] == graph.source_cell
            assert route.cells[-1] == graph.source_cell
            assert len(route.cells) == graph.horizon

    def test_weights_sum_to_one(self):
        __, graph, milp, utilities = make_instance(seed=2)
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        assert sum(r.weight for r in routes) == pytest.approx(1.0, abs=1e-4)

    @pytest.mark.parametrize("seed", [0, 3, 8, 13])
    @pytest.mark.parametrize("concave", [True, False])
    def test_unit_flow_mass_is_conserved(self, seed, concave):
        """Acceptance bar: weights sum to 1 +- 1e-6 on unit flows."""
        __, graph, milp, utilities = make_instance(seed=seed, concave=concave)
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        assert sum(r.weight for r in routes) == pytest.approx(1.0, abs=1e-6)

    def test_mass_not_lost_on_sub_min_weight_split(self):
        """Regression: a greedy path that dead-ends on a sub-``min_weight``
        edge used to abort the whole decomposition, silently dropping the
        residual strategy mass."""
        grid = Grid.rectangular(1, 3)
        graph = TimeUnrolledGraph(grid, source_cell=0, horizon=4)
        out_edges, __ = graph.incidence_lists()
        edges = graph.edges
        nodes = graph.nodes

        def follow(choices):
            """Edge indices of the path visiting the given cell sequence."""
            node = graph.source_node
            path = []
            for cell in choices:
                for e in out_edges[node]:
                    head = int(edges[e, 1])
                    if nodes[head][0] == cell:
                        path.append(e)
                        node = head
                        break
                else:
                    raise AssertionError("path not in graph")
            return path

        flows = np.zeros(graph.n_edges)
        # 0.5 on (0,0,0,0); after extracting it, the greedy walk re-enters
        # the shared first edge of (0,1,...) and then splits 0.25 / 0.25 —
        # both below min_weight=0.3, which aborted the old implementation
        # (its routes then summed to 0.5, not 1).
        for cells, w in [((0, 0, 0), 0.5), ((1, 1, 0), 0.25), ((1, 0, 0), 0.25)]:
            flows[follow(cells)] += w

        # Below the threshold the split routes fold into the kept one...
        routes = decompose_flow_into_routes(graph, flows, min_weight=0.3)
        assert sum(r.weight for r in routes) == pytest.approx(1.0, abs=1e-9)
        # ...and above it every route survives with its exact weight.
        routes = decompose_flow_into_routes(graph, flows, min_weight=0.1)
        assert sum(r.weight for r in routes) == pytest.approx(1.0, abs=1e-9)
        assert len(routes) == 3
        assert sorted(r.weight for r in routes) == pytest.approx([0.25, 0.25, 0.5])

    def test_numerical_dead_end_is_skipped(self):
        """Drift-level inflow to a node with no residual outflow is retired
        instead of raising or aborting."""
        grid = Grid.rectangular(1, 3)
        graph = TimeUnrolledGraph(grid, source_cell=0, horizon=4)
        out_edges, __ = graph.incidence_lists()
        edges = graph.edges
        nodes = graph.nodes
        flows = np.zeros(graph.n_edges)
        # Whole unit mass stays at the post...
        node = graph.source_node
        while node != graph.sink_node:
            for e in out_edges[node]:
                head = int(edges[e, 1])
                if nodes[head][0] == 0:
                    flows[e] += 1.0
                    node = head
                    break
        # ...plus non-conserving drift into cell 1 at t=1 that dead-ends.
        for e in out_edges[graph.source_node]:
            if nodes[int(edges[e, 1])][0] == 1:
                flows[e] += 1e-12
        routes = decompose_flow_into_routes(graph, flows)
        assert sum(r.weight for r in routes) == pytest.approx(1.0, abs=1e-9)

    def test_routes_follow_adjacency(self):
        grid, graph, milp, utilities = make_instance(seed=4)
        sol = milp.solve(utilities)
        for route in decompose_flow_into_routes(graph, sol.edge_flows):
            for a, b in zip(route.cells[:-1], route.cells[1:]):
                assert a == b or b in grid.neighbors(a, connectivity=4)

    def test_expected_coverage_matches_flow(self):
        __, graph, milp, utilities = make_instance(seed=5)
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        expected = np.zeros(graph.grid.n_cells)
        for r in routes:
            for cell in r.cells:
                expected[cell] += r.weight * milp.n_patrols
        np.testing.assert_allclose(expected, sol.coverage, atol=1e-4)

    def test_sample_routes(self, rng):
        __, graph, milp, utilities = make_instance(seed=6)
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        picked = sample_routes(routes, n_patrols=4, rng=rng)
        assert len(picked) == 4
        coverage = coverage_of_routes(graph, picked, weighted=False)
        assert coverage.sum() == pytest.approx(4 * graph.horizon)

    @pytest.mark.parametrize("seed", [1, 6, 9])
    def test_weighted_coverage_reconciles_with_milp(self, seed):
        """Property: MILP coverage == K x weighted decomposed coverage."""
        __, graph, milp, utilities = make_instance(seed=seed)
        sol = milp.solve(utilities)
        routes = decompose_flow_into_routes(graph, sol.edge_flows)
        coverage = coverage_of_routes(
            graph, routes, weighted=True, n_patrols=milp.n_patrols
        )
        np.testing.assert_allclose(coverage, sol.coverage, atol=1e-4)
        # Per-weight scaling: K times the unit-strategy expected coverage.
        unit = coverage_of_routes(graph, routes, weighted=True, n_patrols=1)
        np.testing.assert_allclose(milp.n_patrols * unit, coverage, atol=1e-12)

    def test_weighted_coverage_uses_route_weights(self):
        """Regression: a half-weight route must contribute half its cells."""
        grid = Grid.rectangular(1, 3)
        graph = TimeUnrolledGraph(grid, source_cell=0, horizon=4)
        routes = [
            # weights deliberately not uniform
            PatrolRoute(cells=(0, 0, 0, 0), weight=0.75),
            PatrolRoute(cells=(0, 1, 1, 0), weight=0.25),
        ]
        coverage = coverage_of_routes(graph, routes, weighted=True)
        assert coverage[0] == pytest.approx(0.75 * 4 + 0.25 * 2)
        assert coverage[1] == pytest.approx(0.25 * 2)
        flat = coverage_of_routes(graph, routes, weighted=False)
        assert flat[0] == pytest.approx(4 + 2)

    def test_coverage_of_routes_validation(self):
        grid = Grid.rectangular(1, 3)
        graph = TimeUnrolledGraph(grid, source_cell=0, horizon=4)
        with pytest.raises(ConfigurationError):
            coverage_of_routes(graph, [], n_patrols=0)

    def test_bad_flow_shape(self):
        __, graph, __m, __u = make_instance()
        with pytest.raises(ConfigurationError):
            decompose_flow_into_routes(graph, np.zeros(3))

    def test_sample_routes_validation(self, rng):
        with pytest.raises(ConfigurationError):
            sample_routes([], 3, rng)
