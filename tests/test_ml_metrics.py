"""Tests for repro.ml.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError
from repro.ml import (
    average_precision_score,
    brier_score,
    confusion_counts,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)


class TestAUC:
    def test_perfect_ranking(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, s) == 1.0

    def test_inverted_ranking(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, s) == 0.0

    def test_random_scores_near_half(self, rng):
        y = rng.integers(0, 2, size=5000)
        s = rng.random(5000)
        assert abs(roc_auc_score(y, s) - 0.5) < 0.03

    def test_all_tied_scores_give_half(self):
        y = np.array([0, 1, 0, 1])
        s = np.full(4, 0.5)
        assert roc_auc_score(y, s) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(DataError):
            roc_auc_score(np.zeros(5, dtype=int), np.linspace(0, 1, 5))

    def test_length_mismatch_raises(self):
        with pytest.raises(DataError):
            roc_auc_score(np.array([0, 1]), np.array([0.5]))

    def test_matches_pairwise_definition(self, rng):
        """AUC equals P(score_pos > score_neg) + 0.5 P(tie), brute-forced."""
        y = rng.integers(0, 2, size=40)
        y[0], y[1] = 0, 1
        s = np.round(rng.random(40), 1)  # coarse grid to force ties
        pos = s[y == 1]
        neg = s[y == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        expected = (wins + 0.5 * ties) / (pos.size * neg.size)
        assert roc_auc_score(y, s) == pytest.approx(expected)


class TestROCCurve:
    def test_endpoints(self, rng):
        y = rng.integers(0, 2, size=50)
        y[:2] = [0, 1]
        s = rng.random(50)
        fpr, tpr, __ = roc_curve(y, s)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone(self, rng):
        y = rng.integers(0, 2, size=80)
        y[:2] = [0, 1]
        s = rng.random(80)
        fpr, tpr, __ = roc_curve(y, s)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_trapezoid_matches_auc(self, rng):
        y = rng.integers(0, 2, size=200)
        y[:2] = [0, 1]
        s = rng.random(200)
        fpr, tpr, __ = roc_curve(y, s)
        assert np.trapezoid(tpr, fpr) == pytest.approx(roc_auc_score(y, s))


class TestLogLoss:
    def test_perfect_predictions_near_zero(self):
        y = np.array([0, 1, 1])
        p = np.array([0.0, 1.0, 1.0])
        assert log_loss(y, p) < 1e-10

    def test_uniform_prediction_is_log2(self):
        y = np.array([0, 1])
        p = np.array([0.5, 0.5])
        assert log_loss(y, p) == pytest.approx(np.log(2))

    def test_confident_wrong_is_penalised(self):
        y = np.array([1])
        assert log_loss(y, np.array([0.01])) > log_loss(y, np.array([0.4]))


class TestBrier:
    def test_range(self, rng):
        y = rng.integers(0, 2, size=30)
        p = rng.random(30)
        assert 0.0 <= brier_score(y, p) <= 1.0

    def test_perfect_is_zero(self):
        y = np.array([0, 1])
        assert brier_score(y, y.astype(float)) == 0.0


class TestConfusionAndDerived:
    def test_counts(self):
        y = np.array([0, 0, 1, 1, 1])
        p = np.array([0, 1, 1, 1, 0])
        tn, fp, fn, tp = confusion_counts(y, p)
        assert (tn, fp, fn, tp) == (1, 1, 1, 2)

    def test_precision_recall_f1(self):
        y = np.array([0, 0, 1, 1, 1])
        p = np.array([0, 1, 1, 1, 0])
        assert precision_score(y, p) == pytest.approx(2 / 3)
        assert recall_score(y, p) == pytest.approx(2 / 3)
        assert f1_score(y, p) == pytest.approx(2 / 3)

    def test_zero_division_guards(self):
        y = np.array([0, 1])
        p = np.array([0, 0])
        assert precision_score(y, p) == 0.0
        assert f1_score(y, p) == 0.0

    def test_non_binary_pred_raises(self):
        with pytest.raises(DataError):
            confusion_counts(np.array([0, 1]), np.array([0, 2]))


class TestAveragePrecision:
    def test_perfect_is_one(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert average_precision_score(y, s) == pytest.approx(1.0)

    def test_no_positives_raises(self):
        with pytest.raises(DataError):
            average_precision_score(np.zeros(4, dtype=int), np.ones(4))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 99999))
def test_auc_invariant_under_monotone_transform(seed):
    """AUC is a rank statistic: strictly increasing transforms preserve it."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=60)
    y[0], y[1] = 0, 1
    s = rng.normal(size=60)
    original = roc_auc_score(y, s)
    transformed = roc_auc_score(y, np.exp(2.0 * s) + 3.0)
    assert transformed == pytest.approx(original)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 99999))
def test_auc_flip_symmetry(seed):
    """Negating scores maps AUC to 1 - AUC."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=60)
    y[0], y[1] = 0, 1
    s = rng.normal(size=60)
    assert roc_auc_score(y, -s) == pytest.approx(1.0 - roc_auc_score(y, s))
