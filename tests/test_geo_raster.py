"""Tests for repro.geo.raster."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.geo import Raster, fractal_noise, linear_feature_mask, smooth_field
from repro.geo.raster import scatter_points


class TestRaster:
    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            Raster("x", np.zeros(5))

    def test_normalized_range(self, rng):
        raster = Raster("noise", rng.normal(size=(6, 6)))
        norm = raster.normalized()
        assert norm.values.min() == pytest.approx(0.0)
        assert norm.values.max() == pytest.approx(1.0)

    def test_normalized_constant_is_zero(self):
        norm = Raster("flat", np.full((4, 4), 3.0)).normalized()
        np.testing.assert_allclose(norm.values, 0.0)


class TestFractalNoise:
    def test_range_and_shape(self, rng):
        noise = fractal_noise((20, 30), rng)
        assert noise.shape == (20, 30)
        assert noise.min() >= 0.0 and noise.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = fractal_noise((16, 16), np.random.default_rng(7))
        b = fractal_noise((16, 16), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = fractal_noise((16, 16), np.random.default_rng(1))
        b = fractal_noise((16, 16), np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_spatial_smoothness(self, rng):
        """Adjacent cells must correlate more than distant cells."""
        noise = fractal_noise((40, 40), rng, octaves=3)
        adjacent_diff = np.abs(np.diff(noise, axis=0)).mean()
        shuffled = noise.ravel().copy()
        np.random.default_rng(0).shuffle(shuffled)
        random_diff = np.abs(np.diff(shuffled)).mean()
        assert adjacent_diff < random_diff

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ConfigurationError):
            fractal_noise((8, 8), rng, octaves=0)
        with pytest.raises(ConfigurationError):
            fractal_noise((8, 8), rng, persistence=1.5)


class TestSmoothField:
    def test_range(self, rng):
        field = smooth_field((12, 18), rng)
        assert field.min() >= 0.0 and field.max() <= 1.0
        assert field.shape == (12, 18)


class TestLinearFeatures:
    def test_lines_touch_an_edge(self, rng):
        mask = linear_feature_mask((25, 25), rng, n_lines=3)
        assert mask.any()
        edges = np.concatenate([mask[0], mask[-1], mask[:, 0], mask[:, -1]])
        assert edges.any()

    def test_zero_lines_is_empty(self, rng):
        assert not linear_feature_mask((10, 10), rng, n_lines=0).any()

    def test_rejects_negative_lines(self, rng):
        with pytest.raises(ConfigurationError):
            linear_feature_mask((10, 10), rng, n_lines=-1)

    def test_lines_are_connected_walks(self, rng):
        """Each visited cell must have a visited queen-neighbour (no isolated dots)."""
        mask = linear_feature_mask((30, 30), rng, n_lines=1, wobble=0.5)
        rows, cols = np.nonzero(mask)
        if rows.size <= 1:
            return
        for r, c in zip(rows, cols):
            window = mask[max(0, r - 1): r + 2, max(0, c - 1): c + 2]
            assert window.sum() >= 2


class TestScatterPoints:
    def test_within_bounds(self, rng):
        pts = scatter_points((10, 20), rng, n_points=15, margin=2)
        assert pts.shape == (15, 2)
        assert (pts[:, 0] >= 2).all() and (pts[:, 0] < 8).all()
        assert (pts[:, 1] >= 2).all() and (pts[:, 1] < 18).all()

    def test_rejects_overlarge_margin(self, rng):
        with pytest.raises(ConfigurationError):
            scatter_points((6, 6), rng, n_points=2, margin=3)

    def test_rejects_negative_count(self, rng):
        with pytest.raises(ConfigurationError):
            scatter_points((6, 6), rng, n_points=-1)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), octaves=st.integers(1, 5))
def test_fractal_noise_always_in_unit_interval(seed, octaves):
    noise = fractal_noise((12, 12), np.random.default_rng(seed), octaves=octaves)
    assert np.isfinite(noise).all()
    assert noise.min() >= 0.0 and noise.max() <= 1.0
