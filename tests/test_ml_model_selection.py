"""Tests for repro.ml.model_selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.ml import KFold, StratifiedKFold, train_test_split


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.random((100, 3))
        y = rng.integers(0, 2, size=100)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, 0.25, rng=rng)
        assert X_tr.shape[0] + X_te.shape[0] == 100
        assert y_tr.shape[0] == X_tr.shape[0]
        assert 15 <= X_te.shape[0] <= 35

    def test_stratified_keeps_both_classes(self, rng):
        X = rng.random((200, 2))
        y = np.r_[np.ones(6, dtype=int), np.zeros(194, dtype=int)]
        __, __, y_tr, y_te = train_test_split(X, y, 0.3, rng=rng, stratify=True)
        assert y_tr.sum() >= 1 and y_te.sum() >= 1

    def test_rejects_bad_fraction(self, rng):
        X = np.zeros((10, 1))
        y = np.zeros(10, dtype=int)
        with pytest.raises(ConfigurationError):
            train_test_split(X, y, 0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            train_test_split(X, y, 1.0, rng=rng)

    def test_rejects_length_mismatch(self, rng):
        with pytest.raises(DataError):
            train_test_split(np.zeros((5, 1)), np.zeros(4), 0.5, rng=rng)

    def test_partition_is_disjoint_and_complete(self, rng):
        X = np.arange(50, dtype=float).reshape(50, 1)
        y = rng.integers(0, 2, size=50)
        X_tr, X_te, __, __ = train_test_split(X, y, 0.2, rng=rng, stratify=False)
        combined = np.sort(np.r_[X_tr.ravel(), X_te.ravel()])
        np.testing.assert_array_equal(combined, np.arange(50))


class TestKFold:
    def test_folds_partition_indices(self, rng):
        kf = KFold(n_splits=4, rng=rng)
        seen = []
        for train, test in kf.split(22):
            assert np.intersect1d(train, test).size == 0
            assert train.size + test.size == 22
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(22))

    def test_rejects_tiny_data(self, rng):
        with pytest.raises(DataError):
            list(KFold(5, rng=rng).split(3))

    def test_rejects_bad_splits(self):
        with pytest.raises(ConfigurationError):
            KFold(n_splits=1)

    def test_no_shuffle_is_contiguous(self):
        kf = KFold(n_splits=2, shuffle=False)
        (train, test), __ = list(kf.split(10))
        np.testing.assert_array_equal(test, np.arange(5))


class TestStratifiedKFold:
    def test_every_fold_gets_positives(self, rng):
        y = np.r_[np.ones(10, dtype=int), np.zeros(90, dtype=int)]
        skf = StratifiedKFold(n_splits=5, rng=rng)
        for train, test in skf.split(y):
            assert y[test].sum() == 2
            assert y[train].sum() == 8

    def test_partition(self, rng):
        y = rng.integers(0, 2, size=37)
        seen = []
        for train, test in StratifiedKFold(4, rng=rng).split(y):
            assert np.intersect1d(train, test).size == 0
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(37))

    def test_rare_positive_distributed(self, rng):
        """With fewer positives than folds, some folds lack them but none crash."""
        y = np.r_[np.ones(2, dtype=int), np.zeros(48, dtype=int)]
        folds = list(StratifiedKFold(5, rng=rng).split(y))
        assert len(folds) == 5
        total_pos_in_test = sum(int(y[test].sum()) for __, test in folds)
        assert total_pos_in_test == 2

    def test_rejects_2d_labels(self, rng):
        with pytest.raises(DataError):
            list(StratifiedKFold(2, rng=rng).split(np.zeros((4, 2))))
