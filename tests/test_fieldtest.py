"""Tests for repro.fieldtest."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MFNP, PoacherModel, SyntheticPark, generate_dataset
from repro.exceptions import ConfigurationError, DataError
from repro.fieldtest import (
    FieldTrialResult,
    GroupOutcome,
    RiskGroup,
    chi_squared_test,
    design_field_test,
    field_test_table,
    run_field_trial,
)

PROFILE = MFNP.scaled(0.8)


@pytest.fixture(scope="module")
def park_data():
    return generate_dataset(PROFILE, seed=0)


@pytest.fixture(scope="module")
def design(park_data):
    rng = np.random.default_rng(5)
    # Ground-truth risk as the "prediction" isolates the protocol logic.
    risk = park_data.poachers.attack_probability(0)
    historical = park_data.recorded_effort.sum(axis=0)
    return design_field_test(
        park_data.park.grid, risk, historical, blocks_per_group=4, rng=rng
    )


class TestDesign:
    def test_blocks_per_group(self, design):
        for group in RiskGroup:
            assert len(design.blocks[group]) == 4

    def test_blocks_disjoint(self, design):
        all_cells = np.concatenate(
            [c for group in RiskGroup for c in design.blocks[group]]
        )
        assert np.unique(all_cells).size == all_cells.size

    def test_blocks_are_neighbourhoods(self, design, park_data):
        grid = park_data.park.grid
        for group in RiskGroup:
            for center, cells in zip(design.centers[group], design.blocks[group]):
                crow, ccol = grid.cell_rc(center)
                for cid in cells:
                    row, col = grid.cell_rc(int(cid))
                    assert abs(row - crow) <= design.block_radius
                    assert abs(col - ccol) <= design.block_radius

    def test_high_risk_blocks_are_riskier(self, design, park_data):
        risk = park_data.poachers.attack_probability(0)
        high = risk[design.cells_of(RiskGroup.HIGH)].mean()
        low = risk[design.cells_of(RiskGroup.LOW)].mean()
        assert high > low

    def test_respects_effort_cap(self, park_data):
        """All selected block centres lie in under-patrolled territory."""
        from repro.geo.convolve import box_filter

        rng = np.random.default_rng(6)
        risk = park_data.poachers.attack_probability(0)
        historical = park_data.recorded_effort.sum(axis=0)
        design = design_field_test(
            park_data.park.grid, risk, historical, blocks_per_group=3, rng=rng
        )
        grid = park_data.park.grid
        block_effort = grid.raster_to_vector(
            box_filter(grid.vector_to_raster(historical), radius=1)
        )
        cap = np.percentile(block_effort, 50.0)
        for group in RiskGroup:
            for center in design.centers[group]:
                assert block_effort[center] <= cap + 1e-9

    def test_validation(self, park_data):
        grid = park_data.park.grid
        ok = np.zeros(grid.n_cells)
        with pytest.raises(ConfigurationError):
            design_field_test(grid, ok, ok, blocks_per_group=0)
        with pytest.raises(DataError):
            design_field_test(grid, np.zeros(3), ok)

    def test_impossible_placement_raises(self):
        data = generate_dataset(MFNP.scaled(0.3), seed=1)
        risk = data.poachers.attack_probability(0)
        hist = data.recorded_effort.sum(axis=0)
        with pytest.raises(DataError):
            design_field_test(
                data.park.grid, risk, hist, blocks_per_group=20,
                rng=np.random.default_rng(0),
            )


class TestTrial:
    def test_counts_consistent(self, design, park_data, rng):
        trial = run_field_trial(design, park_data.poachers, rng, n_periods=2)
        for outcome in trial.ordered():
            assert outcome.n_observations <= outcome.n_cells_patrolled
            assert outcome.effort_km >= 0
            assert 0.0 <= outcome.obs_per_cell <= 1.0

    def test_high_risk_detects_more_on_average(self, design, park_data):
        """The Table III signature, averaged over trial seeds."""
        high_rates, low_rates = [], []
        for seed in range(8):
            trial = run_field_trial(
                design, park_data.poachers, np.random.default_rng(seed),
                n_periods=2,
            )
            high_rates.append(trial.outcomes[RiskGroup.HIGH].obs_per_cell)
            low_rates.append(trial.outcomes[RiskGroup.LOW].obs_per_cell)
        assert np.mean(high_rates) > np.mean(low_rates)

    def test_validation(self, design, park_data, rng):
        with pytest.raises(ConfigurationError):
            run_field_trial(design, park_data.poachers, rng, n_periods=0)
        with pytest.raises(ConfigurationError):
            run_field_trial(design, park_data.poachers, rng, mean_cell_effort=0)
        with pytest.raises(ConfigurationError):
            run_field_trial(design, park_data.poachers, rng, patrol_coverage=0)


class TestAnalysis:
    def make_result(self, obs, cells):
        outcomes = {}
        for group, o, c in zip(RiskGroup, obs, cells):
            outcomes[group] = GroupOutcome(
                group=group, n_observations=o, n_cells_patrolled=c, effort_km=10.0
            )
        return FieldTrialResult(outcomes=outcomes, n_periods=1)

    def test_strong_gradient_is_significant(self):
        result = self.make_result([20, 5, 0], [40, 40, 40])
        __, p = chi_squared_test(result)
        assert p < 0.01

    def test_flat_rates_not_significant(self):
        result = self.make_result([5, 5, 5], [40, 40, 40])
        __, p = chi_squared_test(result)
        assert p > 0.5

    def test_no_observations_degenerate(self):
        result = self.make_result([0, 0, 0], [40, 40, 40])
        stat, p = chi_squared_test(result)
        assert p == 1.0 and stat == 0.0

    def test_inconsistent_counts_raise(self):
        result = self.make_result([50, 0, 0], [40, 40, 40])
        with pytest.raises(DataError):
            chi_squared_test(result)

    def test_table_rendering(self):
        result = self.make_result([6, 3, 1], [20, 25, 22])
        text = field_test_table({"trial 1": result})
        assert "High" in text and "Low" in text
        assert "p=" in text
        assert "0.30" in text  # 6/20
