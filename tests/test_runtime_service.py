"""Tests for the serving layer: batched inference, parallel fitting, caching.

Three contracts:

* ``effort_response(batched=True)`` matches the per-level reference loop to
  floating-point reduction order (the batched path is the default);
* any ``n_jobs`` produces a bit-identical model (seeds are pre-drawn
  serially before the thread fan-out);
* :class:`RiskMapService` caches repeated queries and protects its cache
  from caller mutation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.exceptions import ConfigurationError, NotFittedError
from repro.ml import (
    BaggingClassifier,
    DecisionTreeClassifier,
    GaussianProcessClassifier,
)
from repro.runtime import RiskMapService, parallel_map, resolve_n_jobs

from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def park_split():
    data = generate_dataset(MFNP.scaled(0.4), seed=0)
    return data.dataset.split_by_test_year(4)


@pytest.fixture(scope="module")
def fitted_gpb(park_split):
    return PawsPredictor(
        model="gpb", iware=True, n_classifiers=4, n_estimators=2, seed=3
    ).fit(park_split.train)


# ---------------------------------------------------------------------------
# parallel_map plumbing
# ---------------------------------------------------------------------------
class TestParallelMap:
    def test_preserves_order(self):
        assert parallel_map(lambda x: x * x, range(20), n_jobs=4) == [
            x * x for x in range(20)
        ]

    def test_serial_fallbacks(self):
        assert parallel_map(lambda x: x + 1, [1, 2, 3], n_jobs=1) == [2, 3, 4]
        assert parallel_map(lambda x: x + 1, [], n_jobs=8) == []
        assert parallel_map(lambda x: x + 1, [5], n_jobs=8) == [6]

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(0)

    def test_exceptions_propagate(self):
        def boom(x):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2, 3], n_jobs=2)


# ---------------------------------------------------------------------------
# Single-pass prediction statistics
# ---------------------------------------------------------------------------
class TestPredictionStats:
    def test_gp_matches_separate_calls(self, rng):
        X, y = make_blobs(rng, n_per_class=40)
        gp = GaussianProcessClassifier(rng=np.random.default_rng(0)).fit(X, y)
        proba, var = gp.prediction_stats(X)
        np.testing.assert_array_equal(proba, gp.predict_proba(X))
        np.testing.assert_array_equal(var, gp.predict_variance(X))

    def test_bagging_matches_separate_calls(self, rng):
        X, y = make_blobs(rng, n_per_class=40)
        seed_rng = np.random.default_rng(2)
        factory = lambda: DecisionTreeClassifier(  # noqa: E731
            max_depth=4, rng=np.random.default_rng(int(seed_rng.integers(2**31)))
        )
        bag = BaggingClassifier(factory, n_estimators=4).fit(X, y)
        proba, var = bag.prediction_stats(X)
        np.testing.assert_array_equal(proba, bag.predict_proba(X))
        np.testing.assert_array_equal(var, bag.mean_member_variance(X))

    def test_gp_bagging_uses_intrinsic_variance(self, rng):
        X, y = make_blobs(rng, n_per_class=30)
        seed_rng = np.random.default_rng(2)
        factory = lambda: GaussianProcessClassifier(  # noqa: E731
            max_points=40, rng=np.random.default_rng(int(seed_rng.integers(2**31)))
        )
        bag = BaggingClassifier(factory, n_estimators=2).fit(X, y)
        proba, var = bag.prediction_stats(X)
        np.testing.assert_array_equal(proba, bag.predict_proba(X))
        np.testing.assert_array_equal(var, bag.mean_member_variance(X))
        assert bag.has_intrinsic_variance


# ---------------------------------------------------------------------------
# Batched effort response == per-level reference loop
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("model", ["svb", "dtb", "gpb"])
@pytest.mark.parametrize("iware", [True, False])
class TestBatchedEffortResponse:
    def test_matches_per_level_loop(self, park_split, model, iware):
        predictor = PawsPredictor(
            model=model, iware=iware, n_classifiers=4, n_estimators=2, seed=3
        ).fit(park_split.train)
        X = park_split.test.feature_matrix
        grid = np.linspace(0.0, 5.0, 7)
        risk_loop, nu_loop = predictor.effort_response(X, grid, batched=False)
        risk_batch, nu_batch = predictor.effort_response(X, grid, batched=True)
        np.testing.assert_allclose(risk_batch, risk_loop, atol=1e-12, rtol=0)
        np.testing.assert_allclose(nu_batch, nu_loop, atol=1e-12, rtol=0)
        # The zero-effort anchor survives the batched path.
        assert (risk_batch[:, 0] == 0.0).all()


# ---------------------------------------------------------------------------
# Parallel fitting is bit-identical to serial
# ---------------------------------------------------------------------------
class TestParallelFitIdentity:
    @pytest.mark.parametrize("model", ["dtb", "gpb"])
    def test_iware_predictor(self, park_split, model):
        serial = PawsPredictor(
            model=model, iware=True, n_classifiers=4, n_estimators=2, seed=3
        ).fit(park_split.train)
        parallel = PawsPredictor(
            model=model, iware=True, n_classifiers=4, n_estimators=2, seed=3,
            n_jobs=4,
        ).fit(park_split.train)
        X = park_split.test.feature_matrix
        np.testing.assert_array_equal(
            parallel.predict_proba(X), serial.predict_proba(X)
        )
        np.testing.assert_array_equal(
            parallel.predict_variance(X), serial.predict_variance(X)
        )

    def test_flat_predictor(self, park_split):
        serial = PawsPredictor(
            model="dtb", iware=False, n_estimators=3, seed=5
        ).fit(park_split.train)
        parallel = PawsPredictor(
            model="dtb", iware=False, n_estimators=3, seed=5, n_jobs=4
        ).fit(park_split.train)
        X = park_split.test.feature_matrix
        np.testing.assert_array_equal(
            parallel.predict_proba(X), serial.predict_proba(X)
        )

    def test_bagging_inbag_counts_identical(self, rng):
        X, y = make_blobs(rng, n_per_class=40)

        def build(n_jobs):
            seed_rng = np.random.default_rng(2)
            factory = lambda: DecisionTreeClassifier(  # noqa: E731
                max_depth=4,
                rng=np.random.default_rng(int(seed_rng.integers(2**31))),
            )
            return BaggingClassifier(
                factory, n_estimators=4, rng=np.random.default_rng(9),
                n_jobs=n_jobs,
            ).fit(X, y)

        serial, parallel = build(1), build(4)
        np.testing.assert_array_equal(parallel.inbag_counts_, serial.inbag_counts_)
        np.testing.assert_array_equal(
            parallel.predict_proba(X), serial.predict_proba(X)
        )


# ---------------------------------------------------------------------------
# RiskMapService caching
# ---------------------------------------------------------------------------
class TestRiskMapService:
    def test_requires_fitted_predictor(self):
        with pytest.raises(NotFittedError):
            RiskMapService(PawsPredictor())

    def test_rejects_non_predictor(self):
        with pytest.raises(ConfigurationError):
            RiskMapService(object())  # type: ignore[arg-type]

    def test_effort_response_cache_hit(self, fitted_gpb, park_split):
        service = RiskMapService(fitted_gpb)
        X = park_split.test.feature_matrix
        grid = np.linspace(0.0, 4.0, 5)
        first = service.effort_response(X, grid)
        second = service.effort_response(X, grid)
        info = service.cache_info()
        assert info["misses"] == 1 and info["hits"] == 1
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])
        direct_risk, direct_nu = fitted_gpb.effort_response(X, grid)
        np.testing.assert_array_equal(first[0], direct_risk)
        np.testing.assert_array_equal(first[1], direct_nu)

    def test_cache_immune_to_caller_mutation(self, fitted_gpb, park_split):
        service = RiskMapService(fitted_gpb)
        X = park_split.test.feature_matrix
        grid = np.linspace(0.0, 4.0, 5)
        risk, __ = service.effort_response(X, grid)
        risk[:] = -1.0
        fresh, __ = service.effort_response(X, grid)
        assert (fresh >= 0.0).all()

    def test_cache_hit_restores_uncertainty_scaler(self, fitted_gpb, park_split):
        service = RiskMapService(fitted_gpb)
        X = park_split.test.feature_matrix
        grid_a = np.linspace(0.0, 4.0, 5)
        grid_b = np.linspace(0.0, 6.0, 8)
        service.effort_response(X, grid_a)
        scaler_a = fitted_gpb.uncertainty_scaler
        service.effort_response(X, grid_b)
        assert fitted_gpb.uncertainty_scaler is not scaler_a
        service.effort_response(X, grid_a)  # cache hit
        assert fitted_gpb.uncertainty_scaler is scaler_a

    def test_distinct_queries_miss(self, fitted_gpb, park_split):
        service = RiskMapService(fitted_gpb)
        X = park_split.test.feature_matrix
        service.effort_response(X, np.linspace(0.0, 4.0, 5))
        service.effort_response(X, np.linspace(0.0, 4.0, 6))
        assert service.cache_info()["misses"] == 2

    def test_risk_map_effort_levels_cached_separately(self, fitted_gpb, park_split):
        service = RiskMapService(fitted_gpb)
        X = park_split.test.feature_matrix
        at_two = service.risk_map(X, effort=2.0)
        at_four = service.risk_map(X, effort=4.0)
        unconditional = service.risk_map(X)
        assert service.cache_info()["misses"] == 3
        assert at_two.shape == at_four.shape == unconditional.shape
        np.testing.assert_array_equal(
            service.risk_map(X, effort=2.0), at_two
        )
        assert service.cache_info()["hits"] == 1

    def test_lru_eviction(self, fitted_gpb, park_split):
        service = RiskMapService(fitted_gpb, max_entries=1)
        X = park_split.test.feature_matrix
        service.risk_map(X, effort=1.0)
        service.risk_map(X, effort=2.0)
        assert service.cache_info()["entries"] == 1
        service.risk_map(X, effort=1.0)  # evicted -> miss again
        assert service.cache_info()["misses"] == 3

    def test_save_and_from_saved(self, fitted_gpb, park_split, tmp_path):
        service = RiskMapService(fitted_gpb)
        service.save(tmp_path / "svc")
        restored = RiskMapService.from_saved(tmp_path / "svc")
        X = park_split.test.feature_matrix
        np.testing.assert_array_equal(
            restored.risk_map(X, effort=2.0), service.risk_map(X, effort=2.0)
        )

    def test_clear_cache(self, fitted_gpb, park_split):
        service = RiskMapService(fitted_gpb)
        X = park_split.test.feature_matrix
        service.risk_map(X, effort=1.0)
        service.clear_cache()
        assert service.cache_info()["entries"] == 0
