"""Tests for repro.ml.gp and repro.ml.kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.ml import GaussianProcessClassifier, RBFKernel, roc_auc_score
from repro.ml.kernels import MaternKernel
from tests.conftest import make_blobs


class TestRBFKernel:
    def test_self_covariance_is_variance(self, rng):
        kernel = RBFKernel(lengthscale=1.0, variance=2.0)
        X = rng.normal(size=(5, 3))
        K = kernel(X)
        np.testing.assert_allclose(np.diag(K), 2.0)

    def test_symmetry(self, rng):
        kernel = RBFKernel()
        X = rng.normal(size=(6, 2))
        K = kernel(X)
        np.testing.assert_allclose(K, K.T)

    def test_decay_with_distance(self):
        kernel = RBFKernel(lengthscale=1.0)
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[3.0]]))[0, 0]
        assert near > far

    def test_positive_semidefinite(self, rng):
        kernel = RBFKernel(lengthscale=0.7, variance=1.3)
        X = rng.normal(size=(20, 4))
        eigvals = np.linalg.eigvalsh(kernel(X))
        assert eigvals.min() > -1e-8

    def test_diag(self, rng):
        kernel = RBFKernel(variance=3.0)
        X = rng.normal(size=(7, 2))
        np.testing.assert_allclose(kernel.diag(X), 3.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ConfigurationError):
            RBFKernel()(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            RBFKernel(lengthscale=0.0)
        with pytest.raises(ConfigurationError):
            RBFKernel(variance=-1.0)


class TestMaternKernel:
    def test_psd_and_decay(self, rng):
        kernel = MaternKernel(lengthscale=1.0)
        X = rng.normal(size=(15, 3))
        eigvals = np.linalg.eigvalsh(kernel(X))
        assert eigvals.min() > -1e-8
        near = kernel(np.zeros((1, 1)), np.array([[0.1]]))[0, 0]
        far = kernel(np.zeros((1, 1)), np.array([[5.0]]))[0, 0]
        assert near > far


class TestGPClassifier:
    def test_separable_data(self, rng):
        X, y = make_blobs(rng, separation=3.0, spread=0.6)
        gp = GaussianProcessClassifier(rng=rng).fit(X, y)
        assert roc_auc_score(y, gp.predict_proba(X)) > 0.97

    def test_probabilities_in_unit_interval(self, rng):
        X, y = make_blobs(rng)
        gp = GaussianProcessClassifier(rng=rng).fit(X, y)
        p = gp.predict_proba(X)
        assert (p > 0).all() and (p < 1).all()

    def test_supports_variance_flag(self):
        assert GaussianProcessClassifier.supports_variance

    def test_variance_nonnegative(self, rng):
        X, y = make_blobs(rng)
        gp = GaussianProcessClassifier(rng=rng).fit(X, y)
        assert (gp.predict_variance(X) >= 0).all()

    def test_variance_higher_far_from_data(self, rng):
        """The core paper property: uncertainty grows away from observations."""
        X, y = make_blobs(rng, separation=2.0, spread=0.5)
        gp = GaussianProcessClassifier(rng=rng).fit(X, y)
        var_near = gp.predict_variance(X[:5]).mean()
        X_far = X[:5] + 100.0
        var_far = gp.predict_variance(X_far).mean()
        assert var_far > var_near

    def test_far_points_revert_to_uncertain_prob(self, rng):
        X, y = make_blobs(rng, separation=3.0)
        gp = GaussianProcessClassifier(rng=rng).fit(X, y)
        p_far = gp.predict_proba(np.full((1, X.shape[1]), 500.0))
        assert abs(p_far[0] - 0.5) < 0.15

    def test_max_points_subsampling(self, rng):
        X, y = make_blobs(rng, n_per_class=300)
        gp = GaussianProcessClassifier(max_points=100, rng=rng).fit(X, y)
        assert gp._X_train.shape[0] == 100
        assert roc_auc_score(y, gp.predict_proba(X)) > 0.9

    def test_custom_kernel(self, rng):
        X, y = make_blobs(rng)
        gp = GaussianProcessClassifier(
            kernel=RBFKernel(lengthscale=2.0), rng=rng
        ).fit(X, y)
        assert roc_auc_score(y, gp.predict_proba(X)) > 0.9

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GaussianProcessClassifier().predict_proba(np.zeros((1, 2)))

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            GaussianProcessClassifier(max_points=1)

    def test_deterministic_given_seed(self, rng):
        X, y = make_blobs(rng)
        p1 = GaussianProcessClassifier(rng=np.random.default_rng(5)).fit(X, y).predict_proba(X)
        p2 = GaussianProcessClassifier(rng=np.random.default_rng(5)).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(p1, p2)

    def test_prediction_variance_weak_anticorrelation(self, rng):
        """Fig. 7: GP variance is NOT a deterministic function of the mean.

        With bagged trees the correlation between prediction and variance is
        ~0.98; for GPs it should be far from a perfect correlation.
        """
        X, y = make_blobs(rng, n_per_class=80, spread=1.5)
        gp = GaussianProcessClassifier(rng=rng).fit(X, y)
        X_test = rng.normal(0.5, 2.0, size=(150, X.shape[1]))
        p = gp.predict_proba(X_test)
        v = gp.predict_variance(X_test)
        if p.std() > 1e-9 and v.std() > 1e-9:
            corr = np.corrcoef(p, v)[0, 1]
            assert abs(corr) < 0.9
