"""Tests for repro.analysis: the invariant analyzer and its rule suite.

Each rule is pinned by a caught-violation fixture and a clean fixture
(under ``tests/analysis_fixtures/``), the suppression-comment syntax and
the cross-file passes (RP003 dispatch resolution, RP005 twin/test
pairing) have dedicated cases, and a self-run pins ``src/repro`` — plus
the RP006 sweep over ``benchmarks``/``examples`` — at zero violations,
which is exactly the ``make lint`` / CI gate.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_CHECKERS,
    Finding,
    register_checker,
    rule_table,
    run_analysis,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.core import parse_suppressions
from repro.exceptions import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def analyze(*names, select=None, test_roots=()):
    """Run the full suite over fixture files, cross-file rules disabled
    unless ``test_roots`` is given."""
    paths = [FIXTURES / name for name in names]
    return run_analysis(
        paths, ALL_CHECKERS, select=select, test_roots=list(test_roots)
    )


def rules_of(result) -> set[str]:
    return {finding.rule for finding in result.findings}


# ---------------------------------------------------------------------------
# Per-rule fixtures: every rule catches its bad file and passes its good one
# ---------------------------------------------------------------------------

class TestRuleFixtures:
    def test_rp001_catches_global_rng_and_wall_clocks(self):
        result = analyze("rp001_bad.py")
        assert rules_of(result) == {"RP001"}
        messages = " ".join(f.message for f in result.findings)
        # both flavours of nondeterminism are caught, through import aliases
        assert "time.time" in messages
        assert "datetime.datetime.now" in messages
        assert "numpy.random.seed" in messages
        assert "numpy.random.normal" in messages  # via `import numpy.random as npr`
        assert "random.choice" in messages
        assert len(result.findings) == 7

    def test_rp001_allows_seeded_generators_and_perf_counter(self):
        assert analyze("rp001_good.py").ok

    def test_rp002_catches_bare_except_swallow_and_builtin_raise(self):
        result = analyze("rp002_bad.py")
        assert rules_of(result) == {"RP002"}
        messages = [f.message for f in result.findings]
        assert any("bare 'except:'" in m for m in messages)
        assert any("silently swallows" in m for m in messages)
        assert any("raise ValueError" in m for m in messages)
        assert len(result.findings) == 3

    def test_rp002_allows_reproerror_and_getattr_protocol(self):
        # includes a module __getattr__ raising AttributeError (mandated)
        assert analyze("rp002_good.py").ok

    def test_rp004_catches_unguarded_mutation_and_missing_lock(self):
        result = analyze("rp004_bad.py")
        assert rules_of(result) == {"RP004"}
        messages = " ".join(f.message for f in result.findings)
        assert "UnguardedCache._cache" in messages or "_cache" in messages
        assert "must assign self._lock" in messages
        # dict-store, augmented-assign, and mutator-call forms + missing lock
        assert len(result.findings) == 4

    def test_rp004_allows_locked_mutation_and_plain_classes(self):
        assert analyze("rp004_good.py").ok

    def test_rp006_catches_mutable_defaults_and_shadowing(self):
        result = analyze("rp006_bad.py")
        assert rules_of(result) == {"RP006"}
        messages = [f.message for f in result.findings]
        assert sum("mutable default" in m for m in messages) == 3
        assert sum("shadows the builtin" in m for m in messages) == 4
        assert all(f.severity == "warning" for f in result.findings)

    def test_rp006_allows_none_defaults_and_class_namespace(self):
        assert analyze("rp006_good.py").ok


# ---------------------------------------------------------------------------
# Cross-file passes
# ---------------------------------------------------------------------------

class TestCrossFile:
    def test_rp003_resolves_dispatch_across_files(self):
        result = analyze("rp003_tasks.py", "rp003_dispatch.py")
        assert rules_of(result) == {"RP003"}
        messages = " ".join(f.message for f in result.findings)
        assert "BadTask" in messages
        assert "GoodTask" not in messages  # plain state: clean
        assert "StrippedTask" not in messages  # __getstate__ strips: clean
        assert "lambda" in messages and "threading.Lock" in messages
        assert len(result.findings) == 2

    def test_rp003_needs_the_call_site(self):
        # without the dispatching file, nothing marks the classes as pooled
        assert analyze("rp003_tasks.py").ok

    def test_rp005_flags_untested_twin(self):
        result = run_analysis(
            [FIXTURES / "rp005_src"], ALL_CHECKERS,
            test_roots=[FIXTURES / "rp005_tests_missing"],
        )
        assert rules_of(result) == {"RP005"}
        assert "frobnicate_reference" in result.findings[0].message

    def test_rp005_satisfied_by_referencing_test(self):
        result = run_analysis(
            [FIXTURES / "rp005_src"], ALL_CHECKERS,
            test_roots=[FIXTURES / "rp005_tests_ok"],
        )
        assert result.ok

    def test_rp005_disabled_without_test_roots(self):
        result = run_analysis(
            [FIXTURES / "rp005_src"], ALL_CHECKERS, test_roots=[]
        )
        assert result.ok


# ---------------------------------------------------------------------------
# Suppressions, selection, reporting, registry
# ---------------------------------------------------------------------------

class TestFrameworkMechanics:
    def test_suppression_comments_silence_findings(self):
        result = analyze("suppressed.py")
        assert result.ok
        assert result.suppressed == 5

    def test_suppression_is_rule_specific(self):
        table = parse_suppressions(
            "x = 1  # repro: ignore[RP001, RP004]\ny = 2  # repro: ignore\n"
        )
        assert table[1] == {"RP001", "RP004"}
        finding = Finding("f.py", 1, 0, "RP006", "warning", "m")
        # RP006 is not named on line 1, so it would NOT be suppressed there
        assert "RP006" not in table[1]
        assert "*" in table[2]
        assert finding.rule == "RP006"

    def test_suppression_covers_decorated_def_headers(self, tmp_path):
        # A finding anchored on the `def` line must be silenced by a
        # suppression written on any line of the decorated header — the
        # decorator, the def itself, or a wrapped signature line.
        module = tmp_path / "decorated.py"
        module.write_text(textwrap.dedent("""\
            def registered(func):
                return func

            @registered  # repro: ignore[RP006]
            def list(items=None):
                return items

            @registered
            def dict(  # repro: ignore[RP006]
                items=None,
            ):
                return items
        """), encoding="utf-8")
        result = run_analysis([module], ALL_CHECKERS, test_roots=[])
        assert result.ok
        assert result.suppressed == 2
        assert result.suppressed_by_rule == {"RP006": 2}

    def test_header_suppression_does_not_leak_into_the_body(self, tmp_path):
        module = tmp_path / "leaky.py"
        module.write_text(textwrap.dedent("""\
            def wrap(func):
                return func

            @wrap  # repro: ignore[RP006]
            def fine():
                list = [1]  # the body shadow is NOT covered by the header
                return list
        """), encoding="utf-8")
        result = run_analysis([module], ALL_CHECKERS, test_roots=[])
        assert [f.rule for f in result.findings] == ["RP006"]
        assert result.findings[0].line == 6

    def test_select_runs_only_named_rules(self):
        result = analyze("rp001_bad.py", "rp006_bad.py", select=["RP006"])
        assert rules_of(result) == {"RP006"}

    def test_unknown_select_is_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze("rp001_bad.py", select=["RP999"])

    def test_findings_sorted_and_counts(self):
        result = analyze("rp001_bad.py", "rp002_bad.py")
        assert result.findings == sorted(result.findings)
        assert result.counts_by_rule() == {"RP001": 7, "RP002": 3}

    def test_duplicate_rule_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_checker(ALL_CHECKERS[0])

    def test_rule_table_lists_all_rules(self):
        rules = [row[0] for row in rule_table()]
        assert rules == [
            "RP001", "RP002", "RP003", "RP004", "RP005", "RP006",
            "RP007", "RP008", "RP009", "RP010", "RP011",
        ]


class TestCli:
    def test_exit_zero_on_clean_paths(self):
        out = io.StringIO()
        code = lint_main(
            [str(FIXTURES / "rp001_good.py"), "--test-root", str(FIXTURES)],
            out=out,
        )
        assert code == 0
        assert "0 violations" in out.getvalue()

    def test_exit_one_on_violations(self):
        out = io.StringIO()
        code = lint_main([str(FIXTURES / "rp001_bad.py")], out=out)
        assert code == 1
        assert "RP001" in out.getvalue()

    def test_exit_two_on_bad_invocation(self):
        out = io.StringIO()
        assert lint_main(["no/such/path.py"], out=out) == 2
        out = io.StringIO()
        assert lint_main(["--select", "RP999"], out=out) == 2

    def test_json_report_shape(self):
        out = io.StringIO()
        code = lint_main(
            [str(FIXTURES / "rp006_bad.py"), "--format", "json"], out=out
        )
        assert code == 1
        payload = json.loads(out.getvalue())
        assert payload["tool"] == "repro.analysis"
        assert payload["counts"]["RP006"] == 7
        assert {f["rule"] for f in payload["findings"]} == {"RP006"}
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "col", "rule", "severity", "message"}

    def test_list_rules(self):
        out = io.StringIO()
        assert lint_main(["--list-rules"], out=out) == 0
        text = out.getvalue()
        for rule in ("RP001", "RP002", "RP003", "RP004", "RP005", "RP006"):
            assert rule in text

    def test_rule_flag_filters_like_select(self):
        out = io.StringIO()
        code = lint_main(
            [str(FIXTURES / "rp001_bad.py"), str(FIXTURES / "rp006_bad.py"),
             "--rule", "RP006"],
            out=out,
        )
        assert code == 1
        assert "RP006" in out.getvalue()
        assert "RP001" not in out.getvalue()

    def test_json_reports_suppressions_by_rule(self):
        out = io.StringIO()
        code = lint_main(
            [str(FIXTURES / "suppressed.py"), "--format", "json"], out=out
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["suppressed"] == 5
        assert payload["suppressed_by_rule"]
        assert sum(payload["suppressed_by_rule"].values()) == 5

    def test_baseline_roundtrip_masks_known_findings_only(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        out = io.StringIO()
        code = lint_main(
            [str(FIXTURES / "rp001_bad.py"),
             "--write-baseline", str(baseline)],
            out=out,
        )
        assert code == 0
        assert "recorded 7 findings" in out.getvalue()
        # every recorded finding is masked: the gate passes
        out = io.StringIO()
        code = lint_main(
            [str(FIXTURES / "rp001_bad.py"), "--baseline", str(baseline)],
            out=out,
        )
        assert code == 0
        assert "7 baselined findings not counted" in out.getvalue()
        # a file with findings NOT in the baseline still fails
        out = io.StringIO()
        code = lint_main(
            [str(FIXTURES / "rp001_bad.py"), str(FIXTURES / "rp006_bad.py"),
             "--baseline", str(baseline)],
            out=out,
        )
        assert code == 1
        assert "RP006" in out.getvalue()
        assert "RP001" not in out.getvalue()  # old findings stay masked

    def test_unreadable_baseline_is_a_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"findings\": 7}", encoding="utf-8")
        out = io.StringIO()
        assert lint_main(
            [str(FIXTURES / "rp001_good.py"), "--baseline", str(bad)],
            out=out,
        ) == 2
        out = io.StringIO()
        assert lint_main(
            [str(FIXTURES / "rp001_good.py"),
             "--baseline", str(tmp_path / "missing.json")],
            out=out,
        ) == 2

    def test_repro_cli_lint_subcommand(self):
        from repro.cli import main as repro_main

        out = io.StringIO()
        code = repro_main(
            ["lint", str(FIXTURES / "rp002_bad.py")], out=out
        )
        assert code == 1
        assert "RP002" in out.getvalue()


# ---------------------------------------------------------------------------
# The gate itself: this repository is clean under its own analyzer
# ---------------------------------------------------------------------------

class TestSelfRun:
    def test_src_repro_is_violation_free(self):
        result = run_analysis(
            [REPO_ROOT / "src" / "repro"], ALL_CHECKERS,
            test_roots=[REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        )
        assert result.findings == []
        assert result.files_scanned > 70

    def test_benchmarks_examples_scripts_pass_hygiene(self):
        result = run_analysis(
            [REPO_ROOT / "benchmarks", REPO_ROOT / "examples",
             REPO_ROOT / "scripts"],
            ALL_CHECKERS, select=["RP001", "RP006"], test_roots=[],
        )
        assert result.findings == []

    def test_bad_fixture_corpus_fails_the_gate(self):
        # the acceptance criterion's negative control: a corpus full of
        # violations must exit non-zero through the real CLI
        out = io.StringIO()
        code = lint_main(
            [str(FIXTURES / name) for name in (
                "rp001_bad.py", "rp002_bad.py", "rp004_bad.py", "rp006_bad.py"
            )],
            out=out,
        )
        assert code == 1
