"""Tests for repro.geo.features."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.geo import FeatureSpec, FeatureStack, Grid


@pytest.fixture
def stack(small_grid, rng):
    return FeatureStack(small_grid)


class TestFeatureSpec:
    def test_valid_kinds(self):
        for kind in ("direct", "distance", "geodesic"):
            assert FeatureSpec("f", kind).kind == kind

    def test_invalid_kind(self):
        with pytest.raises(ConfigurationError):
            FeatureSpec("f", "banana")


class TestBuilders:
    def test_add_direct(self, stack, small_grid, rng):
        raster = rng.random(small_grid.shape)
        stack.add_direct("elevation", raster)
        assert stack.n_features == 1
        np.testing.assert_allclose(
            stack.column("elevation"), small_grid.raster_to_vector(raster)
        )

    def test_add_distance_zero_on_feature(self, stack, small_grid):
        mask = np.zeros(small_grid.shape, dtype=bool)
        mask[2, 2] = True
        stack.add_distance("dist_river", mask)
        cid = small_grid.cell_id(2, 2)
        assert stack.column("dist_river")[cid] == 0.0

    def test_add_distance_empty_mask_raises(self, stack, small_grid):
        with pytest.raises(DataError):
            stack.add_distance("d", np.zeros(small_grid.shape, dtype=bool))

    def test_add_geodesic(self, stack, small_grid):
        stack.add_geodesic("dist_post", np.array([0]))
        col = stack.column("dist_post")
        assert col[0] == 0.0
        assert np.isfinite(col).all()

    def test_boundary_distance_zero_on_edges(self, stack, small_grid):
        stack.add_boundary_distance()
        col = stack.column("dist_boundary")
        assert col[small_grid.cell_id(0, 0)] == 0.0
        interior = small_grid.cell_id(2, 3)
        assert col[interior] > 0.0

    def test_duplicate_name_rejected(self, stack, small_grid, rng):
        raster = rng.random(small_grid.shape)
        stack.add_direct("x", raster)
        with pytest.raises(ConfigurationError):
            stack.add_direct("x", raster)

    def test_nonfinite_direct_rejected(self, stack, small_grid):
        raster = np.full(small_grid.shape, np.nan)
        with pytest.raises(DataError):
            stack.add_direct("bad", raster)

    def test_chaining(self, stack, small_grid, rng):
        out = stack.add_direct("a", rng.random(small_grid.shape)).add_direct(
            "b", rng.random(small_grid.shape)
        )
        assert out is stack
        assert stack.names == ["a", "b"]


class TestMatrix:
    def test_matrix_shape_and_order(self, stack, small_grid, rng):
        ra = rng.random(small_grid.shape)
        rb = rng.random(small_grid.shape)
        stack.add_direct("a", ra).add_direct("b", rb)
        matrix = stack.matrix
        assert matrix.shape == (small_grid.n_cells, 2)
        np.testing.assert_allclose(matrix[:, 0], small_grid.raster_to_vector(ra))
        np.testing.assert_allclose(matrix[:, 1], small_grid.raster_to_vector(rb))

    def test_empty_stack_raises(self, stack):
        with pytest.raises(DataError):
            _ = stack.matrix

    def test_unknown_column_raises(self, stack, small_grid, rng):
        stack.add_direct("a", rng.random(small_grid.shape))
        with pytest.raises(ConfigurationError):
            stack.column("nope")

    def test_standardized_matrix_is_zscored(self, stack, small_grid, rng):
        stack.add_direct("a", rng.random(small_grid.shape) * 100 + 5)
        z = stack.standardized_matrix()
        assert abs(z[:, 0].mean()) < 1e-10
        assert z[:, 0].std() == pytest.approx(1.0)

    def test_standardized_constant_column_is_zero(self, stack, small_grid):
        stack.add_direct("const", np.full(small_grid.shape, 3.0))
        z = stack.standardized_matrix()
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_geodesic_unreachable_gets_finite_sentinel(self):
        # Two disconnected park components.
        mask = np.ones((3, 5), dtype=bool)
        mask[:, 2] = False
        grid = Grid(3, 5, mask=mask)
        stack = FeatureStack(grid)
        stack.add_geodesic("dist_post", np.array([grid.cell_id(0, 0)]))
        assert np.isfinite(stack.column("dist_post")).all()
