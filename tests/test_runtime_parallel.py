"""Tests for the thread/process fitting backends in repro.runtime.parallel.

The contract under test: any backend (serial, thread pool, process pool)
produces bit-identical models, because all shared randomness is drawn
serially in phase 1 of the two-phase fit protocol; and backend selection
("auto") routes GIL-bound work to processes while falling back safely on
anything unpicklable.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.core.ensemble import IWareEnsemble
from repro.data import MFNP, generate_dataset
from repro.exceptions import ConfigurationError
from repro.ml import DecisionTreeClassifier
from repro.ml.bagging import BaggingClassifier
from repro.ml.base import DeferredFit, PrefittedTask
from repro.runtime.parallel import (
    BACKENDS,
    check_backend,
    effective_cpu_count,
    parallel_map,
    preferred_backend,
    resolve_n_jobs,
    run_deferred,
)
from tests.conftest import make_blobs


def _square(x: int) -> int:
    return x * x


def _module_level_tree_factory() -> DecisionTreeClassifier:
    return DecisionTreeClassifier(max_depth=3, rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def tiny_dataset():
    """A small but realistic training dataset (half-scale MFNP park)."""
    data = generate_dataset(MFNP.scaled(0.5), seed=0)
    return data.dataset.split_by_test_year(4).train


class TestBackendsPlumbing:
    def test_check_backend_accepts_known(self):
        for backend in BACKENDS:
            assert check_backend(backend) == backend

    def test_check_backend_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            check_backend("greenlet")

    def test_effective_cpu_count_positive(self):
        assert effective_cpu_count() >= 1

    def test_parallel_map_rejects_auto(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, [1, 2], n_jobs=2, backend="auto")

    def test_parallel_map_process_backend(self):
        assert parallel_map(_square, range(8), n_jobs=4, backend="process") == [
            x * x for x in range(8)
        ]

    def test_parallel_map_thread_backend(self):
        assert parallel_map(_square, range(8), n_jobs=4, backend="thread") == [
            x * x for x in range(8)
        ]

    def test_resolve_n_jobs_unchanged(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(3) == 3
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(0)


class TestBackendHints:
    def test_tree_deferred_fit_hints_process(self, rng):
        X, y = make_blobs(rng)
        task = DecisionTreeClassifier(rng=rng).fit_deferred(X, y)
        assert isinstance(task, DeferredFit)
        assert task.backend_hint == "process"

    def test_prefitted_task_abstains_from_vote(self, rng):
        X, y = make_blobs(rng)
        model = DecisionTreeClassifier(rng=rng).fit(X, y)
        assert PrefittedTask(model).backend_hint == "any"

    def test_preferred_backend_requires_unanimity(self):
        class P:
            backend_hint = "process"

        class T:
            backend_hint = "thread"

        class A:
            backend_hint = "any"

        assert preferred_backend([P(), P()]) == "process"
        assert preferred_backend([P(), T()]) == "thread"
        # Trivial no-op tasks (prefitted fallbacks) do not get a vote, so
        # one degenerate threshold subset cannot drag a tree fan-out back
        # to threads.
        assert preferred_backend([P(), A()]) == "process"
        assert preferred_backend([A(), A()]) == "thread"
        assert preferred_backend([]) == "thread"

    def test_tree_bagging_phase2_hints_process(self, rng):
        X, y = make_blobs(rng)
        ensemble = BaggingClassifier(
            lambda: DecisionTreeClassifier(rng=np.random.default_rng(0)),
            n_estimators=3,
            rng=rng,
        )
        task = ensemble.fit_deferred(X, y)
        assert task.backend_hint == "process"

    def test_constant_fallback_member_does_not_poison_vote(self):
        """A single-class bootstrap's ConstantClassifier fallback abstains,
        so a tree bagging fit still routes to the process pool."""
        rng = np.random.default_rng(0)
        X = rng.random((30, 3))
        y = np.zeros(30, dtype=np.int64)
        y[:2] = 1  # tiny positive class: some bootstraps go single-class
        ensemble = BaggingClassifier(
            lambda: DecisionTreeClassifier(rng=np.random.default_rng(1)),
            n_estimators=30,
            rng=np.random.default_rng(5),
        )
        task = ensemble.fit_deferred(X, y)
        from repro.ml.base import ConstantClassifier

        members = [member for member, __, __ in task.tasks]
        assert any(isinstance(m, ConstantClassifier) for m in members)
        assert task.backend_hint == "process"

    def test_member_fits_auto_falls_back_on_unpicklable(self, rng, monkeypatch):
        """A bagging auto fit whose members cannot pickle (locally defined
        class) degrades to the thread pool instead of erroring, even on a
        multi-core machine (simulated via the cpu-count clamp)."""
        import repro.runtime.parallel as par

        monkeypatch.setattr(par, "effective_cpu_count", lambda: 4)

        class LocalTree(DecisionTreeClassifier):
            pass

        X, y = make_blobs(rng)
        ensemble = BaggingClassifier(
            lambda: LocalTree(max_depth=3, rng=np.random.default_rng(0)),
            n_estimators=3,
            rng=np.random.default_rng(1),
            n_jobs=4,
        )
        ensemble.fit(X, y)  # must not raise despite the process hint
        assert len(ensemble.estimators_) == 3

    def test_picklable_factory_survives_pickling(self, rng):
        """Ensembles with module-level factories stay refittable after
        pickling/deepcopy; only unpicklable closures are stripped."""
        import copy

        X, y = make_blobs(rng)
        ensemble = BaggingClassifier(
            _module_level_tree_factory, n_estimators=2,
            rng=np.random.default_rng(0),
        )
        clone = pickle.loads(pickle.dumps(ensemble))
        clone.fit(X, y)  # must not raise "cannot be refit"
        assert len(clone.estimators_) == 2
        copied = copy.deepcopy(ensemble)
        copied.fit(X, y)
        assert len(copied.estimators_) == 2

    def test_run_deferred_falls_back_on_unpicklable(self, rng):
        X, y = make_blobs(rng)
        fitted = DecisionTreeClassifier(rng=rng).fit(X, y)

        class Unpicklable:
            backend_hint = "process"

            def __init__(self):
                self.closure = lambda: fitted  # lambdas never pickle

            def __call__(self):
                return self.closure()

        tasks = [Unpicklable() for _ in range(4)]
        with pytest.raises(Exception):
            pickle.dumps(tasks)
        results = run_deferred(tasks, n_jobs=2, backend="auto")
        assert all(r is fitted for r in results)


class TestBitIdenticalAcrossBackends:
    def test_bagging_process_backend_bit_identical(self, rng):
        X, y = make_blobs(rng, n_per_class=60)

        def factory(seed):
            master = np.random.default_rng(seed)

            def base():
                child = np.random.default_rng(int(master.integers(2**31 - 1)))
                return DecisionTreeClassifier(
                    max_depth=6, max_features="sqrt", rng=child
                )

            return base

        serial = BaggingClassifier(
            factory(7), n_estimators=4, rng=np.random.default_rng(1), n_jobs=1
        ).fit(X, y)
        pooled = BaggingClassifier(
            factory(7),
            n_estimators=4,
            rng=np.random.default_rng(1),
            n_jobs=4,
            backend="process",
        ).fit(X, y)
        np.testing.assert_array_equal(
            serial.predict_proba(X), pooled.predict_proba(X)
        )
        np.testing.assert_array_equal(serial.inbag_counts_, pooled.inbag_counts_)

    def test_dtb_predictor_process_backend_bit_identical(self, tiny_dataset):
        serial = PawsPredictor(
            model="dtb", iware=True, n_classifiers=3, n_estimators=2, seed=5,
            n_jobs=1,
        ).fit(tiny_dataset)
        pooled = PawsPredictor(
            model="dtb", iware=True, n_classifiers=3, n_estimators=2, seed=5,
            n_jobs=2, backend="process",
        ).fit(tiny_dataset)
        X = tiny_dataset.feature_matrix
        np.testing.assert_array_equal(
            serial.predict_proba(X), pooled.predict_proba(X)
        )

    def test_iware_auto_backend_bit_identical(self, tiny_dataset):
        def factory_for(seed):
            master = np.random.default_rng(seed)

            def weak():
                child = np.random.default_rng(int(master.integers(2**31 - 1)))
                return DecisionTreeClassifier(max_depth=5, rng=child)

            return weak

        serial = IWareEnsemble(
            factory_for(3), n_classifiers=3, rng=np.random.default_rng(0),
            n_jobs=1,
        ).fit(tiny_dataset)
        auto = IWareEnsemble(
            factory_for(3), n_classifiers=3, rng=np.random.default_rng(0),
            n_jobs=2, backend="auto",
        ).fit(tiny_dataset)
        X = tiny_dataset.feature_matrix
        np.testing.assert_array_equal(
            serial.predict_proba(X), auto.predict_proba(X)
        )


class TestPredictorBackendConfig:
    def test_backend_validated(self):
        with pytest.raises(ConfigurationError):
            PawsPredictor(backend="gevent")

    def test_backend_persisted_in_manifest(self, tiny_dataset, tmp_path):
        fitted = PawsPredictor(
            model="dtb", iware=False, n_estimators=2, seed=0,
            backend="process",
        ).fit(tiny_dataset)
        fitted.save(tmp_path / "model")
        loaded = PawsPredictor.load(tmp_path / "model")
        assert loaded.backend == "process"
        X = tiny_dataset.feature_matrix
        np.testing.assert_array_equal(
            fitted.predict_proba(X), loaded.predict_proba(X)
        )
