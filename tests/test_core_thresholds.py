"""Tests for repro.core.thresholds, filtering, and weights."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    equal_spaced_thresholds,
    filter_by_effort_threshold,
    optimize_ensemble_weights,
    percentile_thresholds,
)
from repro.core.filtering import filtered_sizes
from repro.core.weights import ensemble_log_loss
from repro.data.dataset import PoachingDataset
from repro.exceptions import ConfigurationError, DataError


def make_dataset(effort, labels):
    n = len(effort)
    return PoachingDataset(
        static_features=np.arange(n, dtype=float).reshape(-1, 1),
        prev_effort=np.zeros(n),
        current_effort=np.asarray(effort, dtype=float),
        labels=np.asarray(labels, dtype=int),
        period=np.full(n, 4),
        cell=np.arange(n),
        periods_per_year=4,
    )


class TestPercentileThresholds:
    def test_first_threshold_is_zero(self, rng):
        thresholds = percentile_thresholds(rng.random(100) * 5, 10)
        assert thresholds[0] == 0.0

    def test_strictly_increasing(self, rng):
        thresholds = percentile_thresholds(rng.random(500) * 5, 15)
        assert (np.diff(thresholds) > 0).all()

    def test_collapses_ties(self):
        effort = np.array([1.0] * 50 + [2.0] * 50)
        thresholds = percentile_thresholds(effort, 10)
        # Ten requested classifiers collapse to the few distinct percentile
        # values of a two-level effort distribution (plus interpolants).
        assert len(thresholds) < 10
        assert len(np.unique(thresholds)) == len(thresholds)

    def test_single_classifier(self, rng):
        thresholds = percentile_thresholds(rng.random(20), 1)
        np.testing.assert_array_equal(thresholds, [0.0])

    def test_consistent_subset_sizes(self, rng):
        """The enhancement's purpose: near-equal training-data decrements."""
        effort = rng.exponential(2.0, size=2000)
        thresholds = percentile_thresholds(effort, 5)
        counts = [(effort >= t).sum() for t in thresholds]
        decrements = -np.diff(counts)
        assert decrements.max() < 2 * 2000 / 5

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            percentile_thresholds(rng.random(10), 0)
        with pytest.raises(DataError):
            percentile_thresholds(np.array([]), 5)
        with pytest.raises(DataError):
            percentile_thresholds(np.array([-1.0, 2.0]), 5)


class TestEqualThresholds:
    def test_spacing(self):
        thresholds = equal_spaced_thresholds(0.0, 7.5, 16)
        assert len(thresholds) == 16
        np.testing.assert_allclose(np.diff(thresholds), 0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            equal_spaced_thresholds(2.0, 1.0, 5)
        with pytest.raises(ConfigurationError):
            equal_spaced_thresholds(0.0, 5.0, 0)


class TestFiltering:
    def test_keeps_all_positives(self):
        ds = make_dataset([0.1, 0.2, 5.0, 0.3], [1, 0, 0, 1])
        filtered = filter_by_effort_threshold(ds, 1.0)
        assert filtered.labels.sum() == 2
        assert filtered.n_points == 3  # 2 positives + 1 reliable negative

    def test_threshold_zero_keeps_everything(self):
        ds = make_dataset([0.1, 0.2, 5.0], [0, 0, 1])
        assert filter_by_effort_threshold(ds, 0.0).n_points == 3

    def test_monotone_in_threshold(self, rng):
        ds = make_dataset(rng.random(200) * 5, rng.integers(0, 2, 200))
        sizes = [
            filter_by_effort_threshold(ds, t).n_points for t in (0.0, 1.0, 2.0, 4.0)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_negative_threshold_rejected(self):
        ds = make_dataset([1.0], [1])
        with pytest.raises(ConfigurationError):
            filter_by_effort_threshold(ds, -0.5)

    def test_filtered_sizes_diagnostic(self, rng):
        ds = make_dataset(rng.random(50) * 3, rng.integers(0, 2, 50))
        rows = filtered_sizes(ds, np.array([0.0, 1.0]))
        assert len(rows) == 2
        n_pos = int(ds.labels.sum())
        assert all(r[2] == n_pos for r in rows)


class TestWeightOptimisation:
    def test_prefers_the_informative_classifier(self, rng):
        y = rng.integers(0, 2, size=400)
        good = np.clip(0.8 * y + 0.1 + rng.normal(0, 0.05, 400), 0.01, 0.99)
        noise = np.clip(rng.random(400), 0.01, 0.99)
        weights = optimize_ensemble_weights(np.stack([good, noise]), y)
        assert weights[0] > 0.9

    def test_weights_on_simplex(self, rng):
        y = rng.integers(0, 2, size=100)
        probs = rng.random((5, 100))
        weights = optimize_ensemble_weights(probs, y)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights >= 0).all()

    def test_single_classifier_shortcut(self, rng):
        weights = optimize_ensemble_weights(rng.random((1, 30)), rng.integers(0, 2, 30))
        np.testing.assert_array_equal(weights, [1.0])

    def test_beats_uniform(self, rng):
        y = rng.integers(0, 2, size=300)
        good = np.clip(0.9 * y + 0.05 + rng.normal(0, 0.03, 300), 0.01, 0.99)
        bad = np.clip(1 - y * 0.8 + rng.normal(0, 0.1, 300), 0.01, 0.99)
        probs = np.stack([good, bad])
        weights = optimize_ensemble_weights(probs, y)
        uniform = np.array([0.5, 0.5])
        assert ensemble_log_loss(weights, probs, y) <= ensemble_log_loss(
            uniform, probs, y
        )

    def test_shape_validation(self, rng):
        with pytest.raises(DataError):
            optimize_ensemble_weights(rng.random(10), rng.integers(0, 2, 10))
        with pytest.raises(DataError):
            optimize_ensemble_weights(rng.random((2, 10)), rng.integers(0, 2, 9))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 9999), n_classifiers=st.integers(2, 12))
def test_percentile_thresholds_cover_effort_range(seed, n_classifiers):
    rng = np.random.default_rng(seed)
    effort = rng.exponential(2.0, size=300)
    thresholds = percentile_thresholds(effort, n_classifiers)
    assert thresholds[0] == 0.0
    assert thresholds[-1] <= effort.max()
    assert len(thresholds) <= n_classifiers
