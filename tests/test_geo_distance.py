"""Tests for repro.geo.distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.geo import Grid, chamfer_distance, geodesic_distance
from repro.geo.distance import (
    chamfer_distance_reference,
    geodesic_distance_reference,
)


class TestChamfer:
    def test_feature_cells_are_zero(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[3, 4] = True
        dist = chamfer_distance(mask)
        assert dist[3, 4] == 0.0

    def test_orthogonal_steps_cost_one(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        dist = chamfer_distance(mask)
        assert dist[4, 6] == pytest.approx(2.0)
        assert dist[1, 4] == pytest.approx(3.0)

    def test_diagonal_approximates_euclidean(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        dist = chamfer_distance(mask)
        # Exact Euclidean would be sqrt(2) ~ 1.414; chamfer 3-4 gives 1.35.
        assert dist[5, 5] == pytest.approx(1.35, abs=0.01)

    def test_cell_km_scales(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        d1 = chamfer_distance(mask, cell_km=1.0)
        d2 = chamfer_distance(mask, cell_km=2.5)
        np.testing.assert_allclose(d2, 2.5 * d1)

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            chamfer_distance(np.zeros(4, dtype=bool))

    def test_multiple_sources_take_nearest(self):
        mask = np.zeros((5, 11), dtype=bool)
        mask[2, 0] = True
        mask[2, 10] = True
        dist = chamfer_distance(mask)
        assert dist[2, 2] == pytest.approx(2.0)
        assert dist[2, 8] == pytest.approx(2.0)

    def test_monotone_from_source(self):
        """Distance never decreases moving straight away from a lone source."""
        mask = np.zeros((12, 12), dtype=bool)
        mask[0, 0] = True
        dist = chamfer_distance(mask)
        row = dist[0, :]
        assert (np.diff(row) >= 0).all()


class TestGeodesic:
    def test_open_grid_matches_manhattan(self):
        grid = Grid.rectangular(5, 5)
        src = grid.cell_id(0, 0)
        dist = geodesic_distance(grid, [src])
        assert dist[grid.cell_id(4, 4)] == pytest.approx(8.0)
        assert dist[grid.cell_id(0, 3)] == pytest.approx(3.0)

    def test_routes_around_holes(self):
        # A wall of off-park cells splits the park except for one gap.
        mask = np.ones((5, 5), dtype=bool)
        mask[0:4, 2] = False
        grid = Grid(5, 5, mask=mask)
        src = grid.cell_id(0, 0)
        dist = geodesic_distance(grid, [src])
        # (0, 4) is reachable only through the bottom-row gap at (4, 2).
        straight_line = 4.0
        assert dist[grid.cell_id(0, 4)] > straight_line

    def test_multiple_sources(self):
        grid = Grid.rectangular(3, 9)
        sources = [grid.cell_id(1, 0), grid.cell_id(1, 8)]
        dist = geodesic_distance(grid, sources)
        assert dist[grid.cell_id(1, 4)] == pytest.approx(4.0)

    def test_rejects_empty_sources(self):
        grid = Grid.rectangular(3, 3)
        with pytest.raises(ConfigurationError):
            geodesic_distance(grid, [])

    def test_rejects_bad_source(self):
        grid = Grid.rectangular(3, 3)
        with pytest.raises(ConfigurationError):
            geodesic_distance(grid, [99])

    def test_triangle_inequality_to_neighbors(self):
        grid = Grid.elliptical(9, 9)
        dist = geodesic_distance(grid, [0])
        for cid in range(grid.n_cells):
            for nid in grid.neighbors(cid):
                assert abs(dist[cid] - dist[nid]) <= grid.cell_km + 1e-9


class TestReferenceEquivalence:
    """The vectorised transforms are bit-identical to the original per-cell
    implementations — the golden contract of the O(n) rewrite."""

    def test_chamfer_matches_reference_on_random_masks(self):
        rng = np.random.default_rng(0)
        for trial in range(15):
            h, w = rng.integers(2, 50, size=2)
            mask = rng.random((h, w)) < rng.uniform(0.01, 0.3)
            if not mask.any():
                mask[rng.integers(h), rng.integers(w)] = True
            cell_km = float(rng.choice([1.0, 0.5, 2.5]))
            np.testing.assert_array_equal(
                chamfer_distance(mask, cell_km),
                chamfer_distance_reference(mask, cell_km),
            )

    def test_chamfer_matches_reference_on_empty_and_full_masks(self):
        empty = np.zeros((7, 9), dtype=bool)
        np.testing.assert_array_equal(
            chamfer_distance(empty), chamfer_distance_reference(empty)
        )
        full = np.ones((7, 9), dtype=bool)
        np.testing.assert_array_equal(
            chamfer_distance(full), chamfer_distance_reference(full)
        )

    def test_chamfer_matches_reference_on_degenerate_shapes(self):
        for shape in [(1, 12), (12, 1), (1, 1), (2, 2)]:
            rng = np.random.default_rng(sum(shape))
            mask = rng.random(shape) < 0.2
            mask.flat[0] = True
            np.testing.assert_array_equal(
                chamfer_distance(mask), chamfer_distance_reference(mask)
            )

    def test_geodesic_matches_reference_on_masked_grids_with_holes(self):
        rng = np.random.default_rng(1)
        for trial in range(12):
            h, w = map(int, rng.integers(3, 30, size=2))
            mask = rng.random((h, w)) < 0.75  # plenty of holes/pockets
            if not mask.any():
                mask[0, 0] = True
            grid = Grid(h, w, cell_km=float(rng.choice([1.0, 0.7])), mask=mask)
            n_src = int(rng.integers(1, min(4, grid.n_cells) + 1))
            sources = rng.choice(grid.n_cells, size=n_src, replace=False)
            np.testing.assert_array_equal(
                geodesic_distance(grid, sources),
                geodesic_distance_reference(grid, sources),
            )

    def test_geodesic_unreachable_pockets_stay_inf(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[2, :] = False  # wall splits the park in two
        grid = Grid(5, 5, mask=mask)
        dist = geodesic_distance(grid, [grid.cell_id(0, 0)])
        ref = geodesic_distance_reference(grid, [grid.cell_id(0, 0)])
        np.testing.assert_array_equal(dist, ref)
        assert np.isinf(dist[grid.cell_id(4, 4)])

    def test_geodesic_fractional_cell_km_accumulates_identically(self):
        # Repeated addition of a non-representable step (0.3) is where a
        # level*step formulation would drift; the BFS must accumulate.
        grid = Grid.rectangular(3, 40, cell_km=0.3)
        np.testing.assert_array_equal(
            geodesic_distance(grid, [0]), geodesic_distance_reference(grid, [0])
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 9999))
def test_chamfer_close_to_euclidean(seed):
    """Chamfer 3-4 distance stays within ~10% of exact Euclidean distance."""
    rng = np.random.default_rng(seed)
    mask = np.zeros((15, 15), dtype=bool)
    r0, c0 = rng.integers(0, 15, size=2)
    mask[r0, c0] = True
    dist = chamfer_distance(mask)
    rows, cols = np.mgrid[0:15, 0:15]
    exact = np.sqrt((rows - r0) ** 2 + (cols - c0) ** 2)
    nonzero = exact > 0
    rel_err = np.abs(dist[nonzero] - exact[nonzero]) / exact[nonzero]
    assert rel_err.max() < 0.10
