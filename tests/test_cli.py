"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv: list[str]) -> tuple[int, str]:
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_park_profile_fails_cleanly(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_cli(["stats", "--park", "yellowstone"])

    def test_model_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--model", "xgboost"])


class TestStats:
    def test_reports_table(self):
        code, text = run_cli(["stats", "--park", "MFNP", "--scale", "0.4"])
        assert code == 0
        assert "n_points" in text
        assert "percent_positive" in text
        assert "MFNP" in text


class TestMaps:
    def test_renders_two_maps(self):
        code, text = run_cli(["maps", "--park", "QENP", "--scale", "0.4"])
        assert code == 0
        assert "historical patrol effort:" in text
        assert "historical detected activity:" in text


class TestEvaluate:
    def test_reports_auc(self):
        code, text = run_cli(
            ["evaluate", "--park", "MFNP", "--scale", "0.4",
             "--model", "dtb", "--n-classifiers", "4"]
        )
        assert code == 0
        assert "AUC = " in text
        assert "DTB-iW" in text

    def test_flat_baseline_flag(self):
        code, text = run_cli(
            ["evaluate", "--park", "MFNP", "--scale", "0.4",
             "--model", "dtb", "--no-iware"]
        )
        assert code == 0
        assert "DTB on" in text
        assert "-iW" not in text


class TestPlan:
    def test_produces_routes(self):
        code, text = run_cli(
            ["plan", "--park", "MFNP", "--scale", "0.4",
             "--horizon", "8", "--segments", "5", "--post", "0"]
        )
        assert code == 0
        assert "prescribed coverage:" in text
        assert "mixed-strategy routes" in text
        assert "solved as" in text

    def test_plans_all_posts_by_default(self):
        code, text = run_cli(
            ["plan", "--park", "MFNP", "--scale", "0.4",
             "--horizon", "6", "--segments", "4", "--n-jobs", "2"]
        )
        assert code == 0
        assert "posts/s" in text
        assert "combined prescribed coverage:" in text
        assert "utility" in text

    def test_solver_override(self):
        code, text = run_cli(
            ["plan", "--park", "MFNP", "--scale", "0.4",
             "--horizon", "6", "--segments", "4", "--post", "0",
             "--solver", "milp"]
        )
        assert code == 0
        assert "solved as MILP" in text

    def test_bad_post_index(self):
        code, text = run_cli(
            ["plan", "--park", "MFNP", "--scale", "0.4", "--post", "99"]
        )
        assert code == 1
        assert "--post" in text


class TestFieldTest:
    def test_runs_trial(self):
        code, text = run_cli(
            ["fieldtest", "--park", "MFNP", "--scale", "0.5",
             "--blocks", "3", "--model", "dtb"]
        )
        assert code == 0
        assert "Risk group" in text
        assert "chi-squared p" in text


class TestDeadlineValidation:
    """--deadline must be a positive number of seconds, everywhere it appears.

    Zero or negative budgets used to start the (possibly expensive) work and
    then surface a mid-run stack trace; argparse now rejects them up front
    with a usage error naming the flag (exit code 2).
    """

    @pytest.mark.parametrize("command", ["plan", "predict"])
    @pytest.mark.parametrize("value", ["0", "-2.5"])
    def test_nonpositive_deadline_exits_2_naming_flag(
        self, command, value, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--deadline", value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--deadline" in err
        assert "positive" in err

    @pytest.mark.parametrize("command", ["plan", "predict"])
    def test_non_numeric_deadline_exits_2(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--deadline", "soon"])
        assert excinfo.value.code == 2
        assert "--deadline" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-1", "never"])
    def test_serve_default_deadline_validated_the_same_way(
        self, value, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["serve", "--models-dir", "models", "--default-deadline",
                 value]
            )
        assert excinfo.value.code == 2
        assert "--default-deadline" in capsys.readouterr().err

    def test_positive_deadline_accepted(self):
        args = build_parser().parse_args(
            ["plan", "--deadline", "2.5"]
        )
        assert args.deadline == 2.5


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--models-dir", "models"])
        assert args.models_dir == "models"
        assert args.port == 8765
        assert args.max_inflight == 8
        assert args.default_deadline == 30.0
        assert args.no_default_deadline is False

    def test_models_dir_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_missing_models_dir_exits_2_cleanly(self, tmp_path):
        code, text = run_cli(
            ["serve", "--models-dir", str(tmp_path / "nope")]
        )
        assert code == 2
        assert "serve:" in text and "nope" in text
