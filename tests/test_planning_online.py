"""Tests for repro.planning.online (EXP3 strategy selection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.planning import GreenSecurityGame
from repro.planning.online import Exp3StrategySelector, run_online_deployment


class TestExp3Selector:
    def test_initial_probabilities_uniform(self):
        selector = Exp3StrategySelector(4, rng=np.random.default_rng(0))
        np.testing.assert_allclose(selector.probabilities(), 0.25)

    def test_probabilities_sum_to_one(self, rng):
        selector = Exp3StrategySelector(3, rng=rng)
        for i in range(20):
            arm = selector.select()
            selector.update(arm, float(i % 3))
        assert selector.probabilities().sum() == pytest.approx(1.0)

    def test_learns_the_best_arm(self):
        rng = np.random.default_rng(1)
        selector = Exp3StrategySelector(3, gamma=0.15, reward_scale=1.0, rng=rng)
        means = [0.1, 0.8, 0.2]
        for __ in range(600):
            arm = selector.select()
            reward = float(rng.random() < means[arm])
            selector.update(arm, reward)
        probs = selector.probabilities()
        assert int(np.argmax(probs)) == 1
        assert selector.empirical_pulls()[1] > selector.empirical_pulls()[0]

    def test_exploration_floor(self):
        selector = Exp3StrategySelector(4, gamma=0.4, rng=np.random.default_rng(0))
        for __ in range(200):
            selector.update(0, 10.0)  # hammer one arm
        probs = selector.probabilities()
        assert probs.min() >= 0.4 / 4 - 1e-9

    def test_reward_clipping(self):
        selector = Exp3StrategySelector(2, reward_scale=5.0,
                                        rng=np.random.default_rng(0))
        selector.update(0, 1e9)  # absurd reward must not overflow
        assert np.isfinite(selector.probabilities()).all()

    def test_history_and_mean_reward(self, rng):
        selector = Exp3StrategySelector(2, rng=rng)
        selector.update(0, 2.0)
        selector.update(1, 4.0)
        assert selector.n_rounds == 2
        assert selector.mean_reward() == pytest.approx(3.0)
        assert selector.mean_reward() >= 0.0

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            Exp3StrategySelector(1)
        with pytest.raises(ConfigurationError):
            Exp3StrategySelector(3, gamma=0.0)
        with pytest.raises(ConfigurationError):
            Exp3StrategySelector(3, reward_scale=0.0)
        selector = Exp3StrategySelector(3, rng=rng)
        with pytest.raises(ConfigurationError):
            selector.update(5, 1.0)


class TestOnlineDeployment:
    @pytest.fixture()
    def game(self, rng):
        logits = rng.normal(-1.5, 1.0, size=30)
        return GreenSecurityGame(logits, detect_rate=0.6,
                                 response_rationality=0.3)

    def test_prefers_informative_strategy(self, game, rng):
        n = game.n_cells
        # Strategy 0: all effort on the most attractive cells (good);
        # strategy 1: all effort on the least attractive (bad).
        order = np.argsort(-game.base_attack_logits)
        good = np.zeros(n)
        good[order[:6]] = 3.0
        bad = np.zeros(n)
        bad[order[-6:]] = 3.0
        selector = run_online_deployment(
            [good, bad], game, n_rounds=300, rng=np.random.default_rng(4)
        )
        pulls = selector.empirical_pulls()
        assert pulls[0] > pulls[1]

    def test_round_count(self, game, rng):
        s = np.ones(game.n_cells)
        selector = run_online_deployment([s, s * 2], game, n_rounds=25, rng=rng)
        assert selector.n_rounds == 25

    def test_validation(self, game, rng):
        with pytest.raises(DataError):
            run_online_deployment([], game, 5, rng)
        with pytest.raises(DataError):
            run_online_deployment(
                [np.ones(game.n_cells), np.ones(3)], game, 5, rng
            )
