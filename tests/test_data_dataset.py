"""Tests for repro.data.dataset and repro.data.generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    MFNP,
    SWS,
    PoachingDataset,
    dataset_statistics,
    generate_dataset,
)
from repro.exceptions import ConfigurationError, DataError

SMALL = MFNP.scaled(0.5)


@pytest.fixture(scope="module")
def park_data():
    return generate_dataset(SMALL, seed=0)


def make_dataset(n=20, k=3, periods_per_year=4, seed=0):
    rng = np.random.default_rng(seed)
    return PoachingDataset(
        static_features=rng.random((n, k)),
        prev_effort=rng.random(n) * 2,
        current_effort=rng.random(n) * 3 + 0.1,
        labels=rng.integers(0, 2, size=n),
        period=rng.integers(0, 24, size=n),
        cell=rng.integers(0, 50, size=n),
        periods_per_year=periods_per_year,
    )


class TestPoachingDataset:
    def test_feature_matrix_appends_prev_effort(self):
        ds = make_dataset(n=10, k=3)
        assert ds.feature_matrix.shape == (10, 4)
        np.testing.assert_allclose(ds.feature_matrix[:, -1], ds.prev_effort)
        assert ds.input_feature_names[-1] == "prev_patrol_effort"

    def test_n_features_counts_effort_covariate(self):
        assert make_dataset(k=5).n_features == 6

    def test_validation_shapes(self):
        with pytest.raises(DataError):
            PoachingDataset(
                static_features=np.zeros((5, 2)),
                prev_effort=np.zeros(4),
                current_effort=np.zeros(5),
                labels=np.zeros(5, dtype=int),
                period=np.zeros(5, dtype=int),
                cell=np.zeros(5, dtype=int),
                periods_per_year=4,
            )

    def test_validation_negative_effort(self):
        with pytest.raises(DataError):
            PoachingDataset(
                static_features=np.zeros((2, 1)),
                prev_effort=np.array([-1.0, 0.0]),
                current_effort=np.zeros(2),
                labels=np.zeros(2, dtype=int),
                period=np.zeros(2, dtype=int),
                cell=np.zeros(2, dtype=int),
                periods_per_year=4,
            )

    def test_subset(self):
        ds = make_dataset(n=30)
        mask = ds.labels == 1
        sub = ds.subset(mask)
        assert sub.n_points == int(mask.sum())
        assert sub.positive_rate == 1.0

    def test_subset_bad_mask(self):
        ds = make_dataset()
        with pytest.raises(DataError):
            ds.subset(np.ones(3, dtype=bool))

    def test_year_derivation(self):
        ds = make_dataset(periods_per_year=4)
        np.testing.assert_array_equal(ds.year, ds.period // 4)

    def test_statistics_keys(self):
        stats = make_dataset().statistics()
        for key in ("n_features", "n_points", "n_positive",
                    "percent_positive", "avg_effort_km"):
            assert key in stats


class TestYearSplit:
    def test_split_by_test_year(self, park_data):
        ds = park_data.dataset
        split = ds.split_by_test_year(test_year=4)
        assert (split.test.year == 4).all()
        assert set(np.unique(split.train.year)) == {1, 2, 3}

    def test_split_unknown_year(self, park_data):
        with pytest.raises(DataError):
            park_data.dataset.split_by_test_year(test_year=99)

    def test_split_insufficient_history(self, park_data):
        with pytest.raises(DataError):
            park_data.dataset.split_by_test_year(test_year=1)

    def test_three_test_years_available(self, park_data):
        """The paper evaluates test years 3, 4, 5 (its 2014/15/16)."""
        for test_year in (3, 4, 5):
            split = park_data.dataset.split_by_test_year(test_year)
            assert split.train.n_points > 0
            assert split.test.n_points > 0


class TestGenerator:
    def test_deterministic(self):
        a = generate_dataset(SMALL, seed=5)
        b = generate_dataset(SMALL, seed=5)
        np.testing.assert_array_equal(a.dataset.labels, b.dataset.labels)
        np.testing.assert_array_equal(a.recorded_effort, b.recorded_effort)

    def test_shapes(self, park_data):
        T = SMALL.n_periods
        N = park_data.park.n_cells
        assert park_data.true_effort.shape == (T, N)
        assert park_data.recorded_effort.shape == (T, N)
        assert park_data.attacks.shape == (T, N)
        assert park_data.detections.shape == (T, N)

    def test_detections_subset_of_attacks(self, park_data):
        """One-sided noise: every detection is a true attack."""
        assert not (park_data.detections & ~park_data.attacks).any()

    def test_detections_only_in_patrolled_cells(self, park_data):
        detected = park_data.detections
        effort = park_data.true_effort
        assert (effort[detected] > 0).all()

    def test_dataset_points_have_positive_effort(self, park_data):
        assert (park_data.dataset.current_effort > 0).all()

    def test_dataset_skips_first_period(self, park_data):
        assert park_data.dataset.period.min() >= 1

    def test_labels_match_detection_grid(self, park_data):
        ds = park_data.dataset
        for i in range(0, ds.n_points, 97):
            t, cid = int(ds.period[i]), int(ds.cell[i])
            assert ds.labels[i] == int(park_data.detections[t, cid])

    def test_calibration_hits_target(self, park_data):
        target = SMALL.target_positive_rate
        rate = park_data.dataset.positive_rate
        assert 0.5 * target < rate < 2.0 * target

    def test_smart_database_populated(self, park_data):
        assert park_data.smart.n_patrols == SMALL.n_periods * SMALL.patrols_per_period
        assert park_data.smart.n_records > 0

    def test_smart_poaching_cells_match_detections(self, park_data):
        t = 3
        recorded = park_data.smart.poaching_cells(t)
        detected = set(np.nonzero(park_data.detections[t])[0].tolist())
        # Every SMART poaching record corresponds to a true detection...
        assert recorded <= detected
        # ...and patrolled detections mostly get recorded.
        if detected:
            assert len(recorded) >= len(detected) // 2

    def test_statistics(self, park_data):
        stats = dataset_statistics(park_data)
        assert stats["n_cells"] == park_data.park.n_cells
        assert stats["n_points"] == park_data.dataset.n_points

    def test_fig4_positive_rate_grows_with_effort(self):
        """The Fig. 4 signature: positives concentrate at high effort."""
        data = generate_dataset(MFNP, seed=1)
        rates = data.dataset.positive_rate_by_effort_percentile([0, 40, 80])
        assert rates[2] > rates[0]

    def test_positive_rate_percentile_validation(self, park_data):
        with pytest.raises(ConfigurationError):
            park_data.dataset.positive_rate_by_effort_percentile([120])

    def test_sws_extreme_imbalance(self):
        data = generate_dataset(SWS, seed=0)
        assert data.dataset.positive_rate < 0.02
        assert data.dataset.labels.sum() >= 3
