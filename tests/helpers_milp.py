"""Test helper: solve a patrol MILP with the from-scratch B&B solver."""

from __future__ import annotations

from repro.planning.branch_and_bound import BranchAndBoundSolver
from repro.planning.milp import PatrolMILP
from repro.planning.pwl import PiecewiseLinear


def solve_patrol_with_bnb(
    milp: PatrolMILP, utilities: dict[int, PiecewiseLinear]
) -> float:
    """Objective value of problem (P) solved by branch and bound."""
    model = milp.build_model(utilities)
    result = BranchAndBoundSolver(max_nodes=50_000).solve(
        model.objective,
        model.matrix,
        model.row_lb,
        model.row_ub,
        binary_mask=model.integrality.astype(bool),
        row_kinds=model.row_kinds,
    )
    return -result.objective_value
