"""Tests for repro.data.profiles and repro.data.seasonality."""

from __future__ import annotations

import pytest

from repro.data import (
    MFNP,
    QENP,
    SWS,
    SWS_DRY,
    ParkProfile,
    Season,
    get_profile,
    list_profiles,
    season_of_month,
    seasonal_risk_shift,
)
from repro.data.seasonality import months_of_period, period_season
from repro.exceptions import ConfigurationError
from repro.geo import Grid


class TestProfiles:
    def test_stock_profiles_lookup(self):
        assert get_profile("MFNP") is MFNP
        assert get_profile("qenp") is QENP
        assert get_profile("SWS dry") is SWS_DRY
        assert get_profile("sws_dry") is SWS_DRY

    def test_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            get_profile("yellowstone")

    def test_list_profiles(self):
        assert list_profiles() == ["MFNP", "QENP", "SWS", "SWS dry"]

    def test_imbalance_ordering_matches_table1(self):
        """MFNP > QENP >> SWS > SWS dry in positive-label rate."""
        assert MFNP.target_positive_rate > QENP.target_positive_rate
        assert QENP.target_positive_rate > SWS.target_positive_rate
        assert SWS.target_positive_rate > SWS_DRY.target_positive_rate

    def test_sws_has_sparser_waypoints_than_uganda(self):
        """Motorbike patrols record fewer GPS points (Section III-A)."""
        assert SWS.waypoint_interval > MFNP.waypoint_interval
        assert SWS.waypoint_interval > QENP.waypoint_interval

    def test_periods_per_year(self):
        assert MFNP.periods_per_year == 4
        assert SWS_DRY.periods_per_year == 3
        assert MFNP.n_periods == MFNP.years * 4

    def test_scaled(self):
        small = MFNP.scaled(0.5)
        assert small.shape == (12, 12)
        assert small.name == MFNP.name
        tiny = MFNP.scaled(0.01)
        assert tiny.shape == (6, 6)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            MFNP.scaled(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParkProfile(name="x", shape=(8, 8), geometry="hexagon")
        with pytest.raises(ConfigurationError):
            ParkProfile(name="x", shape=(8, 8), attack_rate=0.0)
        with pytest.raises(ConfigurationError):
            ParkProfile(name="x", shape=(8, 8), detect_rate=-1.0)
        with pytest.raises(ConfigurationError):
            ParkProfile(name="x", shape=(8, 8), years=1)
        with pytest.raises(ConfigurationError):
            ParkProfile(name="x", shape=(8, 8), waypoint_interval=0)


class TestSeasonality:
    def test_dry_months(self):
        assert season_of_month(12) is Season.DRY
        assert season_of_month(2) is Season.DRY
        assert season_of_month(7) is Season.WET

    def test_bad_month(self):
        with pytest.raises(ConfigurationError):
            season_of_month(0)
        with pytest.raises(ConfigurationError):
            season_of_month(13)

    def test_quarterly_period_months(self):
        assert months_of_period(0, 4) == [1, 2, 3]
        assert months_of_period(3, 4) == [10, 11, 12]
        assert months_of_period(5, 4) == [4, 5, 6]  # wraps into year 2

    def test_dry_period_months(self):
        assert months_of_period(0, 3, dry_season_only=True) == [11, 12]
        assert months_of_period(1, 3, dry_season_only=True) == [1, 2]
        assert months_of_period(2, 3, dry_season_only=True) == [3, 4]

    def test_dry_periods_are_all_dry(self):
        for t in range(6):
            assert period_season(t, 3, dry_season_only=True) is Season.DRY

    def test_quarterly_seasons(self):
        assert period_season(0, 4) is Season.DRY   # Jan-Mar
        assert period_season(2, 4) is Season.WET   # Jul-Sep

    def test_risk_shift_flips_with_season(self):
        grid = Grid.rectangular(10, 10)
        dry = seasonal_risk_shift(grid, Season.DRY)
        wet = seasonal_risk_shift(grid, Season.WET)
        north = grid.cell_id(0, 5)
        south = grid.cell_id(9, 5)
        assert dry[north] > dry[south]
        assert wet[south] > wet[north]
        # Paper alignment: dry season raises risk in the north.
        assert dry[north] > 0

    def test_risk_shift_strength_zero(self):
        grid = Grid.rectangular(4, 4)
        shift = seasonal_risk_shift(grid, Season.DRY, strength=0.0)
        assert (shift == 0).all()

    def test_risk_shift_rejects_negative_strength(self):
        grid = Grid.rectangular(4, 4)
        with pytest.raises(ConfigurationError):
            seasonal_risk_shift(grid, Season.DRY, strength=-1.0)
