"""Tests for repro.ml.scaling and repro.ml.jackknife."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError, NotFittedError
from repro.ml import (
    BaggingClassifier,
    DecisionTreeClassifier,
    MinMaxScaler,
    StandardScaler,
    infinitesimal_jackknife_variance,
    logistic_squash,
)
from repro.ml.jackknife import bagging_ij_variance
from tests.conftest import make_blobs


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_passthrough(self):
        X = np.hstack([np.ones((10, 1)), np.arange(10.0).reshape(-1, 1)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_transform_uses_fit_statistics(self, rng):
        X = rng.normal(size=(50, 2))
        scaler = StandardScaler().fit(X)
        Z = scaler.transform(X + 10.0)
        assert Z.mean() > 5.0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(DataError):
            StandardScaler().fit(np.zeros(5))


class TestMinMaxScaler:
    def test_unit_range(self, rng):
        X = rng.normal(size=(100, 3)) * 7 + 2
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_constant_column_zero(self):
        X = np.full((5, 1), 9.0)
        np.testing.assert_allclose(MinMaxScaler().fit_transform(X), 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((2, 2)))


class TestLogisticSquash:
    def test_range(self, rng):
        z = logistic_squash(rng.normal(0, 100, size=1000))
        assert (z > 0).all() and (z < 1).all()

    def test_midpoint_maps_to_half(self):
        assert logistic_squash(np.array([3.0]), midpoint=3.0)[0] == pytest.approx(0.5)

    def test_monotone(self):
        values = np.linspace(-5, 5, 50)
        out = logistic_squash(values)
        assert (np.diff(out) > 0).all()

    def test_extreme_values_do_not_overflow(self):
        out = logistic_squash(np.array([-1e9, 1e9]))
        assert np.isfinite(out).all()

    def test_rejects_bad_steepness(self):
        with pytest.raises(DataError):
            logistic_squash(np.zeros(2), steepness=0.0)


class TestInfinitesimalJackknife:
    def test_shape_and_nonnegativity(self, rng):
        X, y = make_blobs(rng, n_per_class=40)
        model = BaggingClassifier(
            lambda: DecisionTreeClassifier(max_depth=3, rng=np.random.default_rng(0)),
            n_estimators=30,
            rng=rng,
        ).fit(X, y)
        var = bagging_ij_variance(model, X[:10])
        assert var.shape == (10,)
        assert (var >= 0).all()

    def test_identical_members_give_zero(self):
        inbag = np.array([[1, 1], [1, 1], [1, 1]])
        preds = np.full((3, 4), 0.7)
        var = infinitesimal_jackknife_variance(inbag, preds)
        np.testing.assert_allclose(var, 0.0)

    def test_rejects_mismatched_estimators(self):
        with pytest.raises(DataError):
            infinitesimal_jackknife_variance(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_rejects_single_estimator(self):
        with pytest.raises(DataError):
            infinitesimal_jackknife_variance(np.zeros((1, 2)), np.zeros((1, 2)))

    def test_unfitted_model_raises(self, rng):
        model = BaggingClassifier(
            lambda: DecisionTreeClassifier(), n_estimators=3, rng=rng
        )
        with pytest.raises(DataError):
            bagging_ij_variance(model, np.zeros((2, 2)))

    def test_bias_correction_reduces_estimate(self, rng):
        X, y = make_blobs(rng, n_per_class=30)
        model = BaggingClassifier(
            lambda: DecisionTreeClassifier(max_depth=3, rng=np.random.default_rng(0)),
            n_estimators=15,
            rng=rng,
        ).fit(X, y)
        raw = bagging_ij_variance(model, X[:8], bias_correct=False)
        corrected = bagging_ij_variance(model, X[:8], bias_correct=True)
        assert (corrected <= raw + 1e-12).all()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 9999))
def test_standard_scaler_roundtrip(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(30, 3)) * rng.uniform(0.5, 4.0) + rng.normal()
    scaler = StandardScaler().fit(X)
    Z = scaler.transform(X)
    back = Z * scaler.scale_ + scaler.mean_
    np.testing.assert_allclose(back, X, atol=1e-9)
