"""Tests for repro.ml.tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml import DecisionTreeClassifier, roc_auc_score
from tests.conftest import make_blobs


class TestFit:
    def test_separable_data_high_auc(self, rng):
        X, y = make_blobs(rng)
        tree = DecisionTreeClassifier(rng=rng).fit(X, y)
        assert roc_auc_score(y, tree.predict_proba(X)) > 0.95

    def test_pure_node_is_leaf(self, rng):
        X = rng.random((10, 2))
        y = np.ones(10, dtype=int)
        with pytest.raises(DataError):
            # check_binary_labels allows single class, but AUC etc. don't;
            # the tree itself should fit fine on single-class data.
            roc_auc_score(y, y)
        tree = DecisionTreeClassifier(rng=rng).fit(X, y)
        assert tree.n_leaves == 1
        # Laplace smoothing keeps probability strictly inside (0, 1).
        assert 0.5 < tree.predict_proba(X)[0] < 1.0

    def test_max_depth_limits_depth(self, rng):
        X, y = make_blobs(rng, n_per_class=100, spread=2.0)
        tree = DecisionTreeClassifier(max_depth=2, rng=rng).fit(X, y)
        assert tree.depth <= 2
        assert tree.n_leaves <= 4

    def test_min_samples_leaf_respected(self, rng):
        X, y = make_blobs(rng, n_per_class=30)
        tree = DecisionTreeClassifier(min_samples_leaf=10, rng=rng).fit(X, y)
        # Every leaf must hold >= 10 samples, so there are at most 6 leaves.
        assert tree.n_leaves <= 6

    def test_unfitted_raises(self, rng):
        tree = DecisionTreeClassifier(rng=rng)
        with pytest.raises(NotFittedError):
            tree.predict_proba(np.zeros((2, 2)))

    def test_feature_count_mismatch_raises(self, rng):
        X, y = make_blobs(rng)
        tree = DecisionTreeClassifier(rng=rng).fit(X, y)
        with pytest.raises(DataError):
            tree.predict_proba(np.zeros((3, 5)))

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(min_samples_leaf=0)
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(laplace=-0.1)


class TestSplits:
    def test_axis_aligned_step_recovered(self):
        """A 1-D threshold function is learned exactly."""
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.52).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        pred = tree.predict(X)
        np.testing.assert_array_equal(pred, y)

    def test_xor_needs_depth_two(self, rng):
        """XOR cannot be solved at depth 1 but is solved at depth 2."""
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 20, dtype=float)
        X += rng.normal(0, 0.05, X.shape)
        y = (X[:, 0].round() != X[:, 1].round()).astype(int)
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert (deep.predict(X) == y).mean() > 0.95
        assert (shallow.predict(X) == y).mean() < 0.8

    def test_constant_features_make_single_leaf(self, rng):
        X = np.ones((20, 3))
        y = rng.integers(0, 2, size=20)
        y[0], y[1] = 0, 1
        tree = DecisionTreeClassifier(rng=rng).fit(X, y)
        assert tree.n_leaves == 1

    def test_max_features_sqrt(self, rng):
        X, y = make_blobs(rng, n_features=9)
        tree = DecisionTreeClassifier(max_features="sqrt", rng=rng).fit(X, y)
        assert roc_auc_score(y, tree.predict_proba(X)) > 0.8


class TestProbabilities:
    def test_probabilities_in_unit_interval(self, rng):
        X, y = make_blobs(rng, spread=2.0)
        tree = DecisionTreeClassifier(max_depth=4, rng=rng).fit(X, y)
        p = tree.predict_proba(X)
        assert (p > 0).all() and (p < 1).all()

    def test_leaf_probability_is_smoothed_fraction(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0], [1.0]])
        y = np.array([0, 0, 1, 1, 0])
        tree = DecisionTreeClassifier(laplace=1.0).fit(X, y)
        p = tree.predict_proba(np.array([[1.0]]))
        # Right leaf: 2 positives of 3 samples -> (2+1)/(3+2) = 0.6
        assert p[0] == pytest.approx(0.6)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 9999), depth=st.integers(1, 6))
def test_deeper_trees_never_fit_worse_on_train(seed, depth):
    """Training log-loss is monotone nonincreasing in allowed depth."""
    rng = np.random.default_rng(seed)
    X, y = make_blobs(rng, n_per_class=40, spread=1.5)
    from repro.ml import log_loss

    shallow = DecisionTreeClassifier(max_depth=depth, rng=np.random.default_rng(0))
    deep = DecisionTreeClassifier(max_depth=depth + 1, rng=np.random.default_rng(0))
    loss_shallow = log_loss(y, shallow.fit(X, y).predict_proba(X))
    loss_deep = log_loss(y, deep.fit(X, y).predict_proba(X))
    assert loss_deep <= loss_shallow + 1e-6
