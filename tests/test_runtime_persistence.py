"""Model persistence round-trips: save() -> load() -> identical predictions.

The serving contract is that a persisted model answers every prediction
query exactly like the instance it was saved from — for all three
weak-learner families, with and without iWare-E, down to the raw classifier
layer.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import IWareEnsemble, PawsPredictor, make_weak_learner
from repro.data import MFNP, generate_dataset
from repro.exceptions import (
    ConfigurationError,
    NotFittedError,
    PersistenceError,
)
from repro.ml import (
    BaggingClassifier,
    BalancedBaggingClassifier,
    DecisionTreeClassifier,
    GaussianProcessClassifier,
    LinearSVMClassifier,
    LogisticRegression,
    PUWeightedLogisticRegression,
)
from repro.ml.base import ConstantClassifier

from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def park_split():
    data = generate_dataset(MFNP.scaled(0.4), seed=0)
    return data.dataset.split_by_test_year(4)


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(7)
    return make_blobs(rng, n_per_class=40, n_features=3)


# ---------------------------------------------------------------------------
# Raw classifiers
# ---------------------------------------------------------------------------
class TestClassifierRoundTrips:
    def assert_round_trip(self, model, X, tmp_path, check_variance=False):
        path = tmp_path / "model"
        model.save(path)
        loaded = type(model).load(path)
        np.testing.assert_array_equal(
            loaded.predict_proba(X), model.predict_proba(X)
        )
        if check_variance:
            np.testing.assert_array_equal(
                loaded.predict_variance(X), model.predict_variance(X)
            )
        return loaded

    def test_constant(self, blobs, tmp_path):
        X, y = blobs
        model = ConstantClassifier().fit(X, y)
        self.assert_round_trip(model, X, tmp_path)

    def test_tree(self, blobs, tmp_path):
        X, y = blobs
        model = DecisionTreeClassifier(
            max_depth=5, max_features="sqrt", rng=np.random.default_rng(0)
        ).fit(X, y)
        loaded = self.assert_round_trip(model, X, tmp_path)
        assert loaded.n_leaves == model.n_leaves
        assert loaded.depth == model.depth

    def test_svm(self, blobs, tmp_path):
        X, y = blobs
        model = LinearSVMClassifier(rng=np.random.default_rng(0)).fit(X, y)
        loaded = self.assert_round_trip(model, X, tmp_path)
        np.testing.assert_array_equal(
            loaded.decision_function(X), model.decision_function(X)
        )

    def test_gp(self, blobs, tmp_path):
        X, y = blobs
        model = GaussianProcessClassifier(
            max_points=60, rng=np.random.default_rng(0)
        ).fit(X, y)
        self.assert_round_trip(model, X, tmp_path, check_variance=True)

    def test_logistic(self, blobs, tmp_path):
        X, y = blobs
        model = LogisticRegression(l2=0.5).fit(X, y)
        self.assert_round_trip(model, X, tmp_path)

    def test_pu_logistic(self, blobs, tmp_path):
        X, y = blobs
        effort = np.abs(X[:, -1]) + 0.1
        model = PUWeightedLogisticRegression().fit(X, y, effort=effort)
        self.assert_round_trip(model, X, tmp_path)

    @pytest.mark.parametrize("balanced", [False, True])
    def test_bagging(self, blobs, tmp_path, balanced):
        X, y = blobs
        rng = np.random.default_rng(3)
        factory = lambda: DecisionTreeClassifier(  # noqa: E731
            max_depth=4, rng=np.random.default_rng(int(rng.integers(2**31)))
        )
        cls = BalancedBaggingClassifier if balanced else BaggingClassifier
        model = cls(factory, n_estimators=3, rng=np.random.default_rng(5)).fit(X, y)
        loaded = self.assert_round_trip(model, X, tmp_path, check_variance=True)
        np.testing.assert_array_equal(loaded.inbag_counts_, model.inbag_counts_)
        np.testing.assert_array_equal(
            loaded.mean_member_variance(X), model.mean_member_variance(X)
        )

    def test_loaded_bagging_refuses_refit(self, blobs, tmp_path):
        X, y = blobs
        rng = np.random.default_rng(3)
        factory = lambda: DecisionTreeClassifier(  # noqa: E731
            max_depth=4, rng=np.random.default_rng(int(rng.integers(2**31)))
        )
        model = BaggingClassifier(factory, n_estimators=2).fit(X, y)
        model.save(tmp_path / "m")
        loaded = BaggingClassifier.load(tmp_path / "m")
        with pytest.raises(ConfigurationError):
            loaded.fit(X, y)


# ---------------------------------------------------------------------------
# iWare-E ensembles and the predictor facade
# ---------------------------------------------------------------------------
class TestEnsembleRoundTrip:
    def test_iware_ensemble(self, park_split, tmp_path):
        factory = make_weak_learner(
            "dtb", rng=np.random.default_rng(11), n_estimators=2
        )
        ensemble = IWareEnsemble(
            factory, n_classifiers=4, rng=np.random.default_rng(12)
        ).fit(park_split.train)
        ensemble.save(tmp_path / "ens")
        loaded = IWareEnsemble.load(tmp_path / "ens")
        X = park_split.test.feature_matrix
        np.testing.assert_array_equal(
            loaded.predict_proba(X), ensemble.predict_proba(X)
        )
        np.testing.assert_array_equal(
            loaded.predict_proba(X, effort=2.0),
            ensemble.predict_proba(X, effort=2.0),
        )
        np.testing.assert_array_equal(
            loaded.predict_variance(X, effort=2.0),
            ensemble.predict_variance(X, effort=2.0),
        )
        np.testing.assert_array_equal(loaded.thresholds_, ensemble.thresholds_)
        np.testing.assert_array_equal(loaded.weights_, ensemble.weights_)

    def test_loaded_ensemble_refuses_refit(self, park_split, tmp_path):
        factory = make_weak_learner(
            "dtb", rng=np.random.default_rng(11), n_estimators=2
        )
        ensemble = IWareEnsemble(
            factory, n_classifiers=3, rng=np.random.default_rng(12)
        ).fit(park_split.train)
        ensemble.save(tmp_path / "ens")
        loaded = IWareEnsemble.load(tmp_path / "ens")
        with pytest.raises(ConfigurationError):
            loaded.fit(park_split.train)


@pytest.mark.parametrize("model", ["svb", "dtb", "gpb"])
@pytest.mark.parametrize("iware", [True, False])
class TestPredictorRoundTrip:
    def test_identical_serving(self, park_split, tmp_path, model, iware):
        predictor = PawsPredictor(
            model=model, iware=iware, n_classifiers=3, n_estimators=2, seed=9
        ).fit(park_split.train)
        predictor.save(tmp_path / "paws")
        loaded = PawsPredictor.load(tmp_path / "paws")

        X = park_split.test.feature_matrix
        np.testing.assert_array_equal(
            loaded.predict_proba(X), predictor.predict_proba(X)
        )
        np.testing.assert_array_equal(
            loaded.predict_variance(X), predictor.predict_variance(X)
        )
        grid = np.linspace(0.0, 4.0, 5)
        risk, nu = predictor.effort_response(X, grid)
        loaded_risk, loaded_nu = loaded.effort_response(X, grid)
        np.testing.assert_array_equal(loaded_risk, risk)
        np.testing.assert_array_equal(loaded_nu, nu)
        assert loaded.name == predictor.name
        assert loaded.evaluate_auc(park_split.test) == predictor.evaluate_auc(
            park_split.test
        )


# ---------------------------------------------------------------------------
# Failure modes
# ---------------------------------------------------------------------------
class TestFailureModes:
    def test_unfitted_models_refuse_to_save(self, tmp_path):
        with pytest.raises(NotFittedError):
            PawsPredictor().save(tmp_path / "nope")
        with pytest.raises(NotFittedError):
            LogisticRegression().save(tmp_path / "nope")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError):
            PawsPredictor.load(tmp_path / "does-not-exist")

    def test_wrong_type_rejected(self, blobs, tmp_path):
        X, y = blobs
        LogisticRegression().fit(X, y).save(tmp_path / "lr")
        with pytest.raises(PersistenceError):
            PawsPredictor.load(tmp_path / "lr")

    def test_corrupt_manifest(self, blobs, tmp_path):
        X, y = blobs
        path = tmp_path / "lr"
        LogisticRegression().fit(X, y).save(path)
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(PersistenceError):
            LogisticRegression.load(path)

    def test_future_format_rejected(self, blobs, tmp_path):
        X, y = blobs
        path = tmp_path / "lr"
        LogisticRegression().fit(X, y).save(path)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError):
            LogisticRegression.load(path)


# ---------------------------------------------------------------------------
# Integrity: checksums, verification, and the crash-safe layout
# ---------------------------------------------------------------------------
class TestIntegrity:
    def save_lr(self, blobs, path):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        model.save(path)
        return model, X

    def test_manifest_carries_checksums(self, blobs, tmp_path):
        path = tmp_path / "lr"
        self.save_lr(blobs, path)
        manifest = json.loads((path / "manifest.json").read_text())
        checksums = manifest["checksums"]
        arrays_name = manifest["arrays_file"]
        assert arrays_name.startswith("arrays-") and arrays_name.endswith(".npz")
        assert checksums["file_sha256"].startswith(arrays_name[7:23])
        assert checksums["arrays"]  # one sha256 per array
        assert all(len(h) == 64 for h in checksums["arrays"].values())
        # staging leftovers are swept after the commit
        assert not list(path.glob("*.tmp"))

    def test_resave_sweeps_stale_arrays(self, blobs, tmp_path):
        X, y = blobs
        path = tmp_path / "lr"
        LogisticRegression(l2=0.5).fit(X, y).save(path)
        first = json.loads((path / "manifest.json").read_text())["arrays_file"]
        LogisticRegression(l2=2.0).fit(X, y).save(path)
        second = json.loads((path / "manifest.json").read_text())["arrays_file"]
        assert first != second
        assert not (path / first).exists()  # unreferenced file swept
        LogisticRegression.load(path)

    def test_tampered_array_named_exactly(self, blobs, tmp_path):
        path = tmp_path / "lr"
        self.save_lr(blobs, path)
        manifest = json.loads((path / "manifest.json").read_text())
        key = sorted(manifest["checksums"]["arrays"])[0]
        manifest["checksums"]["arrays"][key] = "0" * 64
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match=f"array '{key}'"):
            LogisticRegression.load(path)

    def test_flipped_bit_detected_and_named(self, blobs, tmp_path):
        path = tmp_path / "lr"
        self.save_lr(blobs, path)
        arrays_name = json.loads(
            (path / "manifest.json").read_text()
        )["arrays_file"]
        from repro.runtime import faults

        faults.flip_byte(path / arrays_name, seed=1)
        with pytest.raises(PersistenceError, match="arrays"):
            LogisticRegression.load(path)

    def test_verify_false_skips_checksums(self, blobs, tmp_path):
        path = tmp_path / "lr"
        model, X = self.save_lr(blobs, path)
        manifest = json.loads((path / "manifest.json").read_text())
        key = sorted(manifest["checksums"]["arrays"])[0]
        manifest["checksums"]["arrays"][key] = "0" * 64
        (path / "manifest.json").write_text(json.dumps(manifest))
        loaded = LogisticRegression.load(path, verify=False)
        np.testing.assert_array_equal(
            loaded.predict_proba(X), model.predict_proba(X)
        )

    def test_garbage_npz_wrapped_as_persistence_error(self, blobs, tmp_path):
        path = tmp_path / "lr"
        self.save_lr(blobs, path)
        arrays_name = json.loads(
            (path / "manifest.json").read_text()
        )["arrays_file"]
        (path / arrays_name).write_bytes(b"this is not a zip archive")
        # verify=False routes straight into np.load: the raw BadZipFile /
        # ValueError must still surface as PersistenceError naming the file.
        with pytest.raises(PersistenceError, match="corrupt arrays file"):
            LogisticRegression.load(path, verify=False)

    def test_legacy_format1_still_loads(self, blobs, tmp_path):
        path = tmp_path / "lr"
        model, X = self.save_lr(blobs, path)
        manifest = json.loads((path / "manifest.json").read_text())
        arrays_name = manifest.pop("arrays_file")
        manifest.pop("checksums")
        manifest["format_version"] = 1
        (path / arrays_name).rename(path / "arrays.npz")
        (path / "manifest.json").write_text(json.dumps(manifest))
        loaded = LogisticRegression.load(path)  # nothing to verify: no sums
        np.testing.assert_array_equal(
            loaded.predict_proba(X), model.predict_proba(X)
        )


# ---------------------------------------------------------------------------
# Missing artifacts (referenced but absent on disk)
# ---------------------------------------------------------------------------
class TestMissingArtifacts:
    def save_lr(self, blobs, path):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        model.save(path)
        return model, X

    def test_missing_arrays_file_is_persistence_error_naming_path(
        self, blobs, tmp_path
    ):
        path = tmp_path / "lr"
        self.save_lr(blobs, path)
        arrays_name = json.loads(
            (path / "manifest.json").read_text()
        )["arrays_file"]
        (path / arrays_name).unlink()
        with pytest.raises(PersistenceError, match=arrays_name):
            LogisticRegression.load(path, verify=True)

    def test_missing_arrays_file_named_without_verify_too(
        self, blobs, tmp_path
    ):
        path = tmp_path / "lr"
        self.save_lr(blobs, path)
        arrays_name = json.loads(
            (path / "manifest.json").read_text()
        )["arrays_file"]
        (path / arrays_name).unlink()
        with pytest.raises(PersistenceError, match=arrays_name):
            LogisticRegression.load(path, verify=False)

    def test_toctou_vanish_during_read_still_named(self, blobs, tmp_path):
        # The is_file() pre-check can race a concurrent sweep; the read
        # itself must wrap FileNotFoundError into the same artifact-naming
        # PersistenceError instead of leaking the raw OSError.
        from repro.runtime.persistence import _load_arrays

        ghost = tmp_path / "arrays-deadbeef.npz"
        with pytest.raises(PersistenceError, match="arrays-deadbeef.npz"):
            _load_arrays(ghost)


# ---------------------------------------------------------------------------
# Concurrent writers into one model directory
# ---------------------------------------------------------------------------
class TestConcurrentSaves:
    def test_racing_saves_end_with_one_verifiable_model(
        self, blobs, tmp_path
    ):
        """Two racing saves: old-or-new, never a hybrid, always loadable."""
        import threading

        X, y = blobs
        models = [
            LogisticRegression(l2=0.5).fit(X, y),
            LogisticRegression(l2=2.0).fit(X, y),
        ]
        path = tmp_path / "model"
        start = threading.Barrier(len(models))
        errors = []

        def save(model):
            start.wait()
            try:
                model.save(path)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        for _ in range(3):  # a few rounds to exercise both orderings
            threads = [
                threading.Thread(target=save, args=(m,)) for m in models
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        # one committed winner, complete and checksum-verified
        manifest = json.loads((path / "manifest.json").read_text())
        assert (path / manifest["arrays_file"]).is_file()
        loaded = LogisticRegression.load(path, verify=True)
        reference = {
            repr(m.predict_proba(X).tobytes()): m for m in models
        }
        assert repr(loaded.predict_proba(X).tobytes()) in reference
        # the sweep never deleted the winner's arrays, and left no debris
        assert len(list(path.glob("arrays-*.npz"))) == 1
        assert not list(path.glob("*.tmp"))
        assert not (path / ".save.lock").exists()

    def test_stale_sweep_spares_the_committed_winner(self, blobs, tmp_path):
        """A loser's delayed sweep must keep what the manifest references."""
        from repro.runtime.persistence import _sweep_stale

        X, y = blobs
        path = tmp_path / "model"
        LogisticRegression(l2=0.5).fit(X, y).save(path)
        first = json.loads((path / "manifest.json").read_text())["arrays_file"]
        LogisticRegression(l2=2.0).fit(X, y).save(path)
        second = json.loads((path / "manifest.json").read_text())["arrays_file"]
        assert first != second
        # replay the first saver's sweep as if it ran after the second
        # save committed: its stale keep-set must not delete the winner
        _sweep_stale(path, keep_arrays=first)
        assert (path / second).is_file()
        LogisticRegression.load(path, verify=True)

    def test_stale_lock_from_dead_saver_is_broken(self, blobs, tmp_path):
        X, y = blobs
        path = tmp_path / "model"
        path.mkdir()
        # a pid that can never be alive (pid_max is < 2**22 on Linux)
        (path / ".save.lock").write_text("99999999")
        LogisticRegression().fit(X, y).save(path)  # does not deadlock
        assert not (path / ".save.lock").exists()
        LogisticRegression.load(path, verify=True)
