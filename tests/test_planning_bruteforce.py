"""Brute-force verification of the patrol-planning MILP.

On instances small enough to enumerate every feasible patrol path, the MILP
must (a) never do worse than the best *pure* strategy — mixed strategies
dominate — and (b) for utilities linear in coverage, match the best pure
path exactly (a linear objective over the flow polytope attains its optimum
at a vertex, i.e. a single path).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import Grid
from repro.planning import PatrolMILP, PiecewiseLinear, TimeUnrolledGraph


def enumerate_paths(graph: TimeUnrolledGraph) -> list[list[int]]:
    """All source-to-sink node paths of the time-unrolled DAG."""
    out_edges, __ = graph.incidence_lists()
    edges = graph.edges
    paths: list[list[int]] = []

    def walk(node: int, acc: list[int]) -> None:
        if node == graph.sink_node:
            paths.append(acc.copy())
            return
        for e in out_edges[node]:
            nxt = int(edges[e, 1])
            acc.append(nxt)
            walk(nxt, acc)
            acc.pop()

    walk(graph.source_node, [graph.source_node])
    return paths


def path_coverage(graph: TimeUnrolledGraph, path: list[int], k: int) -> np.ndarray:
    coverage = np.zeros(graph.grid.n_cells)
    for node in path:
        cell, __ = graph.nodes[node]
        coverage[cell] += float(k)
    return coverage


def pure_strategy_value(graph, utilities, path, k) -> float:
    coverage = path_coverage(graph, path, k)
    return float(
        sum(utilities[int(v)](coverage[int(v)]) for v in graph.reachable_cells)
    )


@pytest.fixture(scope="module")
def tiny():
    grid = Grid.rectangular(2, 3)
    graph = TimeUnrolledGraph(grid, source_cell=0, horizon=5)
    return grid, graph


class TestAgainstEnumeration:
    def test_enumeration_is_nontrivial(self, tiny):
        __, graph = tiny
        paths = enumerate_paths(graph)
        assert len(paths) > 3
        for path in paths:
            assert len(path) == graph.horizon

    def test_linear_utilities_match_best_pure_path(self, tiny, rng):
        """Linear objective -> LP vertex optimum -> a single path."""
        __, graph = tiny
        k = 2
        milp = PatrolMILP(graph, n_patrols=k)
        xs = np.array([0.0, milp.max_coverage])
        slopes = rng.random(graph.grid.n_cells)
        utilities = {
            int(v): PiecewiseLinear(xs, slopes[int(v)] * xs)
            for v in graph.reachable_cells
        }
        solution = milp.solve(utilities)
        best_pure = max(
            pure_strategy_value(graph, utilities, p, k)
            for p in enumerate_paths(graph)
        )
        assert solution.objective_value == pytest.approx(best_pure, abs=1e-5)

    def test_mixed_dominates_every_pure_strategy(self, tiny, rng):
        """With concave utilities the MILP may strictly beat all paths but
        can never lose to one."""
        __, graph = tiny
        k = 2
        milp = PatrolMILP(graph, n_patrols=k)
        xs = np.linspace(0.0, milp.max_coverage, 6)
        utilities = {
            int(v): PiecewiseLinear(xs, rng.random() * (1 - np.exp(-0.6 * xs)))
            for v in graph.reachable_cells
        }
        solution = milp.solve(utilities)
        for path in enumerate_paths(graph):
            assert solution.objective_value >= (
                pure_strategy_value(graph, utilities, path, k) - 1e-5
            )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 999))
def test_linear_case_matches_enumeration_randomised(seed):
    grid = Grid.rectangular(2, 2)
    graph = TimeUnrolledGraph(grid, source_cell=0, horizon=4)
    k = 1
    milp = PatrolMILP(graph, n_patrols=k)
    rng = np.random.default_rng(seed)
    xs = np.array([0.0, milp.max_coverage])
    utilities = {
        int(v): PiecewiseLinear(xs, float(rng.random()) * xs)
        for v in graph.reachable_cells
    }
    solution = milp.solve(utilities)
    best_pure = max(
        pure_strategy_value(graph, utilities, p, k)
        for p in enumerate_paths(graph)
    )
    assert solution.objective_value == pytest.approx(best_pure, abs=1e-5)
