"""Serialize patrol-graph MILP instances into the zoo as ``.npz`` files.

The programmatic models in :mod:`tests.solver_zoo.models` are tiny and
synthetic; the serialized instances freeze *real* patrol MILPs (built by
:class:`repro.planning.milp.PatrolMILP` from a time-unrolled park graph)
so the zoo also pins the solver on the row structure it actually faces
in production: flow balance, coverage links, SOS2 utility envelopes.

Regenerate with::

    PYTHONPATH=src python -m tests.solver_zoo.serialize

which rewrites ``tests/solver_zoo/instances/*.npz`` deterministically
(fixed seeds, no timestamps).  Expected objectives/statuses are *not*
stored here — they are pinned literally in ``test_zoo.py`` so a silent
regeneration cannot move the goalposts.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
from scipy import sparse

from .models import ZooInstance

INSTANCE_DIR = Path(__file__).resolve().parent / "instances"


def save_instance(inst: ZooInstance, path: Path) -> None:
    """Write a :class:`ZooInstance` to ``path`` as a compressed ``.npz``."""
    csr = sparse.csr_matrix(inst.matrix)
    payload = {
        "c": np.asarray(inst.c, dtype=float),
        "data": csr.data,
        "indices": csr.indices,
        "indptr": csr.indptr,
        "shape": np.asarray(csr.shape, dtype=np.int64),
        "row_lb": np.asarray(inst.row_lb, dtype=float),
        "row_ub": np.asarray(inst.row_ub, dtype=float),
        "binary_mask": np.asarray(inst.binary_mask, dtype=bool),
        "row_kinds": np.asarray(inst.row_kinds, dtype="U32"),
        "description": np.asarray(inst.description, dtype="U256"),
    }
    if inst.var_lb is not None:
        payload["var_lb"] = np.asarray(inst.var_lb, dtype=float)
    if inst.var_ub is not None:
        payload["var_ub"] = np.asarray(inst.var_ub, dtype=float)
    np.savez_compressed(path, **payload)


def load_instance(path: Path) -> ZooInstance:
    """Load a serialized zoo instance back into a :class:`ZooInstance`."""
    with np.load(path, allow_pickle=False) as z:
        matrix = sparse.csr_matrix(
            (z["data"], z["indices"], z["indptr"]), shape=tuple(z["shape"])
        )
        return ZooInstance(
            name=path.stem,
            c=z["c"],
            matrix=matrix,
            row_lb=z["row_lb"],
            row_ub=z["row_ub"],
            binary_mask=z["binary_mask"],
            var_lb=z["var_lb"] if "var_lb" in z else None,
            var_ub=z["var_ub"] if "var_ub" in z else None,
            row_kinds=tuple(str(k) for k in z["row_kinds"]),
            description=str(z["description"]),
        )


def load_all() -> dict[str, ZooInstance]:
    """Load every serialized instance under :data:`INSTANCE_DIR`."""
    return {
        path.stem: load_instance(path)
        for path in sorted(INSTANCE_DIR.glob("*.npz"))
    }


def build_patrol_instance(
    seed: int,
    height: int = 4,
    width: int = 4,
    horizon: int = 4,
    n_breakpoints: int = 4,
    n_patrols: int = 2,
) -> ZooInstance:
    """Freeze one patrol MILP (non-concave utilities force binaries)."""
    from repro.geo import Grid
    from repro.planning.graph import TimeUnrolledGraph
    from repro.planning.milp import PatrolMILP
    from repro.planning.pwl import PiecewiseLinear

    rng = np.random.default_rng(seed)
    grid = Grid.rectangular(height, width)
    graph = TimeUnrolledGraph(grid, source_cell=0, horizon=horizon)
    milp = PatrolMILP(graph, n_patrols=n_patrols)
    xs = np.linspace(0.0, milp.max_coverage, n_breakpoints)
    utilities = {}
    for v in graph.reachable_cells:
        # Sigmoid detection curves anchored at zero are non-concave, so
        # the SOS2 segment binaries genuinely bind.
        scale = rng.random()
        mid = xs[-1] * (0.3 + 0.4 * rng.random())
        raw = 1.0 / (1.0 + np.exp(-1.5 * (xs - mid)))
        utilities[int(v)] = PiecewiseLinear(xs, scale * (raw - raw[0]))
    model = milp.build_model(utilities)
    return ZooInstance(
        name=f"patrol_{height}x{width}_h{horizon}_seed{seed}",
        c=model.objective,
        matrix=model.matrix,
        row_lb=model.row_lb,
        row_ub=model.row_ub,
        binary_mask=model.integrality.astype(bool),
        row_kinds=model.row_kinds,
        description=(
            f"{height}x{width} park, horizon {horizon}, {n_patrols} patrols,"
            f" non-concave SOS2 utilities, seed {seed}"
        ),
    )


def regenerate() -> list[Path]:
    """Rewrite every serialized patrol instance; returns written paths."""
    INSTANCE_DIR.mkdir(parents=True, exist_ok=True)
    written = []
    for seed in (7, 23):
        inst = build_patrol_instance(seed)
        path = INSTANCE_DIR / f"{inst.name}.npz"
        save_instance(inst, path)
        written.append(path)
    return written


if __name__ == "__main__":
    for p in regenerate():
        print(p)
