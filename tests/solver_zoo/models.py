"""Programmatic zoo instances in the ``simple_mip_solver`` taxonomy.

Each builder returns a :class:`ZooInstance` whose arrays feed
:meth:`BranchAndBoundSolver.solve` directly.  The data is integer-valued
on purpose: rounded incumbents are recomputed as ``c @ x_round``, so the
pinned objectives are *bit-equal* across solvers and strategies, not
merely close.

The taxonomy (after simple_mip_solver's test-model zoo):

* ``no_branch`` — the LP relaxation is integral; one node, zero branches.
* ``small_branch`` — two disjoint knapsacks; a handful of nodes.
* ``deep_branch`` — a symmetric knapsack whose naive DFS tree is deep
  and wide; cover cuts collapse it.
* ``infeasible`` — integer-infeasible by construction.
* ``unbounded_relaxation`` — the root LP is unbounded, so no finite
  certificate exists.
* ``degenerate_tie`` — every branching score ties; pins the
  lowest-index tie-break and round-toward-LP child ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse


@dataclass(frozen=True)
class ZooInstance:
    """One solver-zoo model: ``min c @ x`` s.t. ``row_lb <= A x <= row_ub``."""

    name: str
    c: np.ndarray
    matrix: sparse.csr_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    binary_mask: np.ndarray
    var_lb: np.ndarray | None = None
    var_ub: np.ndarray | None = None
    row_kinds: tuple[str, ...] = ()
    #: "optimal", "infeasible", or "unbounded" — what solving must yield.
    expected_status: str = "optimal"
    #: Pinned optimum (bit-equal for integer data); None unless optimal.
    expected_objective: float | None = None
    description: str = ""


def _dense(rows: list[list[float]]) -> sparse.csr_matrix:
    return sparse.csr_matrix(np.array(rows, dtype=float))


def no_branch() -> ZooInstance:
    """Totally unimodular assignment rows: the root LP is already 0/1."""
    # min -(3 x0 + 2 x1 + 2 x2) s.t. x0 + x1 <= 1, x1 + x2 <= 1  (interval
    # matrix => TU => integral vertices).  Optimum picks x0 and x2.
    c = np.array([-3.0, -2.0, -2.0])
    a = _dense([[1, 1, 0], [0, 1, 1]])
    return ZooInstance(
        name="no_branch",
        c=c,
        matrix=a,
        row_lb=np.array([-np.inf, -np.inf]),
        row_ub=np.array([1.0, 1.0]),
        binary_mask=np.ones(3, dtype=bool),
        row_kinds=("knapsack", "knapsack"),
        expected_objective=-5.0,
        description="TU interval matrix; LP relaxation is integral",
    )


def small_branch() -> ZooInstance:
    """Two disjoint 3-item knapsacks; a few branches without cuts."""
    c = np.array([-5.0, -4.0, -3.0, -5.0, -4.0, -3.0])
    a = _dense([[2, 3, 1, 0, 0, 0], [0, 0, 0, 2, 3, 1]])
    return ZooInstance(
        name="small_branch",
        c=c,
        matrix=a,
        row_lb=np.array([-np.inf, -np.inf]),
        row_ub=np.array([4.0, 4.0]),
        binary_mask=np.ones(6, dtype=bool),
        row_kinds=("knapsack", "knapsack"),
        expected_objective=-16.0,
        description="two disjoint knapsacks; shallow fractional root",
    )


def deep_branch() -> ZooInstance:
    """Symmetric knapsack: naive DFS explores hundreds of nodes."""
    # 12 items of weight 2 into capacity 9: the LP packs 4.5 items, and
    # near-symmetric values -(3 + i % 3) make naive DFS enumerate a deep,
    # bushy tree.  An extended cover cut (any 5 items overflow) collapses
    # the whole thing at the root.
    n = 12
    c = -(3.0 + np.arange(n) % 3)
    a = sparse.csr_matrix(np.full((1, n), 2.0))
    return ZooInstance(
        name="deep_branch",
        c=c,
        matrix=a,
        row_lb=np.array([-np.inf]),
        row_ub=np.array([9.0]),
        binary_mask=np.ones(n, dtype=bool),
        row_kinds=("knapsack",),
        expected_objective=-20.0,
        description="symmetric knapsack; deep naive-DFS tree",
    )


def infeasible() -> ZooInstance:
    """No 0/1 point exists: two binaries must sum to at least 3."""
    c = np.array([1.0, 1.0])
    a = _dense([[1, 1]])
    return ZooInstance(
        name="infeasible",
        c=c,
        matrix=a,
        row_lb=np.array([3.0]),
        row_ub=np.array([np.inf]),
        binary_mask=np.ones(2, dtype=bool),
        row_kinds=("capacity",),
        expected_status="infeasible",
        description="x0 + x1 >= 3 over two binaries",
    )


def unbounded_relaxation() -> ZooInstance:
    """A free continuous column drives the root LP to -inf."""
    c = np.array([-1.0, -1.0])
    a = _dense([[1, 0]])
    return ZooInstance(
        name="unbounded_relaxation",
        c=c,
        matrix=a,
        row_lb=np.array([-np.inf]),
        row_ub=np.array([1.0]),
        binary_mask=np.array([True, False]),
        var_lb=np.array([0.0, 0.0]),
        var_ub=np.array([1.0, np.inf]),
        expected_status="unbounded",
        description="continuous column with negative cost and no upper bound",
    )


def degenerate_tie() -> ZooInstance:
    """Both variables sit at 0.5 with equal objective: everything ties.

    The LP relaxation of ``min -(x0 + x1)`` s.t. ``2 x0 <= 1``,
    ``2 x1 <= 1`` has the unique optimum (0.5, 0.5).  Fractionality and
    pseudo-cost scores tie exactly, so the branching choice exposes the
    ``np.argmax`` lowest-index rule, and ``x0 = 0.5`` sits exactly on the
    round-toward-LP threshold, exposing the up-child-first rule.
    """
    c = np.array([-1.0, -1.0])
    a = _dense([[2, 0], [0, 2]])
    return ZooInstance(
        name="degenerate_tie",
        c=c,
        matrix=a,
        row_lb=np.array([-np.inf, -np.inf]),
        row_ub=np.array([1.0, 1.0]),
        binary_mask=np.ones(2, dtype=bool),
        row_kinds=("knapsack", "knapsack"),
        expected_objective=0.0,
        description="exact branching-score tie at (0.5, 0.5)",
    )


#: Name -> builder for every programmatic zoo instance.
ZOO_BUILDERS = {
    "no_branch": no_branch,
    "small_branch": small_branch,
    "deep_branch": deep_branch,
    "infeasible": infeasible,
    "unbounded_relaxation": unbounded_relaxation,
    "degenerate_tie": degenerate_tie,
}


def build_all() -> dict[str, ZooInstance]:
    """Instantiate the full programmatic zoo."""
    return {name: builder() for name, builder in ZOO_BUILDERS.items()}
