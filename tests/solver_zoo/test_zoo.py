"""The solver zoo: pinned search behaviour for every B&B strategy.

Every zoo instance pins the objective, terminal status, node count, AND
the exploration-order fingerprint for every search strategy, both with
cuts enabled (the production default) and disabled (which separates the
strategies' search orders).  A change to branching, node selection, cut
separation, or warm-start vertices that alters the search tree fails
here *by name* — intentional changes must repin consciously.

Also hosts the branching-determinism contract (S3: ``np.argmax``
lowest-index tie-break, round-toward-LP child ordering) and the
B&B <-> HiGHS cross-validation on seeded randomized patrol instances
(S4).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.exceptions import InfeasibleError, PlanningError
from repro.planning.branch_and_bound import (
    BNB_STRATEGIES,
    BranchAndBoundSolver,
)

from .models import ZOO_BUILDERS, ZooInstance, build_all, degenerate_tie
from .serialize import build_patrol_instance, load_all, load_instance

# ---------------------------------------------------------------------------
# The pin table.  (instance, strategy, cuts) -> (objective, nodes, sha1[:16]).
#
# Objectives are bit-equal pins: zoo data is integer-valued and incumbents
# are recomputed as ``c @ x_round``, so equality is exact, not approximate
# (patrol instances pin the float the solver reproducibly computes).
# Regenerate a row by running the instance once and pasting the values —
# and say in the commit message *why* the search tree moved.
# ---------------------------------------------------------------------------
EXPECTED = {
    ("no_branch", "dfs", True): (-5.0, 1, "a10b28ffe527c1be"),
    ("no_branch", "best_bound", True): (-5.0, 1, "a10b28ffe527c1be"),
    ("no_branch", "pseudo_cost", True): (-5.0, 1, "a10b28ffe527c1be"),
    ("no_branch", "dfs", False): (-5.0, 1, "a10b28ffe527c1be"),
    ("no_branch", "best_bound", False): (-5.0, 1, "a10b28ffe527c1be"),
    ("no_branch", "pseudo_cost", False): (-5.0, 1, "a10b28ffe527c1be"),
    ("small_branch", "dfs", True): (-16.0, 1, "a10b28ffe527c1be"),
    ("small_branch", "best_bound", True): (-16.0, 1, "a10b28ffe527c1be"),
    ("small_branch", "pseudo_cost", True): (-16.0, 1, "a10b28ffe527c1be"),
    ("small_branch", "dfs", False): (-16.0, 7, "15ad87b33e225c5c"),
    ("small_branch", "best_bound", False): (-16.0, 7, "55aecc26f0e6c595"),
    ("small_branch", "pseudo_cost", False): (-16.0, 7, "55aecc26f0e6c595"),
    ("deep_branch", "dfs", True): (-20.0, 1, "a10b28ffe527c1be"),
    ("deep_branch", "best_bound", True): (-20.0, 1, "a10b28ffe527c1be"),
    ("deep_branch", "pseudo_cost", True): (-20.0, 1, "a10b28ffe527c1be"),
    ("deep_branch", "dfs", False): (-20.0, 937, "4bc1d16666d1e900"),
    ("deep_branch", "best_bound", False): (-20.0, 329, "75d0f8940227487f"),
    ("deep_branch", "pseudo_cost", False): (-20.0, 329, "75d0f8940227487f"),
    ("degenerate_tie", "dfs", True): (0.0, 5, "a8dbe75c96246d46"),
    ("degenerate_tie", "best_bound", True): (0.0, 5, "a8dbe75c96246d46"),
    ("degenerate_tie", "pseudo_cost", True): (0.0, 5, "a8dbe75c96246d46"),
    ("degenerate_tie", "dfs", False): (0.0, 5, "a8dbe75c96246d46"),
    ("degenerate_tie", "best_bound", False): (0.0, 5, "a8dbe75c96246d46"),
    ("degenerate_tie", "pseudo_cost", False): (0.0, 5, "a8dbe75c96246d46"),
    ("patrol_4x4_h4_seed7", "dfs", True):
        (-0.6669988027977525, 5, "45167f89822b9c47"),
    ("patrol_4x4_h4_seed7", "best_bound", True):
        (-0.6669988027977525, 5, "45167f89822b9c47"),
    ("patrol_4x4_h4_seed7", "pseudo_cost", True):
        (-0.6669988027977525, 5, "45167f89822b9c47"),
    ("patrol_4x4_h4_seed23", "dfs", True):
        (-0.6896865275335958, 3, "31c987a889a6ed40"),
    ("patrol_4x4_h4_seed23", "best_bound", True):
        (-0.6896865275335958, 3, "31c987a889a6ed40"),
    ("patrol_4x4_h4_seed23", "pseudo_cost", True):
        (-0.6896865275335958, 3, "31c987a889a6ed40"),
}


def _zoo() -> dict[str, ZooInstance]:
    return {**build_all(), **load_all()}


_INSTANCES = _zoo()


def _solve(inst: ZooInstance, strategy: str, cuts: bool):
    solver = BranchAndBoundSolver(strategy=strategy, cuts=cuts)
    return solver.solve(
        inst.c,
        inst.matrix,
        inst.row_lb,
        inst.row_ub,
        inst.binary_mask,
        var_lb=inst.var_lb,
        var_ub=inst.var_ub,
        row_kinds=inst.row_kinds or None,
    )


class TestZooPins:
    @pytest.mark.parametrize(
        "name,strategy,cuts",
        sorted(EXPECTED),
        ids=[
            f"{name}-{strategy}-{'cuts' if cuts else 'nocuts'}"
            for name, strategy, cuts in sorted(EXPECTED)
        ],
    )
    def test_pinned_fingerprint(self, name, strategy, cuts):
        inst = _INSTANCES[name]
        result = _solve(inst, strategy, cuts)
        objective, nodes, fingerprint = EXPECTED[(name, strategy, cuts)]
        assert result.status == "optimal"
        assert result.objective_value == objective
        assert result.n_nodes_explored == nodes
        assert result.exploration_fingerprint == fingerprint
        assert result.best_bound == pytest.approx(objective, abs=1e-9)
        assert result.bound_gap == 0.0

    @pytest.mark.parametrize("strategy", BNB_STRATEGIES)
    def test_infeasible_instance_raises(self, strategy):
        inst = _INSTANCES["infeasible"]
        with pytest.raises(InfeasibleError):
            _solve(inst, strategy, cuts=True)

    @pytest.mark.parametrize("strategy", BNB_STRATEGIES)
    def test_unbounded_relaxation_raises(self, strategy):
        inst = _INSTANCES["unbounded_relaxation"]
        with pytest.raises(PlanningError, match="unbounded"):
            _solve(inst, strategy, cuts=True)

    def test_expected_table_covers_every_optimal_instance(self):
        """Adding a zoo instance without pinning it is itself a failure."""
        optimal = {
            name
            for name, inst in _INSTANCES.items()
            if inst.expected_status == "optimal"
        }
        pinned = {name for name, _, _ in EXPECTED}
        assert pinned == optimal
        for name in optimal:
            for strategy in BNB_STRATEGIES:
                assert (name, strategy, True) in EXPECTED

    def test_builders_match_expected_objectives(self):
        for name, builder in ZOO_BUILDERS.items():
            inst = builder()
            if inst.expected_status != "optimal":
                continue
            result = _solve(inst, "best_bound", cuts=True)
            assert result.objective_value == inst.expected_objective


class TestSerializedInstances:
    def test_round_trip_preserves_model(self, tmp_path):
        from .serialize import save_instance

        inst = _INSTANCES["small_branch"]
        path = tmp_path / "small_branch.npz"
        save_instance(inst, path)
        back = load_instance(path)
        assert back.name == "small_branch"
        np.testing.assert_array_equal(back.c, inst.c)
        np.testing.assert_array_equal(
            back.matrix.toarray(), inst.matrix.toarray()
        )
        np.testing.assert_array_equal(back.row_lb, inst.row_lb)
        np.testing.assert_array_equal(back.row_ub, inst.row_ub)
        np.testing.assert_array_equal(back.binary_mask, inst.binary_mask)
        assert back.row_kinds == inst.row_kinds

    def test_serialized_patrol_instances_are_reproducible(self):
        """The committed .npz files match a fresh deterministic rebuild."""
        for seed in (7, 23):
            fresh = build_patrol_instance(seed)
            stored = _INSTANCES[fresh.name]
            np.testing.assert_array_equal(stored.c, fresh.c)
            np.testing.assert_array_equal(
                stored.matrix.toarray(), fresh.matrix.toarray()
            )
            np.testing.assert_array_equal(stored.row_lb, fresh.row_lb)
            np.testing.assert_array_equal(stored.row_ub, fresh.row_ub)
            np.testing.assert_array_equal(
                stored.binary_mask, fresh.binary_mask
            )
            assert stored.row_kinds == fresh.row_kinds

    def test_serialized_instances_carry_patrol_row_structure(self):
        for name, inst in load_all().items():
            kinds = set(inst.row_kinds)
            assert "flow-source" in kinds, name
            assert "sos2-sum" in kinds, name
            assert inst.binary_mask.any(), name


class TestBranchingDeterminism:
    """S3: the documented tie-breaks, pinned through branch histories."""

    def test_argmax_breaks_fractionality_ties_at_lowest_index(self):
        """(0.5, 0.5) ties exactly; the root must branch on variable 0."""
        inst = degenerate_tie()
        for strategy in BNB_STRATEGIES:
            result = _solve(inst, strategy, cuts=False)
            root_entry = result.branch_history[0]
            assert root_entry == (-1, -1, "B", 0), strategy

    def test_fraction_at_half_explores_up_child_first(self):
        """x = 0.5 rounds up: the x=1 child is explored before x=0."""
        inst = degenerate_tie()
        for strategy in BNB_STRATEGIES:
            result = _solve(inst, strategy, cuts=False)
            first_child = result.branch_history[1]
            assert first_child[:2] == (0, 1), strategy

    def test_fraction_below_half_explores_down_child_first(self):
        """x = 1/3 rounds down: the x=0 child is explored before x=1."""
        c = np.array([-1.0, -1.0])
        a = sparse.csr_matrix(np.array([[3.0, 0.0], [0.0, 1.0]]))
        row_lb = np.array([-np.inf, -np.inf])
        row_ub = np.array([1.0, 1.0])
        mask = np.ones(2, dtype=bool)
        for strategy in BNB_STRATEGIES:
            solver = BranchAndBoundSolver(strategy=strategy, cuts=False)
            result = solver.solve(c, a, row_lb, row_ub, mask)
            assert result.branch_history[0] == (-1, -1, "B", 0), strategy
            assert result.branch_history[1][:2] == (0, 0), strategy
            assert result.objective_value == -1.0

    def test_repeated_solves_are_bitwise_identical(self):
        """No hidden state: same instance, same fingerprint, every time."""
        inst = _INSTANCES["patrol_4x4_h4_seed7"]
        results = [_solve(inst, "best_bound", cuts=True) for _ in range(3)]
        fingerprints = {r.exploration_fingerprint for r in results}
        objectives = {r.objective_value for r in results}
        assert len(fingerprints) == 1
        assert len(objectives) == 1


class TestHighsCrossValidation:
    """S4: B&B and HiGHS agree on seeded randomized patrol instances."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_agrees_with_highs_on_random_patrol_instances(self, seed):
        inst = build_patrol_instance(seed, height=3, width=4, horizon=3)
        reference = milp(
            c=inst.c,
            constraints=LinearConstraint(inst.matrix, inst.row_lb, inst.row_ub),
            integrality=inst.binary_mask.astype(int),
            bounds=Bounds(np.zeros(inst.c.size), np.ones(inst.c.size)),
        )
        assert reference.status == 0
        for strategy in BNB_STRATEGIES:
            result = _solve(inst, strategy, cuts=True)
            assert result.status == "optimal"
            assert result.objective_value == pytest.approx(
                reference.fun, abs=1e-6
            ), strategy
