"""The branch-and-bound test-model zoo.

Programmatically-built MILP instances in the ``simple_mip_solver``
taxonomy (no-branch, small-branch, deep-branch, infeasible,
unbounded-relaxation, degenerate-tie) plus serialized patrol-graph
instances.  Every entry pins objective, status, node count, and the
exploration-order fingerprint for every search strategy, so a solver
speedup that silently changes the search tree fails loudly.
"""
