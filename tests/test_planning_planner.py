"""Tests for repro.planning.planner and repro.planning.game."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MFNP, PoacherModel, SyntheticPark, generate_dataset
from repro.exceptions import ConfigurationError
from repro.geo import Grid
from repro.planning import GreenSecurityGame, PatrolPlanner, RobustObjective

SMALL = MFNP.scaled(0.5)


@pytest.fixture(scope="module")
def planner_setup():
    rng = np.random.default_rng(0)
    grid = Grid.rectangular(6, 6)
    planner = PatrolPlanner(grid, source_cell=0, horizon=8, n_patrols=2,
                            n_segments=6)
    xs = planner.breakpoints()
    # Saturating risk curves anchored at g(0)=0, varying by cell.
    scale = rng.random(grid.n_cells) * 0.5
    risk = scale[:, None] * (1 - np.exp(-0.4 * xs[None, :]))
    nu = np.tile(rng.random(grid.n_cells)[:, None], (1, xs.size))
    objective = RobustObjective(xs, risk, nu, beta=0.0)
    return planner, objective


class TestPatrolPlanner:
    def test_plan_basic_invariants(self, planner_setup):
        planner, objective = planner_setup
        plan = planner.plan(objective)
        assert plan.coverage.sum() == pytest.approx(planner.max_coverage, rel=1e-6)
        assert plan.objective_value >= 0
        assert plan.routes
        assert plan.beta == 0.0

    def test_beta_override(self, planner_setup):
        planner, objective = planner_setup
        plan = planner.plan(objective, beta=1.0)
        assert plan.beta == 1.0
        # Fully robust objective cannot exceed the risk-neutral one.
        risk_plan = planner.plan(objective, beta=0.0)
        assert plan.objective_value <= risk_plan.objective_value + 1e-6

    def test_robust_plan_avoids_uncertain_cells(self):
        """With two equal-risk arms, beta=1 must pick the certain one."""
        grid = Grid.rectangular(3, 5)
        post = grid.cell_id(1, 2)
        planner = PatrolPlanner(grid, post, horizon=6, n_patrols=1, n_segments=5)
        xs = planner.breakpoints()
        risk = np.zeros((grid.n_cells, xs.size))
        nu = np.zeros((grid.n_cells, xs.size))
        left = grid.cell_id(1, 1)
        right = grid.cell_id(1, 3)
        curve = 0.9 * (1 - np.exp(-0.8 * xs))
        risk[left] = curve
        risk[right] = curve
        nu[left] = 0.95   # attractive but wildly uncertain
        nu[right] = 0.05  # equally attractive, confident
        objective = RobustObjective(xs, risk, nu, beta=1.0)
        plan = planner.plan(objective)
        assert plan.coverage[right] > plan.coverage[left]

    def test_solution_quality_ratio_at_least_one(self, planner_setup):
        planner, objective = planner_setup
        ratio = planner.solution_quality_ratio(objective, beta=0.9)
        # Robust plan optimises U_beta exactly, so up to PWL resampling the
        # ratio cannot be materially below 1.
        assert ratio >= 1.0 - 1e-6

    def test_mismatched_objective_rejected(self, planner_setup):
        planner, __ = planner_setup
        xs = planner.breakpoints()
        bad = RobustObjective(xs, np.zeros((3, xs.size)), np.zeros((3, xs.size)), 0.0)
        with pytest.raises(ConfigurationError):
            planner.plan(bad)

    def test_bad_segments(self):
        with pytest.raises(ConfigurationError):
            PatrolPlanner(Grid.rectangular(4, 4), 0, n_segments=0)

    def test_end_to_end_with_predictor(self):
        """Full Section VI pipeline on simulated data."""
        from repro.core import PawsPredictor

        data = generate_dataset(SMALL, seed=0)
        split = data.dataset.split_by_test_year(4)
        pred = PawsPredictor(model="gpb", iware=True, n_classifiers=5,
                             n_estimators=3, seed=1).fit(split.train)
        park = data.park
        features = pred.cell_feature_matrix(park, data.recorded_effort[-1])
        planner = PatrolPlanner(park.grid, int(park.patrol_posts[0]),
                                horizon=8, n_patrols=2, n_segments=6)
        xs = planner.breakpoints()
        risk, nu = pred.effort_response(features, xs)
        assert risk[:, 0].max() == 0.0  # g(0) anchored at zero
        objective = RobustObjective(xs, risk, nu, beta=0.0)
        plan = planner.plan(objective, beta=0.5)
        assert plan.coverage.sum() == pytest.approx(planner.max_coverage, rel=1e-6)
        assert all(r.cells[0] == int(park.patrol_posts[0]) for r in plan.routes)


class TestGreenSecurityGame:
    @pytest.fixture()
    def game(self, rng):
        logits = rng.normal(-2.0, 1.0, size=25)
        return GreenSecurityGame(logits, detect_rate=0.5, response_rationality=0.5)

    def test_defender_utility_increases_with_coverage(self, game):
        zero = game.defender_utility(np.zeros(25))
        some = game.defender_utility(np.full(25, 2.0))
        assert some > zero
        assert zero == 0.0

    def test_attack_probability_deterred_by_coverage(self, game):
        base = game.attack_probabilities(np.zeros(25))
        deterred = game.attack_probabilities(np.full(25, 3.0))
        assert (deterred < base).all()

    def test_zero_sum_structure(self, game, rng):
        coverage = rng.random(25) * 3
        attack = game.attack_probabilities(coverage)
        total = game.defender_utility(coverage) + game.adversary_utility(coverage)
        assert total == pytest.approx(float(attack.sum()))

    def test_simulation_tracks_expectation(self, game, rng):
        coverage = np.full(25, 2.0)
        expected = game.defender_utility(coverage)
        n_rounds = 400
        count = game.simulate_detections(coverage, rng, n_rounds=n_rounds)
        assert count / n_rounds == pytest.approx(expected, rel=0.25)

    def test_from_poacher_model(self):
        park = SyntheticPark.generate(SMALL, seed=1)
        poachers = PoacherModel(park, seed=2)
        game = GreenSecurityGame.from_poacher_model(poachers)
        assert game.n_cells == park.n_cells
        base = game.attack_probabilities(np.zeros(park.n_cells))
        np.testing.assert_allclose(
            base, poachers.attack_probability(0), atol=1e-9
        )

    def test_validation(self, game):
        with pytest.raises(ConfigurationError):
            game.defender_utility(np.zeros(3))
        with pytest.raises(ConfigurationError):
            game.defender_utility(np.full(25, -1.0))
        with pytest.raises(ConfigurationError):
            GreenSecurityGame(np.zeros(4), detect_rate=0.0)
        with pytest.raises(ConfigurationError):
            game.simulate_detections(np.zeros(25), np.random.default_rng(0), 0)
