"""Tests for repro.core.ensemble, uncertainty, and predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IWareEnsemble, PawsPredictor, UncertaintyScaler, make_weak_learner
from repro.core.ensemble import _prior_correct
from repro.data import MFNP, generate_dataset
from repro.exceptions import ConfigurationError, DataError, NotFittedError

SMALL = MFNP.scaled(0.5)


@pytest.fixture(scope="module")
def split():
    return generate_dataset(SMALL, seed=0).dataset.split_by_test_year(4)


@pytest.fixture(scope="module")
def fitted_gpb(split):
    predictor = PawsPredictor(
        model="gpb", iware=True, n_classifiers=6, n_estimators=3, seed=2
    )
    return predictor.fit(split.train)


def dtb_factory(seed=0):
    return make_weak_learner("dtb", rng=np.random.default_rng(seed), n_estimators=3)


class TestIWareEnsemble:
    def test_fit_and_thresholds(self, split):
        ens = IWareEnsemble(dtb_factory(), n_classifiers=6,
                            rng=np.random.default_rng(0)).fit(split.train)
        assert ens.thresholds_ is not None
        assert ens.thresholds_[0] == 0.0
        assert len(ens.classifiers_) == len(ens.thresholds_)
        assert ens.weights_.sum() == pytest.approx(1.0)

    def test_member_probabilities_shape(self, split):
        ens = IWareEnsemble(dtb_factory(), n_classifiers=5,
                            rng=np.random.default_rng(0)).fit(split.train)
        X = split.test.feature_matrix
        assert ens.member_probabilities(X).shape == (ens.n_thresholds, X.shape[0])

    def test_predict_proba_in_unit_interval(self, split):
        ens = IWareEnsemble(dtb_factory(), n_classifiers=5,
                            rng=np.random.default_rng(0)).fit(split.train)
        p = ens.predict_proba(split.test.feature_matrix)
        assert (p >= 0).all() and (p <= 1).all()

    def test_effort_qualification_monotone_vote_pool(self, split):
        """Higher hypothetical effort qualifies at least as many classifiers."""
        ens = IWareEnsemble(dtb_factory(), n_classifiers=6,
                            rng=np.random.default_rng(0)).fit(split.train)
        n = 5
        low = ens._qualification(0.0, n)
        high = ens._qualification(100.0, n)
        assert (low <= high).all()
        assert high.all()

    def test_effort_response_varies(self, split):
        ens = IWareEnsemble(dtb_factory(), n_classifiers=6,
                            rng=np.random.default_rng(0)).fit(split.train)
        X = split.test.feature_matrix[:20]
        g_low = ens.predict_at_effort(X, 0.5)
        g_high = ens.predict_at_effort(X, 8.0)
        assert not np.allclose(g_low, g_high)

    def test_negative_effort_rejected(self, split):
        ens = IWareEnsemble(dtb_factory(), n_classifiers=4,
                            rng=np.random.default_rng(0)).fit(split.train)
        with pytest.raises(ConfigurationError):
            ens.predict_at_effort(split.test.feature_matrix[:2], -1.0)
        with pytest.raises(ConfigurationError):
            ens.variance_at_effort(split.test.feature_matrix[:2], -1.0)

    def test_qualified_weighting_mode(self, split):
        ens = IWareEnsemble(dtb_factory(), n_classifiers=5, weighting="qualified",
                            rng=np.random.default_rng(0)).fit(split.train)
        np.testing.assert_allclose(ens.weights_, 1.0 / ens.n_thresholds)

    def test_equal_threshold_scheme(self, split):
        ens = IWareEnsemble(dtb_factory(), n_classifiers=5, threshold_scheme="equal",
                            theta_range=(0.0, 6.0),
                            rng=np.random.default_rng(0)).fit(split.train)
        np.testing.assert_allclose(np.diff(ens.thresholds_), 1.5)

    def test_unfitted_raises(self, split):
        ens = IWareEnsemble(dtb_factory(), n_classifiers=3)
        with pytest.raises(NotFittedError):
            ens.predict_proba(split.test.feature_matrix)

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            IWareEnsemble(dtb_factory(), threshold_scheme="banana")
        with pytest.raises(ConfigurationError):
            IWareEnsemble(dtb_factory(), weighting="banana")
        with pytest.raises(ConfigurationError):
            IWareEnsemble(dtb_factory(), n_classifiers=0)
        with pytest.raises(ConfigurationError):
            IWareEnsemble(dtb_factory(), cv_folds=1)

    def test_variance_nonnegative(self, split):
        ens = IWareEnsemble(dtb_factory(), n_classifiers=4,
                            rng=np.random.default_rng(0)).fit(split.train)
        v = ens.predict_variance(split.test.feature_matrix[:10])
        assert (v >= 0).all()


class TestPriorCorrection:
    def test_identity_when_rates_match(self):
        probs = np.array([[0.2, 0.7]])
        out = _prior_correct(probs, np.array([0.3]), 0.3)
        np.testing.assert_allclose(out, probs)

    def test_downscales_when_subset_richer(self):
        probs = np.array([[0.5]])
        out = _prior_correct(probs, np.array([0.5]), 0.1)
        assert out[0, 0] < 0.5

    def test_degenerate_rate_passthrough(self):
        probs = np.array([[0.4]])
        out = _prior_correct(probs, np.array([0.0]), 0.1)
        np.testing.assert_allclose(out, probs)

    def test_monotone_in_input(self):
        probs = np.linspace(0.01, 0.99, 20)[None, :]
        out = _prior_correct(probs, np.array([0.6]), 0.2)
        assert (np.diff(out[0]) > 0).all()


class TestUncertaintyScaler:
    def test_output_in_unit_interval(self, rng):
        raw = rng.exponential(1.0, size=500)
        scaled = UncertaintyScaler().fit_transform(raw)
        assert (scaled > 0).all() and (scaled < 1).all()

    def test_median_maps_to_half(self, rng):
        raw = rng.exponential(1.0, size=501)
        scaler = UncertaintyScaler().fit(raw)
        mid = scaler.transform(np.array([np.median(raw)]))
        assert mid[0] == pytest.approx(0.5, abs=1e-6)

    def test_monotone(self, rng):
        raw = rng.random(200)
        scaler = UncertaintyScaler().fit(raw)
        grid = np.linspace(raw.min(), raw.max(), 50)
        out = scaler.transform(grid)
        assert (np.diff(out) >= 0).all()

    def test_constant_input(self):
        scaled = UncertaintyScaler().fit_transform(np.full(10, 2.0))
        np.testing.assert_allclose(scaled, 0.5)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            UncertaintyScaler().transform(np.zeros(3))

    def test_empty_raises(self):
        with pytest.raises(DataError):
            UncertaintyScaler().fit(np.array([]))


class TestPawsPredictor:
    def test_auc_better_than_random(self, split, fitted_gpb):
        assert fitted_gpb.evaluate_auc(split.test) > 0.6

    def test_name(self):
        assert PawsPredictor(model="gpb", iware=True).name == "GPB-iW"
        assert PawsPredictor(model="svb", iware=False).name == "SVB"

    def test_flat_baseline(self, split):
        predictor = PawsPredictor(model="dtb", iware=False, n_estimators=3, seed=0)
        predictor.fit(split.train)
        assert predictor.evaluate_auc(split.test) > 0.55

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            PawsPredictor(model="xgboost")

    def test_unfitted_raises(self, split):
        with pytest.raises(NotFittedError):
            PawsPredictor().predict_proba(split.test.feature_matrix)

    def test_effort_response_shapes(self, split, fitted_gpb):
        data = generate_dataset(SMALL, seed=0)
        features = fitted_gpb.cell_feature_matrix(
            data.park, data.recorded_effort[-1]
        )
        grid = np.array([0.5, 1.0, 2.0, 4.0])
        risk, nu = fitted_gpb.effort_response(features, grid)
        assert risk.shape == (data.park.n_cells, 4)
        assert nu.shape == (data.park.n_cells, 4)
        assert (risk >= 0).all() and (risk <= 1).all()
        assert (nu >= 0).all() and (nu <= 1).all()
        assert fitted_gpb.uncertainty_scaler is not None

    def test_effort_response_validation(self, split, fitted_gpb):
        X = split.test.feature_matrix[:3]
        with pytest.raises(ConfigurationError):
            fitted_gpb.effort_response(X, np.array([]))
        with pytest.raises(ConfigurationError):
            fitted_gpb.effort_response(X, np.array([2.0, 1.0]))

    def test_cell_feature_matrix_validation(self, split, fitted_gpb):
        data = generate_dataset(SMALL, seed=0)
        with pytest.raises(DataError):
            fitted_gpb.cell_feature_matrix(data.park, np.zeros(3))

    def test_gpb_variance_positive(self, split, fitted_gpb):
        v = fitted_gpb.predict_variance(split.test.feature_matrix[:10])
        assert (v >= 0).all()
        assert v.max() > 0
