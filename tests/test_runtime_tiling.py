"""Tests for the tiled, parallel prediction engine.

The serving contract: streaming test rows through fixed-size tiles and
fanning ``(member x tile)`` tasks over any pool backend changes **nothing**
— every served surface is bit-identical to the serial, untiled path, for
every tile size (1, odd, larger than the query) and every backend. Tiling
exists purely to bound transient memory at ``O(n_train x tile)`` and to use
the cores.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.exceptions import ConfigurationError
from repro.ml import (
    BaggingClassifier,
    DecisionTreeClassifier,
    GaussianProcessClassifier,
    LinearSVMClassifier,
)
from repro.runtime import RiskMapService
from repro.runtime.parallel import PredictTask, predict_map, tile_slices
from tests.conftest import make_blobs

TILE_SIZES = (1, 7, 10**6)
POOLS = ((1, "auto"), (3, "thread"), (3, "process"), (3, "auto"))


@pytest.fixture(scope="module")
def park_data():
    return generate_dataset(MFNP.scaled(0.4), seed=0)


@pytest.fixture(scope="module")
def park_split(park_data):
    return park_data.dataset.split_by_test_year(4)


def _fit(park_split, model: str, iware: bool = True) -> PawsPredictor:
    return PawsPredictor(
        model=model, iware=iware, n_classifiers=4, n_estimators=2,
        gp_max_points=80, seed=3,
    ).fit(park_split.train)


@pytest.fixture(scope="module")
def gpb_iw(park_split):
    return _fit(park_split, "gpb")


@pytest.fixture(scope="module")
def features(park_data, gpb_iw):
    return gpb_iw.cell_feature_matrix(
        park_data.park, park_data.recorded_effort[-1]
    )


# ---------------------------------------------------------------------------
# tile_slices
# ---------------------------------------------------------------------------
class TestTileSlices:
    def test_none_is_one_tile(self):
        assert tile_slices(10, None) == [slice(0, 10)]

    def test_covers_range_with_partial_remainder(self):
        slices = tile_slices(10, 4)
        assert slices == [slice(0, 4), slice(4, 8), slice(8, 10)]

    def test_tile_one_and_oversized(self):
        assert len(tile_slices(5, 1)) == 5
        assert tile_slices(5, 100) == [slice(0, 5)]

    def test_empty_input_yields_one_empty_slice(self):
        assert tile_slices(0, 4) == [slice(0, 0)]

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ConfigurationError):
            tile_slices(10, 0)
        with pytest.raises(ConfigurationError):
            tile_slices(10, -3)


# ---------------------------------------------------------------------------
# predict_map
# ---------------------------------------------------------------------------
class TestPredictMap:
    @pytest.fixture(scope="class")
    def members(self):
        rng = np.random.default_rng(0)
        X, y = make_blobs(rng, n_per_class=50)
        models = [
            GaussianProcessClassifier(rng=np.random.default_rng(1)).fit(X, y),
            DecisionTreeClassifier(max_depth=4, rng=np.random.default_rng(2)).fit(X, y),
            LinearSVMClassifier(rng=np.random.default_rng(3)).fit(X, y),
        ]
        return models, X

    def test_matches_serial_sweep_at_any_tile_and_pool(self, members):
        models, X = members
        reference = [m.prediction_stats(X) for m in models]
        for tile in (None,) + TILE_SIZES:
            for n_jobs, backend in POOLS:
                got = predict_map(
                    models, X, tile_size=tile, n_jobs=n_jobs, backend=backend
                )
                for (p0, v0), (p1, v1) in zip(reference, got):
                    np.testing.assert_array_equal(p0, p1)
                    np.testing.assert_array_equal(v0, v1)

    def test_method_selection(self, members):
        models, X = members
        probs = predict_map(models, X, tile_size=13, method="predict_proba")
        for model, p in zip(models, probs):
            np.testing.assert_array_equal(model.predict_proba(X), p)

    def test_per_model_method_list(self, members):
        models, X = members
        out = predict_map(
            models, X, tile_size=13,
            method=["predict_proba", "predict_variance", "predict_proba"],
        )
        np.testing.assert_array_equal(out[0], models[0].predict_proba(X))
        np.testing.assert_array_equal(out[1], models[1].predict_variance(X))
        np.testing.assert_array_equal(out[2], models[2].predict_proba(X))

    def test_method_list_length_checked(self, members):
        models, X = members
        with pytest.raises(ConfigurationError):
            predict_map(models, X, method=["predict_proba"])

    def test_empty_query(self, members):
        models, X = members
        out = predict_map(models, X[:0], tile_size=4)
        for p, v in out:
            assert p.shape == (0,) and v.shape == (0,)

    def test_forced_pools_still_bit_identical(self, members, monkeypatch):
        """Real pools (not the serial clamp) preserve bit-identity."""
        import repro.runtime.parallel as par

        monkeypatch.setattr(par, "effective_cpu_count", lambda: 4)
        models, X = members
        reference = [m.prediction_stats(X) for m in models]
        for backend in ("thread", "process"):
            got = predict_map(
                models, X, tile_size=9, n_jobs=4, backend=backend
            )
            for (p0, v0), (p1, v1) in zip(reference, got):
                np.testing.assert_array_equal(p0, p1)
                np.testing.assert_array_equal(v0, v1)

    def test_predict_hints_route_the_auto_vote(self, members):
        models, X = members
        gp, tree, svm = models
        assert PredictTask(gp, X).backend_hint == "thread"
        assert PredictTask(tree, X).backend_hint == "process"
        bag = BaggingClassifier(
            lambda: DecisionTreeClassifier(rng=np.random.default_rng(0)),
            n_estimators=2, rng=np.random.default_rng(1),
        ).fit(*make_blobs(np.random.default_rng(5), n_per_class=30))
        assert bag.predict_backend_hint == "process"


# ---------------------------------------------------------------------------
# Tiled serving through the predictor stack
# ---------------------------------------------------------------------------
class TestTiledServingBitIdentity:
    EFFORT_GRID = np.linspace(0.0, 4.0, 6)

    @pytest.mark.parametrize("model,iware", [
        ("gpb", True), ("dtb", True), ("svb", True),
        ("gpb", False), ("dtb", False),
    ])
    def test_effort_response_identical(self, park_data, park_split, model, iware):
        predictor = _fit(park_split, model, iware)
        X = predictor.cell_feature_matrix(
            park_data.park, park_data.recorded_effort[-1]
        )
        risk0, nu0 = predictor.effort_response(X, self.EFFORT_GRID)
        for tile in TILE_SIZES:
            for n_jobs, backend in POOLS:
                risk, nu = predictor.effort_response(
                    X, self.EFFORT_GRID,
                    tile_size=tile, n_jobs=n_jobs, backend=backend,
                )
                np.testing.assert_array_equal(risk, risk0)
                np.testing.assert_array_equal(nu, nu0)

    def test_risk_map_identical(self, gpb_iw, features):
        for effort in (None, 2.0):
            reference = gpb_iw.predict_proba(features, effort=effort)
            for tile in TILE_SIZES:
                got = gpb_iw.predict_proba(
                    features, effort=effort, tile_size=tile, n_jobs=2
                )
                np.testing.assert_array_equal(got, reference)

    def test_variance_identical(self, gpb_iw, features):
        reference = gpb_iw.predict_variance(features, effort=1.5)
        got = gpb_iw.predict_variance(
            features, effort=1.5, tile_size=11, n_jobs=2
        )
        np.testing.assert_array_equal(got, reference)

    def test_gp_internal_tiling_identical(self, rng):
        X, y = make_blobs(rng, n_per_class=60)
        gp = GaussianProcessClassifier(rng=np.random.default_rng(0)).fit(X, y)
        mean0, var0 = gp._latent_moments(X)
        for tile in (1, 5, 64, 10**4):
            mean, var = gp._latent_moments(X, tile_size=tile)
            np.testing.assert_array_equal(mean, mean0)
            np.testing.assert_array_equal(var, var0)
        np.testing.assert_array_equal(
            gp.predict_proba(X, tile_size=3), gp.predict_proba(X)
        )

    def test_per_level_fallback_routes_through_shared_stats(
        self, gpb_iw, features
    ):
        """``batched=False`` equals the historical per-level loop bit for bit
        while running the members once, not once per level."""
        grid = self.EFFORT_GRID
        legacy_risk = np.stack(
            [gpb_iw.predict_proba(features, effort=float(c)) for c in grid],
            axis=1,
        )
        legacy_risk[:, grid == 0.0] = 0.0
        risk, __ = gpb_iw.effort_response(features, grid, batched=False)
        np.testing.assert_array_equal(risk, legacy_risk)
        # ... and with tiling on top, still identical.
        risk_tiled, __ = gpb_iw.effort_response(
            features, grid, batched=False, tile_size=9, n_jobs=2
        )
        np.testing.assert_array_equal(risk_tiled, legacy_risk)


# ---------------------------------------------------------------------------
# RiskMapService: serve-time tiling + feature registration
# ---------------------------------------------------------------------------
class TestServiceTiling:
    def test_tiled_service_serves_identical_surfaces(self, gpb_iw, features):
        grid = np.linspace(0.0, 3.0, 5)
        plain = RiskMapService(gpb_iw, max_entries=0)
        tiled = RiskMapService(
            gpb_iw, max_entries=0, tile_size=16, n_jobs=3, backend="auto"
        )
        r0, n0 = plain.effort_response(features, grid)
        r1, n1 = tiled.effort_response(features, grid)
        np.testing.assert_array_equal(r0, r1)
        np.testing.assert_array_equal(n0, n1)

    def test_rejects_bad_serve_config(self, gpb_iw):
        with pytest.raises(ConfigurationError):
            RiskMapService(gpb_iw, tile_size=0)
        with pytest.raises(ConfigurationError):
            RiskMapService(gpb_iw, n_jobs=0)
        with pytest.raises(ConfigurationError):
            RiskMapService(gpb_iw, backend="fibers")


class TestFeatureRegistration:
    GRID = np.linspace(0.0, 3.0, 5)

    def test_token_queries_hit_the_cache(self, gpb_iw, features):
        service = RiskMapService(gpb_iw)
        token = service.register_features("park", features)
        r1, n1 = service.effort_response(token, self.GRID)
        r2, n2 = service.effort_response(token, self.GRID)
        assert service.hits == 1 and service.misses == 1
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(n1, n2)

    def test_token_and_array_queries_share_entries(self, gpb_iw, features):
        """Passing the registered array object keys by token, not content."""
        service = RiskMapService(gpb_iw)
        token = service.register_features("park", features)
        service.effort_response(token, self.GRID)
        service.effort_response(features, self.GRID)
        assert service.hits == 1 and service.misses == 1

    def test_token_matches_ad_hoc_result(self, gpb_iw, features):
        service = RiskMapService(gpb_iw)
        token = service.register_features("park", features)
        r_tok, n_tok = service.effort_response(token, self.GRID)
        r_adhoc, n_adhoc = service.effort_response(
            features.copy(), self.GRID
        )
        np.testing.assert_array_equal(r_tok, r_adhoc)
        np.testing.assert_array_equal(n_tok, n_adhoc)

    def test_unknown_token_rejected(self, gpb_iw):
        service = RiskMapService(gpb_iw)
        with pytest.raises(ConfigurationError):
            service.effort_response("nowhere", self.GRID)

    def test_mutating_registered_array_serves_stale_results(
        self, gpb_iw, features
    ):
        """The documented copy-or-reregister contract: the service keys the
        LRU by the registration-time hash, so in-place mutation is *not*
        detected — the stale cached surface comes back on a hit."""
        service = RiskMapService(gpb_iw)
        mutable = features.copy()
        token = service.register_features("park", mutable)
        before, __ = service.effort_response(token, self.GRID)
        mutable[:, -1] += 1.0
        stale, __ = service.effort_response(token, self.GRID)
        assert service.hits == 1
        np.testing.assert_array_equal(stale, before)

    def test_reregistering_after_mutation_refreshes(self, gpb_iw, features):
        service = RiskMapService(gpb_iw)
        mutable = features.copy()
        token = service.register_features("park", mutable)
        service.effort_response(token, self.GRID)
        mutable[:, -1] += 1.0
        token = service.register_features("park", mutable)
        fresh, __ = service.effort_response(token, self.GRID)
        assert service.misses == 2
        expected, __ = RiskMapService(gpb_iw, max_entries=0).effort_response(
            mutable, self.GRID
        )
        np.testing.assert_array_equal(fresh, expected)

    def test_ad_hoc_arrays_still_content_hash(self, gpb_iw, features):
        """Unregistered queries keep the old behaviour: equal content hits."""
        service = RiskMapService(gpb_iw)
        service.effort_response(features.copy(), self.GRID)
        service.effort_response(features.copy(), self.GRID)
        assert service.hits == 1 and service.misses == 1

    def test_risk_map_accepts_tokens(self, gpb_iw, features):
        service = RiskMapService(gpb_iw)
        token = service.register_features("park", features)
        got = service.risk_map(token, effort=2.0)
        np.testing.assert_array_equal(
            got, gpb_iw.predict_proba(features, effort=2.0)
        )
        service.risk_map(token, effort=2.0)
        assert service.hits == 1


# ---------------------------------------------------------------------------
# Serving a masked park: NaN off-park cells stay NaN, tiling changes nothing
# ---------------------------------------------------------------------------
class TestMaskedParkServe:
    def test_masked_cells_stay_nan_through_tiled_serve(
        self, park_split, masked_grid
    ):
        from repro.geo import box_filter

        predictor = _fit(park_split, "gpb")
        rng = np.random.default_rng(0)
        k = park_split.train.feature_matrix.shape[1]
        features = rng.random((masked_grid.n_cells, k))
        tiled = predictor.predict_proba(
            features, effort=2.0, tile_size=7, n_jobs=2
        )
        np.testing.assert_array_equal(
            tiled, predictor.predict_proba(features, effort=2.0)
        )
        raster = masked_grid.vector_to_raster(tiled)
        off_park = ~masked_grid.mask
        assert off_park.any()
        assert np.isnan(raster[off_park]).all()
        assert np.isfinite(raster[masked_grid.mask]).all()
        # Downstream smoothing keeps the mask: off-park cells neither
        # receive nor contribute values.
        smoothed = box_filter(raster, radius=1)
        assert np.isnan(smoothed[off_park]).all()
        assert np.isfinite(smoothed[masked_grid.mask]).all()
