"""Tests for the public API surface and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    AdmissionError,
    CircuitOpenError,
    ConfigurationError,
    ConvergenceError,
    DataError,
    DeadlineExceededError,
    InfeasibleError,
    NotFittedError,
    PlanningError,
    ReproError,
    ResilienceError,
    WorkerCrashError,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, DataError, NotFittedError,
                    ConvergenceError, PlanningError, InfeasibleError,
                    ResilienceError, DeadlineExceededError, WorkerCrashError,
                    AdmissionError, CircuitOpenError):
            assert issubclass(exc, ReproError)

    def test_infeasible_is_planning_error(self):
        assert issubclass(InfeasibleError, PlanningError)

    def test_resilience_family(self):
        assert issubclass(DeadlineExceededError, ResilienceError)
        assert issubclass(WorkerCrashError, ResilienceError)
        assert issubclass(AdmissionError, ResilienceError)
        assert issubclass(CircuitOpenError, ResilienceError)

    def test_single_catch_all(self):
        from repro.geo import Grid

        with pytest.raises(ReproError):
            Grid(0, 0)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.data as data
        import repro.geo as geo
        import repro.ml as ml
        import repro.planning as planning

        for module in (core, data, geo, ml, planning):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module, name)

    def test_pipeline_importable_from_top_level(self):
        from repro import DataToDeploymentPipeline, PipelineResult

        assert DataToDeploymentPipeline is not None
        assert PipelineResult is not None

    def test_weak_learner_registry_matches_table2(self):
        from repro.core import WEAK_LEARNERS

        assert WEAK_LEARNERS == ("svb", "dtb", "gpb")
