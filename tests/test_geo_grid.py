"""Tests for repro.geo.grid."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.geo import Grid


class TestConstruction:
    def test_full_rectangle_has_all_cells(self):
        grid = Grid.rectangular(4, 5)
        assert grid.n_cells == 20
        assert grid.shape == (4, 5)

    def test_area(self):
        grid = Grid.rectangular(4, 5, cell_km=2.0)
        assert grid.area_sq_km == pytest.approx(20 * 4.0)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ConfigurationError):
            Grid(0, 5)
        with pytest.raises(ConfigurationError):
            Grid(5, -1)

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ConfigurationError):
            Grid(3, 3, cell_km=0.0)

    def test_rejects_wrong_mask_shape(self):
        with pytest.raises(ConfigurationError):
            Grid(3, 3, mask=np.ones((2, 3), dtype=bool))

    def test_rejects_empty_mask(self):
        with pytest.raises(ConfigurationError):
            Grid(3, 3, mask=np.zeros((3, 3), dtype=bool))

    def test_elliptical_excludes_corners(self):
        grid = Grid.elliptical(11, 11)
        assert not grid.contains_rc(0, 0)
        assert grid.contains_rc(5, 5)
        assert grid.n_cells < 121

    def test_elliptical_rejects_bad_fullness(self):
        with pytest.raises(ConfigurationError):
            Grid.elliptical(5, 5, fullness=0.0)
        with pytest.raises(ConfigurationError):
            Grid.elliptical(5, 5, fullness=1.5)


class TestIndexing:
    def test_id_roundtrip(self, masked_grid):
        for cid in range(masked_grid.n_cells):
            row, col = masked_grid.cell_rc(cid)
            assert masked_grid.cell_id(row, col) == cid

    def test_ids_are_row_major(self, small_grid):
        assert small_grid.cell_id(0, 0) == 0
        assert small_grid.cell_id(0, 1) == 1
        assert small_grid.cell_id(1, 0) == small_grid.width

    def test_cell_id_outside_lattice_raises(self, small_grid):
        with pytest.raises(ConfigurationError):
            small_grid.cell_id(-1, 0)
        with pytest.raises(ConfigurationError):
            small_grid.cell_id(0, 99)

    def test_cell_id_off_park_raises(self, masked_grid):
        with pytest.raises(ConfigurationError):
            masked_grid.cell_id(0, 0)

    def test_cell_rc_out_of_range(self, small_grid):
        with pytest.raises(ConfigurationError):
            small_grid.cell_rc(small_grid.n_cells)

    def test_center_km(self):
        grid = Grid.rectangular(3, 3, cell_km=2.0)
        assert grid.cell_center_km(0) == (1.0, 1.0)
        assert grid.cell_center_km(grid.cell_id(2, 1)) == (5.0, 3.0)


class TestNeighbors:
    def test_interior_cell_has_four_rook_neighbors(self, small_grid):
        cid = small_grid.cell_id(2, 3)
        assert len(small_grid.neighbors(cid, connectivity=4)) == 4

    def test_corner_cell_has_two_rook_neighbors(self, small_grid):
        assert len(small_grid.neighbors(small_grid.cell_id(0, 0), 4)) == 2

    def test_interior_cell_has_eight_queen_neighbors(self, small_grid):
        cid = small_grid.cell_id(2, 3)
        assert len(small_grid.neighbors(cid, connectivity=8)) == 8

    def test_bad_connectivity(self, small_grid):
        with pytest.raises(ConfigurationError):
            small_grid.neighbors(0, connectivity=6)

    def test_neighbors_respect_mask(self, masked_grid):
        for cid in range(masked_grid.n_cells):
            for nid in masked_grid.neighbors(cid):
                row, col = masked_grid.cell_rc(nid)
                assert masked_grid.mask[row, col]

    def test_neighbor_symmetry(self, masked_grid):
        for cid in range(masked_grid.n_cells):
            for nid in masked_grid.neighbors(cid):
                assert cid in masked_grid.neighbors(nid)


class TestBoundary:
    def test_full_rectangle_boundary(self, small_grid):
        boundary = set(small_grid.boundary_cells().tolist())
        expected = {
            small_grid.cell_id(r, c)
            for r in range(small_grid.height)
            for c in range(small_grid.width)
            if r in (0, small_grid.height - 1) or c in (0, small_grid.width - 1)
        }
        assert boundary == expected

    def test_elliptical_boundary_nonempty(self, masked_grid):
        assert masked_grid.boundary_cells().size > 0


class TestVectorRaster:
    def test_roundtrip(self, masked_grid, rng):
        values = rng.random(masked_grid.n_cells)
        raster = masked_grid.vector_to_raster(values)
        back = masked_grid.raster_to_vector(raster)
        np.testing.assert_allclose(back, values)

    def test_off_park_fill(self, masked_grid):
        raster = masked_grid.vector_to_raster(np.zeros(masked_grid.n_cells), fill=-7.0)
        assert raster[0, 0] == -7.0

    def test_wrong_length_raises(self, masked_grid):
        with pytest.raises(ConfigurationError):
            masked_grid.vector_to_raster(np.zeros(3))

    def test_wrong_raster_shape_raises(self, masked_grid):
        with pytest.raises(ConfigurationError):
            masked_grid.raster_to_vector(np.zeros((2, 2)))


@settings(max_examples=25, deadline=None)
@given(height=st.integers(2, 15), width=st.integers(2, 15))
def test_ids_are_contiguous_permutation(height, width):
    grid = Grid.rectangular(height, width)
    rcs = grid.all_cell_rc()
    ids = [grid.cell_id(int(r), int(c)) for r, c in rcs]
    assert sorted(ids) == list(range(grid.n_cells))
