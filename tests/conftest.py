"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo import Grid


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_grid() -> Grid:
    """A 6x8 full-rectangle park grid."""
    return Grid.rectangular(6, 8)


@pytest.fixture
def masked_grid() -> Grid:
    """A 10x10 elliptical park grid with off-park corners."""
    return Grid.elliptical(10, 10, fullness=0.9)


def make_blobs(
    rng: np.random.Generator, n_per_class: int = 60, spread: float = 0.8,
    n_features: int = 2, separation: float = 2.0
) -> tuple[np.ndarray, np.ndarray]:
    """Two Gaussian blobs: an easy, linearly separable binary problem."""
    center = np.zeros(n_features)
    center[0] = separation
    neg = rng.normal(0.0, spread, size=(n_per_class, n_features))
    pos = rng.normal(0.0, spread, size=(n_per_class, n_features)) + center
    X = np.vstack([neg, pos])
    y = np.r_[np.zeros(n_per_class, dtype=int), np.ones(n_per_class, dtype=int)]
    perm = rng.permutation(X.shape[0])
    return X[perm], y[perm]
