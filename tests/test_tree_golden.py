"""Golden equivalence tests: packed tree builders vs the original builder.

The presorted packed-array builders in :mod:`repro.ml.tree` are contract-bound
to reproduce the original recursive implementation (kept in
:mod:`repro.ml._tree_reference`) *exactly*: identical packed arrays, identical
predictions, identical RNG consumption. These tests enforce that contract on
fixed seeds across both builders (level-wise for ``max_features=None``,
depth-first for feature subsampling), plus the picklability the process
fitting backend relies on.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.ml._tree_reference import (
    _build,
    reference_fit_arrays,
    reference_predict,
)
from repro.ml.tree import DecisionTreeClassifier

PACKED_KEYS = ("feature", "threshold", "probability", "n_samples", "left", "right")


def make_data(seed: int, n: int = 300, k: int = 8, ties: bool = False):
    rng = np.random.default_rng(seed)
    X = rng.random((n, k))
    if ties:
        X = np.round(X, 1)
    y = (rng.random(n) < 0.3).astype(np.int64)
    y[0], y[1] = 0, 1  # both classes always present
    return X, y


def fit_both(X, y, seed: int = 0, **params):
    """Fit the reference and packed builders with identical RNG streams."""
    ref_tree = DecisionTreeClassifier(rng=np.random.default_rng(seed), **params)
    Xc, yc = ref_tree._check_fit_input(X, y)
    ref = reference_fit_arrays(ref_tree, Xc, yc)
    new_tree = DecisionTreeClassifier(rng=np.random.default_rng(seed), **params)
    new_tree.fit(X, y)
    return ref, new_tree, ref_tree, (Xc, yc)


@pytest.mark.parametrize("seed", [0, 1, 7])
@pytest.mark.parametrize(
    "params",
    [
        {},  # level-wise builder (defaults: all features, unbounded depth)
        {"max_depth": 4, "min_samples_leaf": 3},
        {"min_samples_split": 10, "laplace": 0.5},
        {"max_features": "sqrt", "max_depth": 8, "min_samples_leaf": 3},
        {"max_features": 2, "min_samples_leaf": 2},
    ],
)
def test_packed_arrays_identical(seed, params):
    """Both builders produce the seed builder's exact preorder arrays."""
    X, y = make_data(seed, ties=seed % 2 == 1)
    ref, new_tree, __, __ = fit_both(X, y, seed=seed, **params)
    for key in PACKED_KEYS:
        np.testing.assert_array_equal(
            ref[key], new_tree.tree_arrays[key], err_msg=f"array '{key}'"
        )


@pytest.mark.parametrize("params", [{}, {"max_features": "sqrt", "max_depth": 6}])
def test_predictions_identical(params):
    """Iterative packed descent equals the recursive reference, bit for bit."""
    X, y = make_data(3)
    new_tree = DecisionTreeClassifier(rng=np.random.default_rng(3), **params)
    new_tree.fit(X, y)
    ref_tree = DecisionTreeClassifier(rng=np.random.default_rng(3), **params)
    Xc, yc = ref_tree._check_fit_input(X, y)
    root = _build(ref_tree, Xc, yc, 0)
    queries = np.random.default_rng(9).random((500, X.shape[1]))
    np.testing.assert_array_equal(
        reference_predict(root, queries), new_tree.predict_proba(queries)
    )


def test_rng_consumption_matches_reference():
    """Feature-subsampled growth draws candidates in the seed's exact order,
    so the generator ends in the same state."""
    X, y = make_data(5)
    ref_tree = DecisionTreeClassifier(
        max_features=3, rng=np.random.default_rng(42)
    )
    Xc, yc = ref_tree._check_fit_input(X, y)
    reference_fit_arrays(ref_tree, Xc, yc)
    new_tree = DecisionTreeClassifier(
        max_features=3, rng=np.random.default_rng(42)
    ).fit(X, y)
    assert (
        ref_tree.rng.bit_generator.state == new_tree.rng.bit_generator.state
    )


def test_depth_and_leaves_consistent():
    X, y = make_data(6)
    __, new_tree, ref_tree, (Xc, yc) = fit_both(X, y, seed=6, max_depth=5)
    root = _build(ref_tree, Xc, yc, 0)

    def count(node):
        if node.feature < 0:
            return 1
        return count(node.left) + count(node.right)

    def depth_of(node):
        if node.feature < 0:
            return 0
        return 1 + max(depth_of(node.left), depth_of(node.right))

    assert new_tree.n_leaves == count(root)
    assert new_tree.depth == depth_of(root)


def test_fitted_tree_pickles():
    """Fitted trees are plain arrays + config — they must cross process
    boundaries for the process fitting backend."""
    X, y = make_data(8)
    tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
    clone = pickle.loads(pickle.dumps(tree))
    queries = np.random.default_rng(1).random((50, X.shape[1]))
    np.testing.assert_array_equal(
        tree.predict_proba(queries), clone.predict_proba(queries)
    )
    assert tree.fit_backend_hint == "process"


def test_unfitted_tree_pickles():
    """Unfitted trees (phase-2 fit tasks ship them) must pickle too."""
    tree = DecisionTreeClassifier(max_features="sqrt")
    clone = pickle.loads(pickle.dumps(tree))
    X, y = make_data(2)
    clone.fit(X, y)
    assert clone.n_leaves >= 1
