"""Configuration-matrix tests for PawsPredictor variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.data import MFNP, SWS, generate_dataset

SMALL = MFNP.scaled(0.5)


@pytest.fixture(scope="module")
def split():
    return generate_dataset(SMALL, seed=0).dataset.split_by_test_year(4)


@pytest.fixture(scope="module")
def sws_split():
    data = generate_dataset(SWS.scaled(0.8), seed=0)
    for year in (5, 4, 3):
        candidate = data.dataset.split_by_test_year(year)
        if candidate.test.labels.sum() > 0 and candidate.train.labels.sum() > 1:
            return candidate
    pytest.skip("no evaluable SWS test year at this seed")


class TestWeightingModes:
    def test_qualified_mode_works_end_to_end(self, split):
        predictor = PawsPredictor(
            model="dtb", iware=True, weighting="qualified",
            n_classifiers=5, n_estimators=2, seed=0,
        ).fit(split.train)
        auc = predictor.evaluate_auc(split.test)
        assert 0.4 < auc <= 1.0

    def test_equal_threshold_scheme_via_predictor(self, split):
        predictor = PawsPredictor(
            model="dtb", iware=True, threshold_scheme="equal",
            n_classifiers=5, n_estimators=2, seed=0,
        ).fit(split.train)
        assert predictor._ensemble is not None
        diffs = np.diff(predictor._ensemble.thresholds_)
        np.testing.assert_allclose(diffs, diffs[0])

    def test_small_sample_weight_fallback(self, sws_split):
        """Below the positive-count floor, learned weights are uniform."""
        predictor = PawsPredictor(
            model="dtb", iware=True, n_classifiers=4, n_estimators=2, seed=0,
        ).fit(sws_split.train)
        ensemble = predictor._ensemble
        if int(sws_split.train.labels.sum()) < ensemble.MIN_POSITIVES_FOR_WEIGHTS:
            np.testing.assert_allclose(
                ensemble.weights_, 1.0 / ensemble.n_thresholds
            )


class TestBalancedVariants:
    def test_balanced_gpb_runs(self, sws_split):
        predictor = PawsPredictor(
            model="gpb", iware=True, balanced=True,
            n_classifiers=3, n_estimators=2, seed=0,
        ).fit(sws_split.train)
        p = predictor.predict_proba(sws_split.test.feature_matrix)
        assert np.isfinite(p).all()

    def test_balanced_flat_baseline(self, sws_split):
        predictor = PawsPredictor(
            model="dtb", iware=False, balanced=True, n_estimators=3, seed=0,
        ).fit(sws_split.train)
        p = predictor.predict_proba(sws_split.test.feature_matrix)
        assert (p >= 0).all() and (p <= 1).all()


class TestSeedIsolation:
    def test_same_seed_same_model(self, split):
        a = PawsPredictor(model="dtb", iware=True, n_classifiers=4,
                          n_estimators=2, seed=7).fit(split.train)
        b = PawsPredictor(model="dtb", iware=True, n_classifiers=4,
                          n_estimators=2, seed=7).fit(split.train)
        X = split.test.feature_matrix[:30]
        np.testing.assert_allclose(a.predict_proba(X), b.predict_proba(X))

    def test_different_seed_different_model(self, split):
        a = PawsPredictor(model="dtb", iware=True, n_classifiers=4,
                          n_estimators=2, seed=7).fit(split.train)
        b = PawsPredictor(model="dtb", iware=True, n_classifiers=4,
                          n_estimators=2, seed=8).fit(split.train)
        X = split.test.feature_matrix[:30]
        assert not np.allclose(a.predict_proba(X), b.predict_proba(X))


class TestEffortResponseShape:
    def test_risk_zero_at_zero_effort(self, split):
        predictor = PawsPredictor(model="gpb", iware=True, n_classifiers=4,
                                  n_estimators=2, seed=1).fit(split.train)
        X = split.test.feature_matrix[:10]
        grid = np.array([0.0, 1.0, 3.0])
        risk, nu = predictor.effort_response(X, grid)
        np.testing.assert_allclose(risk[:, 0], 0.0)
        assert (risk[:, 1:] >= 0).all()

    def test_risk_grows_from_zero(self, split):
        predictor = PawsPredictor(model="gpb", iware=True, n_classifiers=4,
                                  n_estimators=2, seed=1).fit(split.train)
        X = split.test.feature_matrix[:10]
        grid = np.array([0.0, 2.0])
        risk, __ = predictor.effort_response(X, grid)
        assert risk[:, 1].max() > 0.0
