"""Unit tests for the supervision layer: deadlines, retries, stats, fan-outs.

These cover the healthy-host behaviour of :mod:`repro.runtime.resilience`
(correctness, ordering, deadline accounting, stat plumbing). The faulty-host
behaviour — real worker crashes, degradation, kill-mid-save — lives in the
chaos suite (``tests/test_chaos.py``).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import (
    ConfigurationError,
    DataError,
    DeadlineExceededError,
)
from repro.runtime.resilience import (
    Deadline,
    ResilienceStats,
    RetryPolicy,
    ambient_deadline,
    collect_stats,
    deadline_scope,
    record_stats,
    supervised_map,
)


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------
class TestDeadline:
    @pytest.mark.parametrize("seconds", [0.0, -1.0, float("nan")])
    def test_rejects_non_positive(self, seconds):
        with pytest.raises(ConfigurationError):
            Deadline(seconds)

    def test_remaining_counts_down(self):
        budget = Deadline(60.0)
        first = budget.remaining()
        assert 0.0 < first <= 60.0
        assert budget.remaining() <= first
        assert not budget.expired()

    def test_check_names_the_context(self):
        budget = Deadline(1e-9)
        time.sleep(0.002)
        assert budget.expired()
        with pytest.raises(DeadlineExceededError, match="at solve post 3"):
            budget.check("solve post 3")

    def test_resolve(self):
        assert Deadline.resolve(None) is None
        budget = Deadline(5.0)
        assert Deadline.resolve(budget) is budget
        fresh = Deadline.resolve(2.5)
        assert isinstance(fresh, Deadline) and fresh.seconds == 2.5

    def test_resolve_falls_back_to_ambient(self):
        with deadline_scope(5.0) as budget:
            assert Deadline.resolve(None) is budget


class TestDeadlineScope:
    def test_none_is_a_no_op(self):
        with deadline_scope(None) as budget:
            assert budget is None
            assert ambient_deadline() is None

    def test_innermost_wins_and_unwinds(self):
        assert ambient_deadline() is None
        with deadline_scope(10.0) as outer:
            assert ambient_deadline() is outer
            with deadline_scope(Deadline(1.0)) as inner:
                assert ambient_deadline() is inner
            assert ambient_deadline() is outer
        assert ambient_deadline() is None

    def test_scopes_are_thread_local(self):
        seen = []
        with deadline_scope(10.0):

            def probe():
                seen.append(ambient_deadline())

            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen == [None]


# ---------------------------------------------------------------------------
# RetryPolicy and ResilienceStats
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_deterministic_exponential_backoff(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_cap=0.25)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(3) == pytest.approx(0.04)
        assert policy.backoff(100) == pytest.approx(0.25)  # capped

    def test_zero_base_disables_backoff(self):
        assert RetryPolicy(backoff_base=0.0).backoff(5) == 0.0


class TestResilienceStats:
    def test_merge_sums_counters(self):
        a = ResilienceStats(fanouts=1, tasks=4, retries=1,
                            backends={"process": 1})
        b = ResilienceStats(fanouts=2, tasks=6, worker_deaths=3,
                            degradations=1, deadline_remaining=0.5,
                            backends={"process": 1, "serial": 1})
        a.merge(b)
        assert a.fanouts == 3 and a.tasks == 10
        assert a.retries == 1 and a.worker_deaths == 3 and a.degradations == 1
        assert a.deadline_remaining == 0.5
        assert a.backends == {"process": 2, "serial": 1}

    def test_merge_keeps_last_known_deadline_remaining(self):
        a = ResilienceStats(deadline_remaining=1.0)
        a.merge(ResilienceStats())  # other has none: keep ours
        assert a.deadline_remaining == 1.0

    def test_as_dict_round_trips_counters(self):
        stats = ResilienceStats(fanouts=2, tasks=8, pickle_fallbacks=1)
        snap = stats.as_dict()
        assert snap["fanouts"] == 2 and snap["tasks"] == 8
        assert snap["pickle_fallbacks"] == 1
        assert snap["backends"] == {}
        snap["backends"]["x"] = 1  # a copy, not the live dict
        assert stats.backends == {}

    def test_sinks_nest(self):
        with collect_stats() as outer:
            with collect_stats() as inner:
                record_stats(ResilienceStats(fanouts=1, tasks=3))
            record_stats(ResilienceStats(fanouts=1, tasks=2))
        assert inner.fanouts == 1 and inner.tasks == 3
        assert outer.fanouts == 2 and outer.tasks == 5


# ---------------------------------------------------------------------------
# supervised_map on a healthy host
# ---------------------------------------------------------------------------
def _square(x):
    return x * x


class TestSupervisedMap:
    def test_serial_matches_list_comprehension(self):
        items = list(range(10))
        assert supervised_map(_square, items) == [x * x for x in items]

    def test_thread_backend_preserves_order(self):
        items = list(range(25))
        out = supervised_map(_square, items, workers=4, backend="thread")
        assert out == [x * x for x in items]

    def test_empty_items(self):
        assert supervised_map(_square, [], workers=4, backend="thread") == []

    def test_single_item_or_worker_forces_serial(self):
        for kwargs in ({"workers": 1, "backend": "thread"},
                       {"workers": 4, "backend": "thread"}):
            with collect_stats() as stats:
                supervised_map(_square, [3], **kwargs)
            assert stats.backends == {"serial": 1}

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            supervised_map(_square, [1, 2], workers=2, backend="fork")

    def test_task_exceptions_propagate(self):
        def boom(x):
            if x == 3:
                raise DataError("task 3 is bad")
            return x

        with pytest.raises(DataError, match="task 3 is bad"):
            supervised_map(boom, list(range(8)), workers=4, backend="thread")

    def test_expired_deadline_raises_and_is_counted(self):
        budget = Deadline(0.001)
        time.sleep(0.005)
        with collect_stats() as stats:
            with pytest.raises(DeadlineExceededError):
                supervised_map(
                    _square, list(range(4)), workers=2, backend="thread",
                    deadline=budget,
                )
        assert stats.deadline_exceeded == 1
        assert stats.deadline_remaining is not None
        assert stats.deadline_remaining <= 0.0

    def test_ambient_deadline_is_picked_up(self):
        with deadline_scope(0.001):
            time.sleep(0.005)
            with pytest.raises(DeadlineExceededError):
                supervised_map(_square, list(range(4)))

    def test_generous_deadline_is_harmless(self):
        out = supervised_map(
            _square, list(range(6)), workers=3, backend="thread",
            deadline=60.0,
        )
        assert out == [x * x for x in range(6)]

    def test_stats_record_fanout_shape(self):
        with collect_stats() as stats:
            supervised_map(_square, list(range(7)), workers=3,
                           backend="thread")
        assert stats.fanouts == 1 and stats.tasks == 7
        assert stats.backends == {"thread": 1}
        assert stats.worker_deaths == 0 and stats.retries == 0
