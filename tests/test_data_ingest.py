"""Tests for CSV ingestion of SMART-style exports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MFNP, generate_dataset
from repro.data.ingest import (
    dataset_from_csv,
    export_dataset_to_csv,
    read_cell_features_csv,
    read_observations_csv,
)
from repro.exceptions import DataError


def write(path, text):
    path.write_text(text)
    return path


class TestFeaturesCSV:
    def test_basic_parse(self, tmp_path):
        path = write(tmp_path / "f.csv",
                     "cell_id,elev,dist_river\n0,1.5,2.0\n3,0.5,4.0\n")
        features, names, row_of = read_cell_features_csv(path)
        assert names == ["elev", "dist_river"]
        assert row_of == {0: 0, 3: 1}
        np.testing.assert_allclose(features, [[1.5, 2.0], [0.5, 4.0]])

    def test_missing_cell_id_header(self, tmp_path):
        path = write(tmp_path / "f.csv", "id,elev\n0,1\n")
        with pytest.raises(DataError):
            read_cell_features_csv(path)

    def test_duplicate_cell(self, tmp_path):
        path = write(tmp_path / "f.csv", "cell_id,e\n0,1\n0,2\n")
        with pytest.raises(DataError):
            read_cell_features_csv(path)

    def test_ragged_row(self, tmp_path):
        path = write(tmp_path / "f.csv", "cell_id,e\n0,1,9\n")
        with pytest.raises(DataError):
            read_cell_features_csv(path)

    def test_non_numeric(self, tmp_path):
        path = write(tmp_path / "f.csv", "cell_id,e\n0,banana\n")
        with pytest.raises(DataError):
            read_cell_features_csv(path)

    def test_empty(self, tmp_path):
        path = write(tmp_path / "f.csv", "")
        with pytest.raises(DataError):
            read_cell_features_csv(path)


class TestObservationsCSV:
    def test_basic_parse(self, tmp_path):
        path = write(tmp_path / "o.csv",
                     "period,cell_id,effort_km,poaching\n0,1,2.5,0\n1,1,3.0,1\n")
        rows = read_observations_csv(path)
        assert rows == [(0, 1, 2.5, 0), (1, 1, 3.0, 1)]

    def test_wrong_header(self, tmp_path):
        path = write(tmp_path / "o.csv", "t,cell,e,y\n0,1,2.5,0\n")
        with pytest.raises(DataError):
            read_observations_csv(path)

    def test_negative_effort(self, tmp_path):
        path = write(tmp_path / "o.csv",
                     "period,cell_id,effort_km,poaching\n0,1,-2.5,0\n")
        with pytest.raises(DataError):
            read_observations_csv(path)

    def test_bad_label(self, tmp_path):
        path = write(tmp_path / "o.csv",
                     "period,cell_id,effort_km,poaching\n0,1,2.5,7\n")
        with pytest.raises(DataError):
            read_observations_csv(path)


class TestDatasetFromCSV:
    def make_pair(self, tmp_path):
        f = write(tmp_path / "f.csv",
                  "cell_id,elev\n0,1.0\n1,2.0\n2,3.0\n")
        o = write(
            tmp_path / "o.csv",
            "period,cell_id,effort_km,poaching\n"
            "0,0,2.0,0\n0,1,1.0,0\n"
            "1,0,3.0,1\n1,2,1.5,0\n"
            "2,0,1.0,0\n",
        )
        return f, o

    def test_first_period_skipped(self, tmp_path):
        f, o = self.make_pair(tmp_path)
        ds = dataset_from_csv(f, o)
        assert ds.period.min() == 1
        assert ds.n_points == 3

    def test_prev_effort_reconstructed(self, tmp_path):
        f, o = self.make_pair(tmp_path)
        ds = dataset_from_csv(f, o)
        # (period 1, cell 0): previous effort was 2.0 in period 0.
        idx = int(np.nonzero((ds.period == 1) & (ds.cell == 0))[0][0])
        assert ds.prev_effort[idx] == 2.0
        # (period 1, cell 2): never patrolled before -> 0.
        idx = int(np.nonzero((ds.period == 1) & (ds.cell == 2))[0][0])
        assert ds.prev_effort[idx] == 0.0

    def test_duplicate_rows_merged(self, tmp_path):
        f = write(tmp_path / "f.csv", "cell_id,e\n0,1.0\n")
        o = write(
            tmp_path / "o.csv",
            "period,cell_id,effort_km,poaching\n"
            "0,0,1.0,0\n1,0,2.0,0\n1,0,3.0,1\n",
        )
        ds = dataset_from_csv(f, o)
        assert ds.n_points == 1
        assert ds.current_effort[0] == 5.0
        assert ds.labels[0] == 1

    def test_unknown_cell_rejected(self, tmp_path):
        f = write(tmp_path / "f.csv", "cell_id,e\n0,1.0\n")
        o = write(tmp_path / "o.csv",
                  "period,cell_id,effort_km,poaching\n0,9,1.0,0\n1,9,1.0,0\n")
        with pytest.raises(DataError):
            dataset_from_csv(f, o)

    def test_single_period_rejected(self, tmp_path):
        f = write(tmp_path / "f.csv", "cell_id,e\n0,1.0\n")
        o = write(tmp_path / "o.csv",
                  "period,cell_id,effort_km,poaching\n0,0,1.0,0\n")
        with pytest.raises(DataError):
            dataset_from_csv(f, o)


class TestRoundTrip:
    def test_simulated_dataset_roundtrips(self, tmp_path):
        original = generate_dataset(MFNP.scaled(0.4), seed=0).dataset
        f = tmp_path / "features.csv"
        o = tmp_path / "observations.csv"
        export_dataset_to_csv(original, f, o)
        loaded = dataset_from_csv(f, o, periods_per_year=4, name=original.name)
        assert loaded.n_points == original.n_points
        # Align on (period, cell) and compare the learning-relevant columns.
        key = lambda ds: list(zip(ds.period.tolist(), ds.cell.tolist()))  # noqa: E731
        order_orig = np.argsort(np.lexsort((original.cell, original.period)))
        assert sorted(key(loaded)) == sorted(key(original))
        lookup = {k: i for i, k in enumerate(key(loaded))}
        for i in range(0, original.n_points, 53):
            j = lookup[(int(original.period[i]), int(original.cell[i]))]
            assert loaded.labels[j] == original.labels[i]
            assert loaded.current_effort[j] == pytest.approx(
                float(original.current_effort[i])
            )
            assert loaded.prev_effort[j] == pytest.approx(
                float(original.prev_effort[i])
            )

    def test_imported_dataset_trains_a_model(self, tmp_path):
        from repro.core import PawsPredictor

        original = generate_dataset(MFNP.scaled(0.4), seed=0).dataset
        f, o = tmp_path / "f.csv", tmp_path / "o.csv"
        export_dataset_to_csv(original, f, o)
        loaded = dataset_from_csv(f, o, periods_per_year=4)
        split = loaded.split_by_test_year(4)
        predictor = PawsPredictor(model="dtb", iware=True, n_classifiers=4,
                                  n_estimators=2, seed=0).fit(split.train)
        assert predictor.evaluate_auc(split.test) > 0.5
