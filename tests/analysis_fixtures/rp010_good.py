"""RP010 fixtures: ReproError discipline and an exhaustive status ladder."""


class ReproError(Exception):
    """Stands in for repro.exceptions.ReproError in this fixture."""


class RequestError(ReproError):
    pass


class BrewError(ReproError):
    pass


def _brew(request):
    if request == "coffee":
        raise BrewError("short and stout")
    return request


def handle(request):
    if not request:
        raise RequestError("empty request")
    return _brew(request)


def dispatch(request):
    try:
        body = handle(request)
        status = 200
    except RequestError:
        status = 400
        body = "bad request"
    except BrewError:
        status = 418
        body = "teapot"
    return status, body


def _internal(request):
    # Private helpers may raise whatever they like; the contract binds
    # public entry points only.
    raise KeyError(request)
