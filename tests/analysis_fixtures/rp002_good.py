"""RP002-clean: ReproError discipline, protocol-mandated AttributeError."""

from repro.exceptions import ConfigurationError, ReproError


def risky(value):
    if value < 0:
        raise ConfigurationError("value must be >= 0")
    try:
        return 1.0 / value
    except ZeroDivisionError:
        return 0.0


def guarded(callback):
    try:
        callback()
    except ReproError:
        return None


def __getattr__(name):
    if name == "lazy_thing":
        return object()
    # the module __getattr__ protocol requires AttributeError
    raise AttributeError(f"module has no attribute '{name}'")
