"""RP007 fixtures: inconsistent lock acquisition orders (deadlock risk)."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()
LOCK_C = threading.Lock()
LOCK_D = threading.Lock()
PLAIN = threading.Lock()


def forward():
    with LOCK_A:
        with LOCK_B:
            return 1


def backward():
    # Direct two-lock cycle with forward(): A->B there, B->A here.
    with LOCK_B:
        with LOCK_A:
            return 2


def outer():
    with LOCK_C:
        return helper()


def helper():
    with LOCK_D:
        return 3


def crossing():
    # Call-edge cycle: outer() holds C and acquires D via helper(),
    # while this path holds D and acquires C.
    with LOCK_D:
        with LOCK_C:
            return 4


def stuck():
    # Re-acquiring a non-reentrant lock self-deadlocks immediately.
    with PLAIN:
        with PLAIN:
            return 5
