"""RP005 fixture: a vectorized kernel with its reference twin."""


def frobnicate(values):
    return [v * 2 for v in values]


def frobnicate_reference(values):
    out = []
    for v in values:
        out.append(v * 2)
    return out
