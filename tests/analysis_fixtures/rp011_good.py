"""RP011 fixtures: every acquisition released on all paths."""

import os
import threading
from concurrent.futures import ThreadPoolExecutor

GUARD = threading.Lock()


def context_managed(path):
    with open(path) as handle:
        return handle.read()


def try_finally(path):
    handle = open(path)
    try:
        handle.write("header\n")
    finally:
        handle.close()
    return path


def low_level(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        return os.read(fd, 16)
    finally:
        os.close(fd)


def lock_balanced(flag):
    GUARD.acquire()
    try:
        return bool(flag)
    finally:
        GUARD.release()


def pool_scoped(jobs):
    with ThreadPoolExecutor(max_workers=2) as pool:
        for job in jobs:
            pool.submit(job)
    return len(jobs)


def ownership_transferred(path):
    # Returning the handle hands ownership to the caller; not a leak here.
    handle = open(path)
    return handle
