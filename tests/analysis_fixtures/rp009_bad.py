"""RP009 fixtures: deadlines accepted but dropped at call edges."""


def load_model(name, deadline=None):
    return name


def render(template, deadline=None):
    return template


def serve(request, deadline=None):
    # The callee accepts a deadline and this caller holds one, but the
    # call edge drops it: the budget silently stops propagating.
    model = load_model(request)
    return render(model)
