"""RP010 fixtures: non-ReproError escapes and incomplete status ladders."""


class FixtureError(Exception):
    """Project-defined, but outside the ReproError hierarchy."""


class TeapotError(Exception):
    """Raised by the worker yet missing from the dispatcher's ladder."""


def _brew(request):
    if request == "coffee":
        raise TeapotError("short and stout")
    return request


def handle(request):
    # Public entry point leaking a project exception that is not a
    # ReproError subclass: callers' `except ReproError` misses it.
    if not request:
        raise FixtureError("empty request")
    return _brew(request)


def dispatch(request):
    try:
        body = handle(request)
        status = 200
    except FixtureError:
        status = 400
        body = "bad request"
    except ValueError:
        status = 422
        body = "unprocessable"
    # TeapotError escapes _brew() and handle() but has no row in this
    # status ladder, so it bubbles out of the dispatcher unmapped.
    return status, body
