"""RP008 fixtures: double-check idiom, condition waits, off-lock blocking."""

import threading
import time

from repro.runtime.concurrency import thread_shared


@thread_shared
class LazyCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._value = None

    def compute(self):
        # Double-check idiom: the decision is re-made under the lock.
        if self._value is None:
            with self._lock:
                if self._value is None:
                    self._value = 42
        return self._value

    def await_value(self):
        with self._lock:
            # Waiting on a condition that shares the held lock is the
            # sanctioned blocking form: wait() releases the lock.
            self._ready.wait_for(lambda: self._value is not None)
            return self._value

    def refresh(self):
        time.sleep(0.1)  # blocking, but no lock held
        with self._lock:
            self._value = 43
            self._ready.notify_all()
