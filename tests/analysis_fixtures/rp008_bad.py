"""RP008 fixtures: check-then-act races and blocking calls under locks."""

import threading
import time

from repro.runtime.concurrency import thread_shared


@thread_shared
class LazyCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = None

    def compute(self):
        # Classic check-then-act: the check runs outside the lock, the
        # act inside it without re-checking — two threads both pass the
        # check and both write.
        if self._value is None:
            with self._lock:
                self._value = 42
        return self._value

    def slow_refresh(self):
        with self._lock:
            # Blocking primitive while holding the shared lock stalls
            # every other thread touching this instance.
            time.sleep(0.1)
            self._value = 43
