"""RP006-clean: None defaults, no builtin shadowing."""


def accumulate(value, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(value)
    return bucket


def rename(item_id, kind):
    items = [item_id, kind]
    return items


class Catalog:
    # class-namespace bindings do not shadow builtins for other code
    format = "npz"

    def format_name(self, value):
        return format(value, ".3f")
