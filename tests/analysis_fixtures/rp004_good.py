"""RP004-clean: every self._* mutation sits inside 'with self._lock:'."""

import threading

from repro.runtime.concurrency import thread_shared


@thread_shared
class GuardedCache:
    def __init__(self):
        self._lock = threading.RLock()
        self._cache = {}
        self._count = 0
        self.label = "guarded"  # public, not part of the contract

    def put(self, key, value):
        with self._lock:
            self._cache[key] = value
            self._count += 1

    def get(self, key):
        return self._cache.get(key)  # reads are lock-free by design

    def evict(self, key):
        with self._lock:
            self._cache.pop(key, None)  # tolerant pop: no outside check needed

    def reset(self):
        with self._lock:
            self._cache.clear()


class PlainCache:
    """Not @thread_shared: unguarded mutation is fine here."""

    def __init__(self):
        self._cache = {}

    def put(self, key, value):
        self._cache[key] = value
