"""RP011 fixtures: resources acquired outside ``with`` and leaked."""

import threading
from concurrent.futures import ThreadPoolExecutor

GUARD = threading.Lock()


def never_closed(path):
    # No close() on any path: the handle dies with the garbage collector,
    # whenever that is.
    handle = open(path)
    handle.write("header\n")
    return path


def leaks_on_error(path):
    # close() is reached on the straight-line path only; if write()
    # raises, the handle leaks out of the exceptional exit.
    handle = open(path)
    handle.write("header\n")
    handle.close()
    return path


def lock_left_held(flag):
    GUARD.acquire()
    if flag:
        # Early return skips the release: the lock stays held forever.
        return False
    GUARD.release()
    return True


def pool_never_shut_down(jobs):
    pool = ThreadPoolExecutor(max_workers=2)
    for job in jobs:
        pool.submit(job)
    return len(jobs)
