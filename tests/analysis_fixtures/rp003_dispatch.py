"""RP003 call sites: classes from rp003_tasks.py hit the worker pools."""

from repro.runtime.parallel import run_deferred

from rp003_tasks import BadTask, GoodTask, StrippedTask  # noqa: analyzer fixture


def fan_out(payloads, n_jobs):
    tasks = [BadTask(p) for p in payloads]
    others = [GoodTask(p) for p in payloads] + [StrippedTask(p) for p in payloads]
    return run_deferred(tasks, n_jobs=n_jobs), run_deferred(others, n_jobs=n_jobs)
