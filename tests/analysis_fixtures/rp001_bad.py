"""RP001 violations: global RNG state and wall clocks."""

import random
import time
from datetime import datetime

import numpy as np
import numpy.random as npr


def stamp_and_draw():
    started = time.time()  # wall clock
    today = datetime.now()  # wall clock
    np.random.seed(42)  # legacy global RNG
    noise = np.random.rand(4)  # legacy global RNG
    more = npr.normal(size=3)  # legacy global RNG, aliased import
    pick = random.choice([1, 2, 3])  # stdlib global RNG
    jitter = random.random()  # stdlib global RNG
    return started, today, noise, more, pick, jitter
