"""RP009 fixtures: deadlines forwarded explicitly, via kwargs, or scoped."""

from repro.runtime.resilience import deadline_scope


def load_model(name, deadline=None):
    return name


def render(template, deadline=None):
    return template


def serve(request, deadline=None):
    model = load_model(request, deadline=deadline)
    return render(model, deadline=deadline)


def serve_kwargs(request, deadline=None, **kwargs):
    return load_model(request, deadline=deadline, **kwargs)


def serve_scoped(request, deadline=None):
    # deadline_scope() installs the budget ambiently; calls inside the
    # scope are covered without threading the parameter by hand.
    with deadline_scope(deadline):
        return render(load_model(request))


def no_budget(request):
    # A caller that never binds a deadline owes nothing to the callee.
    return load_model(request)
