"""RP003 task classes (dispatched from rp003_dispatch.py, cross-file)."""

import threading


class BadTask:
    """Stores a lambda and a lock: never pickles."""

    def __init__(self, payload):
        self.payload = payload
        self.transform = lambda x: x + 1
        self.guard = threading.Lock()

    def __call__(self):
        return self.transform(self.payload)


class GoodTask:
    """Plain picklable state only."""

    def __init__(self, payload):
        self.payload = payload

    def __call__(self):
        return self.payload + 1


class StrippedTask:
    """Stores a lambda but strips it in __getstate__ (the bagging pattern)."""

    def __init__(self, payload):
        self.payload = payload
        self.transform = lambda x: x + 1

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("transform")
        return state

    def __call__(self):
        return self.payload + 1
