"""RP001-clean: seeded generators and monotonic timers only."""

import time

import numpy as np


def draw(rng: np.random.Generator | None = None, seed: int = 0):
    rng = rng or np.random.default_rng(seed)
    started = time.perf_counter()
    values = rng.normal(size=4)
    return values, time.perf_counter() - started


def spawn_children(seed: int):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(3)]
