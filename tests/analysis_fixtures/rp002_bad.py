"""RP002 violations: bare except, silent swallow, builtin raises."""


def risky(value):
    if value < 0:
        raise ValueError("negative")  # builtin raise
    try:
        return 1.0 / value
    except:  # bare except
        return 0.0


def swallow(callback):
    try:
        callback()
    except Exception:  # silent swallow
        pass
