"""A 'test' file that never mentions the twin (RP005 violated)."""

from fastmod import frobnicate


def check_something_else():
    assert frobnicate([1]) == [2]
