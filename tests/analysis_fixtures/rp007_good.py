"""RP007 fixtures: consistent lock order and reentrant re-acquisition."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()
REENTRANT = threading.RLock()


def forward():
    with LOCK_A:
        with LOCK_B:
            return 1


def also_forward():
    # Same global order everywhere, including through the call edge.
    with LOCK_A:
        return helper()


def helper():
    with LOCK_B:
        return 2


def recursive(n):
    # RLock re-acquisition is reentrant by design, not a deadlock.
    with REENTRANT:
        if n > 0:
            with REENTRANT:
                return recursive(n - 1)
        return 0
