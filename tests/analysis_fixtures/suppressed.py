"""Every violation here carries a suppression comment (net zero findings)."""

import random
import time


def stamped_draw():
    started = time.time()  # repro: ignore[RP001]
    pick = random.random()  # repro: ignore[RP001]
    return started, pick


def legacy(value, bucket=[]):  # repro: ignore[RP006]
    try:
        bucket.append(value)
    except:  # repro: ignore[RP002]
        raise ValueError("nope")  # repro: ignore
    return bucket
