"""RP006 violations: mutable defaults and shadowed builtins."""


def accumulate(value, bucket=[]):  # mutable default (list literal)
    bucket.append(value)
    return bucket


def tally(key, counts={}):  # mutable default (dict literal)
    counts[key] = counts.get(key, 0) + 1
    return counts


def fresh(items=list()):  # mutable default (factory call)
    return items


def rename(id, type):  # parameters shadowing builtins
    list = [id, type]  # assignment shadowing a builtin
    return list


def collect(pairs):
    return {id: value for id, value in pairs}  # comprehension target shadows
