"""A 'test' file that exercises the reference twin (RP005 satisfied)."""

from fastmod import frobnicate, frobnicate_reference


def check_equivalence():
    values = [1, 2, 3]
    assert frobnicate(values) == frobnicate_reference(values)
