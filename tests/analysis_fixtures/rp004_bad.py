"""RP004 violations: unguarded mutation, missing lock, unlocked mutator call."""

import threading

from repro.runtime.concurrency import thread_shared


@thread_shared
class UnguardedCache:
    def __init__(self):
        self._lock = threading.RLock()
        self._cache = {}
        self._count = 0

    def put(self, key, value):
        self._cache[key] = value  # mutation outside the lock

    def bump(self):
        self._count += 1  # mutation outside the lock

    def evict(self, key):
        self._cache.pop(key, None)  # mutator call outside the lock


@thread_shared
class MissingLock:
    def __init__(self):
        self._cache = {}
