"""Tests for repro.ml.svm and repro.ml.calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml import LinearSVMClassifier, PlattScaler, roc_auc_score
from tests.conftest import make_blobs


class TestLinearSVM:
    def test_separable_data(self, rng):
        X, y = make_blobs(rng, separation=3.0, spread=0.5)
        svm = LinearSVMClassifier(rng=rng).fit(X, y)
        assert roc_auc_score(y, svm.predict_proba(X)) > 0.97

    def test_decision_function_sign(self, rng):
        X, y = make_blobs(rng, separation=4.0, spread=0.4)
        svm = LinearSVMClassifier(rng=rng).fit(X, y)
        scores = svm.decision_function(X)
        accuracy = ((scores > 0).astype(int) == y).mean()
        assert accuracy > 0.95

    def test_probabilities_in_unit_interval(self, rng):
        X, y = make_blobs(rng)
        svm = LinearSVMClassifier(rng=rng).fit(X, y)
        p = svm.predict_proba(X)
        assert (p >= 0).all() and (p <= 1).all()

    def test_probability_orients_with_labels(self, rng):
        X, y = make_blobs(rng, separation=3.0)
        svm = LinearSVMClassifier(rng=rng).fit(X, y)
        p = svm.predict_proba(X)
        assert p[y == 1].mean() > p[y == 0].mean()

    def test_balanced_weights_help_imbalance(self, rng):
        X, y = make_blobs(rng, n_per_class=100, separation=2.5)
        # Throw away most positives to create imbalance.
        keep = np.r_[np.nonzero(y == 0)[0], np.nonzero(y == 1)[0][:8]]
        Xi, yi = X[keep], y[keep]
        svm = LinearSVMClassifier(class_weight_balanced=True, rng=rng).fit(Xi, yi)
        assert roc_auc_score(yi, svm.predict_proba(Xi)) > 0.9

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            LinearSVMClassifier(c=0.0)
        with pytest.raises(ConfigurationError):
            LinearSVMClassifier(max_epochs=0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LinearSVMClassifier().predict_proba(np.zeros((1, 2)))

    def test_nonfinite_input_rejected(self, rng):
        X, y = make_blobs(rng)
        X[0, 0] = np.nan
        with pytest.raises(DataError):
            LinearSVMClassifier(rng=rng).fit(X, y)


class TestPlattScaler:
    def test_recovers_monotone_mapping(self, rng):
        scores = rng.normal(size=500)
        prob = 1 / (1 + np.exp(-2.0 * scores))
        y = (rng.random(500) < prob).astype(int)
        platt = PlattScaler().fit(scores, y)
        p = platt.transform(scores)
        assert roc_auc_score(y, p) == pytest.approx(roc_auc_score(y, scores))
        # Calibration should be reasonable in the bulk.
        assert abs(p.mean() - y.mean()) < 0.05

    def test_monotone_increasing_when_scores_informative(self, rng):
        scores = rng.normal(size=300)
        y = (scores + rng.normal(0, 0.5, 300) > 0).astype(int)
        platt = PlattScaler().fit(scores, y)
        grid = np.linspace(-3, 3, 50)
        p = platt.transform(grid)
        assert (np.diff(p) >= -1e-12).all()

    def test_empty_raises(self):
        with pytest.raises(DataError):
            PlattScaler().fit(np.array([]), np.array([]))

    def test_length_mismatch_raises(self):
        with pytest.raises(DataError):
            PlattScaler().fit(np.zeros(3), np.zeros(2))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PlattScaler().transform(np.zeros(2))

    def test_uninformative_scores_give_base_rate(self, rng):
        scores = np.zeros(100)
        y = (rng.random(100) < 0.3).astype(int)
        platt = PlattScaler().fit(scores, y)
        assert platt.transform(np.zeros(1))[0] == pytest.approx(y.mean(), abs=0.1)
