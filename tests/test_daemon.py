"""Tests for the park-service daemon stack: admission, breakers, registry, HTTP.

The chaos-under-fault behavior (worker kills, corrupt hot-swaps, floods,
drain) lives in ``tests/test_chaos.py``; this module covers the sunny-day
contracts and the unit semantics of each new runtime piece.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.data import generate_dataset, get_profile
from repro.exceptions import (
    AdmissionError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    PersistenceError,
)
from repro.runtime import faults
from repro.runtime.admission import AdmissionGate
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.daemon import ParkServiceDaemon
from repro.runtime.registry import ModelRegistry
from repro.runtime.resilience import Deadline

SEED = 0
SCALE = 0.4


@pytest.fixture(scope="module")
def park():
    return generate_dataset(get_profile("MFNP").scaled(SCALE), seed=SEED)


@pytest.fixture(scope="module")
def models_dir(park, tmp_path_factory):
    """A models root holding one tiny fitted MFNP model."""
    root = tmp_path_factory.mktemp("models")
    split = park.dataset.split_by_test_year(4)
    predictor = PawsPredictor(
        model="dtb", iware=True, n_classifiers=2, n_estimators=2, seed=5
    ).fit(split.train)
    predictor.save(root / "MFNP")
    return root


@pytest.fixture
def daemon(models_dir):
    d = ParkServiceDaemon(
        models_dir, port=0, default_deadline=30.0,
        registry_options={"n_jobs": 1},
    ).start()
    yield d
    d.close()


def http_get(daemon, path, timeout=30.0):
    """(status, parsed json body) for one GET against the daemon."""
    url = f"http://127.0.0.1:{daemon.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_post(daemon, path, timeout=60.0):
    url = f"http://127.0.0.1:{daemon.port}{path}"
    request = urllib.request.Request(url, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


# ---------------------------------------------------------------------------
# AdmissionGate
# ---------------------------------------------------------------------------
class TestAdmissionGate:
    def test_validates_configuration(self):
        with pytest.raises(ConfigurationError):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ConfigurationError):
            AdmissionGate(max_queue=-1)
        with pytest.raises(ConfigurationError):
            AdmissionGate(queue_wait=-0.1)

    def test_admits_up_to_limit_then_sheds(self):
        gate = AdmissionGate(max_inflight=2, max_queue=0, queue_wait=0.0)
        gate.acquire()
        gate.acquire()
        with pytest.raises(AdmissionError, match="queue is full"):
            gate.acquire()
        gate.release()
        gate.acquire()  # a freed slot admits again
        info = gate.info()
        assert info["admitted"] == 3
        assert info["shed_saturated"] == 1
        assert info["peak_inflight"] == 2

    def test_queued_request_admitted_on_release(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1, queue_wait=5.0)
        gate.acquire()
        admitted = threading.Event()

        def waiter():
            gate.acquire(label="queued")
            admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not admitted.wait(0.05)  # genuinely queued
        gate.release()
        assert admitted.wait(5.0)
        thread.join()
        assert gate.info()["peak_queued"] == 1

    def test_queue_timeout_sheds(self):
        gate = AdmissionGate(max_inflight=1, max_queue=4, queue_wait=0.05)
        gate.acquire()
        with pytest.raises(AdmissionError, match="no admission slot freed"):
            gate.acquire()

    def test_deadline_expiry_while_queued_is_504_not_503(self):
        gate = AdmissionGate(max_inflight=1, max_queue=4, queue_wait=10.0)
        gate.acquire()
        with pytest.raises(DeadlineExceededError, match="queued for admission"):
            gate.acquire(deadline=Deadline(0.05))

    def test_drain_sheds_new_and_queued_but_not_inflight(self):
        gate = AdmissionGate(max_inflight=1, max_queue=4, queue_wait=10.0)
        gate.acquire()
        shed = threading.Event()

        def waiter():
            try:
                gate.acquire(label="queued")
            except AdmissionError:
                shed.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        gate.begin_drain()
        assert shed.wait(5.0)  # the queued waiter was shed by the drain
        thread.join()
        with pytest.raises(AdmissionError, match="draining"):
            gate.acquire()
        assert gate.inflight == 1  # in-flight work is untouched
        assert not gate.wait_idle(timeout=0.05)
        gate.release()
        assert gate.wait_idle(timeout=5.0)
        assert gate.info()["shed_draining"] == 2

    def test_context_manager_releases_on_error(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0, queue_wait=0.0)
        with pytest.raises(ValueError):
            with gate.admitted():
                raise ValueError("handler blew up")
        assert gate.inflight == 0
        gate.acquire()  # the slot came back


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_validates_configuration(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker("x", recovery_after=-1.0)

    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker("load:MFNP", failure_threshold=3,
                                 recovery_after=5.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state() == "closed"
        breaker.record_success()  # success resets the consecutive count
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state() == "open"
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError, match="load:MFNP"):
            breaker.check()
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_half_open_single_probe_then_recovery(self):
        clock = FakeClock()
        breaker = CircuitBreaker("b", failure_threshold=1,
                                 recovery_after=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 5.0
        assert breaker.state() == "half_open"
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # a second caller is still refused
        breaker.record_success()
        assert breaker.state() == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_full_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker("b", failure_threshold=3,
                                 recovery_after=5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()  # one probe failure re-opens immediately
        assert breaker.state() == "open"
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_cancelled_probe_can_be_retaken(self):
        clock = FakeClock()
        breaker = CircuitBreaker("b", failure_threshold=1,
                                 recovery_after=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.0
        assert breaker.allow()
        breaker.cancel_probe()  # no evidence either way (e.g. cache hit)
        assert breaker.allow()  # the probe slot is free again

    def test_call_records_only_matching_exceptions(self):
        clock = FakeClock()
        breaker = CircuitBreaker("b", failure_threshold=1, clock=clock)
        with pytest.raises(ValueError):
            breaker.call(self._raise_value_error, trip_on=PersistenceError)
        assert breaker.state() == "closed"  # non-matching error: no trip
        with pytest.raises(PersistenceError):
            breaker.call(self._raise_persistence_error,
                         trip_on=PersistenceError)
        assert breaker.state() == "open"
        with pytest.raises(CircuitOpenError):
            breaker.call(self._raise_persistence_error,
                         trip_on=PersistenceError)

    @staticmethod
    def _raise_value_error():
        raise ValueError("unrelated")

    @staticmethod
    def _raise_persistence_error():
        raise PersistenceError("corrupt")


# ---------------------------------------------------------------------------
# ModelRegistry
# ---------------------------------------------------------------------------
class TestModelRegistry:
    def test_rejects_missing_models_dir(self, tmp_path):
        with pytest.raises(ConfigurationError, match="models_dir"):
            ModelRegistry(tmp_path / "nope")

    def test_discovers_and_lazily_loads(self, models_dir):
        registry = ModelRegistry(models_dir, n_jobs=1)
        assert registry.available() == ["MFNP"]
        assert registry.loaded() == []  # nothing loaded yet
        entry = registry.entry("MFNP")
        assert registry.loaded() == ["MFNP"]
        assert entry.version == 1
        assert registry.entry("MFNP") is entry  # cached, not reloaded
        assert registry.info()["loads"] == 1

    def test_unknown_park_is_configuration_error(self, models_dir):
        registry = ModelRegistry(models_dir, n_jobs=1)
        with pytest.raises(ConfigurationError, match="no saved model"):
            registry.entry("QENP")

    def test_reload_swaps_version_and_serves_identically(self, models_dir):
        registry = ModelRegistry(models_dir, n_jobs=1)
        before = registry.entry("MFNP")
        risk_before = before.risk_map(effort=1.5, seed=SEED, scale=SCALE)
        after = registry.reload("MFNP")
        assert after is not before
        assert after.version == 2
        assert registry.entry("MFNP") is after
        risk_after = after.risk_map(effort=1.5, seed=SEED, scale=SCALE)
        np.testing.assert_array_equal(risk_before, risk_after)

    def test_corrupt_reload_rejected_old_entry_keeps_serving(
        self, models_dir
    ):
        registry = ModelRegistry(models_dir, n_jobs=1)
        entry = registry.entry("MFNP")
        manifest_path = models_dir / "MFNP" / "manifest.json"
        original = manifest_path.read_text()
        arrays_name = json.loads(original)["arrays_file"]
        try:
            faults.flip_byte(models_dir / "MFNP" / arrays_name, seed=3)
            with pytest.raises(PersistenceError):
                registry.reload("MFNP")
        finally:
            # restore the artifact for other tests sharing the fixture
            faults.flip_byte(models_dir / "MFNP" / arrays_name, seed=3)
            manifest_path.write_text(original)
        assert registry.entry("MFNP") is entry  # the old model still serves
        assert registry.info()["rejected_reloads"] == 1
        entry.risk_map(effort=1.5, seed=SEED, scale=SCALE)

    def test_lru_eviction_respects_budget(self, models_dir, tmp_path):
        # A second park: reuse the same fitted artifacts under a new name
        # (in a private root, so the shared fixture stays single-park).
        import shutil

        root = tmp_path / "models"
        shutil.copytree(models_dir / "MFNP", root / "MFNP")
        shutil.copytree(models_dir / "MFNP", root / "QENP")
        registry = ModelRegistry(root, max_parks=1, n_jobs=1)
        registry.entry("MFNP")
        registry.entry("QENP")  # evicts MFNP
        assert registry.loaded() == ["QENP"]
        assert registry.info()["evictions"] == 1

    def test_repeated_load_failures_trip_the_load_breaker(self, tmp_path):
        root = tmp_path / "models"
        bad = root / "MFNP"
        bad.mkdir(parents=True)
        (bad / "manifest.json").write_text("{not json")
        registry = ModelRegistry(
            root, load_failure_threshold=2, load_recovery_after=60.0,
            n_jobs=1,
        )
        for _ in range(2):
            with pytest.raises(PersistenceError):
                registry.entry("MFNP")
        # breaker open: the corrupt artifact is no longer re-read at all
        with pytest.raises(CircuitOpenError, match="load:MFNP"):
            registry.entry("MFNP")
        assert registry.park_health()["MFNP"]["load_breaker"] == "open"
        assert registry.park_health()["MFNP"]["ok"] is False


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------
class TestDaemonHTTP:
    def test_ready_health_stats(self, daemon):
        status, body = http_get(daemon, "/ready")
        assert status == 200 and body["ready"] is True
        status, body = http_get(daemon, "/health")
        assert status == 200 and body["status"] == "ok"
        assert body["degraded_parks"] == []
        status, body = http_get(daemon, "/stats")
        assert status == 200
        assert set(body) == {"admission", "registry", "parks"}

    def test_riskmap_bit_identical_to_direct_call(self, daemon):
        status, body = http_get(
            daemon,
            f"/riskmap?park=MFNP&seed={SEED}&scale={SCALE}&effort=1.5",
        )
        assert status == 200
        entry = daemon.registry.entry("MFNP")
        direct = entry.service.risk_map(
            entry.context(SEED, SCALE).token, effort=1.5
        )
        # json round-trips float64 via repr: served == computed, bit for bit
        np.testing.assert_array_equal(np.array(body["risk"]), direct)

    def test_plan_serves_routes_and_objective(self, daemon, park):
        post = int(park.park.patrol_posts[0])
        status, body = http_get(
            daemon,
            f"/plan?park=MFNP&seed={SEED}&scale={SCALE}"
            f"&post={post}&beta=0.5",
        )
        assert status == 200
        plan = body["plans"][str(post)]
        assert plan["beta"] == 0.5
        assert len(plan["coverage"]) == park.park.n_cells
        weights = [route["weight"] for route in plan["routes"]]
        assert sum(weights) == pytest.approx(1.0, abs=1e-6)

    def test_unknown_park_404_lists_available(self, daemon):
        status, body = http_get(daemon, "/riskmap?park=YELLOWSTONE")
        assert status == 404
        assert body["available"] == ["MFNP"]

    def test_missing_park_param_400(self, daemon):
        status, body = http_get(daemon, "/riskmap")
        assert status == 400
        assert "park" in body["error"]

    def test_bad_deadline_values_400(self, daemon):
        for value in ("0", "-3", "banana"):
            status, body = http_get(daemon, f"/riskmap?park=MFNP&deadline={value}")
            assert status == 400, value
            assert "deadline" in body["error"]

    def test_unknown_route_404_lists_routes(self, daemon):
        status, body = http_get(daemon, "/nope")
        assert status == 404
        assert "/riskmap" in body["routes"]

    def test_reload_bumps_version(self, daemon):
        status, before = http_get(daemon, f"/riskmap?park=MFNP&scale={SCALE}")
        assert status == 200
        status, body = http_post(daemon, "/models/MFNP/reload")
        assert status == 200
        assert body["version"] == before["version"] + 1
        status, after = http_get(daemon, f"/riskmap?park=MFNP&scale={SCALE}")
        assert status == 200
        assert after["version"] == body["version"]
        assert after["risk"] == before["risk"]  # same model bytes, same map

    def test_reload_unknown_park_404(self, daemon):
        status, __ = http_post(daemon, "/models/YELLOWSTONE/reload")
        assert status == 404

    def test_drain_flips_ready_and_health(self, daemon):
        stats = daemon.drain()
        assert stats["admission"]["draining"] is True
        assert daemon.drain() is stats  # idempotent: same final snapshot

    def test_rejects_nonpositive_default_deadline(self, models_dir):
        with pytest.raises(ConfigurationError, match="default_deadline"):
            ParkServiceDaemon(models_dir, default_deadline=0.0)
