"""Tests for repro.data.rangers and repro.data.smart."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    MFNP,
    SWS,
    ObservationRecord,
    PatrolSimulator,
    SmartDatabase,
    SyntheticPark,
    rebuild_effort_from_waypoints,
)
from repro.data.smart import NON_POACHING_CATEGORIES, POACHING_CATEGORIES
from repro.exceptions import ConfigurationError, DataError

SMALL = MFNP.scaled(0.5)


@pytest.fixture(scope="module")
def park() -> SyntheticPark:
    return SyntheticPark.generate(SMALL, seed=3)


class TestPatrolSimulator:
    def test_patrol_starts_at_post(self, park):
        sim = PatrolSimulator(park, seed=0)
        patrol = sim.simulate_patrol(0)
        assert patrol.path[0] in set(park.patrol_posts.tolist())

    def test_path_steps_are_adjacent(self, park):
        sim = PatrolSimulator(park, seed=1)
        patrol = sim.simulate_patrol(0)
        for a, b in zip(patrol.path[:-1], patrol.path[1:]):
            assert b in park.grid.neighbors(a, connectivity=4)

    def test_patrol_length(self, park):
        sim = PatrolSimulator(park, seed=2)
        patrol = sim.simulate_patrol(0)
        assert patrol.length_km == SMALL.patrol_length_km

    def test_waypoints_subsample_path(self, park):
        sim = PatrolSimulator(park, seed=3)
        patrol = sim.simulate_patrol(0)
        assert set(patrol.waypoints) <= set(patrol.path)
        assert patrol.waypoints[0] == patrol.path[0]
        assert patrol.waypoints[-1] == patrol.path[-1]

    def test_sparse_waypoints_for_motorbike_park(self):
        spark = SyntheticPark.generate(SWS.scaled(0.6), seed=0)
        sim = PatrolSimulator(spark, seed=0)
        patrol = sim.simulate_patrol(0)
        assert len(patrol.waypoints) < len(patrol.path)

    def test_period_effort_totals(self, park):
        sim = PatrolSimulator(park, seed=4)
        effort, patrols = sim.simulate_period(0)
        assert len(patrols) == SMALL.patrols_per_period
        assert effort.sum() == pytest.approx(
            sum(p.length_km for p in patrols)
        )

    def test_effort_is_spatially_biased(self, park):
        """Some cells get heavy effort, many get none (Fig. 3)."""
        sim = PatrolSimulator(park, seed=5)
        effort = np.zeros(park.n_cells)
        for t in range(4):
            e, __ = sim.simulate_period(t)
            effort += e
        assert (effort == 0).mean() > 0.2
        assert effort.max() > 5 * effort[effort > 0].mean() / 2

    def test_zero_patrols(self, park):
        sim = PatrolSimulator(park, seed=6)
        effort, patrols = sim.simulate_period(0, n_patrols=0)
        assert effort.sum() == 0 and patrols == []

    def test_negative_patrols_rejected(self, park):
        sim = PatrolSimulator(park, seed=6)
        with pytest.raises(ConfigurationError):
            sim.simulate_period(0, n_patrols=-1)

    def test_bad_focus(self, park):
        with pytest.raises(ConfigurationError):
            PatrolSimulator(park, focus=0.0)

    def test_deterministic(self, park):
        a = PatrolSimulator(park, seed=9).simulate_period(0)[0]
        b = PatrolSimulator(park, seed=9).simulate_period(0)[0]
        np.testing.assert_array_equal(a, b)


class TestObservationRecord:
    def test_poaching_flag(self):
        snare = ObservationRecord(0, 0, "snare", 0)
        animal = ObservationRecord(0, 0, "animal_sighting", 0)
        assert snare.is_poaching
        assert not animal.is_poaching

    def test_unknown_category(self):
        with pytest.raises(ConfigurationError):
            ObservationRecord(0, 0, "ufo", 0)

    def test_category_lists_disjoint(self):
        assert not set(POACHING_CATEGORIES) & set(NON_POACHING_CATEGORIES)


class TestSmartDatabase:
    def test_add_and_query(self, park):
        db = SmartDatabase(park.grid)
        db.add_record(ObservationRecord(0, 1, "snare", 0))
        db.add_record(ObservationRecord(0, 2, "campsite", 0))
        db.add_record(ObservationRecord(1, 3, "firearm", 0))
        assert db.n_records == 3
        assert db.poaching_cells(0) == {1}
        assert db.poaching_cells(1) == {3}
        assert len(db.records(period_index=0)) == 2

    def test_out_of_park_record_rejected(self, park):
        db = SmartDatabase(park.grid)
        with pytest.raises(DataError):
            db.add_record(ObservationRecord(0, park.n_cells + 5, "snare", 0))

    def test_recorded_effort_from_patrols(self, park):
        sim = PatrolSimulator(park, seed=7)
        db = SmartDatabase(park.grid)
        __, patrols = sim.simulate_period(0)
        for p in patrols:
            db.add_patrol(p)
        effort = db.recorded_effort(0)
        assert effort.sum() > 0
        assert db.recorded_effort(5).sum() == 0


class TestEffortReconstruction:
    def test_dense_waypoints_recover_path(self, park):
        sim = PatrolSimulator(park, seed=8)
        patrol = sim.simulate_patrol(0)
        if park.profile.waypoint_interval == 1:
            rebuilt = rebuild_effort_from_waypoints(park.grid, patrol.waypoints)
            true_effort = np.zeros(park.n_cells)
            for cid in patrol.path:
                true_effort[cid] += 1.0
            # Dense waypoints differ only by revisit multiplicity on the
            # straight-line reconstruction; totals must match.
            assert rebuilt.sum() == pytest.approx(true_effort.sum(), rel=0.2)

    def test_sparse_waypoints_lose_information(self):
        spark = SyntheticPark.generate(SWS.scaled(0.6), seed=1)
        sim = PatrolSimulator(spark, seed=2)
        patrol = sim.simulate_patrol(0)
        rebuilt = rebuild_effort_from_waypoints(spark.grid, patrol.waypoints)
        true_cells = set(patrol.path)
        rebuilt_cells = set(np.nonzero(rebuilt)[0].tolist())
        # Reconstruction is not exact: either misses cells or totals differ.
        assert rebuilt_cells != true_cells or rebuilt.sum() != len(patrol.path)

    def test_empty_waypoints(self, park):
        assert rebuild_effort_from_waypoints(park.grid, []).sum() == 0

    def test_single_waypoint(self, park):
        effort = rebuild_effort_from_waypoints(park.grid, [5])
        assert effort[5] == 1.0
        assert effort.sum() == 1.0

    def test_reconstruction_connects_waypoints(self, park):
        # Straight-line between two cells in the same row.
        a = park.grid.cell_id(*park.grid.cell_rc(0))
        row, col = park.grid.cell_rc(a)
        b_rc = (row, col + 4)
        if park.grid.contains_rc(*b_rc):
            b = park.grid.cell_id(*b_rc)
            effort = rebuild_effort_from_waypoints(park.grid, [a, b])
            assert effort[a] > 0 and effort[b] > 0
            assert effort.sum() == pytest.approx(5.0)
