"""Smoke tests: every documented CLI entry point exits 0.

Runs ``python -m repro`` as a real subprocess (the way a user would), so the
package import path, argparse wiring, and each subcommand's help text are
exercised end to end. The ``predict`` round trip also covers the
save-model/load-model serving flow through the CLI.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every subcommand the CLI documents; update when adding one.
SUBCOMMANDS = (
    "stats", "maps", "evaluate", "fieldtest", "plan", "predict", "serve",
    "lint",
)


def run_module(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )


class TestHelpExitsZero:
    def test_top_level_help(self):
        result = run_module("--help")
        assert result.returncode == 0, result.stderr
        assert "repro" in result.stdout

    @pytest.mark.parametrize("command", SUBCOMMANDS)
    def test_subcommand_help(self, command):
        result = run_module(command, "--help")
        assert result.returncode == 0, result.stderr
        assert command in result.stdout or "usage" in result.stdout

    def test_parser_registers_every_documented_subcommand(self):
        parser = build_parser()
        actions = [
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        ]
        registered = set(actions[0].choices)
        assert registered == set(SUBCOMMANDS)


class TestPredictRoundTrip:
    def test_save_then_load_serves_identical_map(self, tmp_path):
        import io

        model_dir = str(tmp_path / "model")
        save_out = io.StringIO()
        code = main(
            ["predict", "--park", "MFNP", "--scale", "0.4",
             "--model", "dtb", "--n-classifiers", "3",
             "--save-model", model_dir],
            out=save_out,
        )
        assert code == 0
        assert "model saved to" in save_out.getvalue()

        load_out = io.StringIO()
        code = main(
            ["predict", "--park", "MFNP", "--scale", "0.4",
             "--load-model", model_dir],
            out=load_out,
        )
        assert code == 0
        assert "loaded from" in load_out.getvalue()

        def heatmap_of(text: str) -> str:
            lines = text.splitlines()
            start = lines.index("predicted attack risk:")
            return "\n".join(lines[start:])

        assert heatmap_of(save_out.getvalue().replace(
            f"model saved to {model_dir}\n", ""
        )) == heatmap_of(load_out.getvalue())

    def test_explicit_effort(self):
        import io

        out = io.StringIO()
        code = main(
            ["predict", "--park", "MFNP", "--scale", "0.4",
             "--model", "dtb", "--n-classifiers", "3", "--effort", "2.5"],
            out=out,
        )
        assert code == 0
        assert "effort 2.50 km" in out.getvalue()
