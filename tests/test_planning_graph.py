"""Tests for repro.planning.graph and repro.planning.pwl."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, PlanningError
from repro.geo import Grid
from repro.planning import PiecewiseLinear, TimeUnrolledGraph, sample_breakpoints
from repro.planning.pwl import pwl_from_samples


class TestTimeUnrolledGraph:
    def test_source_and_sink_exist(self):
        g = TimeUnrolledGraph(Grid.rectangular(5, 5), source_cell=0, horizon=6)
        assert g.nodes[g.source_node] == (0, 0)
        assert g.nodes[g.sink_node] == (0, 5)

    def test_pruning_respects_return_distance(self):
        grid = Grid.rectangular(5, 5)
        g = TimeUnrolledGraph(grid, source_cell=0, horizon=6)
        far = grid.cell_id(4, 4)  # 8 steps away; cannot go and return in 6
        assert far not in set(g.reachable_cells.tolist())
        near = grid.cell_id(0, 2)
        assert near in set(g.reachable_cells.tolist())

    def test_node_exists_only_within_time_window(self):
        grid = Grid.rectangular(5, 5)
        g = TimeUnrolledGraph(grid, source_cell=0, horizon=8)
        cell = grid.cell_id(0, 2)  # distance 2
        assert g.node_index(cell, 1) is None
        assert g.node_index(cell, 2) is not None
        assert g.node_index(cell, 5) is not None
        assert g.node_index(cell, 6) is None  # cannot return by t=7

    def test_edges_step_forward_in_time(self):
        g = TimeUnrolledGraph(Grid.rectangular(4, 4), source_cell=0, horizon=6)
        for i, j in g.edges:
            __, ti = g.nodes[i]
            __, tj = g.nodes[j]
            assert tj == ti + 1

    def test_waiting_in_place_allowed(self):
        g = TimeUnrolledGraph(Grid.rectangular(4, 4), source_cell=0, horizon=4)
        cells = [(g.nodes[i][0], g.nodes[j][0]) for i, j in g.edges]
        assert any(a == b for a, b in cells)

    def test_horizon_too_small_raises(self):
        with pytest.raises(ConfigurationError):
            TimeUnrolledGraph(Grid.rectangular(3, 3), source_cell=0, horizon=1)

    def test_bad_source_raises(self):
        with pytest.raises(ConfigurationError):
            TimeUnrolledGraph(Grid.rectangular(3, 3), source_cell=99, horizon=4)

    def test_incidence_lists_consistent(self):
        g = TimeUnrolledGraph(Grid.rectangular(4, 4), source_cell=5, horizon=6)
        out_edges, in_edges = g.incidence_lists()
        assert sum(len(x) for x in out_edges) == g.n_edges
        assert sum(len(x) for x in in_edges) == g.n_edges

    def test_cell_visit_edges_cover_all_edges(self):
        g = TimeUnrolledGraph(Grid.rectangular(4, 4), source_cell=5, horizon=6)
        visit = g.cell_visit_edges()
        assert sum(len(v) for v in visit.values()) == g.n_edges

    def test_odd_even_parity(self):
        """A cell at odd distance from the post only has odd-time copies."""
        grid = Grid.rectangular(5, 5)
        g = TimeUnrolledGraph(grid, source_cell=0, horizon=8)
        cell = grid.cell_id(0, 1)  # distance 1
        assert g.node_index(cell, 1) is not None
        # Distance 1 <= t and t <= 6 are the constraints; t=0 excluded.
        assert g.node_index(cell, 0) is None


class TestPiecewiseLinear:
    def test_interpolation(self):
        f = PiecewiseLinear(np.array([0.0, 1.0, 2.0]), np.array([0.0, 2.0, 3.0]))
        assert f(0.5) == pytest.approx(1.0)
        assert f(1.5) == pytest.approx(2.5)

    def test_flat_extrapolation(self):
        f = PiecewiseLinear(np.array([0.0, 1.0]), np.array([1.0, 3.0]))
        assert f(-5.0) == pytest.approx(1.0)
        assert f(10.0) == pytest.approx(3.0)

    def test_vectorised_call(self):
        f = PiecewiseLinear(np.array([0.0, 2.0]), np.array([0.0, 4.0]))
        np.testing.assert_allclose(f(np.array([0.0, 1.0, 2.0])), [0.0, 2.0, 4.0])

    def test_concavity_detection(self):
        concave = PiecewiseLinear(np.array([0, 1, 2.0]), np.array([0, 1.0, 1.5]))
        convex = PiecewiseLinear(np.array([0, 1, 2.0]), np.array([0, 0.5, 2.0]))
        assert concave.is_concave()
        assert not convex.is_concave()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PiecewiseLinear(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ConfigurationError):
            PiecewiseLinear(np.array([0.0, 0.0]), np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            PiecewiseLinear(np.array([0.0, np.inf]), np.array([1.0, 2.0]))

    def test_n_segments(self):
        f = PiecewiseLinear(np.linspace(0, 1, 6), np.zeros(6))
        assert f.n_segments == 5


class TestSampleBreakpoints:
    def test_uniform(self):
        xs = sample_breakpoints(10.0, 5)
        assert xs.size == 6
        assert xs[0] == 0.0 and xs[-1] == 10.0
        np.testing.assert_allclose(np.diff(xs), 2.0)

    def test_sqrt_denser_near_zero(self):
        xs = sample_breakpoints(10.0, 5, spacing="sqrt")
        gaps = np.diff(xs)
        assert gaps[0] < gaps[-1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sample_breakpoints(0.0, 5)
        with pytest.raises(ConfigurationError):
            sample_breakpoints(5.0, 0)
        with pytest.raises(ConfigurationError):
            sample_breakpoints(5.0, 3, spacing="banana")


class TestPWLFromSamples:
    def test_builds_per_row(self, rng):
        xs = np.linspace(0, 5, 4)
        values = rng.random((7, 4))
        fns = pwl_from_samples(xs, values)
        assert len(fns) == 7
        for i, f in enumerate(fns):
            assert f(xs[2]) == pytest.approx(values[i, 2])

    def test_shape_validation(self, rng):
        with pytest.raises(ConfigurationError):
            pwl_from_samples(np.linspace(0, 1, 3), rng.random((2, 4)))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 9999))
def test_pwl_matches_linear_interp_everywhere(seed):
    rng = np.random.default_rng(seed)
    xs = np.sort(rng.random(5)) * 10
    xs[0] = 0.0
    xs = np.unique(xs)
    if xs.size < 2:
        return
    ys = rng.random(xs.size)
    f = PiecewiseLinear(xs, ys)
    probe = rng.uniform(xs[0], xs[-1], size=20)
    np.testing.assert_allclose(f(probe), np.interp(probe, xs, ys), atol=1e-12)
