"""Tests for repro.baselines (CAPTURE and INTERCEPT)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CaptureModel, InterceptModel
from repro.data import MFNP, generate_dataset
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml.metrics import roc_auc_score

SMALL = MFNP.scaled(0.5)


@pytest.fixture(scope="module")
def pu_data():
    """PU-structured synthetic data with known ground truth."""
    rng = np.random.default_rng(0)
    n = 2000
    X = rng.normal(size=(n, 3))
    attack_p = 1 / (1 + np.exp(-(1.2 * X[:, 0] - 0.8 * X[:, 1] - 0.5)))
    attacks = rng.random(n) < attack_p
    effort = rng.exponential(2.0, size=n)
    detect_p = 1 - np.exp(-0.5 * effort)
    observed = attacks & (rng.random(n) < detect_p)
    return X, observed.astype(int), effort, attacks, attack_p


class TestCapture:
    def test_fit_and_predict(self, pu_data):
        X, y, effort, attacks, __ = pu_data
        model = CaptureModel(n_em_iter=10).fit(X, y, effort)
        p = model.predict_proba(X, effort=2.0)
        assert (p >= 0).all() and (p <= 1).all()
        assert roc_auc_score(y, model.predict_proba(X, effort)) > 0.7

    def test_latent_attack_layer_recovers_truth(self, pu_data):
        """The point of CAPTURE: P(a=1) should track the *attack* truth,
        not just the detection-confounded observations."""
        X, y, effort, attacks, attack_p = pu_data
        model = CaptureModel(n_em_iter=12).fit(X, y, effort)
        latent = model.predict_attack_proba(X)
        assert roc_auc_score(attacks.astype(int), latent) > 0.75
        assert np.corrcoef(latent, attack_p)[0, 1] > 0.7

    def test_detection_layer_uses_effort(self, pu_data):
        X, y, effort, __, __p = pu_data
        model = CaptureModel(n_em_iter=8).fit(X, y, effort)
        low = model.predict_detection_proba(X[:50], np.full(50, 0.2))
        high = model.predict_detection_proba(X[:50], np.full(50, 6.0))
        assert high.mean() > low.mean()

    def test_em_converges(self, pu_data):
        X, y, effort, __, __p = pu_data
        model = CaptureModel(n_em_iter=50, tol=1e-3).fit(X, y, effort)
        assert model.n_em_used_ < 50

    def test_joint_bounded_by_attack(self, pu_data):
        X, y, effort, __, __p = pu_data
        model = CaptureModel(n_em_iter=5).fit(X, y, effort)
        joint = model.predict_proba(X, effort)
        attack = model.predict_attack_proba(X)
        assert (joint <= attack + 1e-12).all()

    def test_validation(self, pu_data):
        X, y, effort, __, __p = pu_data
        with pytest.raises(ConfigurationError):
            CaptureModel(n_em_iter=0)
        with pytest.raises(DataError):
            CaptureModel().fit(X, y[:5], effort)
        with pytest.raises(DataError):
            CaptureModel().fit(X, np.zeros(len(y), dtype=int), effort)
        with pytest.raises(DataError):
            CaptureModel().fit(X, y, -effort)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            CaptureModel().predict_attack_proba(np.zeros((2, 2)))


class TestIntercept:
    def test_fit_and_predict(self, pu_data):
        X, y, __, __a, __p = pu_data
        model = InterceptModel(n_trees=8, n_boost_iter=2,
                               rng=np.random.default_rng(1)).fit(X, y)
        assert roc_auc_score(y, model.predict_proba(X)) > 0.75

    def test_boosting_changes_model(self, pu_data):
        X, y, __, __a, __p = pu_data
        plain = InterceptModel(n_trees=8, n_boost_iter=0,
                               rng=np.random.default_rng(1)).fit(X, y)
        boosted = InterceptModel(n_trees=8, n_boost_iter=3,
                                 rng=np.random.default_rng(1)).fit(X, y)
        assert not np.allclose(plain.predict_proba(X), boosted.predict_proba(X))

    def test_boosting_raises_positive_scores(self, pu_data):
        X, y, __, __a, __p = pu_data
        plain = InterceptModel(n_trees=10, n_boost_iter=0,
                               rng=np.random.default_rng(2)).fit(X, y)
        boosted = InterceptModel(n_trees=10, n_boost_iter=3,
                                 rng=np.random.default_rng(2)).fit(X, y)
        assert boosted.predict_proba(X)[y == 1].mean() >= \
            plain.predict_proba(X)[y == 1].mean() - 0.02

    def test_on_park_data(self):
        data = generate_dataset(SMALL, seed=0)
        split = data.dataset.split_by_test_year(4)
        model = InterceptModel(n_trees=8, rng=np.random.default_rng(3))
        model.fit(split.train.feature_matrix, split.train.labels)
        auc = roc_auc_score(
            split.test.labels, model.predict_proba(split.test.feature_matrix)
        )
        assert auc > 0.55

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InterceptModel(n_trees=0)
        with pytest.raises(ConfigurationError):
            InterceptModel(n_boost_iter=-1)
        with pytest.raises(ConfigurationError):
            InterceptModel(boost_quantile=1.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            InterceptModel().predict_proba(np.zeros((2, 2)))
