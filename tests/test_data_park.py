"""Tests for repro.data.park and repro.data.poachers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MFNP, QENP, SWS, PoacherModel, SyntheticPark
from repro.exceptions import ConfigurationError

SMALL = MFNP.scaled(0.5)


@pytest.fixture(scope="module")
def park() -> SyntheticPark:
    return SyntheticPark.generate(SMALL, seed=3)


@pytest.fixture(scope="module")
def poachers(park) -> PoacherModel:
    return PoacherModel(park, seed=4)


class TestSyntheticPark:
    def test_deterministic(self):
        a = SyntheticPark.generate(SMALL, seed=11)
        b = SyntheticPark.generate(SMALL, seed=11)
        np.testing.assert_array_equal(a.features.matrix, b.features.matrix)
        np.testing.assert_array_equal(a.patrol_posts, b.patrol_posts)

    def test_seed_changes_layout(self):
        a = SyntheticPark.generate(SMALL, seed=1)
        b = SyntheticPark.generate(SMALL, seed=2)
        assert not np.array_equal(a.features.matrix, b.features.matrix)

    def test_ellipse_geometry(self, park):
        assert park.grid.n_cells < SMALL.shape[0] * SMALL.shape[1]

    def test_rectangle_geometry(self):
        qpark = SyntheticPark.generate(QENP.scaled(0.5), seed=0)
        assert qpark.grid.n_cells == qpark.grid.height * qpark.grid.width

    def test_feature_count_matches_profile(self, park):
        # 10 standard features + extra ecological rasters.
        assert park.n_features == 10 + SMALL.extra_features

    def test_patrol_posts_inside_park(self, park):
        assert (park.patrol_posts >= 0).all()
        assert (park.patrol_posts < park.n_cells).all()
        assert np.unique(park.patrol_posts).size == park.patrol_posts.size

    def test_features_finite(self, park):
        assert np.isfinite(park.features.matrix).all()

    def test_expected_feature_names(self, park):
        names = park.features.names
        for expected in ("elevation", "dist_river", "dist_boundary",
                         "dist_patrol_post", "animal_density"):
            assert expected in names


class TestPoacherModel:
    def test_attack_probability_in_unit_interval(self, poachers):
        p = poachers.attack_probability(0)
        assert (p > 0).all() and (p < 1).all()

    def test_calibrated_base_rate(self, park):
        model = PoacherModel(park, seed=9)
        p = model.attack_probability(0)
        assert p.mean() == pytest.approx(SMALL.attack_rate, rel=0.05)

    def test_deterrence_reduces_probability(self, poachers, park):
        effort = np.full(park.n_cells, 3.0)
        base = poachers.attack_probability(1)
        deterred = poachers.attack_probability(1, prev_effort=effort)
        assert (deterred < base).all()

    def test_deterrence_shape_check(self, poachers):
        with pytest.raises(ConfigurationError):
            poachers.attack_probability(0, prev_effort=np.zeros(3))

    def test_attractiveness_zero_mean(self, poachers):
        assert abs(poachers.attractiveness.mean()) < 1e-9

    def test_sample_attacks_matches_probability(self, poachers, park, rng):
        p = poachers.attack_probability(0)
        draws = np.stack([poachers.sample_attacks(0, rng) for _ in range(300)])
        observed = draws.mean(axis=0)
        # Cells with high p should be attacked much more often.
        top = p > np.percentile(p, 90)
        bottom = p < np.percentile(p, 10)
        assert observed[top].mean() > observed[bottom].mean()

    def test_detection_probability_saturating(self, poachers):
        efforts = np.array([0.0, 1.0, 2.0, 10.0, 11.0])
        p = poachers.detection_probability(efforts)
        assert p[0] == 0.0
        assert (np.diff(p) > 0).all()
        assert p[-1] < 1.0
        # Diminishing returns: equal-width increments shrink with effort.
        assert p[1] - p[0] > p[4] - p[3]

    def test_detection_rejects_negative_effort(self, poachers):
        with pytest.raises(ConfigurationError):
            poachers.detection_probability(np.array([-1.0]))

    def test_joint_probability_bounded_by_attack(self, poachers, park):
        effort = np.full(park.n_cells, 2.0)
        joint = poachers.detected_attack_probability(0, effort)
        attack = poachers.attack_probability(0)
        assert (joint <= attack + 1e-12).all()

    def test_shift_intercept_moves_rate(self, park):
        model = PoacherModel(park, seed=5)
        before = model.attack_probability(0).mean()
        model.shift_intercept(1.0)
        after = model.attack_probability(0).mean()
        assert after > before

    def test_seasonal_park_varies_by_period(self):
        spark = SyntheticPark.generate(SWS.scaled(0.6), seed=0)
        model = PoacherModel(spark, seed=1)
        # Period 0 (Jan-Mar, dry) vs period 2 (Jul-Sep, wet).
        p_dry = model.attack_probability(0)
        p_wet = model.attack_probability(2)
        assert not np.allclose(p_dry, p_wet)
