"""Tests for repro.ml.bagging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml import (
    BaggingClassifier,
    BalancedBaggingClassifier,
    DecisionTreeClassifier,
    GaussianProcessClassifier,
    roc_auc_score,
)
from tests.conftest import make_blobs


def tree_factory():
    return DecisionTreeClassifier(max_depth=4, max_features="sqrt",
                                  rng=np.random.default_rng(0))


class TestBagging:
    def test_fit_predict(self, rng):
        X, y = make_blobs(rng)
        model = BaggingClassifier(tree_factory, n_estimators=8, rng=rng).fit(X, y)
        assert roc_auc_score(y, model.predict_proba(X)) > 0.95

    def test_member_probabilities_shape(self, rng):
        X, y = make_blobs(rng, n_per_class=25)
        model = BaggingClassifier(tree_factory, n_estimators=5, rng=rng).fit(X, y)
        assert model.member_probabilities(X).shape == (5, 50)

    def test_mean_of_members(self, rng):
        X, y = make_blobs(rng, n_per_class=25)
        model = BaggingClassifier(tree_factory, n_estimators=5, rng=rng).fit(X, y)
        np.testing.assert_allclose(
            model.predict_proba(X), model.member_probabilities(X).mean(axis=0)
        )

    def test_variance_nonnegative(self, rng):
        X, y = make_blobs(rng)
        model = BaggingClassifier(tree_factory, n_estimators=6, rng=rng).fit(X, y)
        assert (model.predict_variance(X) >= 0).all()

    def test_inbag_counts_recorded(self, rng):
        X, y = make_blobs(rng, n_per_class=30)
        model = BaggingClassifier(tree_factory, n_estimators=4, rng=rng).fit(X, y)
        assert model.inbag_counts_ is not None
        assert model.inbag_counts_.shape == (4, 60)
        # Each bootstrap draws n samples with replacement.
        np.testing.assert_array_equal(model.inbag_counts_.sum(axis=1), 60)

    def test_max_samples_shrinks_bootstraps(self, rng):
        X, y = make_blobs(rng, n_per_class=30)
        model = BaggingClassifier(
            tree_factory, n_estimators=3, max_samples=0.5, rng=rng
        ).fit(X, y)
        np.testing.assert_array_equal(model.inbag_counts_.sum(axis=1), 30)

    def test_single_class_bootstrap_survives(self, rng):
        """With 1 positive in 60 points many bootstraps are all-negative."""
        X = rng.random((60, 2))
        y = np.zeros(60, dtype=int)
        y[0] = 1
        model = BaggingClassifier(tree_factory, n_estimators=10, rng=rng).fit(X, y)
        p = model.predict_proba(X)
        assert np.isfinite(p).all()

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            BaggingClassifier(tree_factory, n_estimators=0)
        with pytest.raises(ConfigurationError):
            BaggingClassifier(tree_factory, max_samples=0.0)
        with pytest.raises(ConfigurationError):
            BaggingClassifier(tree_factory, max_samples=1.5)

    def test_unfitted_raises(self, rng):
        model = BaggingClassifier(tree_factory, rng=rng)
        with pytest.raises(NotFittedError):
            model.predict_proba(np.zeros((1, 2)))

    def test_intrinsic_variance_flag(self, rng):
        X, y = make_blobs(rng, n_per_class=25)
        trees = BaggingClassifier(tree_factory, n_estimators=3, rng=rng).fit(X, y)
        assert not trees.has_intrinsic_variance
        gps = BaggingClassifier(
            lambda: GaussianProcessClassifier(max_points=60,
                                              rng=np.random.default_rng(1)),
            n_estimators=2,
            rng=rng,
        ).fit(X, y)
        assert gps.has_intrinsic_variance
        assert (gps.mean_member_variance(X) >= 0).all()


class TestBalancedBagging:
    def test_bootstraps_are_balanced(self, rng):
        X = rng.random((200, 2))
        y = np.zeros(200, dtype=int)
        y[:10] = 1
        model = BalancedBaggingClassifier(tree_factory, n_estimators=5, rng=rng)
        model.fit(X, y)
        for b in range(5):
            counts = model.inbag_counts_[b]
            n_pos_drawn = counts[:10].sum()
            n_neg_drawn = counts[10:].sum()
            assert n_pos_drawn == 10
            assert n_neg_drawn == 10

    def test_ratio_parameter(self, rng):
        X = rng.random((200, 2))
        y = np.zeros(200, dtype=int)
        y[:10] = 1
        model = BalancedBaggingClassifier(
            tree_factory, n_estimators=3, ratio=2.0, rng=rng
        ).fit(X, y)
        for b in range(3):
            counts = model.inbag_counts_[b]
            assert counts[10:].sum() == 20

    def test_improves_auc_under_extreme_imbalance(self, rng):
        """The paper's Section V-A claim, in miniature."""
        n = 600
        X = rng.random((n, 2))
        logits = 6.0 * (X[:, 0] - 0.8)
        y = (rng.random(n) < 1 / (1 + np.exp(-logits)) * 0.15).astype(int)
        if y.sum() < 3:
            y[:3] = 1
        X_test = rng.random((300, 2))
        logits_t = 6.0 * (X_test[:, 0] - 0.8)
        y_test = (np.random.default_rng(9).random(300)
                  < 1 / (1 + np.exp(-logits_t)) * 0.15).astype(int)
        y_test[:2] = [0, 1]
        plain = BaggingClassifier(tree_factory, n_estimators=10,
                                  rng=np.random.default_rng(3)).fit(X, y)
        balanced = BalancedBaggingClassifier(tree_factory, n_estimators=10,
                                             rng=np.random.default_rng(3)).fit(X, y)
        auc_plain = roc_auc_score(y_test, plain.predict_proba(X_test))
        auc_balanced = roc_auc_score(y_test, balanced.predict_proba(X_test))
        # Balanced bagging must stay informative and not collapse relative
        # to plain bagging (the full Section V-A comparison lives in the
        # benchmark suite, on data shaped like SWS).
        assert auc_balanced > 0.55
        assert auc_balanced > auc_plain - 0.15

    def test_requires_positive_labels(self, rng):
        X = rng.random((20, 2))
        y = np.zeros(20, dtype=int)
        with pytest.raises(DataError):
            BalancedBaggingClassifier(tree_factory, rng=rng).fit(X, y)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            BalancedBaggingClassifier(tree_factory, ratio=0.0)
