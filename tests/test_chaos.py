"""The chaos suite: seeded fault plans replayed against real work.

Every test here injects deterministic faults (worker crashes, slow tasks,
pickling-probe failures, kills mid-save, flipped bits on disk) through
:mod:`repro.runtime.faults` and asserts the resilience contracts:

* **bit-identity** — a fan-out that survived crashes returns exactly the
  bytes a fault-free serial run returns;
* **old-or-new** — a save killed at any checkpoint leaves the previous
  model or the new one on disk, never a hybrid;
* **named corruption** — a flipped bit on disk is reported as a
  :class:`~repro.exceptions.PersistenceError` naming the corrupt artifact.

Failure messages embed the fault seed, so any red run replays exactly:
``FaultPlan.random(seed, ...)`` is a pure function of its arguments.

Run via ``make test-chaos`` (the CI job) or plain pytest.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.exceptions import (
    DeadlineExceededError,
    PersistenceError,
    WorkerCrashError,
)
from repro.ml import DecisionTreeClassifier, LogisticRegression
from repro.ml.bagging import BaggingClassifier
from repro.runtime import faults, persistence
from repro.runtime.daemon import ParkServiceDaemon
from repro.runtime.faults import FaultPlan, SimulatedCrash
from repro.runtime.parallel import run_deferred
from repro.runtime.resilience import (
    RetryPolicy,
    collect_stats,
    supervised_map,
)
from repro.runtime.service import RiskMapService

from tests.conftest import make_blobs

#: The fixed replay matrix. A failure report names the seed; rerunning the
#: suite replays the identical fault schedule.
CHAOS_SEEDS = (0, 1, 2, 3)


def _double(x):
    return x * 2


class _DoubleTask:
    """A picklable deferred task (module-level so process pools accept it)."""

    backend_hint = "process"

    def __init__(self, x):
        self.x = x

    def __call__(self):
        return self.x * 2


@pytest.fixture(scope="module")
def park():
    return generate_dataset(MFNP.scaled(0.4), seed=0)


@pytest.fixture(scope="module")
def fitted_predictor(park):
    split = park.dataset.split_by_test_year(4)
    return PawsPredictor(
        model="dtb", iware=True, n_classifiers=2, n_estimators=2, seed=5,
    ).fit(split.train)


# ---------------------------------------------------------------------------
# Supervised fan-outs survive worker crashes bit-identically
# ---------------------------------------------------------------------------
class TestCrashRecovery:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_seeded_crashes_recover_bit_identically(self, seed, tmp_path):
        n_tasks = 6
        plan = FaultPlan.random(
            seed, n_tasks, scratch=str(tmp_path), crash_rate=0.4
        )
        expected = [x * 2 for x in range(n_tasks)]
        with faults.active(plan), collect_stats() as stats:
            got = supervised_map(
                _double, range(n_tasks), workers=2, backend="process"
            )
        assert got == expected, (
            f"chaos seed {seed} (crashes at {plan.crash_once}): "
            f"recovered results diverged"
        )
        if plan.crash_once:
            assert stats.worker_deaths >= 1, (
                f"chaos seed {seed}: crashes at {plan.crash_once} "
                "never registered"
            )

    def test_persistent_crash_degrades_down_the_ladder(self, tmp_path):
        plan = FaultPlan(scratch=str(tmp_path), crash_always=(0,))
        with faults.active(plan), collect_stats() as stats:
            got = supervised_map(
                _double, range(5), workers=2, backend="process"
            )
        assert got == [x * 2 for x in range(5)]
        # task 0 kills every process worker it meets, so the fan-out must
        # have stepped down to a rung where the crash cannot fire
        assert stats.degradations >= 1
        assert stats.worker_deaths >= 1
        assert "process" not in stats.backends

    def test_degradation_disabled_raises_worker_crash_error(self, tmp_path):
        plan = FaultPlan(scratch=str(tmp_path), crash_always=(0,))
        policy = RetryPolicy(max_retries=0, backoff_base=0.0, degrade=False)
        with faults.active(plan):
            with pytest.raises(WorkerCrashError, match="worker"):
                supervised_map(
                    _double, range(4), workers=2, backend="process",
                    policy=policy,
                )

    def test_slow_tasks_hit_the_deadline(self, tmp_path):
        plan = FaultPlan(
            scratch=str(tmp_path), slow={i: 0.5 for i in range(4)}
        )
        with faults.active(plan), collect_stats() as stats:
            with pytest.raises(DeadlineExceededError):
                supervised_map(
                    _double, range(4), workers=2, backend="thread",
                    deadline=0.05,
                )
        assert stats.deadline_exceeded == 1

    def test_injected_pickle_failure_falls_back_to_threads(
        self, tmp_path, monkeypatch
    ):
        import repro.runtime.parallel as par

        monkeypatch.setattr(par, "effective_cpu_count", lambda: 4)
        tasks = [_DoubleTask(x) for x in range(5)]
        expected = [x * 2 for x in range(5)]
        plan = FaultPlan(scratch=str(tmp_path), fail_pickle_probe=True)
        with faults.active(plan), collect_stats() as stats:
            got = run_deferred(tasks, n_jobs=4, backend="auto")
        assert got == expected
        assert stats.pickle_fallbacks == 1
        assert "process" not in stats.backends


class TestRealWorkUnderChaos:
    def test_bagging_fit_survives_crashes_bit_identically(
        self, rng, tmp_path, monkeypatch
    ):
        import repro.runtime.parallel as par

        monkeypatch.setattr(par, "effective_cpu_count", lambda: 4)
        X, y = make_blobs(rng, n_per_class=60)

        def factory(seed):
            master = np.random.default_rng(seed)

            def base():
                child = np.random.default_rng(int(master.integers(2**31 - 1)))
                return DecisionTreeClassifier(max_depth=5, rng=child)

            return base

        serial = BaggingClassifier(
            factory(7), n_estimators=4, rng=np.random.default_rng(1), n_jobs=1
        ).fit(X, y)
        plan = FaultPlan(scratch=str(tmp_path), crash_once=(1,))
        with faults.active(plan):
            chaotic = BaggingClassifier(
                factory(7), n_estimators=4, rng=np.random.default_rng(1),
                n_jobs=4, backend="process",
            ).fit(X, y)
        np.testing.assert_array_equal(
            serial.predict_proba(X), chaotic.predict_proba(X)
        )
        np.testing.assert_array_equal(
            serial.inbag_counts_, chaotic.inbag_counts_
        )

    def test_serving_survives_crashes_bit_identically(
        self, park, fitted_predictor, tmp_path, monkeypatch
    ):
        import repro.runtime.parallel as par

        monkeypatch.setattr(par, "effective_cpu_count", lambda: 4)
        features = fitted_predictor.cell_feature_matrix(
            park.park, park.recorded_effort[-1]
        )
        grid = np.linspace(0.0, 4.0, 4)
        calm = RiskMapService(fitted_predictor, n_jobs=2, backend="process")
        risk, nu = calm.effort_response(features, grid)
        plan = FaultPlan(scratch=str(tmp_path), crash_once=(0,))
        with faults.active(plan):
            chaotic = RiskMapService(
                fitted_predictor, n_jobs=2, backend="process"
            )
            risk2, nu2 = chaotic.effort_response(features, grid)
        np.testing.assert_array_equal(risk, risk2)
        np.testing.assert_array_equal(nu, nu2)
        assert chaotic.resilience_info()["worker_deaths"] >= 1

    def test_service_deadline_aborts_and_is_counted(
        self, park, fitted_predictor
    ):
        features = fitted_predictor.cell_feature_matrix(
            park.park, park.recorded_effort[-1]
        )
        service = RiskMapService(fitted_predictor)
        with pytest.raises(DeadlineExceededError):
            service.risk_map(features, effort=2.0, deadline=1e-6)
        assert service.resilience_info()["deadline_exceeded"] >= 1


# ---------------------------------------------------------------------------
# Crash-safe persistence: kill the save at every checkpoint
# ---------------------------------------------------------------------------
class TestKillMidSave:
    def fit_pair(self, seed=0):
        rng = np.random.default_rng(seed)
        X, y = make_blobs(rng, n_per_class=40, n_features=3)
        old = LogisticRegression(l2=0.5).fit(X, y)
        new = LogisticRegression(l2=4.0).fit(X, y)
        return old, new, X

    @pytest.mark.parametrize("checkpoint", persistence.SAVE_CHECKPOINTS)
    def test_overwrite_leaves_old_or_new_never_garbage(
        self, checkpoint, tmp_path
    ):
        old, new, X = self.fit_pair()
        path = tmp_path / "model"
        persistence.save_model(old, path)
        plan = FaultPlan(
            scratch=str(tmp_path / "scratch"), kill_at=checkpoint
        )
        with faults.active(plan):
            with pytest.raises(SimulatedCrash):
                persistence.save_model(new, path)
        survivor = LogisticRegression.load(path)  # verify=True: checksums ok
        got = survivor.predict_proba(X)
        # The manifest rename between the last two checkpoints is the
        # commit point: kills before it must serve the old model, a kill
        # after it the new one.
        expected = new if checkpoint == "save:committed" else old
        np.testing.assert_array_equal(
            got, expected.predict_proba(X),
            err_msg=f"kill at '{checkpoint}' produced a franken-model",
        )

    @pytest.mark.parametrize("checkpoint", persistence.SAVE_CHECKPOINTS[:-1])
    def test_first_save_killed_reports_no_model(self, checkpoint, tmp_path):
        _, new, _ = self.fit_pair()
        path = tmp_path / "model"
        plan = FaultPlan(
            scratch=str(tmp_path / "scratch"), kill_at=checkpoint
        )
        with faults.active(plan):
            with pytest.raises(SimulatedCrash):
                persistence.save_model(new, path)
        with pytest.raises(PersistenceError):
            LogisticRegression.load(path)

    def test_resave_heals_interrupted_save(self, tmp_path):
        old, new, X = self.fit_pair()
        path = tmp_path / "model"
        persistence.save_model(old, path)
        plan = FaultPlan(
            scratch=str(tmp_path / "scratch"), kill_at="save:manifest-written"
        )
        with faults.active(plan):
            with pytest.raises(SimulatedCrash):
                persistence.save_model(new, path)
        persistence.save_model(new, path)  # fault-free retry
        healed = LogisticRegression.load(path)
        np.testing.assert_array_equal(
            healed.predict_proba(X), new.predict_proba(X)
        )
        # the retry committed and swept: one arrays file, no staging debris
        assert len(list(path.glob("arrays-*.npz"))) == 1
        assert not list(path.glob("*.tmp"))


# ---------------------------------------------------------------------------
# The daemon under chaos: worker kills, corrupt hot-swaps, floods, drains
# ---------------------------------------------------------------------------
#: One canonical admitted request; seed/scale pin the serving context to the
#: module's ``park`` fixture so daemon responses compare against direct calls.
RISKMAP = "/riskmap?park=MFNP&effort=1.5&seed=0&scale=0.4"


@pytest.fixture(scope="module")
def daemon_models(fitted_predictor, tmp_path_factory):
    """A models root holding the module's fitted predictor, saved once."""
    root = tmp_path_factory.mktemp("daemon-models")
    fitted_predictor.save(root / "MFNP")
    return root


@pytest.fixture(scope="module")
def direct_risk(park, fitted_predictor):
    """The fault-free direct library answer every daemon body must match."""
    features = fitted_predictor.cell_feature_matrix(
        park.park, park.recorded_effort[-1]
    )
    return RiskMapService(fitted_predictor).risk_map(features, effort=1.5)


def _http(port, path, method="GET", timeout=30.0):
    """(status, json body, headers) for one request against the daemon."""
    url = f"http://127.0.0.1:{port}{path}"
    request = urllib.request.Request(url, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class TestDaemonChaos:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_worker_kills_mid_request_serve_bit_identically(
        self, seed, daemon_models, direct_risk, tmp_path, monkeypatch
    ):
        import repro.runtime.parallel as par

        monkeypatch.setattr(par, "effective_cpu_count", lambda: 4)
        daemon = ParkServiceDaemon(
            daemon_models, port=0,
            registry_options={
                "n_jobs": 2, "backend": "process", "tile_size": 8,
            },
        ).start()
        try:
            plan = FaultPlan.random(
                seed, 4, scratch=str(tmp_path), crash_rate=0.6
            )
            with faults.active(plan):
                status, body, _ = _http(daemon.port, RISKMAP)
            assert status == 200, (
                f"chaos seed {seed} (crashes at {plan.crash_once}): "
                f"admitted request failed: {body}"
            )
            np.testing.assert_array_equal(
                np.asarray(body["risk"]), direct_risk,
                err_msg=(
                    f"chaos seed {seed} (crashes at {plan.crash_once}): "
                    "served risk map diverged from the direct library call"
                ),
            )
            if plan.crash_once:
                _, stats, _ = _http(daemon.port, "/stats")
                resilience = stats["parks"]["MFNP"]["resilience"]
                assert resilience["worker_deaths"] >= 1, (
                    f"chaos seed {seed}: crashes at {plan.crash_once} "
                    "never registered in /stats"
                )
        finally:
            daemon.close()

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_corrupt_hot_swap_rejected_while_old_model_serves(
        self, seed, daemon_models, direct_risk, tmp_path
    ):
        root = tmp_path / "models"
        shutil.copytree(daemon_models, root)
        daemon = ParkServiceDaemon(
            root, port=0, registry_options={"n_jobs": 1},
        ).start()
        try:
            status, baseline, _ = _http(daemon.port, RISKMAP)
            assert status == 200
            arrays_name = json.loads(
                (root / "MFNP" / "manifest.json").read_text()
            )["arrays_file"]
            offset = faults.flip_byte(root / "MFNP" / arrays_name, seed=seed)
            status, body, _ = _http(
                daemon.port, "/models/MFNP/reload", method="POST"
            )
            assert status == 409, (
                f"chaos seed {seed} (bit flip at byte {offset}): corrupt "
                f"hot-swap was accepted: {body}"
            )
            assert body["kind"] == "PersistenceError"
            assert body["serving"] is True
            status, after, _ = _http(daemon.port, RISKMAP)
            assert status == 200
            assert after["version"] == baseline["version"]
            np.testing.assert_array_equal(
                np.asarray(after["risk"]), direct_risk,
                err_msg=(
                    f"chaos seed {seed}: the incumbent model no longer "
                    "serves bit-identically after a rejected swap"
                ),
            )
            # flip_byte is self-inverse: restore the artifact and the next
            # reload must heal (version bump, same bits).
            faults.flip_byte(root / "MFNP" / arrays_name, seed=seed)
            status, body, _ = _http(
                daemon.port, "/models/MFNP/reload", method="POST"
            )
            assert status == 200 and body["reloaded"] is True
            status, healed, _ = _http(daemon.port, RISKMAP)
            assert status == 200
            assert healed["version"] > baseline["version"]
            np.testing.assert_array_equal(
                np.asarray(healed["risk"]), direct_risk
            )
        finally:
            daemon.close()

    def test_flood_past_admission_sheds_clean_503s(
        self, daemon_models, direct_risk, tmp_path
    ):
        daemon = ParkServiceDaemon(
            daemon_models, port=0,
            max_inflight=1, max_queue=0, queue_wait=0.05,
            registry_options={"n_jobs": 1},
        ).start()
        try:
            status, _, _ = _http(daemon.port, RISKMAP)  # warm load + cache
            assert status == 200
            plan = FaultPlan(
                scratch=str(tmp_path), slow_requests={"riskmap": 0.6}
            )
            results = []
            lock = threading.Lock()

            def client():
                out = _http(daemon.port, RISKMAP)
                with lock:
                    results.append(out)

            with faults.active(plan):
                clients = [
                    threading.Thread(target=client) for _ in range(5)
                ]
                for thread in clients:
                    thread.start()
                for thread in clients:
                    thread.join()
            statuses = [status for status, _, _ in results]
            assert set(statuses) <= {200, 503}, statuses
            assert statuses.count(200) >= 1, statuses
            assert statuses.count(503) >= 1, statuses
            for status, body, headers in results:
                if status == 503:
                    # a clean shed: JSON error naming the cause, with a
                    # Retry-After hint — never a hang or a torn response
                    assert body["kind"] == "AdmissionError"
                    assert headers.get("Retry-After") == "1"
                else:
                    np.testing.assert_array_equal(
                        np.asarray(body["risk"]), direct_risk
                    )
            _, stats, _ = _http(daemon.port, "/stats")
            assert stats["admission"]["shed_saturated"] >= 1
        finally:
            daemon.close()

    def test_drain_completes_inflight_and_sheds_new(
        self, daemon_models, direct_risk, tmp_path
    ):
        daemon = ParkServiceDaemon(
            daemon_models, port=0, max_inflight=4,
            registry_options={"n_jobs": 1},
        ).start()
        try:
            status, _, _ = _http(daemon.port, RISKMAP)  # warm load + cache
            assert status == 200
            plan = FaultPlan(
                scratch=str(tmp_path), slow_requests={"riskmap": 0.5}
            )
            results, shed = [], []
            lock = threading.Lock()

            def client(sink):
                out = _http(daemon.port, RISKMAP)
                with lock:
                    sink.append(out)

            with faults.active(plan):
                inflight = [
                    threading.Thread(target=client, args=(results,))
                    for _ in range(3)
                ]
                for thread in inflight:
                    thread.start()
                limit = time.monotonic() + 5.0
                while daemon.gate.inflight < 3:
                    assert time.monotonic() < limit, (
                        "requests never became in-flight"
                    )
                    time.sleep(0.01)
                final = {}
                drainer = threading.Thread(
                    target=lambda: final.update(daemon.drain())
                )
                drainer.start()
                while not daemon.gate.draining:
                    time.sleep(0.005)
                late = threading.Thread(target=client, args=(shed,))
                late.start()
                late.join()
                drainer.join(timeout=30.0)
                for thread in inflight:
                    thread.join()
            assert not drainer.is_alive()
            assert len(results) == 3
            for status, body, _ in results:
                assert status == 200, (
                    f"drain lost an in-flight request: {body}"
                )
                np.testing.assert_array_equal(
                    np.asarray(body["risk"]), direct_risk
                )
            (late_status, late_body, late_headers), = shed
            assert late_status == 503
            assert late_body["kind"] == "AdmissionError"
            assert late_headers.get("Retry-After") == "1"
            assert final["admission"]["inflight"] == 0
            assert final["admission"]["completed"] >= 4  # warm + 3 in-flight
            assert final["admission"]["shed_draining"] >= 1
            # the listener is down: further connections are refused
            with pytest.raises(OSError):
                _http(daemon.port, RISKMAP, timeout=2.0)
        finally:
            daemon.close()


class TestBitFlips:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_flipped_bit_is_detected_and_named(self, seed, tmp_path):
        rng = np.random.default_rng(3)
        X, y = make_blobs(rng, n_per_class=30, n_features=3)
        path = tmp_path / "model"
        LogisticRegression().fit(X, y).save(path)
        arrays_name = json.loads(
            (path / "manifest.json").read_text()
        )["arrays_file"]
        offset = faults.flip_byte(path / arrays_name, seed=seed)
        with pytest.raises(PersistenceError) as err:
            LogisticRegression.load(path)
        assert "arrays" in str(err.value), (
            f"chaos seed {seed} (bit flip at byte {offset}): corruption "
            f"report does not name the artifact: {err.value}"
        )
