"""Property-based tests for evaluation helpers and game-model invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import ascii_heatmap, format_table
from repro.geo import Grid
from repro.planning import GreenSecurityGame


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 9999), height=st.integers(2, 8), width=st.integers(2, 8))
def test_heatmap_dimensions_always_match_grid(seed, height, width):
    rng = np.random.default_rng(seed)
    grid = Grid.rectangular(height, width)
    art = ascii_heatmap(grid, rng.random(grid.n_cells))
    lines = art.splitlines()
    assert len(lines) == height
    assert all(len(line) == width for line in lines)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 9999))
def test_format_table_row_count_and_width(seed):
    rng = np.random.default_rng(seed)
    n_rows = int(rng.integers(1, 6))
    rows = [[f"r{i}", float(rng.random()), int(rng.integers(100))]
            for i in range(n_rows)]
    text = format_table(["name", "value", "count"], rows)
    lines = text.splitlines()
    assert len(lines) == n_rows + 2  # header + rule + rows
    assert len(set(len(line) for line in lines)) == 1  # perfectly aligned


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 9999), scale=st.floats(0.1, 5.0))
def test_defender_utility_positive_iff_patrolling(seed, scale):
    """No patrols detect nothing; any patrolling detects a positive amount.

    (Utility is *not* globally monotone in coverage — past some point the
    deterrence response outweighs the detection gain, which is precisely why
    the planner optimises instead of saturating effort.)
    """
    rng = np.random.default_rng(seed)
    game = GreenSecurityGame(
        rng.normal(-1.0, 1.0, size=20),
        detect_rate=0.7,
        response_rationality=0.3,
    )
    assert game.defender_utility(np.zeros(20)) == 0.0
    assert game.defender_utility(np.full(20, scale)) > 0.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 9999))
def test_attack_probabilities_bounded(seed):
    rng = np.random.default_rng(seed)
    game = GreenSecurityGame(rng.normal(0, 3, size=15))
    coverage = rng.random(15) * 10
    p = game.attack_probabilities(coverage)
    assert (p > 0).all() and (p < 1).all()
