"""Tests for dataset persistence (to_npz / from_npz)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MFNP, PoachingDataset, generate_dataset
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(MFNP.scaled(0.4), seed=0).dataset


class TestRoundTrip:
    def test_arrays_survive(self, dataset, tmp_path):
        path = tmp_path / "park.npz"
        dataset.to_npz(path)
        loaded = PoachingDataset.from_npz(path)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)
        np.testing.assert_allclose(loaded.static_features, dataset.static_features)
        np.testing.assert_allclose(loaded.current_effort, dataset.current_effort)
        np.testing.assert_array_equal(loaded.period, dataset.period)
        assert loaded.periods_per_year == dataset.periods_per_year
        assert loaded.feature_names == dataset.feature_names
        assert loaded.name == dataset.name

    def test_loaded_dataset_is_usable(self, dataset, tmp_path):
        path = tmp_path / "park.npz"
        dataset.to_npz(path)
        loaded = PoachingDataset.from_npz(path)
        split = loaded.split_by_test_year(4)
        assert split.train.n_points + split.test.n_points <= loaded.n_points
        assert loaded.feature_matrix.shape == dataset.feature_matrix.shape

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, labels=np.zeros(3, dtype=int))
        with pytest.raises(DataError):
            PoachingDataset.from_npz(path)

    def test_statistics_preserved(self, dataset, tmp_path):
        path = tmp_path / "park.npz"
        dataset.to_npz(path)
        loaded = PoachingDataset.from_npz(path)
        assert loaded.statistics() == dataset.statistics()
