"""Tests for repro.evaluation and repro.pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataToDeploymentPipeline
from repro.data import MFNP, generate_dataset
from repro.evaluation import (
    TABLE2_MODELS,
    ModelSpec,
    ascii_heatmap,
    format_table,
    run_model_zoo,
)
from repro.evaluation.experiments import average_by_model, evaluate_model_on_split
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.geo import Grid

SMALL = MFNP.scaled(0.5)


@pytest.fixture(scope="module")
def park_data():
    return generate_dataset(SMALL, seed=0)


class TestModelZoo:
    def test_table2_models_cover_grid(self):
        names = {spec.name for spec in TABLE2_MODELS}
        assert names == {"SVB", "DTB", "GPB", "SVB-iW", "DTB-iW", "GPB-iW"}

    def test_evaluate_single_model(self, park_data):
        split = park_data.dataset.split_by_test_year(4)
        auc = evaluate_model_on_split(
            ModelSpec("dtb", False), split, n_estimators=3, seed=0
        )
        assert 0.4 < auc <= 1.0

    def test_run_model_zoo_structure(self, park_data):
        fast = (ModelSpec("dtb", False), ModelSpec("dtb", True))
        results = run_model_zoo(
            park_data.dataset, test_years=[4, 5], n_classifiers=4,
            n_estimators=2, models=fast,
        )
        assert set(results) == {4, 5}
        assert set(results[4]) == {"DTB", "DTB-iW"}

    def test_average_by_model(self):
        results = {4: {"A": 0.6, "B": 0.8}, 5: {"A": 0.8, "B": 0.6}}
        avg = average_by_model(results)
        assert avg["A"] == pytest.approx(0.7)
        assert avg["B"] == pytest.approx(0.7)

    def test_average_empty(self):
        assert average_by_model({}) == {}


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["model", "auc"], [["DTB", 0.71234], ["GPB-iW", 0.8]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "0.712" in text
        assert "GPB-iW" in text

    def test_row_width_validation(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])


class TestAsciiHeatmap:
    def test_shape_and_ramp(self):
        grid = Grid.rectangular(3, 4)
        values = np.arange(12, dtype=float)
        art = ascii_heatmap(grid, values)
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 4 for line in lines)
        assert lines[0][0] == " "  # min maps to the lightest character
        assert lines[-1][-1] == "@"  # max maps to the densest

    def test_masked_cells_blank(self):
        grid = Grid.elliptical(7, 7)
        art = ascii_heatmap(grid, np.ones(grid.n_cells))
        assert art.splitlines()[0][0] == " "

    def test_title(self):
        grid = Grid.rectangular(2, 2)
        art = ascii_heatmap(grid, np.zeros(4), title="effort")
        assert art.splitlines()[0] == "effort"

    def test_constant_values(self):
        grid = Grid.rectangular(2, 2)
        art = ascii_heatmap(grid, np.full(4, 3.0))
        assert set("".join(art.splitlines())) == {" "}

    def test_validation(self):
        grid = Grid.rectangular(2, 2)
        with pytest.raises(DataError):
            ascii_heatmap(grid, np.zeros(3))
        with pytest.raises(ConfigurationError):
            ascii_heatmap(grid, np.zeros(4), ramp="x")
        with pytest.raises(DataError):
            ascii_heatmap(grid, np.full(4, np.nan))


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        pipeline = DataToDeploymentPipeline(
            SMALL, model="dtb", beta=0.8, horizon=8, n_patrols=2,
            n_segments=6, n_classifiers=4, n_estimators=2, seed=0,
        )
        return pipeline, pipeline.run(field_test=True)

    def test_predictor_evaluated(self, result):
        __, res = result
        assert 0.4 < res.test_auc <= 1.0

    def test_one_plan_per_post(self, result):
        __, res = result
        assert set(res.plans) == set(int(p) for p in res.data.park.patrol_posts)

    def test_plans_conserve_effort(self, result):
        pipeline, res = result
        for plan in res.plans.values():
            expected = pipeline.horizon * pipeline.n_patrols
            assert plan.coverage.sum() == pytest.approx(expected, rel=1e-5)

    def test_field_test_attached(self, result):
        __, res = result
        assert res.field_design is not None
        assert res.field_result is not None
        assert 0.0 <= res.field_p_value <= 1.0

    def test_combined_coverage(self, result):
        pipeline, res = result
        coverage = pipeline.combined_coverage(res)
        expected = len(res.plans) * pipeline.horizon * pipeline.n_patrols
        assert coverage.sum() == pytest.approx(expected, rel=1e-5)

    def test_bad_beta(self):
        with pytest.raises(ConfigurationError):
            DataToDeploymentPipeline(SMALL, beta=1.5)

    def test_combined_coverage_requires_plans(self, result):
        pipeline, res = result
        from repro.pipeline import PipelineResult

        empty = PipelineResult(
            data=res.data, predictor=res.predictor, test_auc=0.5, plans={}
        )
        with pytest.raises(NotFittedError):
            pipeline.combined_coverage(empty)
