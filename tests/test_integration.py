"""Cross-module integration tests and failure injection.

These tests exercise whole-pipeline invariants that no single module can
check: flow conservation against utility accounting, determinism across the
full stack, honest behaviour under degenerate data, and the statistical
coupling between the simulator's ground truth and the learned models.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PawsPredictor
from repro.data import MFNP, PoachingDataset, generate_dataset
from repro.exceptions import DataError
from repro.geo import Grid
from repro.ml.metrics import roc_auc_score
from repro.planning import (
    PatrolMILP,
    PatrolPlanner,
    PiecewiseLinear,
    RobustObjective,
    TimeUnrolledGraph,
    decompose_flow_into_routes,
)

SMALL = MFNP.scaled(0.5)


@pytest.fixture(scope="module")
def park_data():
    return generate_dataset(SMALL, seed=0)


class TestEndToEndDeterminism:
    def test_pipeline_reproducible(self):
        from repro import DataToDeploymentPipeline

        kwargs = dict(model="dtb", beta=0.8, horizon=8, n_patrols=2,
                      n_segments=5, n_classifiers=4, n_estimators=2, seed=3)
        r1 = DataToDeploymentPipeline(SMALL, **kwargs).run()
        r2 = DataToDeploymentPipeline(SMALL, **kwargs).run()
        assert r1.test_auc == pytest.approx(r2.test_auc)
        for post in r1.plans:
            np.testing.assert_allclose(
                r1.plans[post].coverage, r2.plans[post].coverage, atol=1e-9
            )


class TestModelLearnsTheSimulator:
    def test_predictions_track_ground_truth_risk(self, park_data):
        """The fitted model's ranking must correlate with the simulator's
        true attack probabilities on patrolled cells — the property that
        makes field tests work."""
        split = park_data.dataset.split_by_test_year(4)
        predictor = PawsPredictor(model="dtb", iware=True, n_classifiers=5,
                                  n_estimators=3, seed=1).fit(split.train)
        features = predictor.cell_feature_matrix(
            park_data.park, park_data.recorded_effort[-1]
        )
        predicted = predictor.predict_proba(features, effort=2.0)
        truth = park_data.poachers.attack_probability(SMALL.n_periods - 1)
        corr = np.corrcoef(predicted, truth)[0, 1]
        assert corr > 0.3

    def test_auc_against_true_attacks(self, park_data):
        """Scoring against *true attacks* (not just detections) stays
        informative — detections are a noisy subset of attacks."""
        split = park_data.dataset.split_by_test_year(4)
        predictor = PawsPredictor(model="gpb", iware=True, n_classifiers=5,
                                  n_estimators=3, seed=1).fit(split.train)
        test = split.test
        true_attacks = np.array(
            [int(park_data.attacks[int(t), int(c)])
             for t, c in zip(test.period, test.cell)]
        )
        if 0 < true_attacks.sum() < true_attacks.size:
            scores = predictor.predict_proba(test.feature_matrix)
            assert roc_auc_score(true_attacks, scores) > 0.55


class TestPlanAccountingInvariants:
    def test_route_weights_reproduce_milp_objective(self, park_data):
        """Utility computed from decomposed routes must equal the MILP's
        reported objective — flows, coverage, and PWL agree end to end."""
        split = park_data.dataset.split_by_test_year(4)
        predictor = PawsPredictor(model="dtb", iware=True, n_classifiers=4,
                                  n_estimators=2, seed=1).fit(split.train)
        park = park_data.park
        features = predictor.cell_feature_matrix(park, park_data.recorded_effort[-1])
        planner = PatrolPlanner(park.grid, int(park.patrol_posts[0]),
                                horizon=8, n_patrols=2, n_segments=5)
        xs = planner.breakpoints()
        risk, nu = predictor.effort_response(features, xs)
        objective = RobustObjective(xs, risk, nu, beta=0.5)
        plan = planner.plan(objective)
        # Coverage implied by routes == MILP coverage.
        implied = np.zeros(park.grid.n_cells)
        for route in plan.routes:
            for cell in route.cells:
                implied[cell] += route.weight * planner.n_patrols
        np.testing.assert_allclose(implied, plan.coverage, atol=1e-4)
        # Objective recomputed from coverage == MILP objective.
        recomputed = objective.evaluate_coverage(plan.coverage, beta=0.5)
        assert recomputed == pytest.approx(plan.objective_value, abs=1e-4)


class TestFailureInjection:
    def test_all_negative_training_data(self, park_data):
        """A season with zero detections must not crash the predictor."""
        split = park_data.dataset.split_by_test_year(4)
        crippled = split.train.subset(split.train.labels == 0)
        predictor = PawsPredictor(model="dtb", iware=True, n_classifiers=4,
                                  n_estimators=2, seed=1).fit(crippled)
        p = predictor.predict_proba(split.test.feature_matrix)
        assert np.isfinite(p).all()
        assert (p >= 0).all() and (p <= 1).all()

    def test_single_point_dataset(self):
        ds = PoachingDataset(
            static_features=np.ones((1, 3)),
            prev_effort=np.zeros(1),
            current_effort=np.ones(1),
            labels=np.ones(1, dtype=int),
            period=np.full(1, 4),
            cell=np.zeros(1, dtype=int),
            periods_per_year=4,
        )
        predictor = PawsPredictor(model="dtb", iware=True, n_classifiers=3,
                                  n_estimators=2, seed=0).fit(ds)
        assert np.isfinite(predictor.predict_proba(np.ones((2, 4)))).all()

    def test_corrupted_dataset_rejected(self):
        with pytest.raises(DataError):
            PoachingDataset(
                static_features=np.full((2, 2), np.nan) * 0 + np.inf,
                prev_effort=np.zeros(2),
                current_effort=np.zeros(2),
                labels=np.array([0, 7]),
                period=np.zeros(2, dtype=int),
                cell=np.zeros(2, dtype=int),
                periods_per_year=4,
            )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 999),
    height=st.integers(3, 6),
    width=st.integers(3, 6),
    horizon=st.integers(4, 7),
    n_patrols=st.integers(1, 3),
)
def test_milp_flow_conservation_property(seed, height, width, horizon, n_patrols):
    """On arbitrary random instances, the optimal plan always satisfies the
    flow polytope: unit source/sink flow, conservation at every node, and
    total coverage exactly T*K."""
    grid = Grid.rectangular(height, width)
    graph = TimeUnrolledGraph(grid, source_cell=0, horizon=horizon)
    milp = PatrolMILP(graph, n_patrols=n_patrols)
    rng = np.random.default_rng(seed)
    xs = np.linspace(0.0, milp.max_coverage, 4)
    utilities = {
        int(v): PiecewiseLinear(xs, np.sort(rng.random(4)))
        for v in graph.reachable_cells
    }
    solution = milp.solve(utilities)
    flows = solution.edge_flows
    out_edges, in_edges = graph.incidence_lists()
    src, snk = graph.source_node, graph.sink_node
    assert flows[out_edges[src]].sum() == pytest.approx(1.0, abs=1e-6)
    assert flows[in_edges[snk]].sum() == pytest.approx(1.0, abs=1e-6)
    for node in range(graph.n_nodes):
        if node in (src, snk):
            continue
        inflow = flows[in_edges[node]].sum() if in_edges[node] else 0.0
        outflow = flows[out_edges[node]].sum() if out_edges[node] else 0.0
        assert inflow == pytest.approx(outflow, abs=1e-6)
    assert solution.coverage.sum() == pytest.approx(
        horizon * n_patrols, rel=1e-6
    )
    routes = decompose_flow_into_routes(graph, flows)
    assert sum(r.weight for r in routes) == pytest.approx(1.0, abs=1e-3)
