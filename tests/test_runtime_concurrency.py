"""Concurrency regressions for the ``@thread_shared`` services.

The contract under test (``repro.runtime.concurrency``, enforced
statically by analyzer rule RP004): every class decorated
``@thread_shared`` mutates its private state only under ``self._lock``,
so a daemon may share one :class:`RiskMapService` / :class:`PlanService`
/ :class:`PatrolMILP` across request threads. These tests hammer the
caches from barrier-synchronised threads and pin three properties:

* results are bit-identical to the serial path (caching must never
  change numbers, raced or not);
* counters and cache sizes stay consistent (no lost updates);
* racing cold lookups converge on one incumbent entry (planner registry
  and MILP structure cache hand every caller the same object).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.exceptions import ConfigurationError
from repro.planning.service import PlanService
from repro.runtime import RiskMapService, thread_shared, thread_shared_classes

SMALL = MFNP.scaled(0.4)
PLANNER_KW = dict(horizon=6, n_patrols=2, n_segments=4)
N_THREADS = 8


@pytest.fixture(scope="module")
def setup():
    data = generate_dataset(SMALL, seed=0)
    split = data.dataset.split_by_test_year(SMALL.years - 1)
    predictor = PawsPredictor(
        model="dtb", iware=True, n_classifiers=3, seed=1
    ).fit(split.train)
    features = predictor.cell_feature_matrix(data.park, data.recorded_effort[-1])
    return data, predictor, features


def run_threads(n, fn):
    """Run ``fn(i)`` on n threads released together; return results in order."""
    barrier = threading.Barrier(n)
    results = [None] * n
    errors = []

    def worker(i):
        try:
            barrier.wait()
            results[i] = fn(i)
        except BaseException as exc:  # surfaced below, never swallowed
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


# ---------------------------------------------------------------------------
# The decorator itself
# ---------------------------------------------------------------------------
class TestThreadSharedDecorator:
    def test_missing_lock_is_rejected_at_construction(self):
        @thread_shared
        class Careless:
            def __init__(self):
                self.value = 0

        with pytest.raises(ConfigurationError, match="_lock"):
            Careless()

    def test_lock_carrying_class_constructs(self):
        @thread_shared
        class Careful:
            def __init__(self):
                self._lock = threading.Lock()

        assert isinstance(Careful(), Careful)

    def test_services_are_registered(self):
        registered = thread_shared_classes()
        for name in (
            "repro.runtime.service.RiskMapService",
            "repro.planning.service.PlanService",
            "repro.planning.milp.PatrolMILP",
        ):
            assert name in registered


# ---------------------------------------------------------------------------
# RiskMapService: LRU cache + feature registry under contention
# ---------------------------------------------------------------------------
class TestRiskMapServiceHammer:
    EFFORTS = [None, 0.0, 0.5, 1.0, 1.5, 2.0]

    def test_concurrent_risk_maps_bit_identical_to_serial(self, setup):
        __, predictor, features = setup
        serial = {
            e: RiskMapService(predictor).risk_map(features, effort=e)
            for e in self.EFFORTS
        }
        service = RiskMapService(predictor)

        def query(i):
            # each thread walks every effort level, phase-shifted so both
            # cold misses and warm hits race on every key
            return [
                service.risk_map(features, effort=e)
                for e in self.EFFORTS[i % len(self.EFFORTS):]
                + self.EFFORTS[: i % len(self.EFFORTS)]
            ]

        results = run_threads(N_THREADS, query)
        for i, maps in enumerate(results):
            order = (
                self.EFFORTS[i % len(self.EFFORTS):]
                + self.EFFORTS[: i % len(self.EFFORTS)]
            )
            for e, got in zip(order, maps):
                np.testing.assert_array_equal(got, serial[e])

    def test_counters_and_size_consistent_after_hammer(self, setup):
        __, predictor, features = setup
        service = RiskMapService(predictor, max_entries=4)
        calls_per_thread = len(self.EFFORTS)

        def query(i):
            for e in self.EFFORTS:
                service.risk_map(features, effort=e)

        run_threads(N_THREADS, query)
        info = service.cache_info()
        # no lost counter updates, and eviction respected the bound
        assert info["hits"] + info["misses"] == N_THREADS * calls_per_thread
        assert info["entries"] <= 4
        # distinct keys exceed capacity, so at least one eviction-driven miss
        assert info["misses"] >= len(self.EFFORTS)

    def test_concurrent_registration_is_consistent(self, setup):
        __, predictor, features = setup
        service = RiskMapService(predictor)

        def register(i):
            token = service.register_features(f"park-{i}", features.copy())
            return token, service.risk_map(token, effort=1.0)

        results = run_threads(N_THREADS, register)
        tokens = [token for token, __ in results]
        assert sorted(tokens) == sorted(f"park-{i}" for i in range(N_THREADS))
        reference = results[0][1]
        for __, risk in results[1:]:
            np.testing.assert_array_equal(risk, reference)


# ---------------------------------------------------------------------------
# PlanService: planner registry races converge on one instance
# ---------------------------------------------------------------------------
class TestPlanServiceHammer:
    @pytest.fixture()
    def service(self, setup):
        data, predictor, __ = setup
        return PlanService(
            RiskMapService(predictor),
            data.park.grid,
            data.park.patrol_posts,
            **PLANNER_KW,
        )

    def test_cold_planner_race_yields_one_instance(self, setup, service):
        data, __, ___ = setup
        post = int(data.park.patrol_posts[0])

        planners = run_threads(N_THREADS, lambda i: service.planner_for(post))
        assert all(p is planners[0] for p in planners)
        assert len(service._planners) == 1

    def test_concurrent_plans_match_serial(self, setup, service):
        data, predictor, features = setup
        posts = [int(p) for p in data.park.patrol_posts[:2]]
        serial_service = PlanService(
            RiskMapService(predictor),
            data.park.grid,
            data.park.patrol_posts,
            **PLANNER_KW,
        )
        serial = {
            post: serial_service.plan_post(post, features, beta=0.5)
            for post in posts
        }

        plans = run_threads(
            len(posts) * 2,
            lambda i: (posts[i % 2], service.plan_post(posts[i % 2], features, beta=0.5)),
        )
        for post, plan in plans:
            expected = serial[post]
            assert plan.objective_value == expected.objective_value
            np.testing.assert_array_equal(plan.coverage, expected.coverage)
            np.testing.assert_array_equal(
                plan.solution.edge_flows, expected.solution.edge_flows
            )


# ---------------------------------------------------------------------------
# PatrolMILP: structure cache races converge on the incumbent
# ---------------------------------------------------------------------------
class TestMilpStructureHammer:
    def test_racing_builds_share_incumbent_structure(self, setup):
        data, predictor, features = setup
        service = PlanService(
            RiskMapService(predictor),
            data.park.grid,
            data.park.patrol_posts,
            **PLANNER_KW,
        )
        post = int(data.park.patrol_posts[0])
        planner = service.planner_for(post)
        objective = service.objective_for(features, beta=0.5)
        utilities = planner._utilities_from_objective(objective, 0.5, None)
        milp = planner._milp

        structures = run_threads(
            N_THREADS, lambda i: milp.build_structure(utilities)
        )
        # every caller — including the one that built it — holds the incumbent
        assert all(s is structures[0] for s in structures)
        info = milp.structure_cache_info()
        assert info["entries"] == 1
        assert info["hits"] + info["misses"] == N_THREADS
        assert info["misses"] >= 1
