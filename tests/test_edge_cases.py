"""Edge-case tests across modules: scaling, limits, and defensive paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IWareEnsemble, UncertaintyScaler, make_weak_learner
from repro.data import MFNP, generate_dataset
from repro.exceptions import ConfigurationError, DataError, PlanningError
from repro.geo import Grid, geodesic_distance
from repro.planning import PatrolMILP, PiecewiseLinear, TimeUnrolledGraph
from repro.planning.branch_and_bound import BranchAndBoundSolver


class TestGeoScaling:
    def test_geodesic_respects_cell_size(self):
        grid = Grid.rectangular(4, 4, cell_km=2.5)
        dist = geodesic_distance(grid, [0])
        assert dist[grid.cell_id(0, 3)] == pytest.approx(7.5)

    def test_grid_cell_km_in_area(self):
        grid = Grid.elliptical(10, 10, cell_km=3.0)
        assert grid.area_sq_km == grid.n_cells * 9.0


class TestUncertaintyScalerEdge:
    def test_invalid_quantile_pair(self):
        with pytest.raises(DataError):
            UncertaintyScaler(steepness_quantiles=(0.75, 0.25))
        with pytest.raises(DataError):
            UncertaintyScaler(steepness_quantiles=(-0.1, 0.5))

    def test_nonfinite_reference_rejected(self):
        with pytest.raises(DataError):
            UncertaintyScaler().fit(np.array([1.0, np.inf]))


class TestIWareEdge:
    @pytest.fixture(scope="class")
    def split(self):
        return generate_dataset(MFNP.scaled(0.4), seed=0).dataset.split_by_test_year(4)

    def test_corrected_probabilities_shape_and_range(self, split):
        factory = make_weak_learner("dtb", rng=np.random.default_rng(0),
                                    n_estimators=2)
        ens = IWareEnsemble(factory, n_classifiers=4,
                            rng=np.random.default_rng(0)).fit(split.train)
        X = split.test.feature_matrix[:15]
        corrected = ens.corrected_member_probabilities(X)
        assert corrected.shape == (ens.n_thresholds, 15)
        assert (corrected > 0).all() and (corrected < 1).all()

    def test_single_threshold_degenerates_gracefully(self, split):
        factory = make_weak_learner("dtb", rng=np.random.default_rng(0),
                                    n_estimators=2)
        ens = IWareEnsemble(factory, n_classifiers=1,
                            rng=np.random.default_rng(0)).fit(split.train)
        assert ens.n_thresholds == 1
        np.testing.assert_allclose(ens.weights_, [1.0])
        p = ens.predict_proba(split.test.feature_matrix[:5])
        assert np.isfinite(p).all()

    def test_subset_positive_rates_monotone(self, split):
        """Filtering only drops negatives, so positive rates rise with theta."""
        factory = make_weak_learner("dtb", rng=np.random.default_rng(0),
                                    n_estimators=2)
        ens = IWareEnsemble(factory, n_classifiers=6,
                            rng=np.random.default_rng(0)).fit(split.train)
        rates = ens.subset_positive_rates_
        assert (np.diff(rates) >= -1e-12).all()


class TestPlanningEdge:
    def test_horizon_two_is_stay_home(self):
        """T=2 leaves no time to leave the post: coverage all at source."""
        grid = Grid.rectangular(3, 3)
        graph = TimeUnrolledGraph(grid, source_cell=4, horizon=2)
        milp = PatrolMILP(graph, n_patrols=1)
        xs = np.array([0.0, milp.max_coverage])
        utilities = {int(v): PiecewiseLinear(xs, xs * 0.1)
                     for v in graph.reachable_cells}
        sol = milp.solve(utilities)
        assert sol.coverage[4] == pytest.approx(2.0)
        assert sol.coverage.sum() == pytest.approx(2.0)

    def test_masked_source_pruning(self):
        """A post in a pocket can only cover its pocket."""
        mask = np.ones((3, 5), dtype=bool)
        mask[:, 2] = False  # wall splits the park
        grid = Grid(3, 5, mask=mask)
        post = grid.cell_id(1, 0)
        graph = TimeUnrolledGraph(grid, post, horizon=6)
        right_side = {grid.cell_id(r, c) for r in range(3) for c in (3, 4)}
        assert not right_side & set(int(v) for v in graph.reachable_cells)

    def test_bnb_node_cap_raises(self):
        from scipy import sparse

        # Cuts off: a root cover cut would make this integral at node 1.
        solver = BranchAndBoundSolver(max_nodes=1, cuts=False)
        # A 2-binary problem needing branching: LP relaxation fractional.
        c = np.array([-1.0, -1.0])
        a = sparse.csr_matrix(np.array([[1.0, 1.0]]))
        with pytest.raises(PlanningError):
            solver.solve(c, a, np.array([-np.inf]), np.array([1.5]),
                         np.array([True, True]))

    def test_bnb_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            BranchAndBoundSolver(max_nodes=0)


class TestDatasetEdge:
    def test_subset_preserves_metadata(self):
        data = generate_dataset(MFNP.scaled(0.4), seed=0)
        ds = data.dataset
        sub = ds.subset(ds.labels == 1)
        assert sub.feature_names == ds.feature_names
        assert sub.name == ds.name
        assert sub.periods_per_year == ds.periods_per_year

    def test_empty_subset_statistics(self):
        data = generate_dataset(MFNP.scaled(0.4), seed=0)
        empty = data.dataset.subset(np.zeros(data.dataset.n_points, dtype=bool))
        stats = empty.statistics()
        assert stats["n_points"] == 0
        assert stats["percent_positive"] == 0.0
        assert stats["avg_effort_km"] == 0.0
