"""Fig. 4: percentage of positive labels vs patrol-effort threshold.

"the percentage of illegal activity detected increases proportionally to
patrol effort exerted" — the empirical justification for iWare-E's effort
filtering. Regenerated for train and test partitions of each park.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_table

from conftest import BENCH_PROFILES, write_report

PERCENTILES = [0.0, 20.0, 40.0, 60.0, 80.0]


def test_fig4_positive_rate_vs_effort(park_data_cache, benchmark):
    def build_series():
        rows = []
        for name in BENCH_PROFILES:
            dataset = park_data_cache[name].dataset
            split = dataset.split_by_test_year(
                park_data_cache[name].profile.years - 1
            )
            train_curve = split.train.positive_rate_by_effort_percentile(PERCENTILES)
            test_curve = split.test.positive_rate_by_effort_percentile(PERCENTILES)
            rows.append([f"{name} (train)"] + [float(v) for v in train_curve])
            rows.append([f"{name} (test)"] + [float(v) for v in test_curve])
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    table = format_table(
        ["series"] + [f"p{int(p)}" for p in PERCENTILES],
        rows,
        float_format="{:.2f}",
    )
    write_report("fig4_label_rates", table)

    # The Fig. 4 signature: rates at the 80th percentile exceed unfiltered
    # rates for the label-rich parks. SWS has single-digit positive counts,
    # so (exactly as in the paper's own wiggly SWS panel) its curve is only
    # required to stay in the sub-2% extreme-imbalance regime.
    by_name = {row[0]: row[1:] for row in rows}
    for park in ("MFNP", "QENP", "SWS"):
        curve = by_name[f"{park} (train)"]
        assert curve[-1] > curve[0], f"{park} train curve must increase"
