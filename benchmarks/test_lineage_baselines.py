"""Extension: the PAWS model lineage on one dataset.

Section II traces the project's history — CAPTURE (latent-detection
Bayesian network), INTERCEPT (decision-tree ensemble), iWare-E, and this
paper's enhanced iWare-E. The short paper compares against iWare-E only;
this benchmark additionally reruns the two earlier landmarks plus a
PU-weighted logistic regression (the related-work PU-learning approach) on
the same MFNP-like data, giving the full lineage in one table.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import CaptureModel, InterceptModel
from repro.core import PawsPredictor
from repro.evaluation import format_table
from repro.ml.linear import PUWeightedLogisticRegression
from repro.ml.metrics import roc_auc_score

from conftest import evaluable_test_years, write_report


def test_lineage_model_comparison(mfnp_data, benchmark):
    dataset = mfnp_data.dataset
    years = evaluable_test_years(dataset)

    def run():
        rows = []
        for year in years:
            split = dataset.split_by_test_year(year)
            X_tr, y_tr = split.train.feature_matrix, split.train.labels
            X_te, y_te = split.test.feature_matrix, split.test.labels
            effort_tr = split.train.current_effort

            capture = CaptureModel(n_em_iter=10).fit(X_tr, y_tr, effort_tr)
            auc_capture = roc_auc_score(
                y_te, capture.predict_proba(X_te, split.test.current_effort)
            )
            intercept = InterceptModel(
                n_trees=10, n_boost_iter=2, rng=np.random.default_rng(1)
            ).fit(X_tr, y_tr)
            auc_intercept = roc_auc_score(y_te, intercept.predict_proba(X_te))
            pu = PUWeightedLogisticRegression(reliability_rate=0.3).fit(
                X_tr, y_tr, effort=effort_tr
            )
            auc_pu = roc_auc_score(y_te, pu.predict_proba(X_te))
            paws = PawsPredictor(
                model="gpb", iware=True, n_classifiers=8, n_estimators=3, seed=2
            ).fit(split.train)
            auc_paws = paws.evaluate_auc(split.test)
            rows.append(
                [year, auc_capture, auc_intercept, auc_pu, auc_paws]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["test year", "CAPTURE (2016)", "INTERCEPT (2017)",
         "PU-weighted LR", "GPB-iW (this paper)"],
        rows,
    )
    means = np.asarray([row[1:] for row in rows], dtype=float).mean(axis=0)
    summary = (
        f"\naverages: CAPTURE={means[0]:.3f} INTERCEPT={means[1]:.3f} "
        f"PU-LR={means[2]:.3f} GPB-iW={means[3]:.3f}"
    )
    write_report("lineage_baselines", table + summary)

    # Every lineage member beats coin-flipping on average, and the paper's
    # model is competitive with its ancestors.
    assert (means > 0.5).all()
    assert means[3] > means.max() - 0.1
