"""Ablations of the paper's two iWare-E design enhancements.

1. Percentile-based thresholds vs the original equally spaced thresholds
   (Section IV, second enhancement).
2. CV-optimised classifier weights vs uniform qualified weighting (first
   enhancement).

Both compared on MFNP and QENP with DTB weak learners (fast and stable).
"""

from __future__ import annotations

import numpy as np

from repro.core import IWareEnsemble, make_weak_learner
from repro.evaluation import format_table

from conftest import evaluable_test_years, write_report


def _fit_and_score(split, threshold_scheme, weighting, seed):
    from repro.ml.metrics import roc_auc_score

    factory = make_weak_learner(
        "dtb", rng=np.random.default_rng(seed), n_estimators=3
    )
    ensemble = IWareEnsemble(
        factory,
        n_classifiers=8,
        threshold_scheme=threshold_scheme,
        theta_range=(0.0, float(np.percentile(split.train.current_effort, 95))),
        weighting=weighting,
        rng=np.random.default_rng(seed + 1),
    ).fit(split.train)
    return roc_auc_score(
        split.test.labels, ensemble.predict_proba(split.test.feature_matrix)
    )


def test_ablation_iware_design_choices(park_data_cache, benchmark):
    def run():
        rows = []
        for name in ("MFNP", "QENP"):
            dataset = park_data_cache[name].dataset
            years = evaluable_test_years(dataset)
            for year in years:
                split = dataset.split_by_test_year(year)
                pct_opt = _fit_and_score(split, "percentile", "optimal", 0)
                eq_opt = _fit_and_score(split, "equal", "optimal", 0)
                pct_qual = _fit_and_score(split, "percentile", "qualified", 0)
                rows.append([name, year, pct_opt, eq_opt, pct_qual])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["park", "year", "percentile+optimal", "equal+optimal",
         "percentile+qualified"],
        rows,
    )
    pct_opt_avg = float(np.mean([r[2] for r in rows]))
    eq_opt_avg = float(np.mean([r[3] for r in rows]))
    qual_avg = float(np.mean([r[4] for r in rows]))
    summary = (
        f"\naverages: percentile+optimal={pct_opt_avg:.3f}, "
        f"equal+optimal={eq_opt_avg:.3f}, "
        f"percentile+qualified={qual_avg:.3f}"
    )
    write_report("ablation_iware_design", table + summary)

    # The enhanced configuration must be competitive with both ablations
    # (the paper reports it as the better choice; on synthetic data we
    # require it not to lose materially).
    assert pct_opt_avg > eq_opt_avg - 0.05
    assert pct_opt_avg > qual_avg - 0.05
    assert pct_opt_avg > 0.6
