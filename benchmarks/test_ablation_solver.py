"""Ablation: HiGHS MILP backend vs the from-scratch branch and bound.

Cross-validates the two solvers on small patrol-planning instances: both
must reach the same optimal objective, with HiGHS expected to be faster.
This guards the MILP formulation (a bug in the model would have to fool two
independent solvers identically).
"""

from __future__ import annotations

import time

import numpy as np

from repro.evaluation import format_table
from repro.geo import Grid
from repro.planning import (
    BranchAndBoundSolver,
    PatrolMILP,
    PiecewiseLinear,
    TimeUnrolledGraph,
)

from conftest import write_report


def _instance(seed, height=4, width=5, horizon=5, n_breakpoints=4):
    grid = Grid.rectangular(height, width)
    graph = TimeUnrolledGraph(grid, source_cell=0, horizon=horizon)
    milp = PatrolMILP(graph, n_patrols=2)
    rng = np.random.default_rng(seed)
    xs = np.linspace(0.0, milp.max_coverage, n_breakpoints)
    utilities = {}
    for v in graph.reachable_cells:
        scale = rng.random()
        penalty = 1 - 0.7 * rng.random() * xs / xs[-1]  # non-concave
        utilities[int(v)] = PiecewiseLinear(xs, scale * (1 - np.exp(-0.5 * xs)) * penalty)
    return milp, utilities


def test_ablation_solver_crosscheck(benchmark):
    def run():
        rows = []
        for seed in range(4):
            milp, utilities = _instance(seed)
            start = time.perf_counter()
            highs = milp.solve(utilities)
            t_highs = time.perf_counter() - start

            model = milp.build_model(utilities)
            solver = BranchAndBoundSolver(max_nodes=100_000)
            start = time.perf_counter()
            bnb = solver.solve(
                model.objective, model.matrix, model.row_lb, model.row_ub,
                binary_mask=model.integrality.astype(bool),
            )
            t_bnb = time.perf_counter() - start
            rows.append(
                [seed, float(highs.objective_value), float(-bnb.objective_value),
                 float(t_highs), float(t_bnb), bnb.n_nodes_explored]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["seed", "HiGHS obj", "B&B obj", "HiGHS (s)", "B&B (s)", "B&B nodes"],
        rows,
        float_format="{:.4f}",
    )
    write_report("ablation_solver", table)

    for row in rows:
        np.testing.assert_allclose(row[1], row[2], atol=1e-4)
