"""Ablation: certified B&B upgrades vs the retained naive-DFS reference.

Two guards in one artifact:

* **Solver-upgrade ablation** — on the branching zoo classes
  (small-branch, deep-branch) the warm-started best-bound solver with
  cover cuts must explore at least 5x fewer nodes AND be wall-clock
  faster than the frozen naive-DFS reference
  (:mod:`repro.planning._bnb_reference`), at *bit-equal* objectives.
* **Cross-validation** — on patrol instances the upgraded solver and the
  HiGHS MILP backend must reach the same optimum (a formulation bug
  would have to fool two independent solvers identically).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

from repro.evaluation import format_table
from repro.geo import Grid
from repro.planning import (
    BranchAndBoundSolver,
    PatrolMILP,
    PiecewiseLinear,
    TimeUnrolledGraph,
)
from repro.planning._bnb_reference import ReferenceDFSSolver

from conftest import write_report

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from tests.solver_zoo.models import deep_branch, small_branch  # noqa: E402


def _instance(seed, height=4, width=5, horizon=5, n_breakpoints=4):
    grid = Grid.rectangular(height, width)
    graph = TimeUnrolledGraph(grid, source_cell=0, horizon=horizon)
    milp = PatrolMILP(graph, n_patrols=2)
    rng = np.random.default_rng(seed)
    xs = np.linspace(0.0, milp.max_coverage, n_breakpoints)
    utilities = {}
    for v in graph.reachable_cells:
        scale = rng.random()
        penalty = 1 - 0.7 * rng.random() * xs / xs[-1]  # non-concave
        utilities[int(v)] = PiecewiseLinear(xs, scale * (1 - np.exp(-0.5 * xs)) * penalty)
    return milp, utilities


def _timed(solver, inst, repeats=3, with_kinds=True):
    """Best-of-N wall clock plus the (deterministic) result."""
    kwargs = {"row_kinds": inst.row_kinds or None} if with_kinds else {}
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = solver.solve(
            inst.c, inst.matrix, inst.row_lb, inst.row_ub,
            binary_mask=inst.binary_mask, **kwargs,
        )
        best = min(best, time.perf_counter() - start)
    return result, best


def test_ablation_solver_upgrades(benchmark):
    def run():
        zoo_rows = []
        for inst in (small_branch(), deep_branch()):
            ref, t_ref = _timed(ReferenceDFSSolver(), inst, with_kinds=False)
            new, t_new = _timed(
                BranchAndBoundSolver(strategy="best_bound", cuts=True), inst
            )
            zoo_rows.append([
                inst.name,
                float(ref.objective_value), float(new.objective_value),
                ref.n_nodes_explored, new.n_nodes_explored,
                float(ref.n_nodes_explored) / new.n_nodes_explored,
                float(t_ref), float(t_new),
            ])

        patrol_rows = []
        for seed in range(4):
            milp, utilities = _instance(seed)
            start = time.perf_counter()
            highs = milp.solve(utilities)
            t_highs = time.perf_counter() - start

            model = milp.build_model(utilities)
            solver = BranchAndBoundSolver(
                max_nodes=100_000, strategy="best_bound"
            )
            start = time.perf_counter()
            bnb = solver.solve(
                model.objective, model.matrix, model.row_lb, model.row_ub,
                binary_mask=model.integrality.astype(bool),
                row_kinds=model.row_kinds,
            )
            t_bnb = time.perf_counter() - start

            ref = ReferenceDFSSolver(max_nodes=100_000)
            start = time.perf_counter()
            naive = ref.solve(
                model.objective, model.matrix, model.row_lb, model.row_ub,
                binary_mask=model.integrality.astype(bool),
            )
            t_naive = time.perf_counter() - start
            patrol_rows.append([
                seed, float(highs.objective_value), float(-bnb.objective_value),
                float(-naive.objective_value),
                naive.n_nodes_explored, bnb.n_nodes_explored,
                float(t_highs), float(t_bnb), float(t_naive),
            ])
        return zoo_rows, patrol_rows

    zoo_rows, patrol_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    zoo_table = format_table(
        ["zoo class", "ref obj", "new obj", "ref nodes", "new nodes",
         "node ratio", "ref (s)", "new (s)"],
        zoo_rows,
        float_format="{:.4f}",
    )
    patrol_table = format_table(
        ["seed", "HiGHS obj", "B&B obj", "naive obj", "naive nodes",
         "B&B nodes", "HiGHS (s)", "B&B (s)", "naive (s)"],
        patrol_rows,
        float_format="{:.4f}",
    )
    report = (
        "Zoo classes: warm-started best-bound B&B with cover cuts vs the\n"
        "frozen naive-DFS reference (bit-equal objectives required).\n"
        + zoo_table
        + "\n\nPatrol cross-validation: HiGHS vs upgraded B&B vs naive DFS.\n"
        + patrol_table
    )
    write_report("ablation_solver", report)

    for row in zoo_rows:
        name, ref_obj, new_obj = row[0], row[1], row[2]
        ratio, t_ref, t_new = row[5], row[6], row[7]
        assert new_obj == ref_obj, f"{name}: objective drifted"
        assert ratio >= 5.0, f"{name}: node reduction {ratio:.1f}x < 5x"
        assert t_new < t_ref, f"{name}: upgraded solver slower than naive DFS"

    for row in patrol_rows:
        np.testing.assert_allclose(row[1], row[2], atol=1e-4)
        np.testing.assert_allclose(row[1], row[3], atol=1e-4)
