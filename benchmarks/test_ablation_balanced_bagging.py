"""Ablation: balanced bagging under extreme imbalance (Section V-A).

"we used a balanced bagging classifier to undersample negative labels ...
This undersampling approach improved our AUC by 15% on average on the SWS
dataset." Compared here: plain vs balanced bagging for DTB-iW and GPB-iW on
the SWS dataset, averaged over evaluable test years.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_table
from repro.evaluation.experiments import ModelSpec, evaluate_model_on_split

from conftest import evaluable_test_years, write_report


def test_ablation_balanced_bagging_on_sws(park_data_cache, benchmark):
    dataset = park_data_cache["SWS"].dataset
    years = evaluable_test_years(dataset)
    assert years, "SWS simulation produced no evaluable test years"

    def run():
        rows = []
        gains = []
        for family in ("dtb", "gpb"):
            for year in years:
                split = dataset.split_by_test_year(year)
                plain = evaluate_model_on_split(
                    ModelSpec(family, True), split, balanced=False,
                    n_classifiers=6, n_estimators=3, seed=0,
                )
                balanced = evaluate_model_on_split(
                    ModelSpec(family, True), split, balanced=True,
                    n_classifiers=6, n_estimators=3, seed=0,
                )
                rows.append([f"{family.upper()}-iW", year, plain, balanced,
                             balanced - plain])
                gains.append(balanced - plain)
        return rows, float(np.mean(gains))

    rows, mean_gain = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["model", "test year", "plain AUC", "balanced AUC", "gain"], rows
    )
    write_report(
        "ablation_balanced_bagging",
        table + f"\n\nMean balanced-bagging gain on SWS: {mean_gain:+.3f} "
        "(paper: ~+15% relative AUC)",
    )

    # Balanced bagging must not collapse performance under extreme
    # imbalance; with single-digit positive counts per year the per-year
    # variance is large, so the claim is directional on the average.
    assert mean_gain > -0.05
    best_balanced = max(row[3] for row in rows)
    assert best_balanced > 0.6
