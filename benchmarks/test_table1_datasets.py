"""Table I: dataset statistics for the four park variants.

Regenerates the paper's Table I rows (cells, features, points, positive
labels, mean effort) from the synthetic parks and checks that the key
*shape* holds: the imbalance ordering MFNP > QENP >> SWS > SWS-dry, and
extreme (<2%) imbalance in Srepok.
"""

from __future__ import annotations

from repro.data.generator import dataset_statistics
from repro.evaluation import format_table

from conftest import BENCH_PROFILES, write_report

#: Paper-reported percent-positive rates, for side-by-side comparison.
PAPER_PERCENT_POSITIVE = {
    "MFNP": 14.3,
    "QENP": 4.7,
    "SWS": 0.36,
    "SWS dry": 0.25,
}
PAPER_EFFORT = {"MFNP": 1.75, "QENP": 2.08, "SWS": 3.96, "SWS dry": 3.03}


def test_table1_dataset_statistics(park_data_cache, benchmark):
    def build_rows():
        rows = []
        for name in BENCH_PROFILES:
            stats = dataset_statistics(park_data_cache[name])
            rows.append(
                [
                    name,
                    int(stats["n_cells"]),
                    int(stats["n_features"]),
                    int(stats["n_points"]),
                    int(stats["n_positive"]),
                    float(stats["percent_positive"]),
                    float(PAPER_PERCENT_POSITIVE[name]),
                    float(stats["avg_effort_km"]),
                    float(PAPER_EFFORT[name]),
                ]
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    table = format_table(
        [
            "dataset", "cells", "features", "points", "positives",
            "%pos (ours)", "%pos (paper)", "effort (ours)", "effort (paper)",
        ],
        rows,
        float_format="{:.2f}",
    )
    write_report("table1_datasets", table)

    pct = {row[0]: row[5] for row in rows}
    # The imbalance ordering of Table I.
    assert pct["MFNP"] > pct["QENP"] > pct["SWS"] >= 0.0
    assert pct["SWS"] < 2.0, "SWS must remain extremely imbalanced"
    assert pct["MFNP"] > 8.0, "MFNP must remain the label-rich park"
    # Every park produced a usable multi-year dataset.
    for row in rows:
        assert row[3] > 500
        assert row[4] >= 3
