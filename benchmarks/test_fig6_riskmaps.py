"""Fig. 6: predicted risk and uncertainty maps across effort levels (MFNP).

Regenerates the paper's four-panel maps: the predicted probability of
detecting poaching at 0.5/1/2/4 km of hypothetical patrol effort (red
panels) and the corresponding prediction uncertainty (green panels), plus
the historical-effort and historical-activity context maps.

Shape assertions, per the paper's reading of the figure:
* predicted detection probability generally increases with effort;
* uncertainty increases at high effort levels ("historical data with higher
  levels of patrol effort is more rare");
* uncertainty is highest where historical patrolling was minimal.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import ascii_heatmap

from conftest import write_report

EFFORT_LEVELS = (0.5, 1.0, 2.0, 4.0)


def test_fig6_risk_and_uncertainty_maps(mfnp_data, fitted_gpb_mfnp, benchmark):
    park = mfnp_data.park

    def build_maps():
        features = fitted_gpb_mfnp.cell_feature_matrix(
            park, mfnp_data.recorded_effort[-1]
        )
        risk = {}
        uncertainty = {}
        for effort in EFFORT_LEVELS:
            risk[effort] = fitted_gpb_mfnp.predict_proba(features, effort=effort)
            uncertainty[effort] = fitted_gpb_mfnp.predict_variance(
                features, effort=effort
            )
        return risk, uncertainty

    risk, uncertainty = benchmark.pedantic(build_maps, rounds=1, iterations=1)

    historical = mfnp_data.recorded_effort.sum(axis=0)
    activity = mfnp_data.detections.sum(axis=0).astype(float)
    panels = [
        ascii_heatmap(park.grid, historical, title="(a) historical patrol effort"),
        ascii_heatmap(park.grid, activity, title="(b) historical illegal activity"),
    ]
    for effort in EFFORT_LEVELS:
        panels.append(
            ascii_heatmap(park.grid, risk[effort],
                          title=f"(c) predicted risk at {effort} km"))
        panels.append(
            ascii_heatmap(park.grid, uncertainty[effort],
                          title=f"(c) uncertainty at {effort} km"))
    mean_risk = {e: float(risk[e].mean()) for e in EFFORT_LEVELS}
    mean_unc = {e: float(uncertainty[e].mean()) for e in EFFORT_LEVELS}
    summary = (
        f"mean risk by effort: { {e: round(v, 3) for e, v in mean_risk.items()} }\n"
        f"mean uncertainty by effort: "
        f"{ {e: round(v, 4) for e, v in mean_unc.items()} }"
    )
    write_report("fig6_riskmaps", "\n\n".join(panels) + "\n\n" + summary)

    # Risk generally increases with hypothetical effort.
    assert mean_risk[4.0] > mean_risk[0.5]
    # Uncertainty does not shrink at high effort (training data with high
    # patrol effort is rarer); tolerance covers sampling noise.
    assert mean_unc[4.0] >= mean_unc[0.5] - 0.01
    # Uncertainty concentrates where historical patrolling was minimal.
    unc = uncertainty[1.0]
    unpatrolled = historical == 0
    if unpatrolled.any() and (~unpatrolled).any():
        assert unc[unpatrolled].mean() > unc[~unpatrolled].mean()
