"""Park-service daemon under load: latency percentiles and sustained QPS.

The daemon fronts the serving engine with admission control, deadlines,
and circuit breakers (PR 9); this benchmark measures what that envelope
costs on the hot path. A stdlib load generator (threads + ``urllib``)
sweeps concurrent client counts against one in-process daemon serving a
small saved model, recording per-request p50/p99 latency and sustained
throughput for the cached ``/riskmap`` path — the request shape a
deployed park service answers thousands of times per patrol cycle.

Admission limits are set above the sweep's concurrency so nothing is
shed: the numbers isolate the HTTP + admission + dispatch overhead, not
load-shedding behaviour (the chaos suite covers shedding). Every body is
checked bit-identical to the first response.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke step does) for a reduced sweep.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request

import numpy as np

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.evaluation import format_table
from repro.runtime.daemon import ParkServiceDaemon

from conftest import write_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

CLIENTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
REQUESTS_PER_CLIENT = 15 if SMOKE else 50

#: The measured request: a cached risk map (seed/scale pin the context).
PATH = "/riskmap?park=MFNP&effort=1.5&seed=0&scale=0.4"


def _fetch(port: int) -> tuple[float, bytes]:
    url = f"http://127.0.0.1:{port}{PATH}"
    start = time.perf_counter()
    with urllib.request.urlopen(url, timeout=30.0) as response:
        assert response.status == 200
        body = response.read()
    return time.perf_counter() - start, body


def _sweep(port: int, n_clients: int) -> tuple[list[float], float, set[bytes]]:
    """All request latencies, wall-clock seconds, and distinct bodies."""
    per_client: list[list[float]] = [[] for _ in range(n_clients)]
    bodies: list[set[bytes]] = [set() for _ in range(n_clients)]
    barrier = threading.Barrier(n_clients + 1)

    def client(slot: int) -> None:
        barrier.wait()
        for _ in range(REQUESTS_PER_CLIENT):
            elapsed, body = _fetch(port)
            per_client[slot].append(elapsed)
            bodies[slot].add(body)

    threads = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return (
        [lat for latencies in per_client for lat in latencies],
        wall,
        set().union(*bodies),
    )


def test_daemon_load(tmp_path_factory):
    root = tmp_path_factory.mktemp("daemon-load-models")
    data = generate_dataset(MFNP.scaled(0.4), seed=0)
    split = data.dataset.split_by_test_year(4)
    PawsPredictor(
        model="dtb", iware=True, n_classifiers=2, n_estimators=2, seed=5
    ).fit(split.train).save(root / "MFNP")

    daemon = ParkServiceDaemon(
        root, port=0, max_inflight=16, max_queue=64, default_deadline=30.0,
        registry_options={"n_jobs": 1},
    ).start()
    try:
        warm_latency, reference = _fetch(daemon.port)  # load + cache fill

        rows: list[list] = []
        all_bodies: set[bytes] = {reference}
        qps_by_clients: dict[int, float] = {}
        for n_clients in CLIENTS:
            latencies, wall, bodies = _sweep(daemon.port, n_clients)
            all_bodies |= bodies
            total = n_clients * REQUESTS_PER_CLIENT
            qps = total / wall
            qps_by_clients[n_clients] = qps
            rows.append([
                f"{n_clients} client(s) x {REQUESTS_PER_CLIENT} requests",
                np.percentile(latencies, 50) * 1e3,
                np.percentile(latencies, 99) * 1e3,
                max(latencies) * 1e3,
                qps,
            ])

        stats = json.loads(
            urllib.request.urlopen(
                f"http://127.0.0.1:{daemon.port}/stats", timeout=30.0
            ).read()
        )
    finally:
        daemon.close()

    table = format_table(
        ["cached /riskmap sweep", "p50 (ms)", "p99 (ms)", "max (ms)", "QPS"],
        rows, "{:,.2f}",
    )
    note = (
        f"\nnote: one in-process daemon (max_inflight=16, no shedding in "
        f"this sweep), cold first request {warm_latency * 1e3:,.1f} ms "
        f"(model load + dataset + feature build), then every request hits "
        f"the serving cache, so the numbers isolate the HTTP + admission + "
        f"deadline + breaker envelope. All "
        f"{stats['admission']['completed']} admitted requests completed, "
        f"0 shed; every body byte-identical across clients and sweeps."
    )
    if SMOKE:
        # The reduced sweep must not overwrite the full-sweep report.
        print("\n===== daemon_load (smoke) =====\n" + table + note)
    else:
        write_report("daemon_load", table + note)

    # Every response carried exactly the same bytes (same cached surface
    # through the same float64-exact JSON path).
    assert all_bodies == {reference}, "served bodies diverged under load"
    # Nothing was shed and everything admitted completed (/stats itself is
    # an unadmitted endpoint, so: the warm request plus the sweeps).
    assert stats["admission"]["shed_saturated"] == 0
    assert stats["admission"]["shed_draining"] == 0
    expected = 1 + sum(REQUESTS_PER_CLIENT * c for c in CLIENTS)
    assert stats["admission"]["completed"] == expected
    # Loose regression guards (CI containers are noisy): the cached path
    # must stay interactive and concurrency must not collapse throughput.
    for row in rows:
        assert row[1] < 1_000, f"cached /riskmap p50 above one second: {row}"
    assert qps_by_clients[CLIENTS[-1]] >= qps_by_clients[1] * 0.5, (
        "throughput collapsed under concurrency"
    )
