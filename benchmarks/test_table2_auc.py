"""Table II: AUC of the six-model zoo across datasets and test years.

The paper's headline predictive result: iWare-E "consistently improves AUC
across all models, raising the AUC by 0.100 on average", with GPB-iW
strongest under extreme class imbalance. This benchmark runs the full grid
(SVB / DTB / GPB, with and without iWare-E) on every dataset variant and
every evaluable test year, and asserts the averaged iWare-E lift.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_table
from repro.evaluation.experiments import TABLE2_MODELS, average_by_model, run_model_zoo

from conftest import BALANCED, BENCH_PROFILES, N_CLASSIFIERS, evaluable_test_years, write_report


def test_table2_model_zoo_auc(park_data_cache, benchmark):
    def run_grid():
        all_rows = []
        averages = {}
        for name in BENCH_PROFILES:
            dataset = park_data_cache[name].dataset
            years = evaluable_test_years(dataset)
            if not years:
                all_rows.append([name, "-"] + ["n/a"] * len(TABLE2_MODELS))
                continue
            results = run_model_zoo(
                dataset,
                test_years=years,
                balanced=BALANCED[name],
                n_classifiers=N_CLASSIFIERS[name],
                n_estimators=3,
                seed=0,
            )
            for year in years:
                all_rows.append(
                    [name, str(year)]
                    + [float(results[year][m.name]) for m in TABLE2_MODELS]
                )
            avg = average_by_model(results)
            averages[name] = avg
            all_rows.append(
                [name, "Avg"] + [float(avg[m.name]) for m in TABLE2_MODELS]
            )
        return all_rows, averages

    rows, averages = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "year"] + [m.name for m in TABLE2_MODELS], rows
    )

    # Aggregate the iWare-E lift across datasets and weak learners.
    lifts_all = []
    lifts_rich = []
    for name, avg in averages.items():
        for family in ("SVB", "DTB", "GPB"):
            lift = avg[f"{family}-iW"] - avg[family]
            lifts_all.append(lift)
            if name in ("MFNP", "QENP"):
                lifts_rich.append(lift)
    mean_lift_all = float(np.mean(lifts_all))
    mean_lift_rich = float(np.mean(lifts_rich))
    summary = (
        f"\nMean iWare-E AUC lift, all datasets: {mean_lift_all:+.3f}"
        f"\nMean iWare-E AUC lift, MFNP+QENP: {mean_lift_rich:+.3f} "
        f"(paper: +0.100)"
        "\nNote: at ~1/20th of the paper's data volume the SWS effort-"
        "filtered subsets hold <15 positives, starving iWare-E there; see "
        "EXPERIMENTS.md."
    )
    write_report("table2_auc", table + summary)

    # Shape assertions (not absolute numbers): iWare-E helps on average
    # where the datasets carry enough positives for the comparison to be
    # meaningful, and models are far better than chance on those parks.
    # The Bayes-optimal AUC on these simulated parks (ranking by the true
    # attack probability, current effort unknown) is ~0.72 for MFNP, so
    # "well above chance" means comfortably over 0.60 here.
    assert mean_lift_rich > 0.0, "iWare-E must improve AUC on MFNP/QENP"
    for park in ("MFNP", "QENP"):
        best = max(averages[park].values())
        assert best > 0.60, f"{park}: best model should be well above chance"
        assert averages[park]["GPB-iW"] > best - 0.15
    # The paper's emphasis: GPs shine under extreme class imbalance — the
    # GP family (flat or iWare-E) must be the best family on SWS.
    if "SWS" in averages:
        avg = averages["SWS"]
        gp_best = max(avg["GPB"], avg["GPB-iW"])
        other_best = max(avg["SVB"], avg["SVB-iW"], avg["DTB"], avg["DTB-iW"])
        assert gp_best > other_best - 0.05
