"""Ablation: does robust planning detect more snares? (Section VI-D claim).

"Conducting risk-averse patrols enables us to increase detection of snares
by an average of 30%." Here both plans — risk-neutral (beta=0) and robust
(beta=1) — are deployed against the simulator's ground-truth Green Security
Game, and actual detected snares are counted over Monte-Carlo rounds.

The comparison runs on QENP, whose low base attack rate (4.7% positives)
creates the failure mode robustness protects against: in data-sparse
regions the GP's prediction reverts toward 0.5, *overestimating* risk, so
risk-neutral plans chase those mirages while uncertainty-penalised plans
stay with confirmed hotspots. (On a high-base-rate park like MFNP, 0.5 is
not an overestimate and the mechanism is muted.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.evaluation import format_table
from repro.planning import GreenSecurityGame, PatrolPlanner, RobustObjective

from conftest import write_report

N_ROUNDS = 300
HORIZON = 12
N_PATROLS = 2


@pytest.fixture(scope="module")
def qenp_setup(park_data_cache):
    data = park_data_cache["QENP"]
    split = data.dataset.split_by_test_year(data.profile.years - 1)
    predictor = PawsPredictor(
        model="gpb", iware=True, n_classifiers=8, n_estimators=3, seed=1
    ).fit(split.train)
    return data, predictor


def test_ablation_robust_plans_detect_more_snares(qenp_setup, benchmark):
    qenp_data, predictor = qenp_setup
    park = qenp_data.park
    features = predictor.cell_feature_matrix(
        park, qenp_data.recorded_effort[-1]
    )
    game = GreenSecurityGame.from_poacher_model(
        qenp_data.poachers, period_index=qenp_data.profile.n_periods
    )

    def run():
        rows = []
        totals = {"base": 0, "robust": 0}
        rng = np.random.default_rng(3)
        for post in park.patrol_posts:
            planner = PatrolPlanner(
                park.grid, int(post), horizon=HORIZON,
                n_patrols=N_PATROLS, n_segments=10,
            )
            xs = planner.breakpoints()
            risk, nu = predictor.effort_response(features, xs)
            objective = RobustObjective(xs, risk, nu, beta=0.0)
            base_plan = planner.plan(objective, beta=0.0)
            robust_plan = planner.plan(objective, beta=1.0)
            base = game.simulate_detections(base_plan.coverage, rng, N_ROUNDS)
            robust = game.simulate_detections(robust_plan.coverage, rng, N_ROUNDS)
            totals["base"] += base
            totals["robust"] += robust
            rows.append(
                [int(post), base / N_ROUNDS, robust / N_ROUNDS,
                 (robust - base) / max(base, 1) * 100.0]
            )
        return rows, totals

    rows, totals = benchmark.pedantic(run, rounds=1, iterations=1)
    overall = (totals["robust"] - totals["base"]) / max(totals["base"], 1) * 100
    table = format_table(
        ["post", "snares/period (beta=0)", "snares/period (beta=1)",
         "improvement %"],
        rows,
        float_format="{:.2f}",
    )
    write_report(
        "ablation_robust_detection",
        table + f"\n\nOverall detection change: {overall:+.1f}% "
        "(paper: +30% average)",
    )

    # The robust plan must not lose snares overall, and should show a gain
    # at at least one post (the paper's 30% is an average over deployments).
    assert overall > -10.0
    assert max(row[3] for row in rows) > 0.0
