"""Fig. 9: prescriptive-model runtime and utility vs PWL segments.

The paper shows (a) MILP runtime growing with the number of segments in the
PWL approximation and (b) the robust solution's utility converging by
~20-25 segments. Regenerated on the MFNP park with the fitted GPB-iW
predictor.
"""

from __future__ import annotations

import time

import numpy as np

from repro.evaluation import format_table
from repro.planning import PatrolPlanner, RobustObjective

from conftest import write_report

SEGMENTS = (5, 10, 15, 20, 25)
HORIZON = 12
N_PATROLS = 2


def test_fig9_runtime_and_convergence(mfnp_data, fitted_gpb_mfnp, benchmark):
    park = mfnp_data.park
    post = int(park.patrol_posts[0])
    features = fitted_gpb_mfnp.cell_feature_matrix(
        park, mfnp_data.recorded_effort[-1]
    )

    methods: list[str] = []

    def sweep():
        rows = []
        methods.clear()
        for n_segments in SEGMENTS:
            planner = PatrolPlanner(
                park.grid, post, horizon=HORIZON,
                n_patrols=N_PATROLS, n_segments=n_segments,
            )
            xs = planner.breakpoints()
            risk, nu = fitted_gpb_mfnp.effort_response(features, xs)
            objective = RobustObjective(xs, risk, nu, beta=1.0)
            start = time.perf_counter()
            plan = planner.plan(objective)
            elapsed = time.perf_counter() - start
            methods.append(plan.solution.method)
            # Score every plan under a common fine-grained ground truth so
            # utilities are comparable across segment counts.
            fine_planner = PatrolPlanner(
                park.grid, post, horizon=HORIZON,
                n_patrols=N_PATROLS, n_segments=40,
            )
            fine_xs = fine_planner.breakpoints()
            fine_risk, fine_nu = fitted_gpb_mfnp.effort_response(features, fine_xs)
            fine = RobustObjective(fine_xs, fine_risk, fine_nu, beta=1.0)
            utility = fine.evaluate_coverage(plan.coverage)
            rows.append([n_segments, float(elapsed), float(utility)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reported = [row + [method] for row, method in zip(rows, methods)]
    table = format_table(
        ["segments", "runtime (s)", "utility U_1(C_1)", "solver path"],
        reported, float_format="{:.4f}",
    )
    write_report("fig9_scalability", table)

    runtimes = [row[1] for row in rows]
    utilities = [row[2] for row in rows]
    # Solves stay tractable (the paper reports seconds).
    assert max(runtimes) < 60.0
    # The certified envelope path removed the fine-segmentation MILP cliff:
    # no segment count falls back to the full SOS2 MILP (a machine-
    # independent check; the old behaviour was a ~100x runtime spike at
    # 25 segments).
    assert all(method != "milp" for method in methods), methods
    # Utility converges with more segments: the last two settings agree
    # far more closely than the coarsest does with the finest.
    assert abs(utilities[-1] - utilities[-2]) <= max(
        abs(utilities[0] - utilities[-1]), 1e-6
    ) + 1e-6
    # Finer approximations should not collapse the achieved utility.
    assert utilities[-1] >= 0.8 * max(utilities)
