"""Planning engine: multi-post throughput, LP fast path, structure reuse.

PR 1 made prediction fit-once/serve-many; this benchmark measures the same
treatment for Section VI planning. Three numbers matter:

* **posts planned per second** through one :class:`PlanService`, serial vs
  thread-parallel (plans must be bit-identical at any worker count);
* **LP-vs-MILP speedup** — on all-concave utilities the SOS2 binaries are
  dead weight, and the LP fast path must match the full MILP objective to
  1e-6 while being measurably faster;
* **beta-sweep structure reuse** — re-solves that only swap the objective
  vector against the cached sparse model vs rebuilding it fresh.
"""

from __future__ import annotations

import time

import numpy as np

from repro.evaluation import format_table
from repro.planning import PatrolMILP, PiecewiseLinear, TimeUnrolledGraph
from repro.planning.service import PlanService
from repro.runtime import RiskMapService

from conftest import write_report

HORIZON = 8
N_PATROLS = 2
N_SEGMENTS = 8
LP_SEGMENTS = 15
BETAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _concave_utilities(graph, milp, n_segments, seed=0):
    rng = np.random.default_rng(seed)
    xs = np.linspace(0.0, milp.max_coverage, n_segments + 1)
    return {
        int(v): PiecewiseLinear(
            xs, rng.random() * (1 - np.exp(-(0.2 + rng.random()) * xs))
        )
        for v in graph.reachable_cells
    }


def test_planning_throughput(mfnp_data, fitted_gpb_mfnp, benchmark):
    park = mfnp_data.park
    features = fitted_gpb_mfnp.cell_feature_matrix(
        park, mfnp_data.recorded_effort[-1]
    )
    service = PlanService(
        RiskMapService(fitted_gpb_mfnp),
        park.grid,
        park.patrol_posts,
        horizon=HORIZON,
        n_patrols=N_PATROLS,
        n_segments=N_SEGMENTS,
    )
    n_posts = len(service.posts)

    def run():
        serial, t_serial = service.timed_plan_all(features, beta=0.8, n_jobs=1)
        parallel, t_parallel = service.timed_plan_all(
            features, beta=0.8, n_jobs=4
        )
        return serial, t_serial, parallel, t_parallel

    serial, t_serial, parallel, t_parallel = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Thread fan-out must not change a single bit of any plan.
    for post in serial:
        np.testing.assert_array_equal(
            serial[post].coverage, parallel[post].coverage
        )
        assert serial[post].objective_value == parallel[post].objective_value

    # ------------------------------------------------------------------
    # Beta sweep: cached structure vs rebuilding the model every time.
    post = service.posts[0]
    start = time.perf_counter()
    sweep = service.beta_sweep(post, features, BETAS)
    t_sweep_cached = time.perf_counter() - start
    assert len(sweep) == len(BETAS)

    start = time.perf_counter()
    for beta in BETAS:
        fresh = PlanService(
            service.service, park.grid, park.patrol_posts,
            horizon=HORIZON, n_patrols=N_PATROLS, n_segments=N_SEGMENTS,
        )
        fresh.plan_post(post, features, beta=beta)
    t_sweep_fresh = time.perf_counter() - start

    # ------------------------------------------------------------------
    # LP fast path vs full SOS2 MILP on all-concave utilities.
    graph = TimeUnrolledGraph(park.grid, post, HORIZON)
    milp = PatrolMILP(graph, n_patrols=N_PATROLS)
    utilities = _concave_utilities(graph, milp, LP_SEGMENTS)
    start = time.perf_counter()
    sol_milp = milp.solve(utilities, mode="milp")
    t_milp = time.perf_counter() - start
    start = time.perf_counter()
    sol_lp = milp.solve(utilities, mode="lp")
    t_lp = time.perf_counter() - start
    lp_dev = abs(sol_lp.objective_value - sol_milp.objective_value)
    lp_speedup = t_milp / t_lp

    rows = [
        [f"posts planned ({n_posts} posts)", float(n_posts)],
        ["plan_all serial (s)", t_serial],
        ["plan_all n_jobs=4 (s, bit-identical)", t_parallel],
        ["posts/s serial", n_posts / t_serial],
        ["posts/s n_jobs=4", n_posts / t_parallel],
        [f"beta sweep x{len(BETAS)}, cached structure (s)", t_sweep_cached],
        [f"beta sweep x{len(BETAS)}, fresh service each (s)", t_sweep_fresh],
        [f"LP fast path ({LP_SEGMENTS} segments) (s)", t_lp],
        ["full SOS2 MILP (s)", t_milp],
        ["LP-vs-MILP speedup (x)", lp_speedup],
        ["|LP - MILP| objective deviation", lp_dev],
    ]
    info = service.cache_info()
    note = (
        f"\nprediction cache: {info['prediction']}"
        f"\nMILP structure cache: {info['structure']}"
        "\nnote: wall-clock parallel gains depend on container cores; the "
        "fan-out's contract is bit-identical plans."
    )
    table = format_table(
        [f"MFNP: {park.n_cells} cells, horizon {HORIZON}", "value"],
        rows, "{:.6f}",
    )
    write_report("planning_throughput", table + note)

    # Acceptance: the fast path is exact (to tolerance) and measurably
    # faster; the shared-surface cache fed every post from one computation.
    assert lp_dev < 1e-6
    assert lp_speedup > 1.2
    assert info["prediction"]["misses"] == 1
    assert info["prediction"]["hits"] >= 1
