"""Serving engine at scale: tiled, parallel, memory-bounded risk maps.

PR 1 batched the effort grid, PR 3 made fitting fast; this benchmark guards
the serving engine that makes *prediction* scale to the ROADMAP's
million-cell parks (Section VII serves risk maps far more often than it
trains). A Fig. 9-style sweep over grid sizes from 1.6k to 1M cells
records, per configuration, the ``effort_response`` latency, throughput,
and peak transient allocation for

* the untiled serial path (the pre-tiling engine: each GP member
  materialises an ``O(n_train x n_cells)`` kernel slab),
* the tiled serial path (``tile_size`` rows per task — transient memory
  drops to ``O(n_train x tile)`` and the working set fits in cache), and
* the tiled parallel path (``n_jobs=4`` over the ``(member x tile)``
  fan-out; worker counts clamp to usable cores).

Acceptance, asserted below: >= 4x wall-clock speedup over the untiled
serial path at the >= 250k-cell size given >= 4 usable cores (workers
clamp to cores; a single-core box only sees the ~1.4x L2-resident tiling
win, which must still hold), peak transient allocation bounded by
outputs + ``O(n_train x tile x workers)`` instead of ``O(n_train x n)``,
and max |tiled - untiled| deviation == 0 at every configuration.

Three sweep modes balance fidelity against wall-clock:

* ``REPRO_BENCH_FULL=1`` (``make bench-serve``) — the complete 1.6k -> 1M
  sweep; the only mode that (re)writes ``results/serve_scalability.txt``.
  Budget ~15 minutes on one core (the million-cell configurations are
  most of it).
* default (plain ``pytest benchmarks``) — stops at 62.5k cells, where the
  tiling contrast is already fully visible; a couple of minutes.
* ``REPRO_BENCH_SMOKE=1`` (the CI smoke step) — stops at 40k cells with a
  relaxed speedup floor that still fails loudly on a regression.
"""

from __future__ import annotations

import os
import resource
import time
import tracemalloc
from dataclasses import replace

import numpy as np

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.evaluation import format_table
from repro.ml.gp import GaussianProcessClassifier
from repro.runtime.parallel import effective_cpu_count

from conftest import write_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
FULL = not SMOKE and os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: MFNP terrain statistics on a full 40x40 lattice (the same XL park the
#: other engine benchmarks use); larger grids resample its feature rows.
PROFILE = replace(MFNP.scaled(5.0 / 3.0), name="MFNP-XL", geometry="rectangle")

N_CLASSIFIERS = 6
N_ESTIMATORS = 3
N_GRID = 10
#: 1024 rows x 250 training points x 8 bytes = a 2 MB kernel slab — small
#: enough to stay L2-resident, which is where the serial cache win lives
#: (4096-row tiles already fall back to L3 and give half the win).
TILE = 1024
N_JOBS = 4

#: Cell counts swept (1.6k -> 1M in full mode). The untiled path is
#: measured everywhere except 1M, where its 2 GB-per-member kernel slabs
#: are exactly the allocation pattern the tiled engine exists to remove;
#: the report carries the 250k-cell latency contrast instead.
if SMOKE:
    SIZES = (1_600, 10_000, 40_000)
elif FULL:
    SIZES = (1_600, 10_000, 62_500, 250_000, 1_000_000)
else:
    SIZES = (1_600, 10_000, 62_500)
UNTILED_MAX = 40_000 if SMOKE else 250_000

#: Floors on t_untiled / t_tiled_parallel at the largest dual-measured
#: size. With >= 4 usable cores the (member x tile) fan-out must clear
#: the acceptance bar (>= 4x at the >= 250k-cell size in the full sweep;
#: noise headroom on the reduced sweeps). With fewer cores the pool
#: clamps toward the serial tiled path, whose cache win depends on the
#: grid: parity-to-1.4x at the reduced sweeps' sizes (inside timing
#: noise on shared single-core runners, so those floors only demand
#: "never meaningfully slower"), 5x+ at the full sweep's 250k cells
#: where the untiled slabs collapse to <900 cells/s.
PARALLEL_FLOOR = 4.0 if FULL else (1.5 if SMOKE else 2.0)
SERIAL_FLOOR = 2.0 if FULL else 0.9


def _timed(fn) -> tuple[float, float, object]:
    """(seconds, peak transient bytes, result) for one serving call."""
    tracemalloc.reset_peak()
    before = tracemalloc.get_traced_memory()[0]
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    peak = tracemalloc.get_traced_memory()[1] - before
    return elapsed, peak, result


def _max_gp_train_rows(predictor: PawsPredictor) -> int:
    """Largest per-member GP training set (the n_train of the memory bound)."""
    assert predictor._ensemble is not None
    rows = [
        member._X_train.shape[0]
        for classifier in predictor._ensemble.classifiers_
        if hasattr(classifier, "estimators_")
        for member in classifier.estimators_
        if isinstance(member, GaussianProcessClassifier)
    ]
    return max(rows)


def test_serve_scalability(benchmark):
    data = generate_dataset(PROFILE, seed=0)
    split = data.dataset.split_by_test_year(PROFILE.years - 1)
    predictor = PawsPredictor(
        model="gpb", iware=True, n_classifiers=N_CLASSIFIERS,
        n_estimators=N_ESTIMATORS, seed=1,
    ).fit(split.train)
    base = predictor.cell_feature_matrix(data.park, data.recorded_effort[-1])
    n_train = _max_gp_train_rows(predictor)
    effort_grid = np.linspace(0.0, 4.0, N_GRID)
    rng = np.random.default_rng(0)
    cores = effective_cpu_count()

    rows: list[list] = []
    times: dict[tuple[int, str], float] = {}
    peaks: dict[tuple[int, str], float] = {}
    tracemalloc.start()
    for n_cells in SIZES:
        X = base[rng.integers(0, base.shape[0], size=n_cells)]

        def serve(**kwargs):
            return lambda: predictor.effort_response(X, effort_grid, **kwargs)

        configs = []
        if n_cells <= UNTILED_MAX:
            configs.append(("untiled serial", serve()))
        configs.append(("tiled serial", serve(tile_size=TILE)))
        configs.append(
            (f"tiled n_jobs={N_JOBS}", serve(tile_size=TILE, n_jobs=N_JOBS))
        )
        results = {}
        for label, fn in configs:
            elapsed, peak, (risk, nu) = _timed(fn)
            results[label] = (risk, nu)
            times[(n_cells, label)] = elapsed
            peaks[(n_cells, label)] = peak
            rows.append(
                [f"{n_cells:>9,} cells, {label}", elapsed,
                 n_cells / elapsed, peak / 1e6]
            )
        # Bit-identity at every configuration: the tile size, worker count,
        # and pool flavour must not change a single bit of either surface.
        reference = results[configs[0][0]]
        for label, (risk, nu) in results.items():
            assert np.abs(risk - reference[0]).max() == 0.0, (n_cells, label)
            assert np.abs(nu - reference[1]).max() == 0.0, (n_cells, label)
        # At sizes where the untiled path is skipped, check tiled-vs-tiled
        # identity across a different tile size instead.
        if n_cells > UNTILED_MAX:
            risk_alt, nu_alt = serve(tile_size=TILE // 2, n_jobs=N_JOBS)()
            assert np.abs(risk_alt - reference[0]).max() == 0.0
            assert np.abs(nu_alt - reference[1]).max() == 0.0
    tracemalloc.stop()
    benchmark.pedantic(
        lambda: predictor.effort_response(
            base, effort_grid, tile_size=TILE, n_jobs=N_JOBS
        ),
        rounds=3, iterations=1,
    )

    largest_untiled = max(n for n in SIZES if n <= UNTILED_MAX)
    speedup = (
        times[(largest_untiled, "untiled serial")]
        / times[(largest_untiled, f"tiled n_jobs={N_JOBS}")]
    )
    floor = PARALLEL_FLOOR if cores >= 4 else SERIAL_FLOOR
    maxrss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    table = format_table(
        [f"{PROFILE.name} serve sweep (tile={TILE}, {cores} usable cores)",
         "latency (s)", "cells/s", "peak alloc (MB)"],
        rows, "{:,.2f}",
    )
    note = (
        f"\nnote: every configuration is exactness-checked — max deviation "
        f"between tiled/parallel and untiled surfaces is asserted == 0. "
        f"Peak alloc is the tracemalloc-traced transient high-water mark "
        f"per call; the untiled path allocates O(n_train x n_cells) GP "
        f"kernel slabs (n_train={n_train} here), the tiled path "
        f"O(n_train x {TILE}) per in-flight task plus the output surfaces. "
        f"Untiled serving is skipped beyond {UNTILED_MAX:,} cells (minutes "
        f"per call; the pathology the tiled engine removes). "
        f"effort_response speedup at {largest_untiled:,} cells: "
        f"{speedup:.1f}x with n_jobs={N_JOBS} (floor {floor}x at "
        f"{cores} usable cores; workers clamp to cores, so the single-core "
        f"win is pure cache locality — parity-to-1.4x below the untiled "
        f"path's cache cliff, 5x+ at 250k cells where it collapses — and "
        f"the >= {PARALLEL_FLOOR}x bar applies from 4 cores up). "
        f"Process peak RSS after the sweep: {maxrss_mb:,.0f} MB."
    )
    if FULL:
        write_report("serve_scalability", table + note)
    else:
        # Reduced sweeps must not overwrite the full-sweep report.
        print(table + note)

    # --- Acceptance ------------------------------------------------------
    # 1. Tiled, parallel serving beats the pre-tiling serial path: >= 4x
    #    at the >= 250k-cell size given >= 4 usable cores (the fan-out
    #    cannot beat the hardware — on fewer cores it clamps toward the
    #    serial tiled path, which must still win on cache locality alone).
    assert speedup >= floor
    # 2. Memory bound: the tiled path's transient peak is outputs plus
    #    O(n_train x tile x workers) — not O(n_train x n_cells). The
    #    output surfaces (risk, nu, member stats, scaler temps) are
    #    ~56 doubles per cell at this grid/ensemble size; 4x covers numpy
    #    temporaries, and the per-task budget gets an 8x allowance.
    for n_cells in SIZES:
        out_bytes = 8 * n_cells * (2 * N_GRID + 2 * N_CLASSIFIERS)
        budget = 4 * out_bytes + 8 * (8 * n_train * TILE) * N_JOBS + 32e6
        for label in ("tiled serial", f"tiled n_jobs={N_JOBS}"):
            assert peaks[(n_cells, label)] <= budget, (n_cells, label)
    # ... while the untiled path really does pay O(n_train x n_cells): at
    # the largest dual-measured size it allocates at least one full kernel
    # slab and dwarfs the tiled peak.
    untiled_peak = peaks[(largest_untiled, "untiled serial")]
    assert untiled_peak >= 8 * n_train * largest_untiled
    assert untiled_peak >= 4 * peaks[(largest_untiled, f"tiled n_jobs={N_JOBS}")]
