"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper. Expensive
artifacts (simulated parks, fitted predictors) are session-cached so the
suite stays within minutes. Each benchmark writes its report to
``benchmarks/results/<name>.txt`` as well as printing it, so the regenerated
tables survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core import PawsPredictor
from repro.data import MFNP, QENP, SWS, SWS_DRY, generate_dataset
from repro.data.generator import ParkData

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-scale profiles (the stock Table I-calibrated parks).
BENCH_PROFILES = {
    "MFNP": MFNP,
    "QENP": QENP,
    "SWS": SWS,
    "SWS dry": SWS_DRY,
}

#: iWare-E ensemble sizes per park (paper: 20 for Uganda, 10 for SWS; scaled
#: to our smaller datasets).
N_CLASSIFIERS = {"MFNP": 10, "QENP": 10, "SWS": 4, "SWS dry": 4}

#: Balanced bagging only for the extreme-imbalance SWS datasets (paper V-A).
BALANCED = {"MFNP": False, "QENP": False, "SWS": True, "SWS dry": True}


def write_report(name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


@pytest.fixture(scope="session")
def park_data_cache() -> dict[str, ParkData]:
    """All four simulated parks, generated once per session."""
    return {
        name: generate_dataset(profile, seed=0)
        for name, profile in BENCH_PROFILES.items()
    }


@pytest.fixture(scope="session")
def mfnp_data(park_data_cache) -> ParkData:
    return park_data_cache["MFNP"]


@pytest.fixture(scope="session")
def fitted_gpb_mfnp(mfnp_data) -> PawsPredictor:
    """A GPB-iW model fitted on MFNP's first years (shared by map benches)."""
    split = mfnp_data.dataset.split_by_test_year(MFNP.years - 1)
    return PawsPredictor(
        model="gpb", iware=True, n_classifiers=8, n_estimators=3, seed=1
    ).fit(split.train)


def evaluable_test_years(dataset, candidates=(3, 4, 5), min_positives=2) -> list[int]:
    """Test years where AUC is meaningfully defined.

    Requires both classes in the test year and at least ``min_positives``
    positive labels — with a single positive, AUC is a coin flip and says
    nothing about any model.
    """
    years = []
    for year in candidates:
        try:
            split = dataset.split_by_test_year(year)
        except Exception:
            continue
        n_pos = int(split.test.labels.sum())
        if min_positives <= n_pos < split.test.n_points \
                and split.train.labels.sum() > 0:
            years.append(year)
    return years
