"""Table III / Fig. 10: simulated field tests in MFNP and SWS (dry season).

Reproduces the deployment protocol: select high/medium/low-risk blocks from
model predictions (blinded to rangers), patrol them for two trials per
park, and evaluate whether detected-poaching rates track the predicted risk
ordering — with the paper's chi-squared significance test.
"""

from __future__ import annotations

import numpy as np

from repro.core import PawsPredictor
from repro.fieldtest import (
    RiskGroup,
    chi_squared_test,
    design_field_test,
    field_test_table,
    run_field_trial,
)

from conftest import BALANCED, BENCH_PROFILES, N_CLASSIFIERS, write_report

PARKS = ("MFNP", "SWS dry")


def _trial_pair(data, predictor, seed):
    park = data.park
    features = predictor.cell_feature_matrix(park, data.recorded_effort[-1])
    nominal = float(np.median(data.dataset.current_effort))
    risk = predictor.predict_proba(features, effort=nominal)
    rng = np.random.default_rng(seed)
    design = design_field_test(
        park.grid,
        risk,
        data.recorded_effort.sum(axis=0),
        blocks_per_group=5,
        block_radius=1,
        rng=rng,
    )
    # SWS's extreme imbalance needs longer exposure for countable
    # detections (the paper compensated with 72 rangers in teams of eight).
    lengths = (1, 2) if data.profile.name == "MFNP" else (2, 3)
    t_start = data.profile.n_periods
    return {
        "trial 1": run_field_trial(design, data.poachers, rng,
                                   n_periods=lengths[0], start_period=t_start),
        "trial 2": run_field_trial(design, data.poachers, rng,
                                   n_periods=lengths[1],
                                   start_period=t_start + lengths[0]),
    }


def test_table3_field_tests(park_data_cache, benchmark):
    def run_all():
        reports = {}
        for name in PARKS:
            data = park_data_cache[name]
            split = data.dataset.split_by_test_year(data.profile.years - 1)
            predictor = PawsPredictor(
                model="dtb" if name == "MFNP" else "gpb",  # as deployed
                iware=True,
                n_classifiers=N_CLASSIFIERS[name],
                n_estimators=3,
                balanced=BALANCED[name],
                seed=1,
            ).fit(split.train)
            reports[name] = _trial_pair(data, predictor, seed=11)
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    all_high, all_low = [], []
    p_values = []
    for name, trials in reports.items():
        renamed = {f"{name} {k}": v for k, v in trials.items()}
        sections.append(field_test_table(renamed))
        for trial in trials.values():
            all_high.append(trial.outcomes[RiskGroup.HIGH].obs_per_cell)
            all_low.append(trial.outcomes[RiskGroup.LOW].obs_per_cell)
            p_values.append(chi_squared_test(trial)[1])
    write_report("table3_field_tests", "\n\n".join(sections))

    # Fig. 10's shape: high-risk regions yield more observations per
    # patrolled cell than low-risk regions, averaged over trials.
    assert np.mean(all_high) > np.mean(all_low)
    # High-risk areas produce detections in every trial.
    assert min(all_high) > 0
    # At least half the trials reach significance (the paper's MFNP trial 1
    # was p=0.0105 only on the pooled data; per-trial noise is expected).
    assert sum(1 for p in p_values if p < 0.1) >= len(p_values) // 2
