"""Resilience overhead: supervision and checksums must be ~free when healthy.

The resilient runtime wraps every fan-out in per-task futures with a
supervisor (crash recovery, deadlines, stats) and every save/load in
sha256 checksums. Both guard rails run on *every* request of a deployed
park service, so their healthy-host cost has to stay negligible. This
benchmark measures:

* per-task supervision overhead of ``supervised_map`` against a bare
  list comprehension (serial rung) and a bare thread-pool map;
* the cost of recovering a fan-out from an injected worker crash;
* checksummed (``verify=True``) vs unchecked model loading.

Acceptance bars are deliberately loose (CI containers are noisy); the
point of the report is the trend, the point of the asserts is catching a
pathological regression (e.g. re-pickling per retry, re-hashing per
array access).
"""

from __future__ import annotations

import time

import numpy as np

from repro.evaluation import format_table
from repro.ml import LogisticRegression
from repro.runtime import faults, load_model, save_model, supervised_map
from repro.runtime.faults import FaultPlan
from repro.runtime.resilience import collect_stats

from conftest import write_report

N_TASKS = 512
REPEATS = 5


def _work(x: int) -> int:
    # Small but real per-task work so pool overhead is not the whole story.
    return int(np.sum(np.arange(64) * x))


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_supervision_and_checksum_overhead(tmp_path):
    items = list(range(N_TASKS))
    expected = [_work(x) for x in items]

    t_bare = _best_of(REPEATS, lambda: [_work(x) for x in items])
    t_serial = _best_of(REPEATS, lambda: supervised_map(_work, items))
    t_thread = _best_of(
        REPEATS,
        lambda: supervised_map(_work, items, workers=4, backend="thread"),
    )
    assert supervised_map(_work, items, workers=4, backend="thread") == expected

    # Recovery: one injected worker crash on a process fan-out (the retry
    # re-runs only the missing tasks in a fresh pool).
    plan = FaultPlan(scratch=str(tmp_path / "chaos"), crash_once=(0,))
    with faults.active(plan), collect_stats() as stats:
        start = time.perf_counter()
        got = supervised_map(_work, items[:32], workers=2, backend="process")
        t_recover = time.perf_counter() - start
    assert got == expected[:32]

    # Persistence: checksummed vs unchecked load of a small model.
    rng = np.random.default_rng(0)
    X = rng.standard_normal((400, 8))
    y = (X[:, 0] + 0.2 * rng.standard_normal(400) > 0).astype(np.int64)
    model = LogisticRegression().fit(X, y)
    path = tmp_path / "model"
    t_save = _best_of(REPEATS, lambda: save_model(model, path))
    t_load_checked = _best_of(REPEATS, lambda: load_model(path, verify=True))
    t_load_raw = _best_of(REPEATS, lambda: load_model(path, verify=False))
    np.testing.assert_array_equal(
        load_model(path, verify=True).predict_proba(X),
        model.predict_proba(X),
    )

    per_task_us = (t_serial - t_bare) / N_TASKS * 1e6
    rows = [
        ["bare list comprehension", t_bare * 1e3, ""],
        ["supervised (serial rung)", t_serial * 1e3,
         f"{per_task_us:+.1f} us/task"],
        ["supervised (thread pool x4)", t_thread * 1e3, ""],
        ["crash recovery (32 tasks, 1 kill)", t_recover * 1e3,
         f"{stats.worker_deaths} death(s), {stats.retries} retry(ies)"],
        ["save (staged + fsync + sha256)", t_save * 1e3, ""],
        ["load verify=True", t_load_checked * 1e3, ""],
        ["load verify=False", t_load_raw * 1e3, ""],
    ]
    report = format_table(["path", "ms", "notes"], rows, "{:.2f}")
    write_report("resilience_overhead", report)

    # Pathological-regression guards (loose: containers are noisy).
    assert per_task_us < 1000, "supervision costs >1ms per serial task"
    assert stats.worker_deaths >= 1, "the injected crash never fired"
    assert t_load_checked < t_load_raw * 20 + 0.5, (
        "checksum verification dominates loading pathologically"
    )
