"""Fig. 3: historical patrol-effort maps.

The paper's Fig. 3 visualises km patrolled per cell for each park, noting
that "patrol effort is unevenly distributed around the park ... and many
areas have never been patrolled (in white)". This benchmark renders the
same maps (ASCII) and asserts both properties.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import ascii_heatmap

from conftest import BENCH_PROFILES, write_report


def test_fig3_historical_effort_maps(park_data_cache, benchmark):
    def build_maps():
        sections = []
        stats = {}
        for name in BENCH_PROFILES:
            data = park_data_cache[name]
            effort = data.recorded_effort.sum(axis=0)
            sections.append(
                ascii_heatmap(
                    data.park.grid,
                    effort,
                    title=f"{name}: historical patrol effort (km/cell, "
                    f"total {effort.sum():.0f} km)",
                )
            )
            never = float((effort == 0).mean())
            gini_like = float(effort.max() / (effort.mean() + 1e-9))
            stats[name] = (never, gini_like)
        return "\n\n".join(sections), stats

    text, stats = benchmark.pedantic(build_maps, rounds=1, iterations=1)
    summary = "\n".join(
        f"{name}: never-patrolled fraction={never:.2f}, "
        f"max/mean effort ratio={ratio:.1f}"
        for name, (never, ratio) in stats.items()
    )
    write_report("fig3_effort_maps", text + "\n\n" + summary)

    for name, (never_patrolled, concentration) in stats.items():
        # "many areas have never been patrolled"
        assert never_patrolled > 0.10, f"{name} lacks unpatrolled area"
        # "patrol effort is unevenly distributed"
        assert concentration > 3.0, f"{name} effort is too uniform"
