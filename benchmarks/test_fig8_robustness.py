"""Fig. 8: solution-quality gain from uncertainty-aware planning.

Panels (a)-(c): the ratio ``U_beta(C_beta) / U_beta(C_{beta=0})`` as a
function of the robustness weight beta, reported as the average and the
maximum over patrol posts (the paper sweeps beta in [0.8, 1.0]).

Panels (d)-(f): the same ratio as a function of the number of PWL segments
in the utility approximation.
"""

from __future__ import annotations

import numpy as np

from repro.core import PawsPredictor
from repro.evaluation import format_table
from repro.planning import PatrolPlanner, RobustObjective

from conftest import write_report

BETAS = (0.8, 0.9, 1.0)
SEGMENTS = (5, 10, 20)
HORIZON = 12
N_PATROLS = 2


def _ratios_over_posts(data, predictor, beta, n_segments):
    park = data.park
    features = predictor.cell_feature_matrix(park, data.recorded_effort[-1])
    ratios = []
    for post in park.patrol_posts:
        planner = PatrolPlanner(
            park.grid, int(post), horizon=HORIZON,
            n_patrols=N_PATROLS, n_segments=n_segments,
        )
        xs = planner.breakpoints()
        risk, nu = predictor.effort_response(features, xs)
        objective = RobustObjective(xs, risk, nu, beta=0.0)
        ratios.append(planner.solution_quality_ratio(objective, beta=beta))
    return np.asarray(ratios)


def test_fig8_robustness_gain(mfnp_data, fitted_gpb_mfnp, benchmark):
    def sweep():
        beta_rows = []
        for beta in BETAS:
            ratios = _ratios_over_posts(mfnp_data, fitted_gpb_mfnp, beta, 10)
            beta_rows.append(
                ["MFNP", beta, float(ratios.mean()), float(ratios.max())]
            )
        segment_rows = []
        for n_segments in SEGMENTS:
            ratios = _ratios_over_posts(mfnp_data, fitted_gpb_mfnp, 1.0, n_segments)
            segment_rows.append(
                ["MFNP", n_segments, float(ratios.mean()), float(ratios.max())]
            )
        return beta_rows, segment_rows

    beta_rows, segment_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = (
        "Fig. 8(a-c): ratio U_b(C_b)/U_b(C_0) vs beta\n"
        + format_table(["park", "beta", "avg ratio", "max ratio"], beta_rows)
        + "\n\nFig. 8(d-f): ratio vs PWL segments (beta=1)\n"
        + format_table(["park", "segments", "avg ratio", "max ratio"], segment_rows)
    )
    write_report("fig8_robustness", text)

    # Accounting for uncertainty never hurts under the robust objective...
    for row in beta_rows + segment_rows:
        assert row[2] >= 1.0 - 1e-6
    # ...and delivers a real improvement somewhere (the paper's gains reach
    # 1.5-3x at beta -> 1; our scaled-down parks show the same direction).
    max_gain = max(row[3] for row in beta_rows)
    assert max_gain > 1.05, "robust planning should visibly improve U_beta"
    # Gains grow (weakly) with beta.
    means = [row[2] for row in beta_rows]
    assert means[-1] >= means[0] - 1e-6
