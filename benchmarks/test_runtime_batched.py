"""Serving engine: batched effort-response speedup and persistence round trip.

The seed implementation of ``PawsPredictor.effort_response`` re-ran every
ensemble member once per effort level, although member predictions do not
depend on the hypothesised effort (only the qualification mix does). The
batched path computes member statistics once and mixes all levels with two
matrix products. This benchmark measures that speedup on a 1,600-cell park
with a 10-point effort grid — the acceptance bar is >= 3x with max absolute
deviation < 1e-8 from the per-level reference loop — and checks the other
two serving-engine contracts: parallel fitting is bit-identical to serial,
and a save/load round trip serves the identical risk surface without
refitting.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.evaluation import format_table
from repro.runtime import RiskMapService

from conftest import write_report

#: MFNP terrain statistics on a full 40x40 lattice: exactly 1,600 cells.
PROFILE = replace(MFNP.scaled(5.0 / 3.0), name="MFNP-XL", geometry="rectangle")
N_GRID = 10
N_CLASSIFIERS = 6
N_ESTIMATORS = 3


def test_batched_serving_engine(benchmark, tmp_path):
    data = generate_dataset(PROFILE, seed=0)
    assert data.park.n_cells == 1600
    split = data.dataset.split_by_test_year(PROFILE.years - 1)

    def predictor(n_jobs: int = 1) -> PawsPredictor:
        return PawsPredictor(
            model="gpb", iware=True, n_classifiers=N_CLASSIFIERS,
            n_estimators=N_ESTIMATORS, seed=1, n_jobs=n_jobs,
        )

    start = time.perf_counter()
    fitted = predictor().fit(split.train)
    t_fit_serial = time.perf_counter() - start
    start = time.perf_counter()
    fitted_parallel = predictor(n_jobs=4).fit(split.train)
    t_fit_parallel = time.perf_counter() - start
    # Worker counts clamp to the cores actually available, so requesting
    # n_jobs=4 never oversubscribes: on a single-core container the pool
    # degrades to the *same* serial code path, making this single-shot
    # timing comparison meaningful there (slack absorbs container noise).
    # On multi-core machines pool overhead vs speedup is covered by the
    # interleaved measurements in test_fit_throughput instead.
    from repro.runtime.parallel import effective_cpu_count

    if effective_cpu_count() == 1:
        assert t_fit_parallel <= t_fit_serial * 1.25

    features = fitted.cell_feature_matrix(data.park, data.recorded_effort[-1])
    grid = np.linspace(0.0, 6.0, N_GRID)

    # Parallel fitting must be bit-identical (seeds are pre-drawn serially).
    np.testing.assert_array_equal(
        fitted_parallel.predict_proba(features), fitted.predict_proba(features)
    )

    # The seed implementation's per-level loop, reconstructed from the
    # public per-level API: every ensemble member re-runs at every effort
    # level. (`effort_response(batched=False)` no longer does this — it now
    # shares one member pass with the batched path and only the mixing
    # differs — so the benchmark keeps the historical loop alive itself.)
    start = time.perf_counter()
    risk_loop = np.stack(
        [fitted.predict_proba(features, effort=float(c)) for c in grid], axis=1
    )
    var_loop = np.stack(
        [fitted.predict_variance(features, effort=float(c)) for c in grid],
        axis=1,
    )
    t_loop = time.perf_counter() - start
    risk_loop[:, grid == 0.0] = 0.0
    from repro.core.uncertainty import UncertaintyScaler

    nu_loop = UncertaintyScaler().fit(var_loop.ravel()).transform(var_loop)

    # The deduplicated per-level fallback must reproduce that loop exactly.
    risk_pl, nu_pl = fitted.effort_response(features, grid, batched=False)
    np.testing.assert_array_equal(risk_pl, risk_loop)
    np.testing.assert_array_equal(nu_pl, nu_loop)

    def batched():
        return fitted.effort_response(features, grid, batched=True)

    start = time.perf_counter()
    risk_batch, nu_batch = batched()
    t_batch = time.perf_counter() - start
    benchmark.pedantic(batched, rounds=3, iterations=1)

    max_dev = max(
        float(np.abs(risk_batch - risk_loop).max()),
        float(np.abs(nu_batch - nu_loop).max()),
    )
    speedup = t_loop / t_batch

    # Save/load round trip: a persisted model serves the identical surface.
    model_dir = tmp_path / "paws-gpb"
    fitted.save(model_dir)
    start = time.perf_counter()
    service = RiskMapService.from_saved(model_dir)
    t_load = time.perf_counter() - start
    loaded_risk, loaded_nu = service.effort_response(features, grid)
    np.testing.assert_array_equal(loaded_risk, risk_batch)
    np.testing.assert_array_equal(loaded_nu, nu_batch)

    # Warm-cache serving cost (the repeated-query path).
    start = time.perf_counter()
    service.effort_response(features, grid)
    t_cached = time.perf_counter() - start
    assert service.cache_info()["hits"] == 1

    rows = [
        ["fit, serial (s)", t_fit_serial],
        ["fit, n_jobs=4 auto backend (s, bit-identical)", t_fit_parallel],
        ["effort_response, seed per-level loop (s)", t_loop],
        ["effort_response, batched (s)", t_batch],
        ["batched speedup (x)", speedup],
        ["max |batched - loop| deviation", max_dev],
        ["load saved model (s)", t_load],
        ["cached re-serve (s)", t_cached],
    ]
    table = format_table(
        [f"{PROFILE.name}: {data.park.n_cells} cells, {N_GRID}-pt grid", "value"],
        rows, "{:.6f}",
    )
    note = (
        "\nnote: the fitting fan-out picks its pool per workload (threads "
        "for GIL-releasing GP/BLAS members, processes for pure-Python "
        "trees/SVMs) and clamps workers to usable cores, so n_jobs=4 is "
        "never slower than serial on a small container; results are "
        "bit-identical on every backend."
    )
    write_report("runtime_batched", table + note)

    # Acceptance: numerically faithful and >= 3x faster than the seed loop.
    assert max_dev < 1e-8
    assert speedup >= 3.0
    # The cached path must be dramatically cheaper than recomputing.
    assert t_cached < t_batch / 10
