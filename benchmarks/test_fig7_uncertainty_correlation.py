"""Fig. 7: prediction-vs-variance correlation, GPs vs bagged trees.

The paper: "The Pearson correlation coefficient is -0.198 for GPs, but
0.979 for bagging decision trees — a near-perfect correlation. Thus, the
variance values for bagging decision trees provide little additional
insight ... GPs are necessary for this insight."

Regenerated on one weak learner trained on MFNP-like data, reporting both
the between-member variance and the infinitesimal-jackknife variance for
the tree ensemble.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_table
from repro.ml import BaggingClassifier, DecisionTreeClassifier, GaussianProcessClassifier
from repro.ml.jackknife import bagging_ij_variance

from conftest import write_report


def test_fig7_prediction_variance_correlation(mfnp_data, benchmark):
    split = mfnp_data.dataset.split_by_test_year(5)
    X_train, y_train = split.train.feature_matrix, split.train.labels
    X_test = split.test.feature_matrix

    def run_models():
        gp = GaussianProcessClassifier(rng=np.random.default_rng(1))
        gp.fit(X_train, y_train)
        gp_pred = gp.predict_proba(X_test)
        gp_var = gp.predict_variance(X_test)

        trees = BaggingClassifier(
            lambda: DecisionTreeClassifier(
                max_depth=8, max_features="sqrt", rng=np.random.default_rng(2)
            ),
            n_estimators=30,
            rng=np.random.default_rng(3),
        )
        trees.fit(X_train, y_train)
        tree_pred = trees.predict_proba(X_test)
        return {
            "gp": float(np.corrcoef(gp_pred, gp_var)[0, 1]),
            "trees_member": float(
                np.corrcoef(tree_pred, trees.predict_variance(X_test))[0, 1]
            ),
            "trees_ij": float(
                np.corrcoef(tree_pred, bagging_ij_variance(trees, X_test))[0, 1]
            ),
        }

    corr = benchmark.pedantic(run_models, rounds=1, iterations=1)
    table = format_table(
        ["uncertainty source", "Pearson r (ours)", "Pearson r (paper)"],
        [
            ["Gaussian process variance", corr["gp"], -0.198],
            ["Bagged trees (member variance)", corr["trees_member"], 0.979],
            ["Bagged trees (inf. jackknife)", corr["trees_ij"], 0.979],
        ],
    )
    write_report("fig7_uncertainty_correlation", table)

    # The contrast that justifies GPs: tree variance is strongly coupled to
    # the prediction, GP variance is not.
    assert corr["trees_member"] > 0.4
    assert abs(corr["gp"]) < 0.5
    assert corr["trees_member"] - corr["gp"] > 0.4
