"""Training engine: presorted tree growth, process-parallel fitting, O(n) geo.

PR 1 made serving fast and PR 2 made planning fit-once/plan-many; this
benchmark guards the train-side rewrites that make *fitting* fast:

* presorted packed-array CART growth — ≥5x faster single-core tree fitting
  on the MFNP-XL training set, with packed arrays and predictions identical
  to the original recursive builder (kept in ``repro.ml._tree_reference``);
* the process fitting backend — ``n_jobs=4`` DTB ensemble fits are
  bit-identical to serial, strictly faster when the machine has more than
  one usable core, and never meaningfully slower on a single core (worker
  counts are clamped to the cores actually available);
* exact-equivalent O(n) geo transforms — ≥10x faster ``chamfer_distance``
  and ``geodesic_distance`` on a 100x100 grid, elementwise identical to the
  per-cell reference implementations.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke step does) to run a reduced
configuration with slightly relaxed speedup floors that still fail loudly on
a real throughput regression.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.evaluation import format_table
from repro.geo import Grid
from repro.geo.distance import (
    chamfer_distance,
    chamfer_distance_reference,
    geodesic_distance,
    geodesic_distance_reference,
)
from repro.ml._tree_reference import reference_fit_arrays
from repro.ml.tree import DecisionTreeClassifier
from repro.runtime.parallel import effective_cpu_count

from conftest import write_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: MFNP terrain statistics on a full 40x40 lattice: exactly 1,600 cells
#: (the same XL park the serving benchmark uses).
PROFILE = replace(MFNP.scaled(5.0 / 3.0), name="MFNP-XL", geometry="rectangle")

#: Speedup floors; the smoke configuration keeps regressions loud while
#: tolerating shared-runner noise.
TREE_SPEEDUP_FLOOR = 3.0 if SMOKE else 5.0
GEO_SPEEDUP_FLOOR = 5.0 if SMOKE else 10.0
GEO_SIZE = 60 if SMOKE else 100
TIMING_REPS = 3 if SMOKE else 7


def best_of(fn, reps: int = TIMING_REPS) -> tuple[float, object]:
    """Minimum wall-clock over ``reps`` runs (robust on noisy containers)."""
    best = np.inf
    result = None
    for __ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fit_throughput(benchmark):
    data = generate_dataset(PROFILE, seed=0)
    split = data.dataset.split_by_test_year(PROFILE.years - 1)
    X, y = split.train.feature_matrix, split.train.labels
    if SMOKE:
        X, y = X[:400], y[:400]

    # --- 1. Presorted packed tree growth vs the original builder ---------
    def fit_reference():
        tree = DecisionTreeClassifier()
        Xc, yc = tree._check_fit_input(X, y)
        return reference_fit_arrays(tree, Xc, yc)

    def fit_packed():
        return DecisionTreeClassifier().fit(X, y)

    # Interleaved minima: container noise bursts hit both sides equally.
    t_ref = t_packed = np.inf
    ref_arrays = packed_tree = None
    for __ in range(TIMING_REPS):
        start = time.perf_counter()
        ref_arrays = fit_reference()
        t_ref = min(t_ref, time.perf_counter() - start)
        start = time.perf_counter()
        packed_tree = fit_packed()
        t_packed = min(t_packed, time.perf_counter() - start)
    benchmark.pedantic(fit_packed, rounds=3, iterations=1)
    tree_speedup = t_ref / t_packed
    for key, array in ref_arrays.items():
        np.testing.assert_array_equal(
            array, packed_tree.tree_arrays[key], err_msg=f"tree array '{key}'"
        )

    # --- 2. Serial vs process-parallel DTB ensemble fit ------------------
    def predictor(n_jobs: int) -> PawsPredictor:
        return PawsPredictor(
            model="dtb", iware=True, n_classifiers=6, n_estimators=3,
            weighting="qualified", seed=1, n_jobs=n_jobs, backend="auto",
        )

    # Interleave the serial/parallel reps so container noise hits both sides
    # of the comparison equally.
    t_serial = t_process = np.inf
    fitted_serial = fitted_process = None
    for __ in range(3):
        start = time.perf_counter()
        fitted_serial = predictor(1).fit(split.train)
        t_serial = min(t_serial, time.perf_counter() - start)
        start = time.perf_counter()
        fitted_process = predictor(4).fit(split.train)
        t_process = min(t_process, time.perf_counter() - start)
    features = fitted_serial.cell_feature_matrix(
        data.park, data.recorded_effort[-1]
    )
    # Bit-identity is the contract regardless of backend or worker count.
    np.testing.assert_array_equal(
        fitted_serial.predict_proba(features),
        fitted_process.predict_proba(features),
    )

    # --- 3. Geo transforms vs the per-cell references --------------------
    rng = np.random.default_rng(0)
    mask = rng.random((GEO_SIZE, GEO_SIZE)) < 0.01
    mask[GEO_SIZE // 2, GEO_SIZE // 2] = True
    t_cham_ref, cham_ref = best_of(lambda: chamfer_distance_reference(mask))
    t_cham, cham = best_of(lambda: chamfer_distance(mask))
    np.testing.assert_array_equal(cham, cham_ref)
    cham_speedup = t_cham_ref / t_cham

    holes = rng.random((GEO_SIZE, GEO_SIZE)) < 0.85
    holes[0, 0] = True
    grid = Grid(GEO_SIZE, GEO_SIZE, mask=holes)
    sources = [0, grid.n_cells - 1]
    t_geo_ref, geo_ref = best_of(
        lambda: geodesic_distance_reference(grid, sources)
    )
    t_geo, geo = best_of(lambda: geodesic_distance(grid, sources))
    np.testing.assert_array_equal(geo, geo_ref)
    geo_speedup = t_geo_ref / t_geo

    cores = effective_cpu_count()
    rows = [
        ["tree fit, original builder (s)", t_ref],
        ["tree fit, presorted packed (s)", t_packed],
        ["tree growth speedup (x)", tree_speedup],
        ["DTB ensemble fit, serial (s)", t_serial],
        ["DTB ensemble fit, n_jobs=4 process (s)", t_process],
        ["ensemble parallel speedup (x)", t_serial / t_process],
        ["usable cores", float(cores)],
        [f"chamfer {GEO_SIZE}x{GEO_SIZE}, reference (s)", t_cham_ref],
        [f"chamfer {GEO_SIZE}x{GEO_SIZE}, vectorized (s)", t_cham],
        ["chamfer speedup (x)", cham_speedup],
        [f"geodesic {GEO_SIZE}x{GEO_SIZE}, Dijkstra (s)", t_geo_ref],
        [f"geodesic {GEO_SIZE}x{GEO_SIZE}, BFS (s)", t_geo],
        ["geodesic speedup (x)", geo_speedup],
    ]
    table = format_table(
        [f"{PROFILE.name}: fit throughput ({X.shape[0]} train rows)", "value"],
        rows, "{:.6f}",
    )
    note = (
        "\nnote: every rewrite is exactness-tested against its original "
        "implementation (identical packed tree arrays, identical distance "
        "rasters, bit-identical parallel fits). Worker counts clamp to "
        "usable cores, so on a single-core container the process backend "
        "degrades to the serial path instead of oversubscribing."
    )
    if SMOKE:
        print(table + note)  # smoke runs must not overwrite the full report
    else:
        write_report("fit_throughput", table + note)

    # Acceptance: fast, and exactly equivalent (asserted above).
    assert tree_speedup >= TREE_SPEEDUP_FLOOR
    assert cham_speedup >= GEO_SPEEDUP_FLOOR
    assert geo_speedup >= GEO_SPEEDUP_FLOOR
    if cores > 1 and not SMOKE:
        # With real parallel hardware the process pool must win outright.
        # (The smoke configuration trims the fit to a size where pool
        # overhead can mask the win on noisy shared runners, so it only
        # checks the not-meaningfully-slower bound below.)
        assert t_process < t_serial
    else:
        # One usable core (or smoke mode): the backend clamps to the
        # serial path, so "parallel" may not win but must never
        # meaningfully lose; the slack absorbs container timing noise.
        assert t_process <= t_serial * 1.25
