"""Quickstart: the full data-to-deployment pipeline on one park.

Runs the complete PAWS workflow of the paper on a synthetic Murchison
Falls-like park: simulate patrol history, fit the enhanced iWare-E model
with GP weak learners, plan risk-aware patrols for every post, and evaluate
a simulated field test.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DataToDeploymentPipeline
from repro.data import MFNP
from repro.evaluation import ascii_heatmap
from repro.fieldtest import field_test_table


def main() -> None:
    profile = MFNP.scaled(0.6)
    pipeline = DataToDeploymentPipeline(
        profile,
        model="gpb",        # GP weak learners: the uncertainty-aware choice
        beta=0.8,           # risk-averse patrols (Eq. 4)
        horizon=10,         # patrol length T (km)
        n_patrols=2,        # patrols per post per period K
        n_classifiers=6,    # iWare-E thresholds
        seed=0,
    )
    print(f"Running PAWS end-to-end on {profile.name} "
          f"({profile.shape[0]}x{profile.shape[1]} cells)...")
    result = pipeline.run(field_test=True)

    print(f"\nPredictive model: {result.predictor.name}")
    print(f"Held-out AUC (last year): {result.test_auc:.3f}")

    print(f"\nPlanned patrols for {len(result.plans)} posts "
          f"(beta={pipeline.beta}):")
    for post, plan in result.plans.items():
        top_route = plan.routes[0]
        print(f"  post {post:4d}: utility={plan.objective_value:.3f}, "
              f"{len(plan.routes)} routes; most likely route "
              f"(weight {top_route.weight:.2f}): {top_route.cells}")

    coverage = pipeline.combined_coverage(result)
    print("\nPrescribed patrol coverage (darker = more effort):")
    print(ascii_heatmap(result.data.park.grid, coverage))

    print("\nSimulated field test (high/medium/low-risk blocks):")
    print(field_test_table({"trial": result.field_result}))
    print(f"\nChi-squared p-value: {result.field_p_value:.4f} "
          f"({'significant' if result.field_p_value < 0.05 else 'not significant'} "
          "at the 0.05 level)")


if __name__ == "__main__":
    main()
