"""Uncertainty analysis: why Gaussian processes, not bagged trees.

Reproduces the paper's Section V-B/C analysis on a synthetic park:

1. risk maps and uncertainty maps across patrol-effort levels (Fig. 6);
2. the prediction-vs-variance correlation contrast (Fig. 7): bagged decision
   trees' variance is almost a deterministic function of the prediction
   (Pearson r ~ 0.98 in the paper), while GP variance carries independent
   information (r ~ -0.2).

Run with::

    python examples/uncertainty_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.evaluation import ascii_heatmap
from repro.ml import BaggingClassifier, DecisionTreeClassifier, GaussianProcessClassifier
from repro.ml.jackknife import bagging_ij_variance


def correlation_study(seed: int = 0) -> None:
    """Fig. 7: prediction-vs-variance correlation, GP vs bagged trees."""
    data = generate_dataset(MFNP.scaled(0.6), seed=seed)
    split = data.dataset.split_by_test_year(4)
    X_train, y_train = split.train.feature_matrix, split.train.labels
    X_test = split.test.feature_matrix

    gp = GaussianProcessClassifier(rng=np.random.default_rng(1))
    gp.fit(X_train, y_train)
    gp_pred = gp.predict_proba(X_test)
    gp_var = gp.predict_variance(X_test)

    trees = BaggingClassifier(
        lambda: DecisionTreeClassifier(max_depth=8, max_features="sqrt",
                                       rng=np.random.default_rng(2)),
        n_estimators=30,
        rng=np.random.default_rng(3),
    )
    trees.fit(X_train, y_train)
    tree_pred = trees.predict_proba(X_test)
    tree_var = trees.predict_variance(X_test)  # between-member variance
    tree_var_ij = bagging_ij_variance(trees, X_test)

    r_gp = np.corrcoef(gp_pred, gp_var)[0, 1]
    r_tree = np.corrcoef(tree_pred, tree_var)[0, 1]
    r_tree_ij = np.corrcoef(tree_pred, tree_var_ij)[0, 1]
    print("Prediction-vs-variance Pearson correlation (Fig. 7):")
    print(f"  Gaussian process:              r = {r_gp:+.3f}  (paper: -0.198)")
    print(f"  Bagged trees (member var):     r = {r_tree:+.3f}  (paper: +0.979)")
    print(f"  Bagged trees (inf. jackknife): r = {r_tree_ij:+.3f}")
    print("  -> tree variance adds little information beyond the prediction;")
    print("     GP variance is an independent signal the planner can use.\n")


def risk_and_uncertainty_maps(seed: int = 0) -> None:
    """Fig. 6: risk and uncertainty maps at increasing patrol effort."""
    data = generate_dataset(MFNP.scaled(0.6), seed=seed)
    split = data.dataset.split_by_test_year(4)
    predictor = PawsPredictor(model="gpb", iware=True, n_classifiers=6,
                              n_estimators=3, seed=1).fit(split.train)
    park = data.park
    features = predictor.cell_feature_matrix(park, data.recorded_effort[-1])

    print(ascii_heatmap(park.grid, data.recorded_effort.sum(axis=0),
                        title="Historical patrol effort (Fig. 6a):"))
    print()
    for effort in (0.5, 2.0, 4.0):
        risk = predictor.predict_proba(features, effort=effort)
        nu = predictor.predict_variance(features, effort=effort)
        print(ascii_heatmap(
            park.grid, risk,
            title=f"Predicted detection risk at {effort} km effort:"))
        print(ascii_heatmap(
            park.grid, nu,
            title=f"Prediction uncertainty at {effort} km effort:"))
        print()


def main() -> None:
    correlation_study()
    risk_and_uncertainty_maps()


if __name__ == "__main__":
    main()
