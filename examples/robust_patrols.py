"""Robust patrol planning: sweeping the risk-aversion parameter beta.

Demonstrates Section VI: plans computed while penalising uncertain
predictions (Eq. 4) versus plans that trust the point predictions, evaluated
(i) under the robust objective (the paper's Fig. 8 ratio) and (ii) against
the simulator's ground truth via the Green Security Game — the paper's
"detection of snares increased by an average of 30%" claim.

Run with::

    python examples/robust_patrols.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PawsPredictor
from repro.data import QENP, generate_dataset
from repro.evaluation import format_table
from repro.planning import GreenSecurityGame, PatrolPlanner, RobustObjective


def main() -> None:
    profile = QENP.scaled(0.7)
    data = generate_dataset(profile, seed=0)
    split = data.dataset.split_by_test_year(profile.years - 1)
    predictor = PawsPredictor(model="gpb", iware=True, n_classifiers=6,
                              n_estimators=3, seed=1).fit(split.train)
    park = data.park
    features = predictor.cell_feature_matrix(park, data.recorded_effort[-1])

    game = GreenSecurityGame.from_poacher_model(data.poachers,
                                                period_index=profile.n_periods)
    rng = np.random.default_rng(11)

    rows = []
    for post in park.patrol_posts[:3]:
        planner = PatrolPlanner(park.grid, int(post), horizon=12,
                                n_patrols=2, n_segments=8)
        xs = planner.breakpoints()
        risk, nu = predictor.effort_response(features, xs)
        objective = RobustObjective(xs, risk, nu, beta=0.0)

        baseline = planner.plan(objective, beta=0.0)
        for beta in (0.8, 1.0):
            robust = planner.plan(objective, beta=beta)
            ratio = (
                objective.evaluate_coverage(robust.coverage, beta=beta)
                / max(objective.evaluate_coverage(baseline.coverage, beta=beta),
                      1e-9)
            )
            snares_base = game.simulate_detections(baseline.coverage, rng, 200)
            snares_robust = game.simulate_detections(robust.coverage, rng, 200)
            rows.append([
                int(post),
                beta,
                float(ratio),
                snares_base / 200.0,
                snares_robust / 200.0,
            ])

    print("Robust vs risk-neutral patrol plans (per patrol post):\n")
    print(format_table(
        ["post", "beta", "U_b(C_b)/U_b(C_0)", "snares/period (b=0)",
         "snares/period (robust)"],
        rows,
    ))
    print("\nRatios above 1 show the value of planning with uncertainty;")
    print("the snare columns evaluate both plans against the ground truth.")


if __name__ == "__main__":
    main()
