"""Srepok Wildlife Sanctuary field test (Section VII-B).

Walks through the exact deployment protocol the paper used in Cambodia:
train on dry-season data only (rivers make the wet season impassable),
convolve risk into 3x3 km blocks, discard the historically well-patrolled
half, select five blocks each at high / medium / low risk percentiles, run
two multi-month trials, and evaluate with a chi-squared test.

Run with::

    python examples/field_test_srepok.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PawsPredictor
from repro.data import SWS_DRY, generate_dataset
from repro.fieldtest import chi_squared_test, design_field_test, field_test_table, run_field_trial


def main() -> None:
    profile = SWS_DRY
    print(f"Simulating {profile.name}: {profile.shape[0]}x{profile.shape[1]} cells, "
          f"{profile.years} years of dry-season patrols...")
    data = generate_dataset(profile, seed=0)
    stats = data.dataset.statistics()
    print(f"  dataset: {stats['n_points']} points, "
          f"{stats['percent_positive']:.2f}% positive labels "
          "(extreme imbalance, as in the paper)\n")

    # Train the enhanced iWare-E model with GP weak learners and balanced
    # bagging (the paper's configuration for SWS). With only ~0.5% positive
    # labels some years contain no detected poaching at all, so pick the
    # latest test year where AUC is defined.
    split = None
    for test_year in range(profile.years - 1, 2, -1):
        candidate = data.dataset.split_by_test_year(test_year)
        if 0 < candidate.test.labels.sum() < candidate.test.n_points \
                and candidate.train.labels.sum() > 0:
            split = candidate
            break
    if split is None:
        raise SystemExit("no evaluable test year; try another seed")
    predictor = PawsPredictor(
        model="gpb", iware=True, n_classifiers=6, n_estimators=4,
        balanced=True, seed=1,
    ).fit(split.train)
    print(f"Fitted {predictor.name} (balanced bagging) with test year "
          f"{split.test_year}; held-out AUC = "
          f"{predictor.evaluate_auc(split.test):.3f}\n")

    # Risk predictions at the nominal effort rangers can realistically reach.
    park = data.park
    features = predictor.cell_feature_matrix(park, data.recorded_effort[-1])
    nominal = float(np.median(data.dataset.current_effort))
    risk = predictor.predict_proba(features, effort=nominal)

    rng = np.random.default_rng(7)
    design = design_field_test(
        park.grid,
        risk,
        historical_effort=data.recorded_effort.sum(axis=0),
        blocks_per_group=5,           # five blocks per category, as deployed
        block_radius=1,               # 3x3 km blocks
        rng=rng,
    )
    print("Selected 5 blocks each at high / medium / low predicted risk,")
    print("all within the under-patrolled half of the park.\n")

    trials = {
        "SWS trial 1 (Dec-Jan)": run_field_trial(
            design, data.poachers, rng, n_periods=1,
            start_period=profile.n_periods,
        ),
        "SWS trial 2 (Feb-Mar)": run_field_trial(
            design, data.poachers, rng, n_periods=1,
            start_period=profile.n_periods + 1,
        ),
    }
    print(field_test_table(trials))

    for name, trial in trials.items():
        __, p = chi_squared_test(trial)
        verdict = "significant" if p < 0.05 else "not significant"
        print(f"\n{name}: p = {p:.4f} ({verdict} at 0.05)")
    print("\nIn the paper, rangers found *no* poaching in low-risk areas in")
    print("either SWS trial while removing over 1,000 snares in one month.")


if __name__ == "__main__":
    main()
