"""Online adaptation: should rangers trust the historical model?

The paper's related work (Section II-a) points at the open problem of
balancing "a patrol-planning model trained with historical data against a
model with no prior knowledge". This example runs that loop with EXP3 over
three strategies:

1. the robust MILP plan from the fitted PAWS model,
2. a uniform exploration plan over reachable cells,
3. the rangers' historical-habit allocation.

Each simulated period one strategy is deployed against the ground-truth
Green Security Game; detected snares are the reward. EXP3 converges to
whichever strategy actually finds snares — a sanity check on the value of
the learned model.

Run with::

    python examples/online_adaptation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PawsPredictor
from repro.data import MFNP, generate_dataset
from repro.evaluation import format_table
from repro.planning import GreenSecurityGame, PatrolPlanner, RobustObjective
from repro.planning.online import run_online_deployment


def main() -> None:
    profile = MFNP.scaled(0.6)
    data = generate_dataset(profile, seed=0)
    split = data.dataset.split_by_test_year(profile.years - 1)
    predictor = PawsPredictor(model="gpb", iware=True, n_classifiers=6,
                              n_estimators=3, seed=1).fit(split.train)
    park = data.park
    features = predictor.cell_feature_matrix(park, data.recorded_effort[-1])

    post = int(park.patrol_posts[0])
    planner = PatrolPlanner(park.grid, post, horizon=10, n_patrols=2,
                            n_segments=8)
    xs = planner.breakpoints()
    risk, nu = predictor.effort_response(features, xs)
    objective = RobustObjective(xs, risk, nu, beta=0.8)
    model_plan = planner.plan(objective)

    budget = planner.max_coverage
    reachable = planner.graph.reachable_cells
    uniform = np.zeros(park.n_cells)
    uniform[reachable] = budget / reachable.size
    habit = data.recorded_effort.sum(axis=0).astype(float)
    habit_plan = np.zeros(park.n_cells)
    mask = np.zeros(park.n_cells, dtype=bool)
    mask[reachable] = True
    weights = np.where(mask, habit, 0.0)
    if weights.sum() > 0:
        habit_plan = budget * weights / weights.sum()
    else:
        habit_plan = uniform.copy()

    strategies = [model_plan.coverage, uniform, habit_plan]
    names = ["PAWS robust plan", "uniform exploration", "historical habit"]

    game = GreenSecurityGame.from_poacher_model(
        data.poachers, period_index=profile.n_periods
    )
    print("Expected detections per period under each strategy:")
    for name, coverage in zip(names, strategies):
        print(f"  {name:22s}: {game.defender_utility(coverage):.3f}")

    selector = run_online_deployment(
        strategies, game, n_rounds=200, rng=np.random.default_rng(5)
    )
    pulls = selector.empirical_pulls()
    probs = selector.probabilities()
    print("\nAfter 200 simulated periods of EXP3 adaptation:")
    print(format_table(
        ["strategy", "times deployed", "current probability"],
        [[name, int(p), float(q)] for name, p, q in zip(names, pulls, probs)],
    ))
    print(f"\nMean detections per period achieved: {selector.mean_reward():.3f}")
    best = names[int(np.argmax(pulls))]
    print(f"EXP3 settled on: {best}")


if __name__ == "__main__":
    main()
