"""Simulated field-test deployment.

Rangers are given the block centres (but *not* the risk labels, to avoid
bias) and asked to patrol those regions. We simulate each trial period:
effort is allocated over block cells (with ranger-intuition variation — the
paper observed rangers spending more effort where their experience told them
to), poachers attack per the ground-truth model, and snares are detected
with the effort-dependent probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.poachers import PoacherModel
from repro.exceptions import ConfigurationError
from repro.fieldtest.design import FieldTestDesign, RiskGroup


@dataclass
class GroupOutcome:
    """Table III row: one risk group in one trial.

    Attributes
    ----------
    group:
        Risk group (high/medium/low).
    n_observations:
        Cells in which poaching activity was observed (# Obs).
    n_cells_patrolled:
        Number of 1x1 km cells actually patrolled (# Cells).
    effort_km:
        Total patrol effort expended in the group (Effort).
    """

    group: RiskGroup
    n_observations: int
    n_cells_patrolled: int
    effort_km: float

    @property
    def obs_per_cell(self) -> float:
        """The paper's normalised metric # Obs / # Cells (Fig. 10)."""
        if self.n_cells_patrolled == 0:
            return 0.0
        return self.n_observations / self.n_cells_patrolled


@dataclass
class FieldTrialResult:
    """Outcome of one multi-month field trial."""

    outcomes: dict[RiskGroup, GroupOutcome]
    n_periods: int

    def ordered(self) -> list[GroupOutcome]:
        """Outcomes in High, Medium, Low order (Table III layout)."""
        return [
            self.outcomes[g]
            for g in (RiskGroup.HIGH, RiskGroup.MEDIUM, RiskGroup.LOW)
        ]


def run_field_trial(
    design: FieldTestDesign,
    poachers: PoacherModel,
    rng: np.random.Generator,
    n_periods: int = 2,
    start_period: int = 0,
    mean_cell_effort: float = 2.0,
    patrol_coverage: float = 0.8,
    intuition_bias: float = 0.3,
) -> FieldTrialResult:
    """Deploy patrols into the designed blocks and count detections.

    Parameters
    ----------
    design:
        The selected experiment blocks.
    poachers:
        Ground-truth attack model (the simulator's oracle).
    rng:
        Randomness for effort allocation, attacks, and detection.
    n_periods:
        Trial length in model time periods (the paper's trials spanned 2-3
        months, i.e. about one period).
    start_period:
        First period index (drives seasonality).
    mean_cell_effort:
        Average km of patrol effort per visited cell per period.
    patrol_coverage:
        Probability that a block cell is visited at all in a period
        ("due to limited park ranger resources, not all the selected blocks
        were patrolled").
    intuition_bias:
        How strongly ranger effort tilts toward cells their experience
        (the true attractiveness) flags — the paper observed rangers
        "expended more effort in high-risk areas" without knowing labels.

    Returns
    -------
    FieldTrialResult
        Per-group observation counts, patrolled-cell counts, and effort.
    """
    if n_periods < 1:
        raise ConfigurationError(f"n_periods must be >= 1, got {n_periods}")
    if mean_cell_effort <= 0:
        raise ConfigurationError("mean_cell_effort must be positive")
    if not 0.0 < patrol_coverage <= 1.0:
        raise ConfigurationError("patrol_coverage must be in (0, 1]")

    attractiveness = poachers.attractiveness
    scale = attractiveness.std() + 1e-12
    outcomes: dict[RiskGroup, GroupOutcome] = {}
    for group in RiskGroup:
        cells = design.cells_of(group)
        observed_cells: set[int] = set()
        patrolled_cells: set[int] = set()
        total_effort = 0.0
        for t in range(start_period, start_period + n_periods):
            attack_p = poachers.attack_probability(t)
            attacks = rng.random(cells.size) < attack_p[cells]
            for idx, cell in enumerate(cells):
                if rng.random() > patrol_coverage:
                    continue
                tilt = intuition_bias * attractiveness[cell] / scale
                effort = rng.gamma(2.0, mean_cell_effort / 2.0) * np.exp(tilt)
                patrolled_cells.add(int(cell))
                total_effort += effort
                if attacks[idx]:
                    p_detect = float(
                        poachers.detection_probability(np.array([effort]))[0]
                    )
                    if rng.random() < p_detect:
                        observed_cells.add(int(cell))
        outcomes[group] = GroupOutcome(
            group=group,
            n_observations=len(observed_cells),
            n_cells_patrolled=len(patrolled_cells),
            effort_km=float(total_effort),
        )
    return FieldTrialResult(outcomes=outcomes, n_periods=n_periods)
