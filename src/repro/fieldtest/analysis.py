"""Field-test statistics (Table III / Fig. 10).

"We use a Pearson's chi-squared test to assess independence of the
observations on two variables (# Obs and Risk group)" — significant
p-values mean detected-poaching rates genuinely differ across the model's
risk categories, i.e. the model discriminates.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.exceptions import DataError
from repro.fieldtest.simulate import FieldTrialResult


def chi_squared_test(result: FieldTrialResult) -> tuple[float, float]:
    """Pearson chi-squared independence test of observations vs risk group.

    Builds the 3x2 contingency table (cells with / without observed
    poaching per risk group, among patrolled cells) and returns
    ``(statistic, p_value)``.
    """
    table: list[list[int]] = []
    for outcome in result.ordered():
        with_obs = outcome.n_observations
        without = outcome.n_cells_patrolled - outcome.n_observations
        if without < 0:
            raise DataError(
                f"group {outcome.group.value}: more observations than cells"
            )
        table.append([with_obs, without])
    contingency = np.asarray(table)
    # Drop all-zero columns/rows (e.g. no observations anywhere) to keep the
    # test defined; the caller interprets a degenerate table as p=1.
    if (contingency.sum(axis=0) == 0).any() or (contingency.sum(axis=1) == 0).any():
        return 0.0, 1.0
    statistic, p_value, __, __ = stats.chi2_contingency(contingency)
    return float(statistic), float(p_value)


def field_test_table(results: dict[str, FieldTrialResult]) -> str:
    """Render Table III: one block of rows per named trial."""
    lines = [
        f"{'Risk group':<12} {'# Obs.':>7} {'# Cells':>8} "
        f"{'Effort':>8} {'# Obs. / # Cells':>17}"
    ]
    for trial_name, result in results.items():
        lines.append(f"--- {trial_name} ---")
        for outcome in result.ordered():
            lines.append(
                f"{outcome.group.value.capitalize():<12} "
                f"{outcome.n_observations:>7d} "
                f"{outcome.n_cells_patrolled:>8d} "
                f"{outcome.effort_km:>8.1f} "
                f"{outcome.obs_per_cell:>17.2f}"
            )
        statistic, p_value = chi_squared_test(result)
        lines.append(f"chi2={statistic:.2f}  p={p_value:.4f}")
    return "\n".join(lines)
