"""Field-test block selection (the Section VII-B protocol).

Steps, quoting the paper:

1. "we averaged the risk predictions over the adjacent cells by convolving
   the risk map" to produce blocks;
2. "we then discarded all blocks with historical patrol effort above the
   50th percentile, to ensure we were assessing the ability of our model to
   make predictions in regions with limited data";
3. "we identified high-, medium-, and low-risk areas by considering blocks
   with risk predictions within the 80-100, 40-60, and 0-20 percentile";
4. a fixed number of blocks per category is selected, non-overlapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.geo.convolve import box_filter
from repro.geo.grid import Grid


class RiskGroup(Enum):
    """The three experiment arms of the field tests."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


#: Risk-percentile window per group, per the paper.
GROUP_PERCENTILES: dict[RiskGroup, tuple[float, float]] = {
    RiskGroup.HIGH: (80.0, 100.0),
    RiskGroup.MEDIUM: (40.0, 60.0),
    RiskGroup.LOW: (0.0, 20.0),
}


@dataclass
class FieldTestDesign:
    """Selected experiment blocks for one field test.

    Attributes
    ----------
    blocks:
        Per risk group, a list of blocks; each block is an array of cell
        ids (the 3x3 or 2x2 neighbourhood around a centre cell).
    centers:
        Per risk group, the centre cell ids of the blocks.
    block_radius:
        Neighbourhood radius used (1 => 3x3 blocks).
    """

    blocks: dict[RiskGroup, list[np.ndarray]]
    centers: dict[RiskGroup, list[int]]
    block_radius: int

    def cells_of(self, group: RiskGroup) -> np.ndarray:
        """All cell ids in a group's blocks (unique, sorted)."""
        if not self.blocks[group]:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(self.blocks[group]))

    @property
    def n_blocks(self) -> int:
        return sum(len(b) for b in self.blocks.values())


def design_field_test(
    grid: Grid,
    risk: np.ndarray,
    historical_effort: np.ndarray,
    blocks_per_group: int = 5,
    block_radius: int = 1,
    effort_percentile_cap: float = 50.0,
    rng: np.random.Generator | None = None,
) -> FieldTestDesign:
    """Select high/medium/low-risk experiment blocks.

    Parameters
    ----------
    grid:
        Park lattice.
    risk:
        ``(n_cells,)`` per-cell risk predictions at nominal effort.
    historical_effort:
        ``(n_cells,)`` cumulative past patrol effort (km).
    blocks_per_group:
        Number of blocks per risk category (the paper used 5 in SWS).
    block_radius:
        1 gives 3x3 blocks (SWS); the MFNP test used 2x2 regions, which
        radius 1 approximates on our scaled-down grids.
    effort_percentile_cap:
        Blocks whose historical effort exceeds this percentile are dropped.
    rng:
        Randomness for tie-breaking among eligible centres.

    Returns
    -------
    FieldTestDesign
        Non-overlapping blocks per risk group.
    """
    if blocks_per_group < 1:
        raise ConfigurationError(
            f"blocks_per_group must be >= 1, got {blocks_per_group}"
        )
    if block_radius < 0:
        raise ConfigurationError(f"block_radius must be >= 0, got {block_radius}")
    risk = np.asarray(risk, dtype=float)
    historical_effort = np.asarray(historical_effort, dtype=float)
    if risk.shape != (grid.n_cells,) or historical_effort.shape != (grid.n_cells,):
        raise DataError("risk and effort must be per-cell vectors")
    rng = rng or np.random.default_rng()

    # Step 1: convolve the risk map into block-averaged risk.
    risk_raster = grid.vector_to_raster(risk)
    block_risk = grid.raster_to_vector(box_filter(risk_raster, radius=block_radius))
    effort_raster = grid.vector_to_raster(historical_effort)
    block_effort = grid.raster_to_vector(
        box_filter(effort_raster, radius=block_radius)
    )

    # Step 2: keep only historically under-patrolled blocks.
    cap = np.percentile(block_effort, effort_percentile_cap)
    eligible = block_effort <= cap

    if eligible.sum() < 3 * blocks_per_group:
        raise DataError(
            f"only {int(eligible.sum())} eligible blocks for "
            f"{3 * blocks_per_group} requested"
        )

    # Step 3: risk-percentile windows over the eligible blocks.
    eligible_risk = block_risk[eligible]
    eligible_ids = np.nonzero(eligible)[0]

    blocks: dict[RiskGroup, list[np.ndarray]] = {g: [] for g in RiskGroup}
    centers: dict[RiskGroup, list[int]] = {g: [] for g in RiskGroup}
    taken = np.zeros(grid.n_cells, dtype=bool)

    for group in (RiskGroup.HIGH, RiskGroup.MEDIUM, RiskGroup.LOW):
        lo_pct, hi_pct = GROUP_PERCENTILES[group]
        # On small (scaled-down) parks the strict 20-percentile windows may
        # not admit enough non-overlapping blocks; widen progressively while
        # preserving the window's anchor (high stays top-anchored, low
        # bottom-anchored) before giving up.
        for widen in (0.0, 5.0, 10.0, 15.0, 20.0):
            lo = np.percentile(eligible_risk, max(0.0, lo_pct - widen))
            hi = np.percentile(eligible_risk, min(100.0, hi_pct + widen))
            window = eligible_ids[(block_risk[eligible_ids] >= lo)
                                  & (block_risk[eligible_ids] <= hi)]
            # Order by closeness to the window's anchor so widened windows
            # still prefer the most-extreme blocks, then shuffle ties.
            window = rng.permutation(window)
            for center in window:
                if len(centers[group]) >= blocks_per_group:
                    break
                cells = _block_cells(grid, int(center), block_radius)
                if taken[cells].any():
                    continue  # overlap with an already-selected block
                taken[cells] = True
                blocks[group].append(cells)
                centers[group].append(int(center))
            if len(centers[group]) >= blocks_per_group:
                break
        if len(centers[group]) < blocks_per_group:
            raise DataError(
                f"could not place {blocks_per_group} non-overlapping blocks "
                f"for group {group.value}"
            )
    return FieldTestDesign(blocks=blocks, centers=centers, block_radius=block_radius)


def _block_cells(grid: Grid, center: int, radius: int) -> np.ndarray:
    """In-park cell ids of the (2r+1)^2 neighbourhood around a centre."""
    row, col = grid.cell_rc(center)
    cells: list[int] = []
    for dr in range(-radius, radius + 1):
        for dc in range(-radius, radius + 1):
            r, c = row + dr, col + dc
            if grid.contains_rc(r, c):
                cells.append(grid.cell_id(r, c))
    return np.asarray(sorted(cells), dtype=np.int64)
