"""Field-test design, simulation, and analysis (Section VII).

The paper validated PAWS with real deployments in MFNP and SWS: regions at
high / medium / low predicted risk were selected (without telling rangers
the labels), patrolled for months, and the detected-poaching rates per risk
group were compared with a chi-squared test. This package reproduces the
protocol against the simulator's ground truth:

* :mod:`repro.fieldtest.design` — block selection exactly as Section VII-B
  describes (convolve the risk map into blocks, discard the historically
  well-patrolled half, pick the 80-100 / 40-60 / 0-20 risk percentiles);
* :mod:`repro.fieldtest.simulate` — deploys patrols into the chosen blocks
  against the ground-truth poacher model;
* :mod:`repro.fieldtest.analysis` — Table III statistics and the Pearson
  chi-squared independence test.
"""

from repro.fieldtest.design import FieldTestDesign, RiskGroup, design_field_test
from repro.fieldtest.simulate import FieldTrialResult, GroupOutcome, run_field_trial
from repro.fieldtest.analysis import chi_squared_test, field_test_table

__all__ = [
    "RiskGroup",
    "FieldTestDesign",
    "design_field_test",
    "FieldTrialResult",
    "GroupOutcome",
    "run_field_trial",
    "chi_squared_test",
    "field_test_table",
]
