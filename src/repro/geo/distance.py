"""Distance transforms used to turn vector layers into per-cell features.

The paper encodes landscape features "either as direct values (such as slope
or animal density) or as distance values (such as distance to nearest
river)". :func:`chamfer_distance` provides the raster distance-to-nearest
transform; :func:`geodesic_distance` provides in-park travel distances on the
4-connected cell graph, used by the patrol simulator.

Both transforms are O(n) row-sweep/frontier algorithms. They started life as
per-cell Python loops (kept in :func:`chamfer_distance_reference` and
:func:`geodesic_distance_reference` as the executable specification); the
production versions below are exact-equivalent rewrites — bit-identical
output, regression-tested in ``tests/test_geo_distance.py`` — that vectorise
everything except the inherently sequential in-row chamfer propagation:

* **chamfer** — the vertical/diagonal relaxations against the previous row
  are elementwise and run as whole-row numpy operations; the left-to-right
  (and right-to-left) in-row scans keep the reference's exact recurrence
  ``d[c] = min(cand[c], d[c-1] + ortho)`` on Python floats. The float
  accumulation is deliberately identical: chamfer values are rounded sums of
  step costs, and any reassociation (e.g. the ``min(cand[j] + (c-j))``
  prefix-scan trick) drifts by ~1 ulp.
* **geodesic** — edge weights are uniform (``cell_km``), so Dijkstra
  collapses to multi-source breadth-first search. Each BFS level dilates the
  frontier with four shifted boolean masks; the level distance accumulates by
  repeated addition (``d += step``), which is exactly the sum Dijkstra
  computes along any shortest path.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geo.grid import ROOK_OFFSETS, Grid

#: Chamfer weights approximating Euclidean distance on a lattice (3-4 mask
#: normalised so that a rook step costs 1 cell).
_ORTHO_COST = 1.0
_DIAG_COST = 1.35


def chamfer_distance(mask: np.ndarray, cell_km: float = 1.0) -> np.ndarray:
    """Approximate Euclidean distance (km) from every cell to a feature mask.

    Two-pass chamfer transform with the 3-4 mask, accurate to a few percent,
    which is ample for synthetic features on a 1 km grid. Bit-identical to
    :func:`chamfer_distance_reference`, roughly an order of magnitude faster
    on benchmark-sized grids.

    Parameters
    ----------
    mask:
        Boolean raster; ``True`` marks feature cells (distance 0).
    cell_km:
        Physical size of one cell, multiplies the result.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ConfigurationError(f"mask must be 2-D, got shape {mask.shape}")
    height, width = mask.shape
    inf = float(height + width) * 2.0 * _DIAG_COST
    dist = np.where(mask, 0.0, inf)
    ortho, diag = _ORTHO_COST, _DIAG_COST

    # Forward pass: each row takes its vertical/diagonal candidates from the
    # (already final) row above in three whole-row operations, then the
    # horizontal scan propagates left-to-right.
    for r in range(height):
        row = dist[r]
        if r > 0:
            prev = dist[r - 1]
            np.minimum(row, prev + ortho, out=row)
            np.minimum(row[1:], prev[:-1] + diag, out=row[1:])
            np.minimum(row[:-1], prev[1:] + diag, out=row[:-1])
        vals = row.tolist()
        d = vals[0]
        for c in range(1, width):
            d += ortho
            if d < vals[c]:
                vals[c] = d
            else:
                d = vals[c]
        dist[r] = vals
    # Backward pass: bottom-up, scanning right-to-left.
    for r in range(height - 1, -1, -1):
        row = dist[r]
        if r < height - 1:
            nxt = dist[r + 1]
            np.minimum(row, nxt + ortho, out=row)
            np.minimum(row[1:], nxt[:-1] + diag, out=row[1:])
            np.minimum(row[:-1], nxt[1:] + diag, out=row[:-1])
        vals = row.tolist()
        d = vals[width - 1]
        for c in range(width - 2, -1, -1):
            d += ortho
            if d < vals[c]:
                vals[c] = d
            else:
                d = vals[c]
        dist[r] = vals
    return dist * cell_km


def chamfer_distance_reference(mask: np.ndarray, cell_km: float = 1.0) -> np.ndarray:
    """Per-cell double-loop chamfer transform (the executable specification).

    Kept verbatim from the original implementation so equivalence tests and
    benchmarks can compare :func:`chamfer_distance` against it.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ConfigurationError(f"mask must be 2-D, got shape {mask.shape}")
    height, width = mask.shape
    inf = float(height + width) * 2.0 * _DIAG_COST
    dist = np.where(mask, 0.0, inf)

    # Forward pass: scan top-left to bottom-right.
    for r in range(height):
        for c in range(width):
            d = dist[r, c]
            if r > 0:
                d = min(d, dist[r - 1, c] + _ORTHO_COST)
                if c > 0:
                    d = min(d, dist[r - 1, c - 1] + _DIAG_COST)
                if c < width - 1:
                    d = min(d, dist[r - 1, c + 1] + _DIAG_COST)
            if c > 0:
                d = min(d, dist[r, c - 1] + _ORTHO_COST)
            dist[r, c] = d
    # Backward pass: scan bottom-right to top-left.
    for r in range(height - 1, -1, -1):
        for c in range(width - 1, -1, -1):
            d = dist[r, c]
            if r < height - 1:
                d = min(d, dist[r + 1, c] + _ORTHO_COST)
                if c > 0:
                    d = min(d, dist[r + 1, c - 1] + _DIAG_COST)
                if c < width - 1:
                    d = min(d, dist[r + 1, c + 1] + _DIAG_COST)
            if c < width - 1:
                d = min(d, dist[r, c + 1] + _ORTHO_COST)
            dist[r, c] = d
    return dist * cell_km


def _check_sources(grid: Grid, sources: np.ndarray | list[int]) -> np.ndarray:
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if sources.size == 0:
        raise ConfigurationError("geodesic_distance needs at least one source cell")
    for s in sources:
        if not (0 <= s < grid.n_cells):
            raise ConfigurationError(f"source cell id {s} out of range")
    return sources


def geodesic_distance(grid: Grid, sources: np.ndarray | list[int]) -> np.ndarray:
    """Shortest in-park travel distance (km) from a set of source cells.

    Distances are computed on the rook-adjacency cell graph restricted to the
    park mask, so they route *around* off-park holes — matching how rangers
    actually travel. Cells unreachable from every source get ``inf``.

    Every edge costs ``grid.cell_km``, so Dijkstra degenerates to multi-source
    breadth-first search: each level is one boolean frontier dilation over the
    full lattice (four shifted masks), and the level distance accumulates by
    repeated addition exactly as the heap-based reference accumulates it along
    a shortest path. Bit-identical to :func:`geodesic_distance_reference`.

    Parameters
    ----------
    grid:
        The park grid.
    sources:
        Cell ids acting as distance-zero sources (e.g. patrol posts).

    Returns
    -------
    numpy.ndarray
        ``(n_cells,)`` distances in kilometres.
    """
    sources = _check_sources(grid, sources)
    height, width = grid.shape
    cells = grid.all_cell_rc()
    dist_raster = np.full((height, width), np.inf)
    frontier = np.zeros((height, width), dtype=bool)
    src_rc = cells[sources]
    frontier[src_rc[:, 0], src_rc[:, 1]] = True
    unvisited = grid.mask.copy()
    grow = np.zeros((height, width), dtype=bool)
    d = 0.0
    step = grid.cell_km
    while frontier.any():
        dist_raster[frontier] = d
        unvisited &= ~frontier
        grow[:] = False
        grow[1:, :] |= frontier[:-1, :]
        grow[:-1, :] |= frontier[1:, :]
        grow[:, 1:] |= frontier[:, :-1]
        grow[:, :-1] |= frontier[:, 1:]
        grow &= unvisited
        frontier, grow = grow, frontier
        d = d + step
    return dist_raster[cells[:, 0], cells[:, 1]]


def geodesic_distance_reference(
    grid: Grid, sources: np.ndarray | list[int]
) -> np.ndarray:
    """Heap-based Dijkstra geodesic distance (the executable specification).

    Kept verbatim from the original implementation so equivalence tests and
    benchmarks can compare :func:`geodesic_distance` against it.
    """
    sources = _check_sources(grid, sources)
    dist = np.full(grid.n_cells, np.inf)
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heapq.heappush(heap, (0.0, int(s)))
    step = grid.cell_km
    while heap:
        d, cid = heapq.heappop(heap)
        if d > dist[cid]:
            continue
        row, col = grid.cell_rc(cid)
        for dr, dc in ROOK_OFFSETS:
            r, c = row + dr, col + dc
            if not grid.contains_rc(r, c):
                continue
            nid = grid.cell_id(r, c)
            nd = d + step
            if nd < dist[nid]:
                dist[nid] = nd
                heapq.heappush(heap, (nd, nid))
    return dist
