"""Distance transforms used to turn vector layers into per-cell features.

The paper encodes landscape features "either as direct values (such as slope
or animal density) or as distance values (such as distance to nearest
river)". :func:`chamfer_distance` provides the raster distance-to-nearest
transform; :func:`geodesic_distance` provides in-park travel distances on the
4-connected cell graph, used by the patrol simulator.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geo.grid import ROOK_OFFSETS, Grid

#: Chamfer weights approximating Euclidean distance on a lattice (3-4 mask
#: normalised so that a rook step costs 1 cell).
_ORTHO_COST = 1.0
_DIAG_COST = 1.35


def chamfer_distance(mask: np.ndarray, cell_km: float = 1.0) -> np.ndarray:
    """Approximate Euclidean distance (km) from every cell to a feature mask.

    Two-pass chamfer transform with the 3-4 mask, accurate to a few percent,
    which is ample for synthetic features on a 1 km grid.

    Parameters
    ----------
    mask:
        Boolean raster; ``True`` marks feature cells (distance 0).
    cell_km:
        Physical size of one cell, multiplies the result.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ConfigurationError(f"mask must be 2-D, got shape {mask.shape}")
    height, width = mask.shape
    inf = float(height + width) * 2.0 * _DIAG_COST
    dist = np.where(mask, 0.0, inf)

    # Forward pass: scan top-left to bottom-right.
    for r in range(height):
        for c in range(width):
            d = dist[r, c]
            if r > 0:
                d = min(d, dist[r - 1, c] + _ORTHO_COST)
                if c > 0:
                    d = min(d, dist[r - 1, c - 1] + _DIAG_COST)
                if c < width - 1:
                    d = min(d, dist[r - 1, c + 1] + _DIAG_COST)
            if c > 0:
                d = min(d, dist[r, c - 1] + _ORTHO_COST)
            dist[r, c] = d
    # Backward pass: scan bottom-right to top-left.
    for r in range(height - 1, -1, -1):
        for c in range(width - 1, -1, -1):
            d = dist[r, c]
            if r < height - 1:
                d = min(d, dist[r + 1, c] + _ORTHO_COST)
                if c > 0:
                    d = min(d, dist[r + 1, c - 1] + _DIAG_COST)
                if c < width - 1:
                    d = min(d, dist[r + 1, c + 1] + _DIAG_COST)
            if c < width - 1:
                d = min(d, dist[r, c + 1] + _ORTHO_COST)
            dist[r, c] = d
    return dist * cell_km


def geodesic_distance(grid: Grid, sources: np.ndarray | list[int]) -> np.ndarray:
    """Shortest in-park travel distance (km) from a set of source cells.

    Runs Dijkstra on the rook-adjacency cell graph restricted to the park
    mask, so distances route *around* off-park holes — matching how rangers
    actually travel. Cells unreachable from every source get ``inf``.

    Parameters
    ----------
    grid:
        The park grid.
    sources:
        Cell ids acting as distance-zero sources (e.g. patrol posts).

    Returns
    -------
    numpy.ndarray
        ``(n_cells,)`` distances in kilometres.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if sources.size == 0:
        raise ConfigurationError("geodesic_distance needs at least one source cell")
    for s in sources:
        if not (0 <= s < grid.n_cells):
            raise ConfigurationError(f"source cell id {s} out of range")

    dist = np.full(grid.n_cells, np.inf)
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heapq.heappush(heap, (0.0, int(s)))
    step = grid.cell_km
    while heap:
        d, cid = heapq.heappop(heap)
        if d > dist[cid]:
            continue
        row, col = grid.cell_rc(cid)
        for dr, dc in ROOK_OFFSETS:
            r, c = row + dr, col + dc
            if not grid.contains_rc(r, c):
                continue
            nid = grid.cell_id(r, c)
            nd = d + step
            if nd < dist[nid]:
                dist[nid] = nd
                heapq.heappush(heap, (nd, nid))
    return dist
