"""Spatial smoothing helpers.

Section VII-B of the paper averages 1x1 km risk predictions over adjacent
cells "by convolving the risk map to produce 3x3 km blocks" when designing
field tests. :func:`box_filter` implements exactly that NaN-aware moving
average; :func:`block_mean` aggregates a raster into non-overlapping blocks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def box_filter(raster: np.ndarray, radius: int = 1) -> np.ndarray:
    """NaN-aware moving average over a ``(2*radius+1)`` square window.

    Off-park cells marked with NaN neither contribute to nor receive values;
    a cell's output is the mean of the finite values in its window.
    """
    raster = np.asarray(raster, dtype=float)
    if raster.ndim != 2:
        raise ConfigurationError(f"raster must be 2-D, got shape {raster.shape}")
    if radius < 0:
        raise ConfigurationError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return raster.copy()
    finite = np.isfinite(raster)
    filled = np.where(finite, raster, 0.0)
    k = 2 * radius + 1
    summed = _box_sum(filled, k)
    counts = _box_sum(finite.astype(float), k)
    out = np.full_like(raster, np.nan)
    has_data = counts > 0
    out[has_data] = summed[has_data] / counts[has_data]
    out[~finite] = np.nan
    return out


def _box_sum(raster: np.ndarray, k: int) -> np.ndarray:
    """Sum over a k x k window via a 2-D summed-area table (zero padding)."""
    height, width = raster.shape
    pad = k // 2
    padded = np.zeros((height + 2 * pad, width + 2 * pad))
    padded[pad : pad + height, pad : pad + width] = raster
    # Integral image with a leading row/col of zeros for clean differencing.
    integral = np.zeros((padded.shape[0] + 1, padded.shape[1] + 1))
    integral[1:, 1:] = padded.cumsum(axis=0).cumsum(axis=1)
    out = np.empty((height, width))
    for r in range(height):
        for c in range(width):
            r0, c0 = r, c
            r1, c1 = r + k, c + k
            out[r, c] = (
                integral[r1, c1]
                - integral[r0, c1]
                - integral[r1, c0]
                + integral[r0, c0]
            )
    return out


def block_mean(raster: np.ndarray, block: int) -> np.ndarray:
    """NaN-aware mean over non-overlapping ``block x block`` tiles.

    Ragged edges (when the raster size is not a multiple of ``block``) are
    averaged over the partial tile. A tile with no finite cells yields NaN.
    """
    raster = np.asarray(raster, dtype=float)
    if raster.ndim != 2:
        raise ConfigurationError(f"raster must be 2-D, got shape {raster.shape}")
    if block < 1:
        raise ConfigurationError(f"block must be >= 1, got {block}")
    height, width = raster.shape
    out_h = (height + block - 1) // block
    out_w = (width + block - 1) // block
    out = np.full((out_h, out_w), np.nan)
    for br in range(out_h):
        for bc in range(out_w):
            tile = raster[br * block : (br + 1) * block, bc * block : (bc + 1) * block]
            finite = np.isfinite(tile)
            if finite.any():
                out[br, bc] = tile[finite].mean()
    return out
