"""Spatial smoothing helpers.

Section VII-B of the paper averages 1x1 km risk predictions over adjacent
cells "by convolving the risk map to produce 3x3 km blocks" when designing
field tests. :func:`box_filter` implements exactly that NaN-aware moving
average; :func:`block_mean` aggregates a raster into non-overlapping blocks.

Both hot loops are pure numpy: the k x k window sum is four shifted slices
of one summed-area table, and the block aggregation is a pad-to-multiple +
reshape reduction. The original per-cell double loops are retained as
``*_reference`` implementations and equivalence-tested against the
vectorized paths on ragged, hole-punched rasters.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def box_filter(raster: np.ndarray, radius: int = 1) -> np.ndarray:
    """NaN-aware moving average over a ``(2*radius+1)`` square window.

    Off-park cells marked with NaN neither contribute to nor receive values;
    a cell's output is the mean of the finite values in its window.
    """
    raster = np.asarray(raster, dtype=float)
    if raster.ndim != 2:
        raise ConfigurationError(f"raster must be 2-D, got shape {raster.shape}")
    if radius < 0:
        raise ConfigurationError(f"radius must be >= 0, got {radius}")
    if radius == 0:
        return raster.copy()
    finite = np.isfinite(raster)
    filled = np.where(finite, raster, 0.0)
    k = 2 * radius + 1
    summed = _box_sum(filled, k)
    counts = _box_sum(finite.astype(float), k)
    out = np.full_like(raster, np.nan)
    has_data = counts > 0
    out[has_data] = summed[has_data] / counts[has_data]
    out[~finite] = np.nan
    return out


def _integral_image(raster: np.ndarray, k: int) -> np.ndarray:
    """Zero-padded summed-area table with a leading zero row/column."""
    height, width = raster.shape
    pad = k // 2
    padded = np.zeros((height + 2 * pad, width + 2 * pad))
    padded[pad : pad + height, pad : pad + width] = raster
    integral = np.zeros((padded.shape[0] + 1, padded.shape[1] + 1))
    integral[1:, 1:] = padded.cumsum(axis=0).cumsum(axis=1)
    return integral


def _box_sum(raster: np.ndarray, k: int) -> np.ndarray:
    """Sum over a k x k window via a 2-D summed-area table (zero padding).

    The window sum at ``(r, c)`` is the four-corner difference of the
    integral image; evaluated for all cells at once as four shifted array
    slices, in the same ``a - b - c + d`` order as the per-cell reference —
    so the result is bit-identical to :func:`_box_sum_reference`.
    """
    height, width = raster.shape
    integral = _integral_image(raster, k)
    return (
        integral[k : k + height, k : k + width]
        - integral[:height, k : k + width]
        - integral[k : k + height, :width]
        + integral[:height, :width]
    )


def _box_sum_reference(raster: np.ndarray, k: int) -> np.ndarray:
    """Per-cell reference for :func:`_box_sum` (the original double loop)."""
    height, width = raster.shape
    integral = _integral_image(raster, k)
    out = np.empty((height, width))
    for r in range(height):
        for c in range(width):
            r0, c0 = r, c
            r1, c1 = r + k, c + k
            out[r, c] = (
                integral[r1, c1]
                - integral[r0, c1]
                - integral[r1, c0]
                + integral[r0, c0]
            )
    return out


def block_mean(raster: np.ndarray, block: int) -> np.ndarray:
    """NaN-aware mean over non-overlapping ``block x block`` tiles.

    Ragged edges (when the raster size is not a multiple of ``block``) are
    averaged over the partial tile. A tile with no finite cells yields NaN.

    Implemented by NaN-padding the raster up to a multiple of ``block`` and
    reducing a ``(out_h, block, out_w, block)`` reshape: the pad cells are
    non-finite, so they drop out of both the sums and the counts exactly
    like the holes do — NaN semantics identical to
    :func:`block_mean_reference`, values equal up to summation order.
    """
    raster = np.asarray(raster, dtype=float)
    if raster.ndim != 2:
        raise ConfigurationError(f"raster must be 2-D, got shape {raster.shape}")
    if block < 1:
        raise ConfigurationError(f"block must be >= 1, got {block}")
    height, width = raster.shape
    out_h = (height + block - 1) // block
    out_w = (width + block - 1) // block
    padded = np.full((out_h * block, out_w * block), np.nan)
    padded[:height, :width] = raster
    tiles = padded.reshape(out_h, block, out_w, block)
    finite = np.isfinite(tiles)
    sums = np.where(finite, tiles, 0.0).sum(axis=(1, 3))
    counts = finite.sum(axis=(1, 3))
    out = np.full((out_h, out_w), np.nan)
    has_data = counts > 0
    out[has_data] = sums[has_data] / counts[has_data]
    return out


def block_mean_reference(raster: np.ndarray, block: int) -> np.ndarray:
    """Per-tile reference for :func:`block_mean` (the original double loop)."""
    raster = np.asarray(raster, dtype=float)
    if raster.ndim != 2:
        raise ConfigurationError(f"raster must be 2-D, got shape {raster.shape}")
    if block < 1:
        raise ConfigurationError(f"block must be >= 1, got {block}")
    height, width = raster.shape
    out_h = (height + block - 1) // block
    out_w = (width + block - 1) // block
    out = np.full((out_h, out_w), np.nan)
    for br in range(out_h):
        for bc in range(out_w):
            tile = raster[br * block : (br + 1) * block, bc * block : (bc + 1) * block]
            finite = np.isfinite(tile)
            if finite.any():
                out[br, bc] = tile[finite].mean()
    return out
