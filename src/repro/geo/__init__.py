"""Geospatial substrate: grids, rasters, distances, and feature stacks.

The paper discretises each protected area into 1x1 km grid cells and attaches
static geospatial features (terrain, landscape, ecology) to every cell. This
subpackage provides the synthetic equivalent of the GIS pipeline: a park
:class:`~repro.geo.grid.Grid`, procedural :class:`~repro.geo.raster.Raster`
layers, distance transforms, and the :class:`~repro.geo.features.FeatureStack`
used to build predictive-model inputs.
"""

from repro.geo.grid import Grid
from repro.geo.raster import (
    Raster,
    fractal_noise,
    linear_feature_mask,
    smooth_field,
)
from repro.geo.distance import chamfer_distance, geodesic_distance
from repro.geo.features import FeatureSpec, FeatureStack
from repro.geo.convolve import block_mean, box_filter

__all__ = [
    "Grid",
    "Raster",
    "fractal_noise",
    "smooth_field",
    "linear_feature_mask",
    "chamfer_distance",
    "geodesic_distance",
    "FeatureSpec",
    "FeatureStack",
    "block_mean",
    "box_filter",
]
