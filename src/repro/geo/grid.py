"""Discretisation of a protected area into a grid of 1x1 km cells.

The paper (Section III-B) discretises each park into 1x1 km cells; every
downstream component (features, labels, patrol effort, planning graph)
addresses cells through the :class:`Grid`.

A grid is a ``height x width`` lattice with an optional boolean *park mask*
selecting the cells that lie inside the protected-area boundary. Cells inside
the mask get contiguous integer ids ``0..n_cells-1`` in row-major order, which
is the index space used by datasets and planners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError

#: Offsets of the 4-connected (rook) neighbourhood.
ROOK_OFFSETS = ((-1, 0), (1, 0), (0, -1), (0, 1))

#: Offsets of the 8-connected (queen) neighbourhood.
QUEEN_OFFSETS = ROOK_OFFSETS + ((-1, -1), (-1, 1), (1, -1), (1, 1))


@dataclass
class Grid:
    """A rectangular lattice of square cells with an optional park mask.

    Parameters
    ----------
    height, width:
        Lattice dimensions in cells.
    cell_km:
        Side length of one cell in kilometres (the paper uses 1.0).
    mask:
        Boolean ``(height, width)`` array; ``True`` marks cells inside the
        park boundary. ``None`` means the whole rectangle is in the park.
    """

    height: int
    width: int
    cell_km: float = 1.0
    mask: np.ndarray | None = None

    _ids: np.ndarray = field(init=False, repr=False)
    _cells: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise ConfigurationError(
                f"grid dimensions must be positive, got {self.height}x{self.width}"
            )
        if self.cell_km <= 0:
            raise ConfigurationError(f"cell_km must be positive, got {self.cell_km}")
        if self.mask is None:
            self.mask = np.ones((self.height, self.width), dtype=bool)
        else:
            self.mask = np.asarray(self.mask, dtype=bool)
            if self.mask.shape != (self.height, self.width):
                raise ConfigurationError(
                    f"mask shape {self.mask.shape} does not match grid "
                    f"{self.height}x{self.width}"
                )
            if not self.mask.any():
                raise ConfigurationError("park mask selects no cells")
        # Row-major contiguous ids for in-park cells; -1 elsewhere.
        self._ids = np.full((self.height, self.width), -1, dtype=np.int64)
        rows, cols = np.nonzero(self.mask)
        self._ids[rows, cols] = np.arange(rows.size)
        self._cells = np.stack([rows, cols], axis=1)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Number of cells inside the park boundary."""
        return self._cells.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """Lattice shape ``(height, width)``."""
        return (self.height, self.width)

    @property
    def area_sq_km(self) -> float:
        """Total in-park area in square kilometres."""
        return self.n_cells * self.cell_km**2

    # ------------------------------------------------------------------
    # Index conversion
    # ------------------------------------------------------------------
    def cell_id(self, row: int, col: int) -> int:
        """Return the contiguous id of cell ``(row, col)``.

        Raises
        ------
        ConfigurationError
            If the cell is outside the lattice or outside the park mask.
        """
        if not (0 <= row < self.height and 0 <= col < self.width):
            raise ConfigurationError(f"cell ({row}, {col}) outside {self.shape} lattice")
        cid = int(self._ids[row, col])
        if cid < 0:
            raise ConfigurationError(f"cell ({row}, {col}) is outside the park mask")
        return cid

    def cell_rc(self, cell_id: int) -> tuple[int, int]:
        """Return the ``(row, col)`` of an in-park cell id."""
        if not (0 <= cell_id < self.n_cells):
            raise ConfigurationError(
                f"cell id {cell_id} out of range [0, {self.n_cells})"
            )
        row, col = self._cells[cell_id]
        return int(row), int(col)

    def contains_rc(self, row: int, col: int) -> bool:
        """Whether ``(row, col)`` lies inside the lattice and the park mask."""
        inside = 0 <= row < self.height and 0 <= col < self.width
        return bool(inside and self.mask[row, col])

    def all_cell_rc(self) -> np.ndarray:
        """``(n_cells, 2)`` array of the row/col of every in-park cell."""
        return self._cells.copy()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def cell_center_km(self, cell_id: int) -> tuple[float, float]:
        """Centre of a cell in kilometres from the lattice origin ``(y, x)``."""
        row, col = self.cell_rc(cell_id)
        half = self.cell_km / 2.0
        return (row * self.cell_km + half, col * self.cell_km + half)

    def neighbors(self, cell_id: int, connectivity: int = 4) -> list[int]:
        """In-park neighbours of a cell.

        Parameters
        ----------
        connectivity:
            4 for rook adjacency (used by the planning graph, where one time
            step crosses one cell edge) or 8 for queen adjacency.
        """
        if connectivity == 4:
            offsets = ROOK_OFFSETS
        elif connectivity == 8:
            offsets = QUEEN_OFFSETS
        else:
            raise ConfigurationError(f"connectivity must be 4 or 8, got {connectivity}")
        row, col = self.cell_rc(cell_id)
        out: list[int] = []
        for dr, dc in offsets:
            r, c = row + dr, col + dc
            if self.contains_rc(r, c):
                out.append(int(self._ids[r, c]))
        return out

    def boundary_cells(self) -> np.ndarray:
        """Ids of in-park cells adjacent (rook) to outside-the-park area."""
        out: list[int] = []
        for cid in range(self.n_cells):
            row, col = self.cell_rc(cid)
            on_edge = False
            for dr, dc in ROOK_OFFSETS:
                r, c = row + dr, col + dc
                inside_lattice = 0 <= r < self.height and 0 <= c < self.width
                if not inside_lattice or not self.mask[r, c]:
                    on_edge = True
                    break
            if on_edge:
                out.append(cid)
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------
    # Vector <-> raster plumbing
    # ------------------------------------------------------------------
    def vector_to_raster(self, values: np.ndarray, fill: float = np.nan) -> np.ndarray:
        """Scatter per-cell values onto the full lattice (off-park = ``fill``)."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n_cells,):
            raise ConfigurationError(
                f"expected {self.n_cells} values, got shape {values.shape}"
            )
        out = np.full(self.shape, fill, dtype=float)
        out[self._cells[:, 0], self._cells[:, 1]] = values
        return out

    def raster_to_vector(self, raster: np.ndarray) -> np.ndarray:
        """Gather lattice values at every in-park cell, in cell-id order."""
        raster = np.asarray(raster)
        if raster.shape != self.shape:
            raise ConfigurationError(
                f"raster shape {raster.shape} does not match grid {self.shape}"
            )
        return raster[self._cells[:, 0], self._cells[:, 1]].astype(float)

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def elliptical(
        cls, height: int, width: int, cell_km: float = 1.0, fullness: float = 1.0
    ) -> "Grid":
        """A grid whose park mask is an ellipse inscribed in the lattice.

        ``fullness`` in (0, 1] scales the ellipse axes; 1.0 touches the
        lattice edges. Used to model round parks such as MFNP ("circular with
        a more protected core").
        """
        if not 0 < fullness <= 1.0:
            raise ConfigurationError(f"fullness must be in (0, 1], got {fullness}")
        rows = np.arange(height)[:, None]
        cols = np.arange(width)[None, :]
        cy, cx = (height - 1) / 2.0, (width - 1) / 2.0
        ry, rx = fullness * height / 2.0, fullness * width / 2.0
        mask = ((rows - cy) / ry) ** 2 + ((cols - cx) / rx) ** 2 <= 1.0
        return cls(height=height, width=width, cell_km=cell_km, mask=mask)

    @classmethod
    def rectangular(cls, height: int, width: int, cell_km: float = 1.0) -> "Grid":
        """A grid whose park covers the full lattice (long parks like QENP)."""
        return cls(height=height, width=width, cell_km=cell_km)
