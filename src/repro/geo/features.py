"""Static geospatial feature stacks.

Mirrors the paper's Section III-B: each 1x1 km cell carries a vector of
time-invariant geospatial features, encoded either as direct raster values
(slope, animal density, net primary productivity) or as distances to the
nearest instance of a vector layer (river, road, village, patrol post, park
boundary). Longitude/latitude are deliberately *not* encoded, matching the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.geo.distance import chamfer_distance, geodesic_distance
from repro.geo.grid import Grid


@dataclass(frozen=True)
class FeatureSpec:
    """Descriptor of one feature column.

    Attributes
    ----------
    name:
        Column name, e.g. ``"dist_river"`` or ``"elevation"``.
    kind:
        ``"direct"`` (raster value at the cell), ``"distance"`` (chamfer
        distance to a mask) or ``"geodesic"`` (in-park travel distance to
        source cells).
    """

    name: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("direct", "distance", "geodesic"):
            raise ConfigurationError(f"unknown feature kind '{self.kind}'")


class FeatureStack:
    """An ordered collection of per-cell feature columns for one park.

    Columns are appended through the ``add_*`` methods and then exported as a
    dense ``(n_cells, k)`` matrix via :attr:`matrix`. The stack remembers the
    spec of each column so datasets can report feature provenance.
    """

    def __init__(self, grid: Grid):
        self.grid = grid
        self._specs: list[FeatureSpec] = []
        self._columns: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def add_direct(self, name: str, raster: np.ndarray) -> "FeatureStack":
        """Append a feature that reads the raster value at each cell."""
        column = self.grid.raster_to_vector(np.asarray(raster, dtype=float))
        self._append(FeatureSpec(name, "direct"), column)
        return self

    def add_distance(self, name: str, mask: np.ndarray) -> "FeatureStack":
        """Append distance-to-nearest-``mask``-cell (chamfer, km)."""
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            raise DataError(f"feature '{name}': mask has no feature cells")
        dist = chamfer_distance(mask, cell_km=self.grid.cell_km)
        self._append(FeatureSpec(name, "distance"), self.grid.raster_to_vector(dist))
        return self

    def add_geodesic(self, name: str, source_cells: np.ndarray) -> "FeatureStack":
        """Append in-park travel distance to the nearest source cell (km)."""
        dist = geodesic_distance(self.grid, source_cells)
        # Unreachable pockets get the park diameter as a finite sentinel so
        # downstream models never see inf.
        finite = np.isfinite(dist)
        if not finite.all():
            dist = dist.copy()
            dist[~finite] = (self.grid.height + self.grid.width) * self.grid.cell_km
        self._append(FeatureSpec(name, "geodesic"), dist)
        return self

    def add_boundary_distance(self, name: str = "dist_boundary") -> "FeatureStack":
        """Append distance to the park boundary, a key MFNP/QENP covariate."""
        boundary = np.zeros(self.grid.shape, dtype=bool)
        for cid in self.grid.boundary_cells():
            row, col = self.grid.cell_rc(int(cid))
            boundary[row, col] = True
        return self.add_distance(name, boundary)

    def _append(self, spec: FeatureSpec, column: np.ndarray) -> None:
        if any(existing.name == spec.name for existing in self._specs):
            raise ConfigurationError(f"duplicate feature name '{spec.name}'")
        if not np.isfinite(column).all():
            raise DataError(f"feature '{spec.name}' contains non-finite values")
        self._specs.append(spec)
        self._columns.append(column.astype(float))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def n_features(self) -> int:
        return len(self._specs)

    @property
    def names(self) -> list[str]:
        return [spec.name for spec in self._specs]

    @property
    def specs(self) -> list[FeatureSpec]:
        return list(self._specs)

    @property
    def matrix(self) -> np.ndarray:
        """Dense ``(n_cells, k)`` feature matrix in insertion order."""
        if not self._columns:
            raise DataError("feature stack is empty")
        return np.stack(self._columns, axis=1)

    def column(self, name: str) -> np.ndarray:
        """Return one feature column by name."""
        for spec, col in zip(self._specs, self._columns):
            if spec.name == name:
                return col.copy()
        raise ConfigurationError(f"no feature named '{name}'")

    def standardized_matrix(self) -> np.ndarray:
        """Z-scored copy of :attr:`matrix` (constant columns stay zero)."""
        matrix = self.matrix
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std < 1e-12] = 1.0
        return (matrix - mean) / std
