"""Procedural raster layers standing in for GIS shapefiles and GeoTIFFs.

The paper's data specialists supplied terrain (rivers, elevation, forest
cover), landscape (roads, boundary, villages, patrol posts), and ecological
(animal density, net primary productivity) layers. Offline we synthesise
equivalent layers with deterministic fractal noise and simple geometric
primitives, seeded per park so every run is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Raster:
    """A named single-band raster aligned to a park lattice."""

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 2:
            raise ConfigurationError(
                f"raster '{self.name}' must be 2-D, got shape {values.shape}"
            )
        object.__setattr__(self, "values", values)

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape  # type: ignore[return-value]

    def normalized(self) -> "Raster":
        """Min-max rescale to [0, 1]; constant rasters map to all zeros."""
        lo = float(np.nanmin(self.values))
        hi = float(np.nanmax(self.values))
        if hi - lo < 1e-12:
            return Raster(self.name, np.zeros_like(self.values))
        return Raster(self.name, (self.values - lo) / (hi - lo))


def _value_noise(shape: tuple[int, int], cells: int, rng: np.random.Generator) -> np.ndarray:
    """Bilinear-interpolated lattice noise at a given coarse resolution."""
    height, width = shape
    coarse = rng.standard_normal((cells + 1, cells + 1))
    row_pos = np.linspace(0, cells, height)
    col_pos = np.linspace(0, cells, width)
    r0 = np.clip(row_pos.astype(int), 0, cells - 1)
    c0 = np.clip(col_pos.astype(int), 0, cells - 1)
    fr = (row_pos - r0)[:, None]
    fc = (col_pos - c0)[None, :]
    top = coarse[np.ix_(r0, c0)] * (1 - fc) + coarse[np.ix_(r0, c0 + 1)] * fc
    bot = coarse[np.ix_(r0 + 1, c0)] * (1 - fc) + coarse[np.ix_(r0 + 1, c0 + 1)] * fc
    return top * (1 - fr) + bot * fr


def fractal_noise(
    shape: tuple[int, int],
    rng: np.random.Generator,
    octaves: int = 4,
    base_cells: int = 4,
    persistence: float = 0.5,
) -> np.ndarray:
    """Multi-octave value noise in [0, 1], the backbone of terrain synthesis.

    Parameters
    ----------
    shape:
        Output raster shape.
    rng:
        Source of randomness (seeded by the caller for determinism).
    octaves:
        Number of noise layers; each doubles the spatial frequency.
    base_cells:
        Coarse lattice resolution of the first octave.
    persistence:
        Amplitude decay per octave in (0, 1).
    """
    if octaves < 1:
        raise ConfigurationError(f"octaves must be >= 1, got {octaves}")
    if not 0 < persistence < 1:
        raise ConfigurationError(f"persistence must be in (0, 1), got {persistence}")
    total = np.zeros(shape, dtype=float)
    amplitude = 1.0
    cells = base_cells
    for _ in range(octaves):
        total += amplitude * _value_noise(shape, cells, rng)
        amplitude *= persistence
        cells *= 2
    lo, hi = total.min(), total.max()
    if hi - lo < 1e-12:
        return np.zeros(shape)
    return (total - lo) / (hi - lo)


def smooth_field(
    shape: tuple[int, int], rng: np.random.Generator, scale: int = 6
) -> np.ndarray:
    """A single-octave smooth random field in [0, 1] (e.g. animal density)."""
    field = _value_noise(shape, max(2, scale), rng)
    lo, hi = field.min(), field.max()
    if hi - lo < 1e-12:
        return np.zeros(shape)
    return (field - lo) / (hi - lo)


def linear_feature_mask(
    shape: tuple[int, int],
    rng: np.random.Generator,
    n_lines: int = 2,
    wobble: float = 1.5,
) -> np.ndarray:
    """Boolean mask of meandering linear features (rivers, roads).

    Each line starts on a random edge and random-walks across the raster with
    a persistent heading plus Gaussian wobble, marking every cell it visits.
    """
    if n_lines < 0:
        raise ConfigurationError(f"n_lines must be >= 0, got {n_lines}")
    height, width = shape
    mask = np.zeros(shape, dtype=bool)
    for _ in range(n_lines):
        side = rng.integers(4)
        if side == 0:  # enter from top, head down
            r, c = 0.0, float(rng.uniform(0, width - 1))
            heading = np.pi / 2
        elif side == 1:  # bottom, head up
            r, c = float(height - 1), float(rng.uniform(0, width - 1))
            heading = -np.pi / 2
        elif side == 2:  # left, head right
            r, c = float(rng.uniform(0, height - 1)), 0.0
            heading = 0.0
        else:  # right, head left
            r, c = float(rng.uniform(0, height - 1)), float(width - 1)
            heading = np.pi
        for _ in range(2 * (height + width)):
            ri, ci = int(round(r)), int(round(c))
            if not (0 <= ri < height and 0 <= ci < width):
                break
            mask[ri, ci] = True
            heading += rng.normal(0.0, wobble / 10.0)
            c += np.cos(heading)
            r += np.sin(heading)
    return mask


def scatter_points(
    shape: tuple[int, int],
    rng: np.random.Generator,
    n_points: int,
    margin: int = 0,
) -> np.ndarray:
    """``(n_points, 2)`` random (row, col) sites, e.g. villages or posts."""
    height, width = shape
    if n_points < 0:
        raise ConfigurationError(f"n_points must be >= 0, got {n_points}")
    if height - 2 * margin <= 0 or width - 2 * margin <= 0:
        raise ConfigurationError("margin leaves no room for points")
    rows = rng.integers(margin, height - margin, size=n_points)
    cols = rng.integers(margin, width - margin, size=n_points)
    return np.stack([rows, cols], axis=1)
