"""Effort-threshold dataset filtering — the heart of iWare-E.

``D_{theta^-}`` keeps every positive label but drops negative labels whose
patrol effort is below the threshold: a cell patrolled for 0.3 km with no
snare found says little, but one patrolled for 5 km with no snare is a
reliable negative. "Due to the label imbalance, we discard only negative
samples and keep all positive samples ... this is one of the key insights of
the iWare-E approach" (Section IV).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import PoachingDataset
from repro.exceptions import ConfigurationError


def filter_by_effort_threshold(
    dataset: PoachingDataset, threshold: float
) -> PoachingDataset:
    """The subset ``D_{theta^-}``: all positives + negatives with effort >= theta.

    Parameters
    ----------
    dataset:
        The full training dataset.
    threshold:
        Minimum patrol effort (km) for a negative label to be retained.
        Zero keeps everything.

    Returns
    -------
    PoachingDataset
        The filtered subset (shares no arrays with the input).
    """
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    keep = (dataset.labels == 1) | (dataset.current_effort >= threshold)
    return dataset.subset(keep)


def filtered_sizes(
    dataset: PoachingDataset, thresholds: np.ndarray
) -> list[tuple[float, int, int]]:
    """Diagnostic: (threshold, n_points, n_positives) per filtered subset."""
    out: list[tuple[float, int, int]] = []
    for theta in np.asarray(thresholds, dtype=float):
        subset = filter_by_effort_threshold(dataset, float(theta))
        out.append((float(theta), subset.n_points, int(subset.labels.sum())))
    return out
