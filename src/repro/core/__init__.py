"""The enhanced iWare-E predictive model — the paper's first-stage contribution.

iWare-E (imperfect-observation-aware Ensemble, Gholami et al. 2018) trains
weak learners on subsets of the data filtered at increasing patrol-effort
thresholds: negatives recorded with little effort are unreliable, so each
subset drops negatives below its threshold while *keeping all positives*.
This package adds the paper's three enhancements:

1. **Optimal classifier weights** — 5-fold CV log-loss minimisation over the
   ensemble simplex instead of uniform qualified voting
   (:mod:`repro.core.weights`).
2. **Percentile-based thresholds** — one hyperparameter (the number of
   classifiers) instead of (theta_min, theta_max, delta)
   (:mod:`repro.core.thresholds`).
3. **Gaussian-process weak learners** — model-intrinsic predictive variance,
   exposed per-cell/per-effort for the robust planner
   (:mod:`repro.core.uncertainty`).

:class:`~repro.core.predictor.PawsPredictor` is the user-facing facade: fit
on a :class:`~repro.data.dataset.PoachingDataset`, then query ``g_v(c)``
(detection-of-attack probability as a function of hypothetical patrol effort
``c``) and ``nu_v(c)`` (squashed uncertainty) for every park cell.
"""

from repro.core.thresholds import equal_spaced_thresholds, percentile_thresholds
from repro.core.filtering import filter_by_effort_threshold
from repro.core.weights import optimize_ensemble_weights
from repro.core.ensemble import IWareEnsemble
from repro.core.uncertainty import UncertaintyScaler
from repro.core.predictor import PawsPredictor, WEAK_LEARNERS, make_weak_learner

__all__ = [
    "percentile_thresholds",
    "equal_spaced_thresholds",
    "filter_by_effort_threshold",
    "optimize_ensemble_weights",
    "IWareEnsemble",
    "UncertaintyScaler",
    "PawsPredictor",
    "WEAK_LEARNERS",
    "make_weak_learner",
]
