"""The PAWS predictive-model facade.

:class:`PawsPredictor` wraps the full model zoo of Table II — SVB / DTB /
GPB weak learners, each with or without iWare-E — behind one interface, and
exposes the two functions the prescriptive stage consumes for every cell:

* ``g_v(c)`` — probability of detecting an attack at patrol effort ``c``;
* ``nu_v(c)`` — uncertainty of that prediction, squashed to [0, 1].
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.ensemble import IWareEnsemble
from repro.core.uncertainty import UncertaintyScaler
from repro.data.dataset import PoachingDataset
from repro.data.park import SyntheticPark
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml.bagging import BaggingClassifier, BalancedBaggingClassifier
from repro.ml.base import Classifier
from repro.ml.gp import GaussianProcessClassifier
from repro.ml.metrics import roc_auc_score
from repro.ml.svm import LinearSVMClassifier
from repro.ml.tree import DecisionTreeClassifier

#: The three weak-learner families of the paper: bagging ensembles of SVMs,
#: decision trees, and Gaussian-process classifiers.
WEAK_LEARNERS = ("svb", "dtb", "gpb")


def make_weak_learner(
    kind: str,
    rng: np.random.Generator,
    balanced: bool = False,
    n_estimators: int = 5,
    gp_max_points: int = 250,
    n_jobs: int = 1,
    backend: str = "auto",
) -> Callable[[], Classifier]:
    """Factory-of-factories for the Table II weak learners.

    Parameters
    ----------
    kind:
        ``"svb"``, ``"dtb"``, or ``"gpb"``.
    rng:
        Master generator; each produced learner draws a child seed, so two
        factories from the same master are independent but reproducible.
    balanced:
        Use undersampling (balanced bagging) — the paper's choice for the
        extremely imbalanced SWS datasets.
    n_estimators:
        Members per bagging ensemble.
    gp_max_points:
        Training-point cap per GP member (exact GPs are cubic).
    n_jobs:
        Pool workers for each bagging ensemble's member fits (results are
        bit-identical to serial).
    backend:
        Pool flavour for those member fits (see
        :mod:`repro.runtime.parallel`).
    """
    if kind not in WEAK_LEARNERS:
        raise ConfigurationError(
            f"unknown weak learner '{kind}'; expected one of {WEAK_LEARNERS}"
        )

    def base_factory() -> Classifier:
        seed = int(rng.integers(2**31 - 1))
        child = np.random.default_rng(seed)
        if kind == "svb":
            # Paper-faithful configuration: heavily regularised hinge loss
            # with no class reweighting. Under label imbalance this collapses
            # toward the majority class, reproducing Table II's finding that
            # "SVMs are suboptimal weak learners in this domain" — iWare-E's
            # filtered (more balanced) subsets are what rescue it.
            return LinearSVMClassifier(
                c=0.05, max_epochs=40, class_weight_balanced=False, rng=child
            )
        if kind == "dtb":
            return DecisionTreeClassifier(
                max_depth=8, min_samples_leaf=3, max_features="sqrt", rng=child
            )
        return GaussianProcessClassifier(max_points=gp_max_points, rng=child)

    bagging_cls = BalancedBaggingClassifier if balanced else BaggingClassifier

    def factory() -> Classifier:
        seed = int(rng.integers(2**31 - 1))
        return bagging_cls(
            base_factory,
            n_estimators=n_estimators,
            rng=np.random.default_rng(seed),
            n_jobs=n_jobs,
            backend=backend,
        )

    return factory


class PawsPredictor:
    """Configurable PAWS stage-1 model (Table II's rows and columns).

    Parameters
    ----------
    model:
        Weak-learner family: ``"svb"``, ``"dtb"``, or ``"gpb"``.
    iware:
        Wrap the weak learner in the enhanced iWare-E ensemble (True) or fit
        it once on the unfiltered data (the Table II baselines).
    n_classifiers:
        iWare-E threshold count (20 for MFNP/QENP, 10 for SWS in the paper).
    balanced:
        Balanced (undersampling) bagging, for extreme imbalance.
    n_estimators:
        Bagging members per weak learner.
    weighting:
        iWare-E mixing rule, ``"optimal"`` or ``"qualified"``.
    threshold_scheme:
        ``"percentile"`` (enhanced) or ``"equal"`` (original iWare-E).
    seed:
        Master seed for every stochastic component.
    n_jobs:
        Pool workers for fitting (1 = serial, -1 = all cores). With
        iWare-E the parallelism fans out over threshold classifiers;
        without, over bagging members. Seeds are pre-drawn serially, so any
        ``n_jobs`` produces bit-identical models.
    backend:
        Pool flavour for the fitting fan-out: ``"thread"``, ``"process"``,
        or ``"auto"`` (the default picks the process pool exactly when the
        weak learners are GIL-bound Python work — DTB trees, SVB epochs —
        and keeps threads for BLAS-heavy GPB members).
    """

    def __init__(
        self,
        model: str = "gpb",
        iware: bool = True,
        n_classifiers: int = 10,
        balanced: bool = False,
        n_estimators: int = 5,
        weighting: str = "optimal",
        threshold_scheme: str = "percentile",
        gp_max_points: int = 250,
        seed: int = 0,
        n_jobs: int = 1,
        backend: str = "auto",
    ):
        from repro.runtime.parallel import check_backend

        if model not in WEAK_LEARNERS:
            raise ConfigurationError(
                f"unknown model '{model}'; expected one of {WEAK_LEARNERS}"
            )
        self.backend = check_backend(backend)
        self.model = model
        self.iware = iware
        self.n_classifiers = n_classifiers
        self.balanced = balanced
        self.n_estimators = n_estimators
        self.weighting = weighting
        self.threshold_scheme = threshold_scheme
        self.gp_max_points = gp_max_points
        self.seed = seed
        self.n_jobs = n_jobs
        self._rng = np.random.default_rng(seed)
        self._ensemble: IWareEnsemble | None = None
        self._flat_model: Classifier | None = None
        self._uncertainty_scaler: UncertaintyScaler | None = None
        self._fitted = False

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Table II-style model label, e.g. ``"GPB-iW"`` or ``"DTB"``."""
        label = self.model.upper()
        return f"{label}-iW" if self.iware else label

    def _factory(self, n_jobs: int = 1) -> Callable[[], Classifier]:
        return make_weak_learner(
            self.model,
            rng=self._rng,
            balanced=self.balanced,
            n_estimators=self.n_estimators,
            gp_max_points=self.gp_max_points,
            n_jobs=n_jobs,
            backend=self.backend,
        )

    def fit(self, dataset: PoachingDataset) -> "PawsPredictor":
        """Fit on a training dataset (typically three years of history)."""
        if dataset.n_points == 0:
            raise DataError("cannot fit on an empty dataset")
        if self.iware:
            # Parallelise across threshold classifiers (the outer level has
            # the most independent work); bagging members stay serial so the
            # thread pool is not oversubscribed.
            self._ensemble = IWareEnsemble(
                self._factory(),
                n_classifiers=self.n_classifiers,
                threshold_scheme=self.threshold_scheme,
                weighting=self.weighting,
                rng=self._rng,
                n_jobs=self.n_jobs,
                backend=self.backend,
            ).fit(dataset)
        else:
            X, y = dataset.feature_matrix, dataset.labels
            if y.min() == y.max():
                from repro.ml.base import ConstantClassifier

                self._flat_model = ConstantClassifier().fit(X, y)
            else:
                self._flat_model = self._factory(self.n_jobs)().fit(X, y)
        self._fitted = True
        return self

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("PawsPredictor is not fitted")

    # ------------------------------------------------------------------
    # Point predictions
    # ------------------------------------------------------------------
    def predict_proba(
        self,
        X: np.ndarray,
        effort: np.ndarray | float | None = None,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> np.ndarray:
        """Probability of detected poaching for each input row.

        ``tile_size`` / ``n_jobs`` / ``backend`` stream the rows through the
        ``(member x tile)`` serving fan-out; results are bit-identical to
        the serial, untiled defaults.
        """
        from repro.runtime.parallel import predict_map

        self._check_fitted()
        if self._ensemble is not None:
            return self._ensemble.predict_proba(
                X, effort=effort,
                tile_size=tile_size, n_jobs=n_jobs, backend=backend,
            )
        assert self._flat_model is not None
        return predict_map(
            [self._flat_model], X, tile_size=tile_size, n_jobs=n_jobs,
            backend=backend, method="predict_proba",
        )[0]

    def predict_variance(
        self,
        X: np.ndarray,
        effort: np.ndarray | float | None = None,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> np.ndarray:
        """Raw (unsquashed) uncertainty of each prediction."""
        from repro.runtime.parallel import predict_map

        self._check_fitted()
        if self._ensemble is not None:
            return self._ensemble.predict_variance(
                X, effort=effort,
                tile_size=tile_size, n_jobs=n_jobs, backend=backend,
            )
        assert self._flat_model is not None
        method = (
            "mean_member_variance"
            if isinstance(self._flat_model, BaggingClassifier)
            else "predict_variance"
        )
        return predict_map(
            [self._flat_model], X, tile_size=tile_size, n_jobs=n_jobs,
            backend=backend, method=method,
        )[0]

    def evaluate_auc(self, test: PoachingDataset) -> float:
        """AUC on a held-out dataset (the Table II metric)."""
        self._check_fitted()
        return roc_auc_score(test.labels, self.predict_proba(test.feature_matrix))

    # ------------------------------------------------------------------
    # Per-cell effort-response surfaces (inputs to the planner)
    # ------------------------------------------------------------------
    @staticmethod
    def cell_feature_matrix(
        park: SyntheticPark, prev_effort: np.ndarray
    ) -> np.ndarray:
        """Model inputs for every park cell given last period's effort."""
        prev_effort = np.asarray(prev_effort, dtype=float)
        if prev_effort.shape != (park.n_cells,):
            raise DataError(
                f"prev_effort must have shape ({park.n_cells},), "
                f"got {prev_effort.shape}"
            )
        return np.hstack([park.features.matrix, prev_effort[:, None]])

    def effort_response(
        self,
        features: np.ndarray,
        effort_grid: np.ndarray,
        batched: bool = True,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Risk and squashed uncertainty across hypothetical effort levels.

        Parameters
        ----------
        features:
            ``(n_cells, k+1)`` model inputs (static + previous effort).
        effort_grid:
            Increasing effort levels (km) at which to evaluate the model.
        batched:
            Mix all effort levels with two matrix products from one set of
            member statistics (the serving path). ``False`` mixes level by
            level through ``_mix`` instead — same member statistics, kept
            as the per-level reference mixing for equivalence tests.
        tile_size, n_jobs, backend:
            Serving fan-out controls: test rows stream through
            ``tile_size``-row tiles (bounding transient memory at
            ``O(n_train x tile)``) and the ``(member x tile)`` tasks spread
            over ``n_jobs`` workers on the hint-selected pool. Every
            combination returns bit-identical surfaces.

        Returns
        -------
        (risk, uncertainty):
            Two ``(n_cells, len(effort_grid))`` arrays: ``g_v(c)`` and
            ``nu_v(c) in [0, 1]``.
        """
        self._check_fitted()
        effort_grid = np.asarray(effort_grid, dtype=float)
        if effort_grid.ndim != 1 or effort_grid.size == 0:
            raise ConfigurationError("effort_grid must be a non-empty 1-D array")
        if (np.diff(effort_grid) < 0).any():
            raise ConfigurationError("effort_grid must be nondecreasing")
        if batched:
            risk, raw_var = self._effort_surfaces_batched(
                features, effort_grid, tile_size, n_jobs, backend
            )
        else:
            risk, raw_var = self._effort_surfaces_per_level(
                features, effort_grid, tile_size, n_jobs, backend
            )
        # With zero patrol effort nothing can be detected: the training data
        # only contains patrolled points, so the model has no c=0 regime and
        # g_v(0) must be anchored at 0 (Pr[o=1 | c=0] = 0 by construction).
        risk[:, effort_grid == 0.0] = 0.0
        self._uncertainty_scaler = UncertaintyScaler().fit(raw_var.ravel())
        nu = self._uncertainty_scaler.transform(raw_var)
        return risk, nu

    def _member_surfaces(
        self,
        features: np.ndarray,
        tile_size: int | None,
        n_jobs: int | None,
        backend: str,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One tiled model pass shared by both effort-surface mixings."""
        if self._ensemble is not None:
            return self._ensemble.member_statistics(
                features, tile_size=tile_size, n_jobs=n_jobs, backend=backend
            )
        assert self._flat_model is not None
        if isinstance(self._flat_model, BaggingClassifier):
            proba, raw_var = self._flat_model.prediction_stats(
                features, tile_size=tile_size, n_jobs=n_jobs, backend=backend
            )
        else:
            from repro.runtime.parallel import predict_map

            proba, raw_var = predict_map(
                [self._flat_model], features,
                tile_size=tile_size, n_jobs=n_jobs, backend=backend,
            )[0]
        return proba, raw_var

    def _effort_surfaces_batched(
        self,
        features: np.ndarray,
        effort_grid: np.ndarray,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """One ensemble pass for the whole grid (see ``batched_effort_response``)."""
        if self._ensemble is not None:
            return self._ensemble.batched_effort_response(
                features, effort_grid,
                tile_size=tile_size, n_jobs=n_jobs, backend=backend,
            )
        # Flat models ignore the hypothesised effort entirely: one
        # prediction pass, broadcast across the grid.
        proba, raw_var = self._member_surfaces(features, tile_size, n_jobs, backend)
        n_levels = effort_grid.size
        return (
            np.repeat(proba[:, None], n_levels, axis=1),
            np.repeat(raw_var[:, None], n_levels, axis=1),
        )

    def _effort_surfaces_per_level(
        self,
        features: np.ndarray,
        effort_grid: np.ndarray,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-level mixing over one shared member pass.

        Member predictions do not depend on the hypothesised effort, so the
        model pass runs once — through the same tiled engine as the batched
        path — and only the qualification mixing repeats per level. Output
        equals the historical one-full-prediction-per-level loop bit for
        bit, at the cost of one member sweep instead of ``len(effort_grid)``.
        """
        probs, raw_vars = self._member_surfaces(
            features, tile_size, n_jobs, backend
        )
        if self._ensemble is None:
            n_levels = effort_grid.size
            return (
                np.repeat(probs[:, None], n_levels, axis=1),
                np.repeat(raw_vars[:, None], n_levels, axis=1),
            )
        risk = np.stack(
            [self._ensemble._mix(probs, float(c)) for c in effort_grid],
            axis=1,
        )
        raw_var = np.stack(
            [self._ensemble._mix(raw_vars, float(c)) for c in effort_grid],
            axis=1,
        )
        return risk, raw_var

    @property
    def uncertainty_scaler(self) -> UncertaintyScaler | None:
        """The scaler fitted by the last :meth:`effort_response` call."""
        return self._uncertainty_scaler

    # ------------------------------------------------------------------
    # Persistence (npz + json manifest; see repro.runtime.persistence)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist this fitted predictor to a directory.

        The saved artifact serves predictions (``predict_proba``,
        ``predict_variance``, ``effort_response``) identical to this
        instance's without refitting; refitting a loaded predictor restarts
        from the persisted master seed.
        """
        from repro.runtime.persistence import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path, verify: bool = True) -> "PawsPredictor":
        """Load a predictor saved by :meth:`save`.

        ``verify`` controls checksum verification of the saved arrays (see
        :func:`repro.runtime.persistence.load_model`); on by default.
        """
        from repro.runtime.persistence import load_model

        return load_model(path, expected_type=cls, verify=verify)

    def to_manifest(self, store, prefix: str) -> dict:
        self._check_fitted()
        node: dict = {
            "type": "PawsPredictor",
            "config": {
                "model": self.model,
                "iware": self.iware,
                "n_classifiers": self.n_classifiers,
                "balanced": self.balanced,
                "n_estimators": self.n_estimators,
                "weighting": self.weighting,
                "threshold_scheme": self.threshold_scheme,
                "gp_max_points": self.gp_max_points,
                "seed": self.seed,
                "n_jobs": self.n_jobs,
                "backend": self.backend,
            },
        }
        if self._ensemble is not None:
            node["ensemble"] = self._ensemble.to_manifest(store, f"{prefix}/ensemble")
        else:
            assert self._flat_model is not None
            node["flat_model"] = self._flat_model.to_manifest(
                store, f"{prefix}/flat_model"
            )
        return node

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "PawsPredictor":
        from repro.exceptions import PersistenceError
        from repro.runtime.persistence import decode_node

        predictor = cls(**node["config"])
        if "ensemble" in node:
            predictor._ensemble = decode_node(node["ensemble"], arrays)
        elif "flat_model" in node:
            predictor._flat_model = decode_node(node["flat_model"], arrays)
        else:
            raise PersistenceError(
                "PawsPredictor manifest has neither an ensemble nor a flat model"
            )
        predictor._fitted = True
        return predictor
