"""The iWare-E ensemble with the paper's enhancements.

An :class:`IWareEnsemble` holds one weak learner per patrol-effort threshold,
each trained on the filtered subset ``D_{theta_i^-}`` (all positives +
reliable negatives). Prediction mixes the weak learners either with

* ``weighting="optimal"`` — the paper's enhancement: weights learned by
  5-fold CV log-loss minimisation, every classifier predicting everywhere; or
* ``weighting="qualified"`` — the original iWare-E rule: uniform weights over
  the classifiers *qualified* for a point's patrol effort
  (``theta_i <= effort``).

Effort-conditional prediction (needed by the planner, and by Fig. 6's
risk-vs-effort maps) restricts the mixture to the classifiers qualified at a
hypothetical effort level ``c`` and renormalises, so ``g_v(c)`` grows as
higher-threshold classifiers join the vote.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.filtering import filter_by_effort_threshold
from repro.core.thresholds import equal_spaced_thresholds, percentile_thresholds
from repro.core.weights import optimize_ensemble_weights
from repro.data.dataset import PoachingDataset
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml.bagging import BaggingClassifier
from repro.ml.base import Classifier, ConstantClassifier


class IWareEnsemble:
    """Imperfect-observation-aware ensemble over effort thresholds.

    Parameters
    ----------
    weak_learner_factory:
        Zero-argument callable returning a fresh unfit weak learner
        (typically a bagging ensemble, per the paper).
    n_classifiers:
        Requested number of thresholds I (20 for MFNP/QENP, 10 for SWS in
        the paper). Duplicated percentile thresholds are collapsed.
    threshold_scheme:
        ``"percentile"`` (the enhancement) or ``"equal"`` (original iWare-E,
        kept for ablations; uses ``theta_range``).
    theta_range:
        (theta_min, theta_max) for the equal-spacing scheme.
    weighting:
        ``"optimal"`` or ``"qualified"`` (see module docstring).
    cv_folds:
        Folds for the weight-learning cross-validation.
    rng:
        Randomness for CV shuffling.
    n_jobs:
        Pool workers for fitting the per-threshold classifiers (1 =
        serial, -1 = all cores). Child seeds are drawn serially before the
        fan-out, so parallel fits are bit-identical to serial ones.
    backend:
        Pool flavour for the fan-out: ``"thread"``, ``"process"``, or
        ``"auto"`` (process pool iff every deferred fit advertises
        GIL-bound work — e.g. DTB trees; GP weak learners keep threads).
    """

    def __init__(
        self,
        weak_learner_factory: Callable[[], Classifier],
        n_classifiers: int = 10,
        threshold_scheme: str = "percentile",
        theta_range: tuple[float, float] = (0.0, 7.5),
        weighting: str = "optimal",
        cv_folds: int = 5,
        rng: np.random.Generator | None = None,
        n_jobs: int = 1,
        backend: str = "auto",
    ):
        from repro.runtime.parallel import check_backend

        if threshold_scheme not in ("percentile", "equal"):
            raise ConfigurationError(f"unknown threshold scheme '{threshold_scheme}'")
        if weighting not in ("optimal", "qualified"):
            raise ConfigurationError(f"unknown weighting '{weighting}'")
        if n_classifiers < 1:
            raise ConfigurationError(f"n_classifiers must be >= 1, got {n_classifiers}")
        if cv_folds < 2:
            raise ConfigurationError(f"cv_folds must be >= 2, got {cv_folds}")
        self.weak_learner_factory = weak_learner_factory
        self.n_classifiers = n_classifiers
        self.threshold_scheme = threshold_scheme
        self.theta_range = theta_range
        self.weighting = weighting
        self.cv_folds = cv_folds
        self.rng = rng or np.random.default_rng()
        self.n_jobs = n_jobs
        self.backend = check_backend(backend)
        self.thresholds_: np.ndarray | None = None
        self.weights_: np.ndarray | None = None
        self.classifiers_: list[Classifier] = []
        #: Positive rate of each classifier's filtered training subset and of
        #: the full training data — used for prior correction at mix time.
        self.subset_positive_rates_: np.ndarray | None = None
        self.full_positive_rate_: float | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, dataset: PoachingDataset) -> "IWareEnsemble":
        """Fit the threshold ensemble (and, if configured, its weights)."""
        if dataset.n_points == 0:
            raise DataError("cannot fit on an empty dataset")
        self.thresholds_ = self._compute_thresholds(dataset)
        self.full_positive_rate_ = dataset.positive_rate
        self.subset_positive_rates_ = np.array(
            [
                filter_by_effort_threshold(dataset, float(t)).positive_rate
                for t in self.thresholds_
            ]
        )
        if self.weighting == "optimal" and len(self.thresholds_) > 1:
            self.weights_ = self._learn_weights(dataset)
        else:
            self.weights_ = np.full(
                len(self.thresholds_), 1.0 / len(self.thresholds_)
            )
        self.classifiers_ = self._fit_classifiers(dataset)
        return self

    def _compute_thresholds(self, dataset: PoachingDataset) -> np.ndarray:
        if self.threshold_scheme == "percentile":
            return percentile_thresholds(dataset.current_effort, self.n_classifiers)
        return equal_spaced_thresholds(
            self.theta_range[0], self.theta_range[1], self.n_classifiers
        )

    def _fit_classifiers(self, dataset: PoachingDataset) -> list[Classifier]:
        from repro.ml.base import PrefittedTask
        from repro.runtime.parallel import run_deferred

        assert self.thresholds_ is not None
        # Phase 1 (serial): filter each subset, construct each weak learner,
        # and let it consume every shared-generator draw it needs (child
        # seeds for its own members, bootstrap indices) via fit_deferred —
        # in exactly the order a serial fit would.
        tasks: list[Callable[[], Classifier]] = []
        for theta in self.thresholds_:
            subset = filter_by_effort_threshold(dataset, float(theta))
            X = subset.feature_matrix
            y = subset.labels
            if subset.n_points == 0 or y.min() == y.max():
                fallback = ConstantClassifier().fit(
                    X if subset.n_points else dataset.feature_matrix[:1], y
                )
                tasks.append(PrefittedTask(fallback))
            else:
                tasks.append(self.weak_learner_factory().fit_deferred(X, y))
        # Phase 2 (parallel): the deferred fits only touch per-task state, so
        # they can fan out to threads or worker processes interchangeably.
        return run_deferred(tasks, n_jobs=self.n_jobs, backend=self.backend)

    #: Minimum positive labels for CV weight learning to be trustworthy;
    #: below this the optimiser chases fold noise (it can put all weight on
    #: a classifier whose good fold log-loss is an artefact of having ~2
    #: positives per fold), so the ensemble falls back to uniform weights.
    MIN_POSITIVES_FOR_WEIGHTS = 25

    def _learn_weights(self, dataset: PoachingDataset) -> np.ndarray:
        """CV log-loss weight learning (the paper's first enhancement)."""
        from repro.ml.model_selection import StratifiedKFold

        assert self.thresholds_ is not None
        n_thresholds = len(self.thresholds_)
        if int(dataset.labels.sum()) < self.MIN_POSITIVES_FOR_WEIGHTS:
            return np.full(n_thresholds, 1.0 / n_thresholds)
        folds = StratifiedKFold(
            n_splits=min(self.cv_folds, max(2, int(dataset.labels.sum()) or 2)),
            rng=self.rng,
        )
        all_probs: list[np.ndarray] = []
        all_labels: list[np.ndarray] = []
        try:
            splits = list(folds.split(dataset.labels))
        except DataError:
            return np.full(n_thresholds, 1.0 / n_thresholds)
        for train_idx, val_idx in splits:
            train_mask = np.zeros(dataset.n_points, dtype=bool)
            train_mask[train_idx] = True
            fold_train = dataset.subset(train_mask)
            fold_val_X = dataset.feature_matrix[val_idx]
            fold_val_y = dataset.labels[val_idx]
            if fold_train.labels.sum() == 0 or fold_val_y.size == 0:
                continue
            classifiers = self._fit_classifiers(fold_train)
            probs = np.stack([c.predict_proba(fold_val_X) for c in classifiers])
            # Correct each classifier's calibration to the fold's base rate so
            # the log-loss objective weighs discrimination, not the different
            # priors the effort filters induce.
            fold_rates = np.array(
                [
                    filter_by_effort_threshold(fold_train, float(t)).positive_rate
                    for t in self.thresholds_
                ]
            )
            probs = _prior_correct(probs, fold_rates, fold_train.positive_rate)
            all_probs.append(probs)
            all_labels.append(fold_val_y)
        if not all_probs:
            return np.full(n_thresholds, 1.0 / n_thresholds)
        stacked_probs = np.concatenate(all_probs, axis=1)
        stacked_labels = np.concatenate(all_labels)
        if stacked_labels.min() == stacked_labels.max():
            return np.full(n_thresholds, 1.0 / n_thresholds)
        return optimize_ensemble_weights(stacked_probs, stacked_labels)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.thresholds_ is None or not self.classifiers_:
            raise NotFittedError("IWareEnsemble is not fitted")

    def member_probabilities(
        self,
        X: np.ndarray,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> np.ndarray:
        """``(I, n)`` raw probabilities from every threshold classifier.

        ``tile_size`` / ``n_jobs`` / ``backend`` route the sweep through the
        ``(member x tile)`` prediction fan-out; any combination is
        bit-identical to the serial defaults.
        """
        from repro.runtime.parallel import predict_map

        self._check_fitted()
        return np.stack(
            predict_map(
                self.classifiers_, X, tile_size=tile_size, n_jobs=n_jobs,
                backend=backend, method="predict_proba",
            )
        )

    def corrected_member_probabilities(
        self,
        X: np.ndarray,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> np.ndarray:
        """``(I, n)`` probabilities prior-corrected to the full base rate.

        Each filtered classifier is calibrated to its own subset's positive
        rate; the odds-ratio correction (Elkan 2001) maps all of them onto
        the unfiltered prior so they can be mixed on a common scale.
        """
        probs = self.member_probabilities(
            X, tile_size=tile_size, n_jobs=n_jobs, backend=backend
        )
        assert self.subset_positive_rates_ is not None
        assert self.full_positive_rate_ is not None
        return _prior_correct(
            probs, self.subset_positive_rates_, self.full_positive_rate_
        )

    def member_variances(
        self,
        X: np.ndarray,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> np.ndarray:
        """``(I, n)`` uncertainty from every threshold classifier.

        Bagging weak learners report their members' intrinsic (GP) variance
        when available, falling back to between-member variance otherwise.
        """
        from repro.runtime.parallel import predict_map

        self._check_fitted()
        methods = [
            "mean_member_variance"
            if isinstance(c, BaggingClassifier)
            else "predict_variance"
            for c in self.classifiers_
        ]
        return np.stack(
            predict_map(
                self.classifiers_, X, tile_size=tile_size, n_jobs=n_jobs,
                backend=backend, method=methods,
            )
        )

    def member_statistics(
        self,
        X: np.ndarray,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(I, n)`` member probabilities and variances from one model pass.

        Equal to ``(member_probabilities(X), member_variances(X))``, but each
        threshold classifier is visited once (via ``prediction_stats``)
        instead of twice — bagged GP members in particular solve their latent
        moments a single time. This is the workhorse of the batched serving
        path: test rows stream through in ``tile_size``-row tiles (bounding
        transient memory at ``O(n_train x tile)`` per task) and the
        ``(member x tile)`` tasks fan out over ``n_jobs`` workers, with the
        same hint-based ``backend`` auto selection — and the same
        bit-identity guarantee — as the fitting fan-out.
        """
        from repro.runtime.parallel import predict_map

        self._check_fitted()
        stats = predict_map(
            self.classifiers_, X,
            tile_size=tile_size, n_jobs=n_jobs, backend=backend,
        )
        probs = np.stack([p for p, __ in stats])
        variances = np.stack([v for __, v in stats])
        return probs, variances

    def batched_effort_response(
        self,
        X: np.ndarray,
        effort_grid: np.ndarray,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Risk and raw variance surfaces over a whole effort grid at once.

        The per-level path re-runs every ensemble member for every effort
        level, although member predictions do not depend on the hypothesised
        effort at all — effort only selects which members are *qualified* to
        vote. Here member statistics are computed once (tiled and parallel
        when requested; see :meth:`member_statistics`) and the per-level
        mixtures collapse to two ``(n, I) @ (I, L)`` products.

        Returns
        -------
        (risk, raw_variance):
            Two ``(n, len(effort_grid))`` arrays matching per-level
            ``predict_proba`` / ``predict_variance`` calls to within
            floating-point reduction order — and matching the untiled,
            serial batched path *exactly*, whatever the tile size, worker
            count, or pool flavour.
        """
        assert self.weights_ is not None and self.thresholds_ is not None
        effort_grid = np.asarray(effort_grid, dtype=float)
        probs, variances = self.member_statistics(
            X, tile_size=tile_size, n_jobs=n_jobs, backend=backend
        )
        # (I, L) qualification per effort level — the same rule the
        # per-level path applies per point, evaluated once per grid level.
        mask = self._qualification(effort_grid, effort_grid.size)
        weighted = self.weights_[:, None] * mask
        denom = weighted.sum(axis=0)
        denom[denom <= 0] = 1.0
        risk = probs.T @ weighted / denom
        raw_var = variances.T @ weighted / denom
        return risk, raw_var

    def _qualification(self, effort: np.ndarray | float | None, n: int) -> np.ndarray:
        """``(I, n)`` boolean mask of classifiers qualified per point.

        A classifier with threshold theta_i is qualified for points whose
        (actual or hypothesised) patrol effort is at least theta_i. The
        zero-threshold classifier is always qualified, so the mask never has
        an empty column.
        """
        assert self.thresholds_ is not None
        if effort is None:
            return np.ones((len(self.thresholds_), n), dtype=bool)
        effort_arr = np.broadcast_to(np.asarray(effort, dtype=float), (n,))
        mask = self.thresholds_[:, None] <= effort_arr[None, :]
        mask[0, :] = True
        return mask

    def _mix(
        self, probs: np.ndarray, effort: np.ndarray | float | None
    ) -> np.ndarray:
        assert self.weights_ is not None
        mask = self._qualification(effort, probs.shape[1])
        weighted = self.weights_[:, None] * mask
        denom = weighted.sum(axis=0)
        denom[denom <= 0] = 1.0
        return (weighted * probs).sum(axis=0) / denom

    def predict_proba(
        self,
        X: np.ndarray,
        effort: np.ndarray | float | None = None,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> np.ndarray:
        """Ensemble probability of detected poaching for each row of ``X``.

        Parameters
        ----------
        X:
            Model inputs (static features + previous-period effort).
        effort:
            Patrol effort conditioning the prediction. ``None`` (test time,
            future effort unknown) mixes *prior-corrected* probabilities
            from every classifier; a value/array mixes the raw probabilities
            of the classifiers qualified at that effort, which is the
            effort-response ``g_v(c)`` the planner consumes.
        tile_size, n_jobs, backend:
            Serving fan-out controls (see :meth:`member_statistics`); the
            mixed map is bit-identical for every combination.
        """
        if effort is None:
            return self._mix(
                self.corrected_member_probabilities(
                    X, tile_size=tile_size, n_jobs=n_jobs, backend=backend
                ),
                None,
            )
        return self._mix(
            self.member_probabilities(
                X, tile_size=tile_size, n_jobs=n_jobs, backend=backend
            ),
            effort,
        )

    def predict_variance(
        self,
        X: np.ndarray,
        effort: np.ndarray | float | None = None,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> np.ndarray:
        """Ensemble uncertainty score, mixed like the probabilities."""
        return self._mix(
            self.member_variances(
                X, tile_size=tile_size, n_jobs=n_jobs, backend=backend
            ),
            effort,
        )

    def predict_at_effort(self, X: np.ndarray, effort_km: float) -> np.ndarray:
        """``g_v(c)``: risk of *detecting* an attack at hypothetical effort c."""
        if effort_km < 0:
            raise ConfigurationError(f"effort must be >= 0, got {effort_km}")
        return self.predict_proba(X, effort=effort_km)

    def variance_at_effort(self, X: np.ndarray, effort_km: float) -> np.ndarray:
        """``raw nu_v(c)``: uncertainty of the prediction at effort c."""
        if effort_km < 0:
            raise ConfigurationError(f"effort must be >= 0, got {effort_km}")
        return self.predict_variance(X, effort=effort_km)

    @property
    def n_thresholds(self) -> int:
        self._check_fitted()
        assert self.thresholds_ is not None
        return len(self.thresholds_)

    # ------------------------------------------------------------------
    # Persistence (npz + json manifest; see repro.runtime.persistence)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist this fitted ensemble to a directory."""
        from repro.runtime.persistence import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path, verify: bool = True) -> "IWareEnsemble":
        """Load an ensemble saved by :meth:`save` (serving only, no refit).

        ``verify`` controls checksum verification of the saved arrays (see
        :func:`repro.runtime.persistence.load_model`); on by default.
        """
        from repro.runtime.persistence import load_model

        return load_model(path, expected_type=cls, verify=verify)

    def to_manifest(self, store, prefix: str) -> dict:
        self._check_fitted()
        assert self.thresholds_ is not None and self.weights_ is not None
        assert self.subset_positive_rates_ is not None
        return {
            "type": "IWareEnsemble",
            "config": {
                "n_classifiers": self.n_classifiers,
                "threshold_scheme": self.threshold_scheme,
                "theta_range": list(self.theta_range),
                "weighting": self.weighting,
                "cv_folds": self.cv_folds,
                "n_jobs": self.n_jobs,
                "backend": self.backend,
            },
            "full_positive_rate": self.full_positive_rate_,
            "classifiers": [
                c.to_manifest(store, f"{prefix}/classifiers/{i}")
                for i, c in enumerate(self.classifiers_)
            ],
            "arrays": {
                "thresholds": store.put(f"{prefix}/thresholds", self.thresholds_),
                "weights": store.put(f"{prefix}/weights", self.weights_),
                "subset_positive_rates": store.put(
                    f"{prefix}/subset_positive_rates", self.subset_positive_rates_
                ),
            },
        }

    @classmethod
    def from_manifest(cls, node: dict, arrays: dict) -> "IWareEnsemble":
        from repro.runtime.persistence import decode_node, get_array

        config = dict(node["config"])
        config["theta_range"] = tuple(config["theta_range"])
        ensemble = cls(_unavailable_weak_learner_factory, **config)
        refs = node["arrays"]
        ensemble.thresholds_ = get_array(arrays, refs["thresholds"]).astype(float)
        ensemble.weights_ = get_array(arrays, refs["weights"]).astype(float)
        ensemble.subset_positive_rates_ = get_array(
            arrays, refs["subset_positive_rates"]
        ).astype(float)
        ensemble.full_positive_rate_ = node["full_positive_rate"]
        ensemble.classifiers_ = [
            decode_node(child, arrays) for child in node["classifiers"]
        ]
        return ensemble


def _unavailable_weak_learner_factory() -> Classifier:
    """Placeholder factory installed on ensembles loaded from disk."""
    raise ConfigurationError(
        "this iWare-E ensemble was loaded from disk and cannot be refit: "
        "weak-learner factories are not persisted (construct a fresh "
        "ensemble to retrain)"
    )


def _prior_correct(
    probs: np.ndarray, subset_rates: np.ndarray, full_rate: float
) -> np.ndarray:
    """Odds-ratio prior correction of per-classifier probabilities.

    Maps probabilities calibrated against ``subset_rates[i]`` onto the
    ``full_rate`` prior. Degenerate rates (0 or 1, possible at extreme
    thresholds) skip the correction for that classifier.
    """
    eps = 1e-9
    out = np.empty_like(probs)
    full_rate = float(np.clip(full_rate, eps, 1 - eps))
    full_odds = full_rate / (1 - full_rate)
    for i, rate in enumerate(np.asarray(subset_rates, dtype=float)):
        if not 0.0 < rate < 1.0:
            out[i] = probs[i]
            continue
        ratio = full_odds / (rate / (1 - rate))
        p = np.clip(probs[i], eps, 1 - eps)
        odds = p / (1 - p) * ratio
        out[i] = odds / (1 + odds)
    return out
