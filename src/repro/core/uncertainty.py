"""Uncertainty post-processing.

"The uncertainty scores that we get from the GPB-iW model are scaled to the
range [0, 1] through a logistic squashing function" (Section VI-C). The
:class:`UncertaintyScaler` fits that squashing on a reference set of raw
variances (centring the logistic at their median) so that downstream
``nu in [0, 1]`` scores are comparable across cells and effort levels.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError, NotFittedError
from repro.ml.scaling import logistic_squash


class UncertaintyScaler:
    """Logistic squashing of raw variance scores into [0, 1].

    Parameters
    ----------
    steepness_quantiles:
        The logistic steepness is set so that this (low, high) quantile pair
        of the reference variances maps near (0.25, 0.75) — a robust spread
        estimate that ignores outliers.
    """

    def __init__(self, steepness_quantiles: tuple[float, float] = (0.25, 0.75)):
        lo, hi = steepness_quantiles
        if not 0.0 <= lo < hi <= 1.0:
            raise DataError(f"invalid quantile pair {steepness_quantiles}")
        self.steepness_quantiles = steepness_quantiles
        self.midpoint_: float | None = None
        self.steepness_: float | None = None

    def fit(self, raw_variances: np.ndarray) -> "UncertaintyScaler":
        """Calibrate midpoint and steepness on reference variances."""
        raw = np.asarray(raw_variances, dtype=float).ravel()
        if raw.size == 0:
            raise DataError("cannot fit the scaler on an empty array")
        if not np.isfinite(raw).all():
            raise DataError("raw variances contain non-finite values")
        self.midpoint_ = float(np.median(raw))
        lo_q, hi_q = self.steepness_quantiles
        spread = float(np.quantile(raw, hi_q) - np.quantile(raw, lo_q))
        # logistic(z) = 0.75 at z ~ 1.1; map the quantile spread onto that.
        self.steepness_ = 2.2 / spread if spread > 1e-12 else 1.0
        return self

    def transform(self, raw_variances: np.ndarray) -> np.ndarray:
        """Squashed uncertainty scores in (0, 1)."""
        if self.midpoint_ is None or self.steepness_ is None:
            raise NotFittedError("UncertaintyScaler is not fitted")
        return logistic_squash(
            np.asarray(raw_variances, dtype=float),
            midpoint=self.midpoint_,
            steepness=self.steepness_,
        )

    def fit_transform(self, raw_variances: np.ndarray) -> np.ndarray:
        return self.fit(raw_variances).transform(raw_variances)
