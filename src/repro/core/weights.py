"""Optimal iWare-E classifier weights.

The paper's first enhancement: instead of weighing qualified classifiers
equally, "perform 5-fold cross validation to minimize the log loss of the
predictions when varying the classifier weights" (Section IV). The weighted
ensemble probability is linear in the weights, so the log-loss is convex
over the probability simplex; we solve it with projected SLSQP.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.exceptions import ConvergenceError, DataError

_EPS = 1e-12


def ensemble_log_loss(
    weights: np.ndarray, probabilities: np.ndarray, labels: np.ndarray
) -> float:
    """Log-loss of the weight-mixed ensemble prediction.

    Parameters
    ----------
    weights:
        ``(I,)`` ensemble weights (assumed on the simplex).
    probabilities:
        ``(I, n)`` per-classifier positive-class probabilities.
    labels:
        ``(n,)`` binary labels.
    """
    mixed = np.clip(weights @ probabilities, _EPS, 1.0 - _EPS)
    return float(-np.mean(labels * np.log(mixed) + (1 - labels) * np.log(1 - mixed)))


def optimize_ensemble_weights(
    probabilities: np.ndarray,
    labels: np.ndarray,
    ridge: float = 1e-4,
) -> np.ndarray:
    """Minimise ensemble log-loss over the probability simplex.

    Parameters
    ----------
    probabilities:
        ``(I, n)`` held-out (cross-validated) predictions of each classifier.
    labels:
        ``(n,)`` binary labels of the held-out points.
    ridge:
        Tiny L2 pull toward uniform weights; regularises the (otherwise
        flat) optimum when classifiers are nearly collinear.

    Returns
    -------
    numpy.ndarray
        ``(I,)`` nonnegative weights summing to 1.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels)
    if probabilities.ndim != 2:
        raise DataError("probabilities must be (n_classifiers, n_points)")
    n_classifiers, n_points = probabilities.shape
    if labels.shape != (n_points,):
        raise DataError(
            f"labels shape {labels.shape} does not match {n_points} points"
        )
    if n_classifiers == 1:
        return np.ones(1)
    if not np.isfinite(probabilities).all():
        raise DataError("probabilities contain non-finite values")

    uniform = np.full(n_classifiers, 1.0 / n_classifiers)

    def objective(w: np.ndarray) -> float:
        return ensemble_log_loss(w, probabilities, labels) + ridge * float(
            np.sum((w - uniform) ** 2)
        )

    def gradient(w: np.ndarray) -> np.ndarray:
        mixed = np.clip(w @ probabilities, _EPS, 1.0 - _EPS)
        dl_dmix = -(labels / mixed) + (1 - labels) / (1 - mixed)
        grad = probabilities @ dl_dmix / n_points
        return grad + 2 * ridge * (w - uniform)

    result = minimize(
        objective,
        uniform,
        jac=gradient,
        method="SLSQP",
        bounds=[(0.0, 1.0)] * n_classifiers,
        constraints=[{"type": "eq", "fun": lambda w: w.sum() - 1.0}],
        options={"maxiter": 300, "ftol": 1e-10},
    )
    if not result.success and not np.isfinite(result.fun):
        raise ConvergenceError(f"weight optimisation failed: {result.message}")
    weights = np.clip(result.x, 0.0, None)
    total = weights.sum()
    if total <= 0:
        return uniform
    return weights / total
