"""Patrol-effort threshold selection for iWare-E.

The original iWare-E picked 16 equally spaced thresholds from 0 to 7.5 km;
the paper's second enhancement selects thresholds "based on patrol effort
percentiles, to produce a consistent amount of training data for each
classifier", collapsing three hyperparameters into one (the classifier
count) and handling sparse effort tails gracefully.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError


def percentile_thresholds(effort: np.ndarray, n_classifiers: int) -> np.ndarray:
    """Effort thresholds at evenly spaced percentiles of the observed effort.

    The first threshold is always 0 (the unfiltered dataset); the remaining
    ``n_classifiers - 1`` sit at percentiles ``100*i/n_classifiers`` of the
    effort distribution. Duplicate thresholds (ties in a discrete effort
    distribution) are collapsed, so fewer classifiers than requested may
    result — callers should use the returned array's length.

    Parameters
    ----------
    effort:
        Observed patrol effort of the training points (km).
    n_classifiers:
        Requested ensemble size I (the paper used 20 for MFNP/QENP, 10 for
        SWS).

    Returns
    -------
    numpy.ndarray
        Strictly increasing thresholds, starting at 0.
    """
    if n_classifiers < 1:
        raise ConfigurationError(f"n_classifiers must be >= 1, got {n_classifiers}")
    effort = np.asarray(effort, dtype=float)
    if effort.ndim != 1 or effort.size == 0:
        raise DataError("effort must be a non-empty 1-D array")
    if (effort < 0).any():
        raise DataError("patrol effort cannot be negative")
    percentiles = np.linspace(0, 100, n_classifiers, endpoint=False)[1:]
    values = np.percentile(effort, percentiles) if percentiles.size else np.array([])
    thresholds = np.unique(np.r_[0.0, values])
    return thresholds


def equal_spaced_thresholds(
    theta_min: float, theta_max: float, n_classifiers: int
) -> np.ndarray:
    """The original iWare-E scheme: equally spaced thresholds.

    Kept for the ablation benchmark comparing percentile vs equal spacing
    (the paper found percentile selection better because "there may be very
    few cells patrolled with effort between 5 and 6 km").
    """
    if n_classifiers < 1:
        raise ConfigurationError(f"n_classifiers must be >= 1, got {n_classifiers}")
    if theta_min < 0 or theta_max <= theta_min:
        raise ConfigurationError(
            f"need 0 <= theta_min < theta_max, got [{theta_min}, {theta_max}]"
        )
    return np.linspace(theta_min, theta_max, n_classifiers)
