"""The end-to-end data-to-deployment pipeline.

The paper's thesis is that data, prediction, prescription, and deployment
should be designed together. :class:`DataToDeploymentPipeline` wires the
whole chain in one object: generate/ingest data, fit the enhanced iWare-E
predictor, plan risk-aware patrols for every post, and (optionally) run a
simulated field test — the complete Section I workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.predictor import PawsPredictor
from repro.data.generator import ParkData, generate_dataset
from repro.data.profiles import ParkProfile
from repro.exceptions import ConfigurationError, NotFittedError
from repro.fieldtest.analysis import chi_squared_test
from repro.fieldtest.design import FieldTestDesign, design_field_test
from repro.fieldtest.simulate import FieldTrialResult, run_field_trial
from repro.planning.planner import PatrolPlan
from repro.planning.service import PlanService
from repro.runtime.service import RiskMapService


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one park.

    Attributes
    ----------
    data:
        The park simulation bundle (or ingested data).
    predictor:
        The fitted stage-1 model.
    test_auc:
        Held-out AUC of the predictor.
    plans:
        One robust patrol plan per patrol post.
    field_design:
        Selected experiment blocks (None unless a field test was run).
    field_result:
        Simulated trial outcome (None unless a field test was run).
    field_p_value:
        Chi-squared p-value of the trial (None unless a field test was run).
    """

    data: ParkData
    predictor: PawsPredictor
    test_auc: float
    plans: dict[int, PatrolPlan] = field(default_factory=dict)
    field_design: FieldTestDesign | None = None
    field_result: FieldTrialResult | None = None
    field_p_value: float | None = None


class DataToDeploymentPipeline:
    """End-to-end PAWS: data -> prediction -> prescription -> deployment.

    Parameters
    ----------
    profile:
        Park profile to simulate (or whose data to interpret).
    model:
        Stage-1 weak learner family (``"gpb"`` recommended: it is the one
        that quantifies uncertainty).
    beta:
        Robustness weight for patrol planning (Eq. 4).
    horizon, n_patrols, n_segments:
        Planner parameters (patrol length T, patrols per period K, PWL
        segments m).
    n_classifiers:
        iWare-E ensemble size.
    balanced:
        Balanced bagging (use for extreme-imbalance parks like SWS).
    seed:
        Master seed.
    n_jobs:
        Threads for the per-post planning fan-out (plans are bit-identical
        to serial at any worker count).
    """

    def __init__(
        self,
        profile: ParkProfile,
        model: str = "gpb",
        beta: float = 0.8,
        horizon: int = 10,
        n_patrols: int = 2,
        n_segments: int = 8,
        n_classifiers: int = 8,
        n_estimators: int = 4,
        balanced: bool = False,
        seed: int = 0,
        n_jobs: int | None = 1,
    ):
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
        self.profile = profile
        self.model = model
        self.beta = beta
        self.horizon = horizon
        self.n_patrols = n_patrols
        self.n_segments = n_segments
        self.n_classifiers = n_classifiers
        self.n_estimators = n_estimators
        self.balanced = balanced
        self.seed = seed
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------
    def run(
        self,
        test_year: int | None = None,
        field_test: bool = False,
        blocks_per_group: int = 3,
    ) -> PipelineResult:
        """Execute the full pipeline.

        Parameters
        ----------
        test_year:
            Held-out evaluation year (defaults to the last simulated year).
        field_test:
            Also design and simulate a field test after planning.
        blocks_per_group:
            Field-test blocks per risk category.
        """
        data = generate_dataset(self.profile, seed=self.seed)
        if test_year is None:
            test_year = self.profile.years - 1
        split = data.dataset.split_by_test_year(test_year)

        predictor = PawsPredictor(
            model=self.model,
            iware=True,
            n_classifiers=self.n_classifiers,
            n_estimators=self.n_estimators,
            balanced=self.balanced,
            seed=self.seed + 17,
        ).fit(split.train)
        test_auc = predictor.evaluate_auc(split.test)

        plans = self._plan_all_posts(data, predictor)

        result = PipelineResult(
            data=data, predictor=predictor, test_auc=test_auc, plans=plans
        )
        if field_test:
            self._attach_field_test(result, blocks_per_group)
        return result

    # ------------------------------------------------------------------
    def _plan_all_posts(
        self, data: ParkData, predictor: PawsPredictor
    ) -> dict[int, PatrolPlan]:
        park = data.park
        features = predictor.cell_feature_matrix(park, data.recorded_effort[-1])
        # One PlanService per park: the effort-response surfaces are
        # computed once (cached RiskMapService), each post's MILP structure
        # is cached, and the independent per-post solves fan out.
        service = PlanService(
            RiskMapService(predictor),
            park.grid,
            park.patrol_posts,
            horizon=self.horizon,
            n_patrols=self.n_patrols,
            n_segments=self.n_segments,
            n_jobs=self.n_jobs,
        )
        return service.plan_all(features, beta=self.beta)

    def _attach_field_test(
        self, result: PipelineResult, blocks_per_group: int
    ) -> None:
        data = result.data
        park = data.park
        features = result.predictor.cell_feature_matrix(
            park, data.recorded_effort[-1]
        )
        nominal_effort = float(np.median(data.dataset.current_effort))
        risk = result.predictor.predict_proba(features, effort=nominal_effort)
        historical = data.recorded_effort.sum(axis=0)
        rng = np.random.default_rng(self.seed + 23)
        # 3x3 blocks need ~9 disjoint cells each; on small scaled-down parks
        # fall back to single-cell blocks so the three groups fit.
        block_radius = 1 if park.n_cells >= 9 * 3 * blocks_per_group * 2 else 0
        design = design_field_test(
            park.grid,
            risk,
            historical,
            blocks_per_group=blocks_per_group,
            block_radius=block_radius,
            rng=rng,
        )
        trial = run_field_trial(
            design,
            data.poachers,
            rng,
            n_periods=2,
            start_period=self.profile.n_periods,
        )
        __, p_value = chi_squared_test(trial)
        result.field_design = design
        result.field_result = trial
        result.field_p_value = p_value

    # ------------------------------------------------------------------
    def combined_coverage(self, result: PipelineResult) -> np.ndarray:
        """Total prescribed effort per cell across all posts' plans."""
        if not result.plans:
            raise NotFittedError("pipeline result contains no plans")
        coverage = np.zeros(result.data.park.n_cells)
        for plan in result.plans.values():
            coverage += plan.coverage
        return coverage
