"""From-scratch branch-and-bound MILP solver.

A minimal but correct B&B over LP relaxations (scipy ``linprog``/HiGHS as
the LP oracle) used to cross-validate the production HiGHS MILP backend on
small instances and as the ablation "solver" axis. Branches on the most
fractional integer variable; explores depth-first (best-bound tie-break);
prunes by incumbent bound.

This is a generic 0/1-MILP solver: minimise ``c @ x`` subject to
``lb_row <= A x <= ub_row`` and ``0 <= x <= 1``, with a designated subset of
binary variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import ConfigurationError, InfeasibleError, PlanningError


@dataclass
class BnBResult:
    """Solution of a branch-and-bound run."""

    objective_value: float
    x: np.ndarray
    n_nodes_explored: int
    status: str


class BranchAndBoundSolver:
    """Depth-first 0/1 branch and bound with LP-relaxation bounds.

    Parameters
    ----------
    integrality_tol:
        Values within this of an integer count as integral.
    max_nodes:
        Hard cap on explored B&B nodes.
    """

    def __init__(self, integrality_tol: float = 1e-6, max_nodes: int = 20_000):
        if max_nodes < 1:
            raise ConfigurationError(f"max_nodes must be >= 1, got {max_nodes}")
        self.integrality_tol = integrality_tol
        self.max_nodes = max_nodes

    def solve(
        self,
        c: np.ndarray,
        a_matrix: sparse.spmatrix,
        row_lb: np.ndarray,
        row_ub: np.ndarray,
        binary_mask: np.ndarray,
    ) -> BnBResult:
        """Minimise ``c @ x`` over the constrained 0/1-mixed polytope.

        Parameters
        ----------
        c:
            Objective coefficients (minimisation).
        a_matrix:
            Constraint matrix.
        row_lb, row_ub:
            Row bounds (use ``-inf`` / ``inf`` for one-sided rows).
        binary_mask:
            Boolean per-variable flag marking the binaries.
        """
        c = np.asarray(c, dtype=float)
        binary_mask = np.asarray(binary_mask, dtype=bool)
        n = c.size
        if binary_mask.shape != (n,):
            raise ConfigurationError("binary_mask length must match c")

        a_csr = sparse.csr_matrix(a_matrix)
        if a_csr.shape[1] != n:
            raise ConfigurationError("constraint matrix width must match c")

        # Convert two-sided rows into A_ub / b_ub form once.
        a_ub, b_ub, a_eq, b_eq = _split_rows(a_csr, row_lb, row_ub)

        best_obj = np.inf
        best_x: np.ndarray | None = None
        n_explored = 0
        # Each stack entry: (forced_lower, forced_upper) variable bounds.
        stack: list[tuple[np.ndarray, np.ndarray]] = [
            (np.zeros(n), np.ones(n))
        ]
        while stack:
            if n_explored >= self.max_nodes:
                break
            lower, upper = stack.pop()
            n_explored += 1
            res = linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=np.stack([lower, upper], axis=1),
                method="highs",
            )
            if res.status != 0 or res.x is None:
                continue  # infeasible or unbounded branch
            if res.fun >= best_obj - 1e-9:
                continue  # bound prune
            x = res.x
            frac = np.abs(x - np.round(x))
            frac[~binary_mask] = 0.0
            worst = int(np.argmax(frac))
            if frac[worst] <= self.integrality_tol:
                best_obj = float(res.fun)
                best_x = x.copy()
                continue
            # Branch on the most fractional binary; explore the branch that
            # rounds toward the LP value first (pushed last = popped first).
            lo0, up0 = lower.copy(), upper.copy()
            up0[worst] = 0.0
            lo1, up1 = lower.copy(), upper.copy()
            lo1[worst] = 1.0
            if x[worst] >= 0.5:
                stack.append((lo0, up0))
                stack.append((lo1, up1))
            else:
                stack.append((lo1, up1))
                stack.append((lo0, up0))

        if best_x is None:
            if n_explored >= self.max_nodes:
                raise PlanningError(
                    f"branch and bound hit the {self.max_nodes}-node cap "
                    "without an incumbent"
                )
            raise InfeasibleError("branch and bound found no feasible solution")
        # Optimality is about whether the search space was exhausted, not
        # how many nodes that took: hitting max_nodes exactly as the stack
        # empties is still a complete (optimal) search.
        status = "node-limit" if stack else "optimal"
        best_x = best_x.copy()
        best_x[binary_mask] = np.round(best_x[binary_mask])
        return BnBResult(
            objective_value=best_obj,
            x=best_x,
            n_nodes_explored=n_explored,
            status=status,
        )


def _split_rows(
    a_csr: sparse.csr_matrix, row_lb: np.ndarray, row_ub: np.ndarray
) -> tuple[
    sparse.csr_matrix | None,
    np.ndarray | None,
    sparse.csr_matrix | None,
    np.ndarray | None,
]:
    """Split two-sided rows into linprog's A_ub/b_ub + A_eq/b_eq form."""
    row_lb = np.asarray(row_lb, dtype=float)
    row_ub = np.asarray(row_ub, dtype=float)
    if row_lb.shape != row_ub.shape or row_lb.size != a_csr.shape[0]:
        raise ConfigurationError("row bound shapes do not match the matrix")
    eq_rows = np.isclose(row_lb, row_ub)
    ub_parts: list[sparse.csr_matrix] = []
    ub_vals: list[np.ndarray] = []
    finite_ub = ~eq_rows & np.isfinite(row_ub)
    finite_lb = ~eq_rows & np.isfinite(row_lb)
    if finite_ub.any():
        ub_parts.append(a_csr[finite_ub])
        ub_vals.append(row_ub[finite_ub])
    if finite_lb.any():
        ub_parts.append(-a_csr[finite_lb])
        ub_vals.append(-row_lb[finite_lb])
    a_ub = sparse.vstack(ub_parts).tocsr() if ub_parts else None
    b_ub = np.concatenate(ub_vals) if ub_vals else None
    a_eq = a_csr[eq_rows] if eq_rows.any() else None
    b_eq = row_ub[eq_rows] if eq_rows.any() else None
    return a_ub, b_ub, a_eq, b_eq
