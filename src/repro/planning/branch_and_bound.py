"""Certified 0/1 branch-and-bound MILP solver.

Solves ``min c @ x`` subject to ``row_lb <= A x <= row_ub`` and variable
bounds (binaries in ``[0, 1]``), with a designated subset of binary
variables.  Used to cross-validate the production HiGHS MILP backend and
to serve non-concave, low-tolerance solves on the ablation "solver" axis.

Compared to the retained naive reference (``_bnb_reference.py``) this
solver adds, per ROADMAP item 5:

* **Warm-started node LPs** — each :class:`BnBNode` carries its parent's
  optimal simplex basis, and :class:`~repro.planning.simplex.NodeLPOracle`
  re-optimises the child with a certified bounded-variable dual simplex
  instead of a cold HiGHS solve (falling back to cold whenever a warm
  verdict cannot be verified — never wrong, only slow).
* **Pluggable search strategy** — ``dfs`` (the reference order),
  ``best_bound`` (global best-first on the parent LP bound), and
  ``pseudo_cost`` (best-bound node order + pseudo-cost variable choice).
* **Cover / flow-cover cuts** at the root (``cuts.py``), separated from
  the rows flagged knapsack-shaped by ``row_kinds`` metadata.
* **Certified gaps** — every exit reports ``best_bound`` (the minimum
  over all pruned-subtree bounds and the open frontier) and the relative
  ``bound_gap``, so a ``node-limit`` exit is a usable certificate rather
  than a bare status string.
* **Exploration fingerprints** — the branch history is recorded and
  hashed, so the solver-zoo tests pin the search tree itself and a
  speedup that silently changes exploration fails loudly.

All tie-breaks are deterministic: most-fractional branching resolves ties
by lowest variable index (``np.argmax``), the child that rounds toward
the LP value is explored first, and the best-bound heap breaks equal
bounds by creation order.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.exceptions import ConfigurationError, InfeasibleError, PlanningError
from repro.planning.cuts import cuts_to_rows, separate_cover_cuts
from repro.planning.simplex import (
    LP_CUTOFF,
    LP_INFEASIBLE,
    LP_OPTIMAL,
    LP_UNBOUNDED,
    Basis,
    NodeLP,
    NodeLPOracle,
)

#: Node/variable selection strategies accepted by :class:`BranchAndBoundSolver`.
BNB_STRATEGIES = ("dfs", "best_bound", "pseudo_cost")

#: ``row_kinds`` values the cut separator treats as knapsack-shaped.
KNAPSACK_ROW_KINDS = frozenset(
    {"knapsack", "capacity", "sos2-sum", "sos2-adjacency"}
)

_PRUNE_TOL = 1e-9


@dataclass
class BnBNode:
    """One open branch-and-bound node.

    ``bound`` is the parent's LP objective (a valid lower bound for the
    subtree) and ``basis`` the parent's optimal basis used to warm-start
    this node's LP.  ``branch_var``/``branch_value`` record the branching
    decision that created the node (``-1`` for the root) and
    ``parent_frac`` the parent LP value of the branched variable, which
    feeds the pseudo-cost estimates.  The root carries its already-solved
    relaxation in ``lp`` so the cut loop's final solve is not repeated.
    """

    lower: np.ndarray
    upper: np.ndarray
    depth: int
    bound: float
    basis: Basis | None
    seq: int
    branch_var: int = -1
    branch_value: int = -1
    parent_frac: float = 0.0
    lp: NodeLP | None = None


@dataclass
class BnBResult:
    """Solution of a branch-and-bound run.

    ``best_bound`` is a certified lower bound on the true optimum (equal
    to ``objective_value`` on ``optimal`` exits); ``bound_gap`` is the
    relative gap ``(objective_value - best_bound) / max(1, |objective|)``.
    ``branch_history`` lists one ``(branch_var, branch_value, event,
    chosen_var)`` tuple per processed node — event ``B`` branched on
    ``chosen_var``, ``I`` integral, ``P`` pruned before the LP, ``C`` cut
    off by the incumbent bound, ``X`` infeasible — and
    ``exploration_fingerprint`` is its stable hash.
    """

    objective_value: float
    x: np.ndarray
    n_nodes_explored: int
    status: str
    best_bound: float = -np.inf
    bound_gap: float = 0.0
    n_lp_solves: int = 0
    n_cuts: int = 0
    strategy: str = "dfs"
    exploration_fingerprint: str = ""
    branch_history: tuple = ()
    lp_stats: dict = field(default_factory=dict)


def exploration_fingerprint(history) -> str:
    """Stable 16-hex-digit hash of a branch history."""
    payload = ";".join(
        f"{var},{val},{event},{chosen}" for var, val, event, chosen in history
    )
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


class BranchAndBoundSolver:
    """0/1 branch and bound with warm-started LP bounds and root cuts.

    Parameters
    ----------
    integrality_tol:
        Values within this of an integer count as integral.
    max_nodes:
        Hard cap on explored B&B nodes.
    strategy:
        ``dfs`` | ``best_bound`` | ``pseudo_cost`` (see module docstring).
    cuts:
        Separate cover/flow-cover cuts at the root before branching.
    warm_start:
        Warm-start node LPs from the parent basis; ``False`` solves every
        node cold, which is slower but exercises the identical search.
    max_cut_rounds, max_cuts_per_round:
        Root cut-loop limits.
    """

    def __init__(
        self,
        integrality_tol: float = 1e-6,
        max_nodes: int = 20_000,
        strategy: str = "best_bound",
        cuts: bool = True,
        warm_start: bool = True,
        max_cut_rounds: int = 4,
        max_cuts_per_round: int = 16,
    ):
        if max_nodes < 1:
            raise ConfigurationError(f"max_nodes must be >= 1, got {max_nodes}")
        if strategy not in BNB_STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {BNB_STRATEGIES}, got {strategy!r}"
            )
        self.integrality_tol = integrality_tol
        self.max_nodes = max_nodes
        self.strategy = strategy
        self.cuts = cuts
        self.warm_start = warm_start
        self.max_cut_rounds = max_cut_rounds
        self.max_cuts_per_round = max_cuts_per_round

    # ------------------------------------------------------------------
    def solve(
        self,
        c: np.ndarray,
        a_matrix: sparse.spmatrix,
        row_lb: np.ndarray,
        row_ub: np.ndarray,
        binary_mask: np.ndarray,
        var_lb: np.ndarray | None = None,
        var_ub: np.ndarray | None = None,
        row_kinds: tuple | None = None,
    ) -> BnBResult:
        """Minimise ``c @ x`` over the constrained 0/1-mixed polytope.

        Parameters
        ----------
        c:
            Objective coefficients (minimisation).
        a_matrix:
            Constraint matrix.
        row_lb, row_ub:
            Row bounds (use ``-inf`` / ``inf`` for one-sided rows).
        binary_mask:
            Boolean per-variable flag marking the binaries.
        var_lb, var_ub:
            Variable bounds; default ``[0, 1]`` for every column.
        row_kinds:
            Optional per-row tags (see ``MILPStructure.row_kinds``); rows
            tagged in :data:`KNAPSACK_ROW_KINDS` are scanned for cover
            cuts, ``None`` scans every row.
        """
        c = np.asarray(c, dtype=float)
        binary_mask = np.asarray(binary_mask, dtype=bool)
        n = c.size
        if binary_mask.shape != (n,):
            raise ConfigurationError("binary_mask length must match c")
        a_csr = sparse.csr_matrix(a_matrix)
        if a_csr.shape[1] != n:
            raise ConfigurationError("constraint matrix width must match c")
        row_lb = np.asarray(row_lb, dtype=float)
        row_ub = np.asarray(row_ub, dtype=float)
        var_lb = (
            np.zeros(n) if var_lb is None
            else np.array(var_lb, dtype=float, copy=True)
        )
        var_ub = (
            np.ones(n) if var_ub is None
            else np.array(var_ub, dtype=float, copy=True)
        )
        if var_lb.shape != (n,) or var_ub.shape != (n,):
            raise ConfigurationError("variable bound shapes must match c")
        if (var_lb > var_ub).any():
            bad = int(np.flatnonzero(var_lb > var_ub)[0])
            raise ConfigurationError(
                f"variable {bad} has var_lb > var_ub "
                f"({var_lb[bad]} > {var_ub[bad]})"
            )
        if binary_mask.any() and (
            (var_lb[binary_mask] < -1e-9).any()
            or (var_ub[binary_mask] > 1.0 + 1e-9).any()
        ):
            raise ConfigurationError(
                "binary variables must have bounds within [0, 1]"
            )
        if row_kinds is not None and len(row_kinds) != a_csr.shape[0]:
            raise ConfigurationError("row_kinds length must match the row count")

        a_ub, b_ub, a_eq, b_eq = _split_rows(a_csr, row_lb, row_ub)
        oracle = NodeLPOracle(c, a_ub, b_ub, a_eq, b_eq, self.warm_start)
        n_lp = 1
        root = oracle.solve(var_lb, var_ub)
        if root.status == LP_UNBOUNDED:
            raise PlanningError(
                "LP relaxation is unbounded; branch and bound cannot certify "
                "a finite optimum"
            )
        if root.status == LP_INFEASIBLE:
            raise InfeasibleError("branch and bound found no feasible solution")

        # --- Root cut loop (cut-and-branch) --------------------------------
        stats_acc: dict[str, int] = dict(oracle.stats)
        n_cuts = 0
        if self.cuts and binary_mask.any():
            row_mask = None
            if row_kinds is not None:
                row_mask = np.array(
                    [kind in KNAPSACK_ROW_KINDS for kind in row_kinds]
                )
            seen_keys: set = set()
            cut_pool: list = []
            for _ in range(self.max_cut_rounds):
                fresh = separate_cover_cuts(
                    a_csr, row_lb, row_ub, binary_mask, var_lb, var_ub,
                    root.x, row_mask=row_mask,
                    max_cuts=self.max_cuts_per_round, seen=seen_keys,
                )
                if not fresh:
                    break
                cut_pool.extend(fresh)
                cut_rows, cut_rhs = cuts_to_rows(cut_pool, n)
                a_ub_ext = (
                    sparse.vstack([a_ub, cut_rows]).tocsr()
                    if a_ub is not None else cut_rows
                )
                b_ub_ext = (
                    np.concatenate([b_ub, cut_rhs])
                    if b_ub is not None else cut_rhs
                )
                for key, val in oracle.stats.items():
                    stats_acc[key] = stats_acc.get(key, 0) + val
                oracle = NodeLPOracle(
                    c, a_ub_ext, b_ub_ext, a_eq, b_eq, self.warm_start
                )
                n_lp += 1
                root = oracle.solve(var_lb, var_ub)
                if root.status == LP_INFEASIBLE:
                    # Cover cuts never exclude an integer-feasible point.
                    raise InfeasibleError(
                        "branch and bound found no feasible solution"
                    )
            n_cuts = len(cut_pool)

        # --- Main search loop ---------------------------------------------
        use_heap = self.strategy != "dfs"
        best_obj = np.inf
        best_x: np.ndarray | None = None
        proof_bound = np.inf  # min certified bound over discarded subtrees
        n_explored = 0
        seq = 1
        history: list[tuple[int, int, str, int]] = []
        # Per-variable pseudo-cost accumulators (objective degradation per
        # unit of fractionality, split by branch direction).
        pc_sum = np.zeros((2, n))
        pc_cnt = np.zeros((2, n), dtype=int)

        root_node = BnBNode(
            lower=var_lb, upper=var_ub, depth=0,
            bound=root.objective, basis=root.basis, seq=0, lp=root,
        )
        heap_frontier: list[tuple[float, int, BnBNode]] = []
        stack_frontier: list[BnBNode] = []
        if use_heap:
            heapq.heappush(heap_frontier, (root_node.bound, 0, root_node))
        else:
            stack_frontier.append(root_node)

        def frontier_size() -> int:
            return len(heap_frontier) if use_heap else len(stack_frontier)

        while frontier_size():
            if n_explored >= self.max_nodes:
                break
            if use_heap:
                _, _, node = heapq.heappop(heap_frontier)
            else:
                node = stack_frontier.pop()
            cutoff = best_obj - _PRUNE_TOL if best_x is not None else np.inf
            if node.bound >= cutoff:
                proof_bound = min(proof_bound, node.bound)
                if use_heap:
                    # The heap pops nodes in bound order, so every open
                    # node is also >= cutoff: the incumbent is certified.
                    heap_frontier.clear()
                    break
                n_explored += 1
                history.append((node.branch_var, node.branch_value, "P", -1))
                continue
            n_explored += 1
            if node.lp is not None:
                lp = node.lp
                node.lp = None
            else:
                lp = oracle.solve(
                    node.lower, node.upper, basis=node.basis, cutoff=cutoff
                )
                n_lp += 1
            if lp.status == LP_UNBOUNDED:  # impossible below a bounded root
                raise PlanningError("node LP relaxation is unbounded")
            if lp.status == LP_INFEASIBLE:
                history.append((node.branch_var, node.branch_value, "X", -1))
                continue
            if lp.status == LP_OPTIMAL and node.branch_var >= 0:
                self._update_pseudo_cost(node, lp.objective, pc_sum, pc_cnt)
            if lp.status == LP_CUTOFF or lp.objective >= cutoff:
                proof_bound = min(proof_bound, lp.objective)
                history.append((node.branch_var, node.branch_value, "C", -1))
                continue
            x = lp.x
            frac = np.abs(x - np.round(x))
            frac[~binary_mask] = 0.0
            worst = int(np.argmax(frac))  # ties -> lowest index
            if frac[worst] <= self.integrality_tol:
                x_round = x.copy()
                x_round[binary_mask] = np.round(x_round[binary_mask])
                obj_cand = float(c @ x_round)
                history.append((node.branch_var, node.branch_value, "I", -1))
                if obj_cand < best_obj:
                    best_obj = obj_cand
                    best_x = x_round
                continue
            if self.strategy == "pseudo_cost":
                bvar = self._select_pseudo_cost(frac, x, pc_sum, pc_cnt)
            else:
                bvar = worst
            history.append((node.branch_var, node.branch_value, "B", bvar))
            down = BnBNode(
                lower=node.lower, upper=node.upper.copy(),
                depth=node.depth + 1, bound=lp.objective, basis=lp.basis,
                seq=0, branch_var=bvar, branch_value=0,
                parent_frac=float(x[bvar]),
            )
            down.upper[bvar] = 0.0
            up = BnBNode(
                lower=node.lower.copy(), upper=node.upper,
                depth=node.depth + 1, bound=lp.objective, basis=lp.basis,
                seq=0, branch_var=bvar, branch_value=1,
                parent_frac=float(x[bvar]),
            )
            up.lower[bvar] = 1.0
            # Explore the child that rounds toward the LP value first.
            first, second = (up, down) if x[bvar] >= 0.5 else (down, up)
            if use_heap:
                for child in (first, second):
                    child.seq = seq
                    seq += 1
                    heapq.heappush(
                        heap_frontier, (child.bound, child.seq, child)
                    )
            else:
                second.seq = seq
                first.seq = seq + 1
                seq += 2
                stack_frontier.append(second)
                stack_frontier.append(first)

        # --- Result assembly ----------------------------------------------
        open_nodes = (
            [node for _, _, node in heap_frontier]
            if use_heap else stack_frontier
        )
        if best_x is None:
            if open_nodes:
                raise PlanningError(
                    f"branch and bound hit the {self.max_nodes}-node cap "
                    "without an incumbent"
                )
            raise InfeasibleError("branch and bound found no feasible solution")
        for key, val in oracle.stats.items():
            stats_acc[key] = stats_acc.get(key, 0) + val
        open_bound = min(
            (node.bound for node in open_nodes), default=np.inf
        )
        certified = min(proof_bound, open_bound, best_obj)
        status = "node-limit" if open_nodes else "optimal"
        if status == "optimal" or certified >= best_obj - 1e-8:
            best_bound, gap = best_obj, 0.0
        else:
            best_bound = certified
            gap = (best_obj - certified) / max(1.0, abs(best_obj))
        return BnBResult(
            objective_value=best_obj,
            x=best_x.copy(),
            n_nodes_explored=n_explored,
            status=status,
            best_bound=best_bound,
            bound_gap=gap,
            n_lp_solves=n_lp,
            n_cuts=n_cuts,
            strategy=self.strategy,
            exploration_fingerprint=exploration_fingerprint(history),
            branch_history=tuple(history),
            lp_stats=stats_acc,
        )

    # ------------------------------------------------------------------
    def _update_pseudo_cost(
        self,
        node: BnBNode,
        child_obj: float,
        pc_sum: np.ndarray,
        pc_cnt: np.ndarray,
    ) -> None:
        """Record the per-unit objective degradation of a branch."""
        if not np.isfinite(node.bound):
            return
        gain = max(child_obj - node.bound, 0.0)
        moved = (
            node.parent_frac if node.branch_value == 0
            else 1.0 - node.parent_frac
        )
        if moved > 1e-9:
            pc_sum[node.branch_value, node.branch_var] += gain / moved
            pc_cnt[node.branch_value, node.branch_var] += 1

    def _select_pseudo_cost(
        self,
        frac: np.ndarray,
        x: np.ndarray,
        pc_sum: np.ndarray,
        pc_cnt: np.ndarray,
    ) -> int:
        """Product-rule pseudo-cost branching over the fractional binaries.

        Uninitialised directions fall back to the average observed
        pseudo-cost (or 1.0 before any observation), so the very first
        branchings reduce to most-fractional selection.
        """
        cand = np.flatnonzero(frac > self.integrality_tol)
        scores = np.empty(cand.size)
        for axis, moved in ((0, x[cand]), (1, 1.0 - x[cand])):
            cnt = pc_cnt[axis, cand]
            total = pc_cnt[axis].sum()
            default = pc_sum[axis].sum() / total if total else 1.0
            per_unit = np.where(
                cnt > 0, pc_sum[axis, cand] / np.maximum(cnt, 1), default
            )
            est = np.maximum(per_unit * moved, 1e-12)
            scores = est if axis == 0 else scores * est
        return int(cand[np.argmax(scores)])  # ties -> lowest index


def _split_rows(
    a_csr: sparse.csr_matrix, row_lb: np.ndarray, row_ub: np.ndarray
) -> tuple[
    sparse.csr_matrix | None,
    np.ndarray | None,
    sparse.csr_matrix | None,
    np.ndarray | None,
]:
    """Split two-sided rows into linprog's A_ub/b_ub + A_eq/b_eq form.

    Rejects malformed bounds (NaN, or ``row_lb > row_ub``) with a
    :class:`ConfigurationError` naming the offending row, instead of
    letting them fall through to opaque LP-solver failures.
    """
    row_lb = np.asarray(row_lb, dtype=float)
    row_ub = np.asarray(row_ub, dtype=float)
    if row_lb.shape != row_ub.shape or row_lb.size != a_csr.shape[0]:
        raise ConfigurationError("row bound shapes do not match the matrix")
    nan_rows = np.isnan(row_lb) | np.isnan(row_ub)
    if nan_rows.any():
        bad = int(np.flatnonzero(nan_rows)[0])
        raise ConfigurationError(
            f"row {bad} has NaN bounds (lb={row_lb[bad]}, ub={row_ub[bad]})"
        )
    inverted = row_lb > row_ub
    if inverted.any():
        bad = int(np.flatnonzero(inverted)[0])
        raise ConfigurationError(
            f"row {bad} has row_lb > row_ub ({row_lb[bad]} > {row_ub[bad]})"
        )
    eq_rows = np.isclose(row_lb, row_ub)
    ub_parts: list[sparse.csr_matrix] = []
    ub_vals: list[np.ndarray] = []
    finite_ub = ~eq_rows & np.isfinite(row_ub)
    finite_lb = ~eq_rows & np.isfinite(row_lb)
    if finite_ub.any():
        ub_parts.append(a_csr[finite_ub])
        ub_vals.append(row_ub[finite_ub])
    if finite_lb.any():
        ub_parts.append(-a_csr[finite_lb])
        ub_vals.append(-row_lb[finite_lb])
    a_ub = sparse.vstack(ub_parts).tocsr() if ub_parts else None
    b_ub = np.concatenate(ub_vals) if ub_vals else None
    a_eq = a_csr[eq_rows] if eq_rows.any() else None
    b_eq = row_ub[eq_rows] if eq_rows.any() else None
    return a_ub, b_ub, a_eq, b_eq
