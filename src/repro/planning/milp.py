"""The patrol-planning MILP (problem (P), Section VI-B).

Decision variables:

* ``f_e`` — flow on each edge of the time-unrolled graph (continuous; one
  unit of flow = the defender's mixed strategy over patrol routes);
* ``lambda_{v,j}`` — PWL convex-combination weights per cell and breakpoint;
* ``z_{v,s}`` — binary segment selectors enforcing the SOS2 condition (the
  robust objective is generally non-concave, so segment binaries are needed
  for a correct PWL encoding).

Constraints: unit flow out of the source and into the sink, conservation at
interior nodes, coverage linking ``c_v = K * (inflow(v) + [v = source])``
expressed through the lambda representation, and the SOS2 adjacency rows.
Solved with ``scipy.optimize.milp`` (HiGHS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import LinearConstraint, Bounds, milp

from repro.exceptions import ConfigurationError, InfeasibleError, PlanningError
from repro.planning.graph import TimeUnrolledGraph
from repro.planning.pwl import PiecewiseLinear


@dataclass
class MILPModel:
    """Assembled matrices of one problem (P) instance.

    Exposed so alternative solvers (e.g. the from-scratch branch and bound)
    can consume exactly the same model HiGHS sees.
    """

    objective: np.ndarray
    matrix: sparse.csc_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    integrality: np.ndarray
    cells: list[int]
    visit_edges: dict[int, list[int]]


@dataclass
class MILPSolution:
    """Result of one patrol-planning solve.

    Attributes
    ----------
    objective_value:
        Total PWL utility of the optimal coverage.
    coverage:
        ``(n_cells,)`` optimal patrol effort per park cell (km/period).
    edge_flows:
        ``(n_edges,)`` flow on each time-unrolled edge (unit total).
    status:
        Solver status string.
    """

    objective_value: float
    coverage: np.ndarray
    edge_flows: np.ndarray
    status: str


class PatrolMILP:
    """Builder/solver for problem (P) on one patrol post.

    Parameters
    ----------
    graph:
        Time-unrolled patrol graph for the post.
    n_patrols:
        K — number of patrols per period; scales flow into km of coverage.
    time_limit:
        HiGHS wall-clock limit in seconds.
    mip_gap:
        Relative optimality gap at which HiGHS may stop.
    """

    def __init__(
        self,
        graph: TimeUnrolledGraph,
        n_patrols: int = 4,
        time_limit: float = 60.0,
        mip_gap: float = 1e-4,
    ):
        if n_patrols < 1:
            raise ConfigurationError(f"n_patrols must be >= 1, got {n_patrols}")
        self.graph = graph
        self.n_patrols = int(n_patrols)
        self.time_limit = time_limit
        self.mip_gap = mip_gap

    # ------------------------------------------------------------------
    @property
    def max_coverage(self) -> float:
        """Coverage if every patrol spent every step in one cell: T*K."""
        return float(self.graph.horizon * self.n_patrols)

    def _check_utilities(
        self, utilities: dict[int, PiecewiseLinear]
    ) -> list[int]:
        cells = sorted(utilities)
        reachable = set(int(v) for v in self.graph.reachable_cells)
        for v in cells:
            if v not in reachable:
                raise ConfigurationError(
                    f"utility given for unreachable cell {v}"
                )
            pwl = utilities[v]
            if pwl.xs[0] > 1e-9:
                raise ConfigurationError(
                    f"cell {v}: PWL domain must start at 0, got {pwl.xs[0]}"
                )
            if pwl.xs[-1] < self.max_coverage - 1e-9:
                raise ConfigurationError(
                    f"cell {v}: PWL domain must reach T*K={self.max_coverage}, "
                    f"got {pwl.xs[-1]}"
                )
        missing = reachable - set(cells)
        if missing:
            raise ConfigurationError(
                f"utilities missing for reachable cells {sorted(missing)[:5]}..."
                if len(missing) > 5
                else f"utilities missing for reachable cells {sorted(missing)}"
            )
        return cells

    # ------------------------------------------------------------------
    def build_model(self, utilities: dict[int, PiecewiseLinear]) -> MILPModel:
        """Assemble the constraint matrices of problem (P).

        Parameters
        ----------
        utilities:
            Per-reachable-cell PWL utility functions of coverage, each with
            domain [0, T*K].
        """
        cells = self._check_utilities(utilities)
        graph = self.graph
        n_edges = graph.n_edges
        # Variable layout: [f (n_edges) | lambda blocks | z blocks].
        lam_offset: dict[int, int] = {}
        z_offset: dict[int, int] = {}
        cursor = n_edges
        for v in cells:
            lam_offset[v] = cursor
            cursor += utilities[v].xs.size
        for v in cells:
            z_offset[v] = cursor
            cursor += utilities[v].n_segments
        n_vars = cursor

        objective = np.zeros(n_vars)
        for v in cells:
            ys = utilities[v].ys
            objective[lam_offset[v] : lam_offset[v] + ys.size] = -ys  # maximise

        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        lbs: list[float] = []
        ubs: list[float] = []
        row_id = 0

        def add_row(col_idx: list[int], coeffs: list[float], lo: float, hi: float) -> None:
            nonlocal row_id
            rows.append(np.full(len(col_idx), row_id))
            cols.append(np.asarray(col_idx))
            vals.append(np.asarray(coeffs, dtype=float))
            lbs.append(lo)
            ubs.append(hi)
            row_id += 1

        out_edges, in_edges = graph.incidence_lists()

        # Unit flow out of the source and into the sink; conservation inside.
        src, snk = graph.source_node, graph.sink_node
        add_row(out_edges[src], [1.0] * len(out_edges[src]), 1.0, 1.0)
        add_row(in_edges[snk], [1.0] * len(in_edges[snk]), 1.0, 1.0)
        for node in range(graph.n_nodes):
            if node in (src, snk):
                continue
            idx = in_edges[node] + out_edges[node]
            coef = [1.0] * len(in_edges[node]) + [-1.0] * len(out_edges[node])
            if idx:
                add_row(idx, coef, 0.0, 0.0)

        # Coverage linking: sum_j lambda_vj x_j - K*(inflow_v + 1{v=src}) = 0.
        visit_edges = graph.cell_visit_edges()
        K = float(self.n_patrols)
        for v in cells:
            xs = utilities[v].xs
            lam_idx = list(range(lam_offset[v], lam_offset[v] + xs.size))
            edge_idx = visit_edges.get(v, [])
            col_idx = lam_idx + edge_idx
            coeffs = list(xs) + [-K] * len(edge_idx)
            rhs = K if v == graph.source_cell else 0.0
            add_row(col_idx, coeffs, rhs, rhs)

        # Convexity and SOS2 adjacency.
        for v in cells:
            m = utilities[v].n_segments
            lam_idx = list(range(lam_offset[v], lam_offset[v] + m + 1))
            add_row(lam_idx, [1.0] * (m + 1), 1.0, 1.0)
            z_idx = list(range(z_offset[v], z_offset[v] + m))
            add_row(z_idx, [1.0] * m, 1.0, 1.0)
            for j in range(m + 1):
                adjacent = []
                if j > 0:
                    adjacent.append(z_idx[j - 1])
                if j < m:
                    adjacent.append(z_idx[j])
                add_row(
                    [lam_idx[j]] + adjacent,
                    [1.0] + [-1.0] * len(adjacent),
                    -np.inf,
                    0.0,
                )

        matrix = sparse.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(row_id, n_vars),
        ).tocsc()

        integrality = np.zeros(n_vars)
        for v in cells:
            z0 = z_offset[v]
            integrality[z0 : z0 + utilities[v].n_segments] = 1

        return MILPModel(
            objective=objective,
            matrix=matrix,
            row_lb=np.asarray(lbs),
            row_ub=np.asarray(ubs),
            integrality=integrality,
            cells=cells,
            visit_edges=visit_edges,
        )

    def solve(self, utilities: dict[int, PiecewiseLinear]) -> MILPSolution:
        """Maximise total PWL utility over the flow polytope (HiGHS)."""
        model = self.build_model(utilities)
        n_vars = model.objective.size
        constraints = LinearConstraint(model.matrix, model.row_lb, model.row_ub)
        result = milp(
            c=model.objective,
            constraints=constraints,
            bounds=Bounds(np.zeros(n_vars), np.ones(n_vars)),
            integrality=model.integrality,
            options={"time_limit": self.time_limit, "mip_rel_gap": self.mip_gap},
        )
        if result.status == 2:
            raise InfeasibleError("patrol-planning MILP is infeasible")
        if result.x is None:
            raise PlanningError(f"MILP solve failed: {result.message}")
        return self.extract_solution(model, result.x, float(-result.fun),
                                     str(result.message))

    def extract_solution(
        self,
        model: MILPModel,
        x: np.ndarray,
        objective_value: float,
        status: str,
    ) -> MILPSolution:
        """Turn a raw variable vector into coverage and flows."""
        n_edges = self.graph.n_edges
        flows = np.asarray(x[:n_edges], dtype=float)
        coverage = np.zeros(self.graph.grid.n_cells)
        K = float(self.n_patrols)
        for v in model.cells:
            edge_idx = model.visit_edges.get(v, [])
            inflow = float(flows[edge_idx].sum()) if edge_idx else 0.0
            if v == self.graph.source_cell:
                inflow += 1.0
            coverage[v] = K * inflow
        return MILPSolution(
            objective_value=objective_value,
            coverage=coverage,
            edge_flows=flows,
            status=status,
        )
