"""The patrol-planning MILP (problem (P), Section VI-B).

Decision variables:

* ``f_e`` — flow on each edge of the time-unrolled graph (continuous; one
  unit of flow = the defender's mixed strategy over patrol routes);
* ``lambda_{v,j}`` — PWL convex-combination weights per cell and breakpoint;
* ``z_{v,s}`` — binary segment selectors enforcing the SOS2 condition (the
  robust objective is generally non-concave, so segment binaries are needed
  for a correct PWL encoding).

Constraints: unit flow out of the source and into the sink, conservation at
interior nodes, coverage linking ``c_v = K * (inflow(v) + [v = source])``
expressed through the lambda representation, and the SOS2 adjacency rows.
Solved with ``scipy.optimize.milp`` (HiGHS).

Two structural optimisations keep repeated solves cheap:

* **Model-structure reuse** — everything except the objective row (the
  sparse constraint matrix, row bounds, integrality) depends only on the
  graph and the PWL breakpoints, not on the utility *values*. A beta sweep
  changes only the ``ys``, so :meth:`PatrolMILP.build_structure` caches the
  assembled :class:`MILPStructure` and re-solves swap in a fresh objective
  vector instead of rebuilding the matrix.
* **LP fast path** — when every per-cell utility is concave
  (:meth:`~repro.planning.pwl.PiecewiseLinear.is_concave`), the lambda
  relaxation is exact: a maximising LP never pays for choosing
  non-adjacent breakpoints, so the ``z`` binaries and SOS2 rows are dropped
  entirely and the problem solves as a pure LP.
* **Certified envelope fast path** — fine PWL sampling of the step-like
  iWare-E effort response produces *mildly* non-concave utilities, which
  used to cliff every solve back to the full SOS2 MILP (the Fig. 9
  25-segment spike). In ``mode="auto"``, non-concave utilities are first
  relaxed to their least concave majorants
  (:meth:`~repro.planning.pwl.PiecewiseLinear.concave_envelope`) and solved
  as a pure LP. The LP optimum is a valid upper bound; evaluating the *true*
  utilities at the returned coverage gives a lower bound — when the two
  agree to within ``envelope_gap`` (relative; default 1%, far inside the PWL
  discretisation error this model already carries) the solution is accepted
  with a certificate (``method="lp-envelope"``, certified gap recorded in
  ``MILPSolution.bound_gap``). Otherwise the few cells whose envelope gap
  was actually realised get their ``z`` binaries back and the mixed model is
  re-solved (``method="milp-partial"``); only if the certificate still fails
  does the full MILP run. Every accepted solution reports the true (not
  envelope) objective value. ``envelope_gap=0`` tightens the certificate to
  ``mip_gap`` — the same optimality guarantee the full MILP itself provides.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import LinearConstraint, Bounds, milp

from repro.exceptions import ConfigurationError, InfeasibleError, PlanningError
from repro.planning.branch_and_bound import BNB_STRATEGIES, BranchAndBoundSolver
from repro.planning.graph import TimeUnrolledGraph
from repro.planning.pwl import PiecewiseLinear
from repro.runtime.concurrency import thread_shared

#: Accepted values for the ``mode`` argument of :meth:`PatrolMILP.solve`.
#: ``bnb`` routes the full SOS2 model through the from-scratch certified
#: branch-and-bound solver instead of HiGHS.
SOLVER_MODES = ("auto", "lp", "milp", "bnb")


@dataclass
class MILPStructure:
    """Objective-independent part of one problem (P) instance.

    Everything here is a function of the graph and the PWL *breakpoints*
    only — utility values enter solely through the objective vector — so a
    structure can be assembled once and reused across beta sweeps.

    Attributes
    ----------
    matrix, row_lb, row_ub, integrality:
        The constraint system (``lp_mode`` structures have all-continuous
        integrality and no SOS2 rows).
    cells:
        Sorted reachable cell ids covered by the utility dict.
    visit_edges:
        Per-cell edge indices entering any of the cell's (cell, t) copies.
    lam_offset:
        Per-cell start index of its lambda block in the variable vector.
    n_vars:
        Total variable count.
    lp_mode:
        True when every ``z`` binary was dropped (concave fast path).
    binary_cells:
        Cells that carry ``z`` binaries; ``None`` means all of them (the
        classic MILP). The certified envelope path re-solves with binaries
        on just the offending cells.
    row_kinds:
        Per-row structural tag (``flow-source``, ``flow-sink``,
        ``flow-balance``, ``coverage-link``, ``convexity``, ``sos2-sum``,
        ``sos2-adjacency``) so downstream consumers — e.g. the cover-cut
        separator of the branch-and-bound solver — can recognise the
        knapsack-shaped rows without re-deriving the layout.
    """

    matrix: sparse.csc_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    integrality: np.ndarray
    cells: list[int]
    visit_edges: dict[int, list[int]]
    lam_offset: dict[int, int]
    n_vars: int
    lp_mode: bool
    binary_cells: tuple[int, ...] | None = None
    row_kinds: tuple[str, ...] = ()


@dataclass
class MILPModel:
    """Assembled matrices of one problem (P) instance.

    Exposed so alternative solvers (e.g. the from-scratch branch and bound)
    can consume exactly the same model HiGHS sees.
    """

    objective: np.ndarray
    matrix: sparse.csc_matrix
    row_lb: np.ndarray
    row_ub: np.ndarray
    integrality: np.ndarray
    cells: list[int]
    visit_edges: dict[int, list[int]]
    row_kinds: tuple[str, ...] = ()


@dataclass
class MILPSolution:
    """Result of one patrol-planning solve.

    Attributes
    ----------
    objective_value:
        Total PWL utility of the optimal coverage.
    coverage:
        ``(n_cells,)`` optimal patrol effort per park cell (km/period).
    edge_flows:
        ``(n_edges,)`` flow on each time-unrolled edge (unit total).
    status:
        Solver status string.
    method:
        ``"lp"`` when the concave fast path solved the instance as a pure
        LP, ``"lp-envelope"`` / ``"milp-partial"`` when the certified
        envelope path accepted a relaxed solve (objective_value is the
        *true* utility of the coverage), and ``"milp"`` for the full SOS2
        formulation.
    bound_gap:
        Certified relative optimality gap: the relaxation's upper bound
        minus the realised utility, over the bound. Zero on the exact
        paths; at most ``max(mip_gap, envelope_gap)`` on the certified
        envelope paths.
    """

    objective_value: float
    coverage: np.ndarray
    edge_flows: np.ndarray
    status: str
    method: str = "milp"
    bound_gap: float = 0.0


@thread_shared
class PatrolMILP:
    """Builder/solver for problem (P) on one patrol post.

    The builder is ``@thread_shared``: its structure cache mutates under
    ``self._lock``, so one post's planner can serve concurrent solves
    (beta sweeps fanning out over request threads reuse one cached
    constraint matrix; racing cold builds are deduplicated on insert).

    Parameters
    ----------
    graph:
        Time-unrolled patrol graph for the post.
    n_patrols:
        K — number of patrols per period; scales flow into km of coverage.
    time_limit:
        HiGHS wall-clock limit in seconds.
    mip_gap:
        Relative optimality gap at which HiGHS may stop.
    envelope_gap:
        Acceptance tolerance (relative) of the certified envelope fast path
        in ``mode="auto"``: a relaxed solve is accepted when its valid
        upper bound is within ``max(mip_gap, envelope_gap)`` of the
        realised utility. The default 1% sits far inside the PWL
        discretisation error of the model itself; 0 tightens the
        certificate to ``mip_gap``, the same guarantee the full SOS2 MILP
        provides.
    bnb_strategy:
        Node/variable selection of the from-scratch branch-and-bound
        backend used by ``mode="bnb"`` (one of
        :data:`~repro.planning.branch_and_bound.BNB_STRATEGIES`).
    bnb_max_nodes:
        Node cap of the ``mode="bnb"`` backend.
    """

    def __init__(
        self,
        graph: TimeUnrolledGraph,
        n_patrols: int = 4,
        time_limit: float = 60.0,
        mip_gap: float = 1e-4,
        envelope_gap: float = 1e-2,
        bnb_strategy: str = "best_bound",
        bnb_max_nodes: int = 100_000,
    ):
        if n_patrols < 1:
            raise ConfigurationError(f"n_patrols must be >= 1, got {n_patrols}")
        if envelope_gap < 0:
            raise ConfigurationError(
                f"envelope_gap must be >= 0, got {envelope_gap}"
            )
        if bnb_strategy not in BNB_STRATEGIES:
            raise ConfigurationError(
                f"bnb_strategy must be one of {BNB_STRATEGIES}, "
                f"got '{bnb_strategy}'"
            )
        self.graph = graph
        self.n_patrols = int(n_patrols)
        self.time_limit = time_limit
        self.mip_gap = mip_gap
        self.envelope_gap = envelope_gap
        self.bnb_strategy = bnb_strategy
        self.bnb_max_nodes = int(bnb_max_nodes)
        # Mutated only under self._lock (the @thread_shared contract, RP004).
        self._lock = threading.RLock()
        self._structures: dict[tuple, MILPStructure] = {}
        self._structure_hits = 0
        self._structure_misses = 0

    @property
    def structure_hits(self) -> int:
        """Structure-cache hits so far (read-only)."""
        return self._structure_hits

    @property
    def structure_misses(self) -> int:
        """Structure-cache misses (i.e. assembled systems) so far (read-only)."""
        return self._structure_misses

    # ------------------------------------------------------------------
    @property
    def max_coverage(self) -> float:
        """Coverage if every patrol spent every step in one cell: T*K."""
        return float(self.graph.horizon * self.n_patrols)

    def _check_utilities(
        self, utilities: dict[int, PiecewiseLinear]
    ) -> list[int]:
        cells = sorted(utilities)
        reachable = set(int(v) for v in self.graph.reachable_cells)
        for v in cells:
            if v not in reachable:
                raise ConfigurationError(
                    f"utility given for unreachable cell {v}"
                )
            pwl = utilities[v]
            if pwl.xs[0] > 1e-9:
                raise ConfigurationError(
                    f"cell {v}: PWL domain must start at 0, got {pwl.xs[0]}"
                )
            if pwl.xs[-1] < self.max_coverage - 1e-9:
                raise ConfigurationError(
                    f"cell {v}: PWL domain must reach T*K={self.max_coverage}, "
                    f"got {pwl.xs[-1]}"
                )
        missing = reachable - set(cells)
        if missing:
            raise ConfigurationError(
                f"utilities missing for reachable cells {sorted(missing)[:5]}..."
                if len(missing) > 5
                else f"utilities missing for reachable cells {sorted(missing)}"
            )
        return cells

    @staticmethod
    def _structure_key(
        cells: list[int],
        utilities: dict[int, PiecewiseLinear],
        lp_mode: bool,
        binary_cells: tuple[int, ...] | None,
    ) -> tuple:
        digest = hashlib.sha256()
        for v in cells:
            xs = utilities[v].xs
            # Delimit each array by its length so different per-cell
            # partitions of identical concatenated bytes cannot collide.
            digest.update(str(xs.size).encode())
            digest.update(xs.tobytes())
        return (lp_mode, binary_cells, tuple(cells), digest.hexdigest())

    # ------------------------------------------------------------------
    def build_structure(
        self,
        utilities: dict[int, PiecewiseLinear],
        lp_mode: bool = False,
        binary_cells: tuple[int, ...] | list[int] | None = None,
    ) -> MILPStructure:
        """Assemble (or fetch from cache) the constraint system.

        The result depends only on the graph, the per-cell breakpoint
        abscissae, ``lp_mode``, and the ``binary_cells`` selection — beta
        sweeps and other objective-only changes hit the cache.

        Parameters
        ----------
        binary_cells:
            Cells that carry ``z`` binaries and SOS2 rows; ``None`` means
            all of them. Ignored in ``lp_mode`` (no binaries at all).
        """
        cells = self._check_utilities(utilities)
        if lp_mode:
            binary_set: set[int] = set()
            binary_key: tuple[int, ...] | None = None
        elif binary_cells is None:
            binary_set = set(cells)
            binary_key = None
        else:
            binary_set = set(int(v) for v in binary_cells)
            binary_key = tuple(sorted(binary_set))
        key = self._structure_key(cells, utilities, lp_mode, binary_key)
        with self._lock:
            cached = self._structures.get(key)
            if cached is not None:
                self._structure_hits += 1
                return cached
            self._structure_misses += 1
        # Assembly happens outside the lock: racing cold builds produce the
        # same (deterministic) structure and the incumbent insertion wins.

        graph = self.graph
        n_edges = graph.n_edges
        # Variable layout: [f (n_edges) | lambda blocks | z blocks (MILP)].
        lam_offset: dict[int, int] = {}
        z_offset: dict[int, int] = {}
        cursor = n_edges
        for v in cells:
            lam_offset[v] = cursor
            cursor += utilities[v].xs.size
        for v in cells:
            if v in binary_set:
                z_offset[v] = cursor
                cursor += utilities[v].n_segments
        n_vars = cursor

        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        lbs: list[float] = []
        ubs: list[float] = []
        kinds: list[str] = []
        row_id = 0

        def add_row(
            col_idx: list[int],
            coeffs: list[float],
            lo: float,
            hi: float,
            kind: str,
        ) -> None:
            nonlocal row_id
            rows.append(np.full(len(col_idx), row_id))
            cols.append(np.asarray(col_idx))
            vals.append(np.asarray(coeffs, dtype=float))
            lbs.append(lo)
            ubs.append(hi)
            kinds.append(kind)
            row_id += 1

        out_edges, in_edges = graph.incidence_lists()

        # Unit flow out of the source and into the sink; conservation inside.
        src, snk = graph.source_node, graph.sink_node
        add_row(
            out_edges[src], [1.0] * len(out_edges[src]), 1.0, 1.0, "flow-source"
        )
        add_row(
            in_edges[snk], [1.0] * len(in_edges[snk]), 1.0, 1.0, "flow-sink"
        )
        for node in range(graph.n_nodes):
            if node in (src, snk):
                continue
            idx = in_edges[node] + out_edges[node]
            coef = [1.0] * len(in_edges[node]) + [-1.0] * len(out_edges[node])
            if idx:
                add_row(idx, coef, 0.0, 0.0, "flow-balance")

        # Coverage linking: sum_j lambda_vj x_j - K*(inflow_v + 1{v=src}) = 0.
        visit_edges = graph.cell_visit_edges()
        K = float(self.n_patrols)
        for v in cells:
            xs = utilities[v].xs
            lam_idx = list(range(lam_offset[v], lam_offset[v] + xs.size))
            edge_idx = visit_edges.get(v, [])
            col_idx = lam_idx + edge_idx
            coeffs = list(xs) + [-K] * len(edge_idx)
            rhs = K if v == graph.source_cell else 0.0
            add_row(col_idx, coeffs, rhs, rhs, "coverage-link")

        # Convexity; plus the SOS2 adjacency system for binary cells (concave
        # utilities make the plain lambda relaxation exact, so their cells
        # carry no binaries).
        for v in cells:
            m = utilities[v].n_segments
            lam_idx = list(range(lam_offset[v], lam_offset[v] + m + 1))
            add_row(lam_idx, [1.0] * (m + 1), 1.0, 1.0, "convexity")
            if v not in binary_set:
                continue
            z_idx = list(range(z_offset[v], z_offset[v] + m))
            add_row(z_idx, [1.0] * m, 1.0, 1.0, "sos2-sum")
            for j in range(m + 1):
                adjacent = []
                if j > 0:
                    adjacent.append(z_idx[j - 1])
                if j < m:
                    adjacent.append(z_idx[j])
                add_row(
                    [lam_idx[j]] + adjacent,
                    [1.0] + [-1.0] * len(adjacent),
                    -np.inf,
                    0.0,
                    "sos2-adjacency",
                )

        matrix = sparse.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(row_id, n_vars),
        ).tocsc()

        integrality = np.zeros(n_vars)
        for v, z0 in z_offset.items():
            integrality[z0 : z0 + utilities[v].n_segments] = 1

        structure = MILPStructure(
            matrix=matrix,
            row_lb=np.asarray(lbs),
            row_ub=np.asarray(ubs),
            integrality=integrality,
            cells=cells,
            visit_edges=visit_edges,
            lam_offset=lam_offset,
            n_vars=n_vars,
            lp_mode=lp_mode,
            binary_cells=binary_key,
            row_kinds=tuple(kinds),
        )
        with self._lock:
            incumbent = self._structures.get(key)
            if incumbent is not None:
                return incumbent
            self._structures[key] = structure
        return structure

    def objective_vector(
        self, structure: MILPStructure, utilities: dict[int, PiecewiseLinear]
    ) -> np.ndarray:
        """Minimisation objective (−utility) for a cached structure."""
        objective = np.zeros(structure.n_vars)
        for v in structure.cells:
            ys = utilities[v].ys
            off = structure.lam_offset[v]
            objective[off : off + ys.size] = -ys  # maximise
        return objective

    def build_model(
        self, utilities: dict[int, PiecewiseLinear], lp_mode: bool = False
    ) -> MILPModel:
        """Assemble the full model of problem (P).

        Parameters
        ----------
        utilities:
            Per-reachable-cell PWL utility functions of coverage, each with
            domain [0, T*K].
        lp_mode:
            Drop the ``z`` binaries and SOS2 rows (only exact when every
            utility is concave).
        """
        structure = self.build_structure(utilities, lp_mode=lp_mode)
        return MILPModel(
            objective=self.objective_vector(structure, utilities),
            matrix=structure.matrix,
            row_lb=structure.row_lb,
            row_ub=structure.row_ub,
            integrality=structure.integrality,
            cells=structure.cells,
            visit_edges=structure.visit_edges,
            row_kinds=structure.row_kinds,
        )

    # ------------------------------------------------------------------
    #: Maximum certified-envelope rounds (one pure-LP round plus partial
    #: re-solves) before auto mode falls back to the full SOS2 MILP.
    MAX_ENVELOPE_ROUNDS = 3

    #: Realised per-cell envelope slack above which a cell is declared an
    #: offender and gets its segment binaries back.
    _OFFENDER_TOL = 1e-9

    def solve(
        self, utilities: dict[int, PiecewiseLinear], mode: str = "auto"
    ) -> MILPSolution:
        """Maximise total PWL utility over the flow polytope (HiGHS).

        Parameters
        ----------
        utilities:
            Per-reachable-cell PWL utility functions.
        mode:
            ``"auto"`` (default) takes the LP fast path when every utility
            is concave, the certified envelope path when some are not (see
            the module docstring), and the full SOS2 MILP only when the
            envelope certificate fails; ``"lp"`` forces the pure fast path
            (rejecting non-concave inputs); ``"milp"`` always carries the
            segment binaries; ``"bnb"`` solves the same full SOS2 model
            with the from-scratch certified branch and bound.
        """
        if mode not in SOLVER_MODES:
            raise ConfigurationError(
                f"mode must be one of {SOLVER_MODES}, got '{mode}'"
            )
        if mode == "bnb":
            return self._solve_bnb(utilities)
        if mode == "milp":
            return self._solve_model(utilities, utilities, lp_mode=False)
        all_concave = all(pwl.is_concave() for pwl in utilities.values())
        if mode == "lp" and not all_concave:
            raise ConfigurationError(
                "mode='lp' requires every utility to be concave (the lambda "
                "relaxation is only exact without SOS2 binaries then); use "
                "mode='auto' to fall back to the MILP"
            )
        if all_concave:
            return self._solve_model(utilities, utilities, lp_mode=True)
        return self._solve_enveloped(utilities)

    def _solve_bnb(
        self, utilities: dict[int, PiecewiseLinear]
    ) -> MILPSolution:
        """Solve the full SOS2 model with the certified B&B backend.

        Uses the same cached :class:`MILPStructure` the HiGHS path builds,
        handing its ``row_kinds`` to the cut separator and reporting the
        solver's certified ``bound_gap`` (non-zero only on node-limit
        exits).
        """
        structure = self.build_structure(utilities, lp_mode=False)
        objective = self.objective_vector(structure, utilities)
        solver = BranchAndBoundSolver(
            max_nodes=self.bnb_max_nodes, strategy=self.bnb_strategy
        )
        result = solver.solve(
            objective,
            structure.matrix,
            structure.row_lb,
            structure.row_ub,
            binary_mask=structure.integrality.astype(bool),
            row_kinds=structure.row_kinds,
        )
        solution = self.extract_solution(
            structure,
            result.x,
            float(-result.objective_value),
            result.status,
            method="bnb",
        )
        if result.status != "optimal":
            solution.bound_gap = float(result.bound_gap)
        return solution

    def _solve_enveloped(
        self, utilities: dict[int, PiecewiseLinear]
    ) -> MILPSolution:
        """Certified envelope fast path for non-concave utilities.

        Solves against the least concave majorants (pure LP first, then with
        binaries restored on offending cells), accepting a solution only when
        the relaxation's objective — a valid upper bound — matches the true
        utility of the returned coverage within ``mip_gap``. Falls back to
        the full MILP when the certificate keeps failing.
        """
        envelopes = {
            v: pwl if pwl.is_concave() else pwl.concave_envelope()
            for v, pwl in utilities.items()
        }
        accept_tol = max(self.mip_gap, self.envelope_gap)
        binary: set[int] = set()
        for _ in range(self.MAX_ENVELOPE_ROUNDS):
            if binary:
                relaxed = {
                    v: utilities[v] if v in binary else envelopes[v]
                    for v in utilities
                }
                solution = self._solve_model(
                    relaxed, utilities, lp_mode=False,
                    binary_cells=tuple(sorted(binary)), method="milp-partial",
                )
            else:
                solution = self._solve_model(
                    envelopes, utilities, lp_mode=True, method="lp-envelope"
                )
            upper = solution.objective_value
            true_value = sum(
                float(utilities[v](solution.coverage[v])) for v in utilities
            )
            if upper - true_value <= accept_tol * max(1.0, abs(upper)):
                solution.objective_value = true_value
                solution.bound_gap = max(0.0, upper - true_value) / max(
                    1.0, abs(upper)
                )
                return solution
            offenders = [
                v
                for v in utilities
                if v not in binary
                and float(envelopes[v](solution.coverage[v]))
                - float(utilities[v](solution.coverage[v]))
                > self._OFFENDER_TOL
            ]
            if not offenders:
                break
            binary.update(offenders)
        return self._solve_model(utilities, utilities, lp_mode=False)

    def _solve_model(
        self,
        objective_utilities: dict[int, PiecewiseLinear],
        domain_utilities: dict[int, PiecewiseLinear],
        lp_mode: bool,
        binary_cells: tuple[int, ...] | None = None,
        method: str | None = None,
    ) -> MILPSolution:
        """Build (or fetch) a structure, solve it, extract the solution."""
        structure = self.build_structure(
            domain_utilities, lp_mode=lp_mode, binary_cells=binary_cells
        )
        objective = self.objective_vector(structure, objective_utilities)
        constraints = LinearConstraint(
            structure.matrix, structure.row_lb, structure.row_ub
        )
        options: dict = {"time_limit": self.time_limit}
        if structure.integrality.any():
            options["mip_rel_gap"] = self.mip_gap
        result = milp(
            c=objective,
            constraints=constraints,
            bounds=Bounds(np.zeros(structure.n_vars), np.ones(structure.n_vars)),
            integrality=structure.integrality,
            options=options,
        )
        if result.status == 2:
            raise InfeasibleError("patrol-planning MILP is infeasible")
        if result.x is None:
            raise PlanningError(f"MILP solve failed: {result.message}")
        return self.extract_solution(
            structure,
            result.x,
            float(-result.fun),
            str(result.message),
            method=method or ("lp" if lp_mode else "milp"),
        )

    def extract_solution(
        self,
        model: MILPModel | MILPStructure,
        x: np.ndarray,
        objective_value: float,
        status: str,
        method: str = "milp",
    ) -> MILPSolution:
        """Turn a raw variable vector into coverage and flows."""
        n_edges = self.graph.n_edges
        flows = np.asarray(x[:n_edges], dtype=float)
        coverage = np.zeros(self.graph.grid.n_cells)
        K = float(self.n_patrols)
        for v in model.cells:
            edge_idx = model.visit_edges.get(v, [])
            inflow = float(flows[edge_idx].sum()) if edge_idx else 0.0
            if v == self.graph.source_cell:
                inflow += 1.0
            coverage[v] = K * inflow
        return MILPSolution(
            objective_value=objective_value,
            coverage=coverage,
            edge_flows=flows,
            status=status,
            method=method,
        )

    # ------------------------------------------------------------------
    def structure_cache_info(self) -> dict[str, int]:
        """Hit/miss counters of the model-structure cache."""
        return {
            "hits": self.structure_hits,
            "misses": self.structure_misses,
            "entries": len(self._structures),
        }
