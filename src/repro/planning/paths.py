"""Decomposing an optimal flow into deployable patrol routes.

The MILP returns a *mixed strategy*: one unit of (possibly fractional) flow
through the time-unrolled graph. Rangers need concrete routes, so the flow
is decomposed into weighted source-to-sink paths (flow decomposition
theorem: an acyclic unit flow splits into at most ``n_edges`` paths), from
which K routes per period can be sampled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, PlanningError
from repro.planning.graph import TimeUnrolledGraph


@dataclass(frozen=True)
class PatrolRoute:
    """A single deployable route with its strategy weight.

    Attributes
    ----------
    cells:
        Sequence of cell ids, one per time step (starts and ends at the
        post).
    weight:
        Probability mass of this route in the mixed strategy.
    """

    cells: tuple[int, ...]
    weight: float


#: Residual source outflow at or below this counts as fully decomposed.
_MASS_EPS = 1e-12


def decompose_flow_into_routes(
    graph: TimeUnrolledGraph,
    edge_flows: np.ndarray,
    min_weight: float = 1e-6,
) -> list[PatrolRoute]:
    """Greedy bottleneck path extraction from an acyclic unit flow.

    Repeatedly walks from the source along the largest-flow outgoing edge,
    subtracts the bottleneck along the path, and records the route, until
    the residual source outflow is exhausted (below numerical noise). The
    full strategy mass is always decomposed: for a unit inflow the
    returned weights sum to 1 up to floating-point drift.

    ``min_weight`` is a reporting threshold, never a feasibility one:
    routes lighter than it are folded back into the kept routes — their
    mass redistributed proportionally — so no strategy mass is ever
    dropped. (An earlier implementation aborted the whole decomposition
    when the greedy path hit a sub-``min_weight`` edge, silently losing
    the remaining mass.) A genuine dead end — a node with no positive
    residual at all, which only numerical drift can produce — retires the
    edge that led there and extraction continues.

    Each extraction zeroes at least one edge and each dead end retires
    one, so the loop terminates after at most ``2 * n_edges`` iterations
    regardless of flow values.

    Returns routes sorted by descending weight.
    """
    edge_flows = np.asarray(edge_flows, dtype=float)
    if edge_flows.shape != (graph.n_edges,):
        raise ConfigurationError(
            f"edge_flows must have shape ({graph.n_edges},), got {edge_flows.shape}"
        )
    if (edge_flows < -1e-6).any():
        raise ConfigurationError("edge flows must be nonnegative")
    residual = np.clip(edge_flows, 0.0, None)
    out_edges, __ = graph.incidence_lists()
    edges = graph.edges
    nodes = graph.nodes
    source_out = out_edges[graph.source_node]
    if not source_out:
        raise PlanningError("source node has no outgoing edges")
    routes: list[PatrolRoute] = []
    for __ in range(2 * graph.n_edges + 1):
        if float(residual[source_out].sum()) <= _MASS_EPS:
            break
        node = graph.source_node
        path_nodes = [node]
        path_edges: list[int] = []
        dead_end = False
        while node != graph.sink_node:
            candidates = out_edges[node]
            flows_here = residual[candidates] if candidates else np.empty(0)
            if flows_here.size == 0 or float(flows_here.max()) <= 0.0:
                dead_end = True
                break
            best = int(np.argmax(flows_here))
            e = candidates[best]
            path_edges.append(e)
            node = int(edges[e, 1])
            path_nodes.append(node)
        if dead_end:
            if not path_edges:
                break  # source itself exhausted; nothing left to extract
            # Retire the drift-level edge that led here and route around it.
            residual[path_edges[-1]] = 0.0
            continue
        bottleneck = float(residual[path_edges].min())
        if bottleneck <= 0.0:
            break
        residual[path_edges] -= bottleneck
        cells = tuple(int(nodes[i][0]) for i in path_nodes)
        routes.append(PatrolRoute(cells=cells, weight=bottleneck))
    routes.sort(key=lambda r: -r.weight)
    return _fold_noise_routes(routes, min_weight)


def _fold_noise_routes(
    routes: list[PatrolRoute], min_weight: float
) -> list[PatrolRoute]:
    """Redistribute sub-``min_weight`` routes' mass over the kept ones.

    Conserves the total weight exactly; if *every* route is below the
    threshold the list is returned unchanged (filtering would destroy the
    decomposition entirely).
    """
    kept = [r for r in routes if r.weight >= min_weight]
    if not kept or len(kept) == len(routes):
        return routes
    total = sum(r.weight for r in routes)
    kept_total = sum(r.weight for r in kept)
    scale = total / kept_total
    return [
        PatrolRoute(cells=r.cells, weight=r.weight * scale) for r in kept
    ]


def sample_routes(
    routes: list[PatrolRoute],
    n_patrols: int,
    rng: np.random.Generator,
) -> list[PatrolRoute]:
    """Draw K concrete patrols from the mixed strategy.

    Parameters
    ----------
    routes:
        Weighted routes from :func:`decompose_flow_into_routes`.
    n_patrols:
        Number of patrols K to deploy this period.
    rng:
        Randomness for the categorical draw.
    """
    if not routes:
        raise ConfigurationError("no routes to sample from")
    if n_patrols < 1:
        raise ConfigurationError(f"n_patrols must be >= 1, got {n_patrols}")
    weights = np.array([r.weight for r in routes], dtype=float)
    weights = weights / weights.sum()
    picks = rng.choice(len(routes), size=n_patrols, p=weights)
    return [routes[i] for i in picks]


def coverage_of_routes(
    graph: TimeUnrolledGraph,
    routes: list[PatrolRoute],
    weighted: bool = True,
    n_patrols: int = 1,
) -> np.ndarray:
    """Km of effort per cell implied by a set of routes.

    Parameters
    ----------
    graph:
        The time-unrolled graph the routes live on.
    routes:
        A weighted mixed-strategy decomposition, or concrete sampled
        patrols.
    weighted:
        With ``True`` (default) each route contributes its strategy
        ``weight`` times ``n_patrols``, giving the *expected* coverage of
        the mixed strategy; on a full decomposition this reconciles with
        :attr:`~repro.planning.milp.MILPSolution.coverage`. Use ``False``
        for concrete routes drawn by :func:`sample_routes`, where every
        deployed patrol counts in full regardless of its sampling weight.
    n_patrols:
        K — patrols per period; scales weighted coverage only.
    """
    if n_patrols < 1:
        raise ConfigurationError(f"n_patrols must be >= 1, got {n_patrols}")
    coverage = np.zeros(graph.grid.n_cells)
    for route in routes:
        contribution = route.weight * n_patrols if weighted else 1.0
        for cell in route.cells:
            coverage[cell] += contribution
    return coverage
