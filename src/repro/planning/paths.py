"""Decomposing an optimal flow into deployable patrol routes.

The MILP returns a *mixed strategy*: one unit of (possibly fractional) flow
through the time-unrolled graph. Rangers need concrete routes, so the flow
is decomposed into weighted source-to-sink paths (flow decomposition
theorem: an acyclic unit flow splits into at most ``n_edges`` paths), from
which K routes per period can be sampled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, PlanningError
from repro.planning.graph import TimeUnrolledGraph


@dataclass(frozen=True)
class PatrolRoute:
    """A single deployable route with its strategy weight.

    Attributes
    ----------
    cells:
        Sequence of cell ids, one per time step (starts and ends at the
        post).
    weight:
        Probability mass of this route in the mixed strategy.
    """

    cells: tuple[int, ...]
    weight: float


def decompose_flow_into_routes(
    graph: TimeUnrolledGraph,
    edge_flows: np.ndarray,
    min_weight: float = 1e-6,
) -> list[PatrolRoute]:
    """Greedy bottleneck path extraction from an acyclic unit flow.

    Repeatedly follows the largest-flow outgoing edge from the source,
    subtracts the bottleneck along the path, and records the route, until
    the residual source outflow drops below ``min_weight``.

    Returns routes sorted by descending weight; weights sum to ~1.
    """
    edge_flows = np.asarray(edge_flows, dtype=float)
    if edge_flows.shape != (graph.n_edges,):
        raise ConfigurationError(
            f"edge_flows must have shape ({graph.n_edges},), got {edge_flows.shape}"
        )
    if (edge_flows < -1e-6).any():
        raise ConfigurationError("edge flows must be nonnegative")
    residual = np.clip(edge_flows, 0.0, None)
    out_edges, __ = graph.incidence_lists()
    edges = graph.edges
    nodes = graph.nodes
    routes: list[PatrolRoute] = []
    for __ in range(graph.n_edges + 1):
        node = graph.source_node
        path_nodes = [node]
        path_edges: list[int] = []
        while node != graph.sink_node:
            candidates = out_edges[node]
            if not candidates:
                raise PlanningError("flow decomposition hit a dead end")
            flows_here = residual[candidates]
            best = int(np.argmax(flows_here))
            if flows_here[best] <= min_weight:
                break
            e = candidates[best]
            path_edges.append(e)
            node = int(edges[e, 1])
            path_nodes.append(node)
        if node != graph.sink_node or not path_edges:
            break
        bottleneck = float(residual[path_edges].min())
        if bottleneck <= min_weight:
            break
        residual[path_edges] -= bottleneck
        cells = tuple(int(nodes[i][0]) for i in path_nodes)
        routes.append(PatrolRoute(cells=cells, weight=bottleneck))
    routes.sort(key=lambda r: -r.weight)
    return routes


def sample_routes(
    routes: list[PatrolRoute],
    n_patrols: int,
    rng: np.random.Generator,
) -> list[PatrolRoute]:
    """Draw K concrete patrols from the mixed strategy.

    Parameters
    ----------
    routes:
        Weighted routes from :func:`decompose_flow_into_routes`.
    n_patrols:
        Number of patrols K to deploy this period.
    rng:
        Randomness for the categorical draw.
    """
    if not routes:
        raise ConfigurationError("no routes to sample from")
    if n_patrols < 1:
        raise ConfigurationError(f"n_patrols must be >= 1, got {n_patrols}")
    weights = np.array([r.weight for r in routes], dtype=float)
    weights = weights / weights.sum()
    picks = rng.choice(len(routes), size=n_patrols, p=weights)
    return [routes[i] for i in picks]


def coverage_of_routes(
    graph: TimeUnrolledGraph, routes: list[PatrolRoute]
) -> np.ndarray:
    """Km of effort per cell implied by a set of concrete routes."""
    coverage = np.zeros(graph.grid.n_cells)
    for route in routes:
        for cell in route.cells:
            coverage[cell] += 1.0
    return coverage
