"""The patrol-planning service: fit once, plan many posts and betas.

Prediction became fit-once/serve-many in the runtime layer; this module does
the same for Section VI. A deployed park re-plans constantly — every patrol
post each period, several robustness weights per post when comparing plans —
and almost all of that work shares structure:

* every post queries the **same effort-response surfaces** (one
  :class:`~repro.runtime.service.RiskMapService` request, cached);
* a beta sweep changes **only the MILP objective row**, so the sparse
  constraint matrix is cached per post and reused
  (:meth:`~repro.planning.milp.PatrolMILP.build_structure`);
* concave utilities take the **LP fast path**, dropping the SOS2 binaries;
* per-post solves are independent, so they fan out over the deterministic
  thread machinery of :mod:`repro.runtime.parallel`.

:class:`PlanService` packages all four behind one facade::

    service = PlanService.from_saved("models/mfnp", park.grid,
                                     park.patrol_posts, n_jobs=4)
    plans = service.plan_all(features, beta=0.8)        # all posts, parallel
    sweep = service.beta_sweep(post, features, betas=[0.0, 0.4, 0.8])

Parallel results are bit-identical to serial ones: the shared
effort-response surfaces are computed once *before* the fan-out (the same
two-phase discipline as parallel model fitting), and each post's solve then
touches only its own planner.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geo.grid import Grid
from repro.planning.branch_and_bound import BNB_STRATEGIES
from repro.planning.milp import SOLVER_MODES
from repro.planning.planner import PatrolPlan, PatrolPlanner
from repro.planning.robust import RobustObjective
from repro.runtime.concurrency import thread_shared
from repro.runtime.parallel import parallel_map
from repro.runtime.resilience import (
    ResilienceStats,
    collect_stats,
    deadline_scope,
)
from repro.runtime.service import RiskMapService


@thread_shared
class PlanService:
    """Plan-many facade over one predictor and a park's patrol posts.

    The service is ``@thread_shared``: the lazily built per-post planner
    registry mutates under ``self._lock``, so concurrent requests (the
    park-service daemon's deployment shape) agree on one planner — and
    therefore one MILP structure cache — per post. The planners themselves
    guard their structure caches the same way (see
    :class:`~repro.planning.milp.PatrolMILP`).

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.predictor.PawsPredictor` (wrapped in a
        caching :class:`~repro.runtime.service.RiskMapService`
        automatically) or an existing service / any object exposing
        ``effort_response(features, xs) -> (risk, nu)``.
    grid:
        Park lattice shared by every post.
    posts:
        Patrol-post cell ids this service plans for.
    horizon, n_patrols, n_segments, time_limit:
        Planner parameters, shared across posts (see
        :class:`~repro.planning.planner.PatrolPlanner`).
    solver_mode:
        ``"auto"`` / ``"lp"`` / ``"milp"`` / ``"bnb"`` — forwarded to every
        planner.
    bnb_strategy:
        Node/variable selection of the ``"bnb"`` backend, forwarded to
        every planner (one of
        :data:`~repro.planning.branch_and_bound.BNB_STRATEGIES`).
    n_jobs:
        Default thread count for :meth:`plan_all` fan-outs (results are
        bit-identical at any worker count).
    """

    def __init__(
        self,
        model,
        grid: Grid,
        posts: Iterable[int],
        *,
        horizon: int = 10,
        n_patrols: int = 2,
        n_segments: int = 8,
        time_limit: float = 60.0,
        solver_mode: str = "auto",
        bnb_strategy: str = "best_bound",
        n_jobs: int | None = 1,
    ):
        if not hasattr(model, "effort_response"):
            raise ConfigurationError(
                "model must expose effort_response(features, xs); got "
                f"{type(model).__name__}"
            )
        if solver_mode not in SOLVER_MODES:
            raise ConfigurationError(
                f"solver_mode must be one of {SOLVER_MODES}, got '{solver_mode}'"
            )
        if bnb_strategy not in BNB_STRATEGIES:
            raise ConfigurationError(
                f"bnb_strategy must be one of {BNB_STRATEGIES}, "
                f"got '{bnb_strategy}'"
            )
        self.service = self._as_service(model)
        self.grid = grid
        self.posts = [int(p) for p in posts]
        if not self.posts:
            raise ConfigurationError("posts must name at least one patrol post")
        seen = set()
        for post in self.posts:
            if post in seen:
                raise ConfigurationError(f"duplicate patrol post {post}")
            seen.add(post)
        self.horizon = int(horizon)
        self.n_patrols = int(n_patrols)
        self.n_segments = int(n_segments)
        self.time_limit = time_limit
        self.solver_mode = solver_mode
        self.bnb_strategy = bnb_strategy
        self.n_jobs = n_jobs
        # Mutated only under self._lock (the @thread_shared contract, RP004).
        self._lock = threading.RLock()
        self._planners: dict[int, PatrolPlanner] = {}
        #: Accumulated fan-out survival counters (the daemon's /stats feed).
        self._resilience = ResilienceStats()

    def _absorb(self, stats: ResilienceStats) -> None:
        """Fold one request's fan-out stats into the service counters."""
        with self._lock:
            self._resilience.merge(stats)

    @staticmethod
    def _as_service(model):
        """Wrap a bare predictor so repeated queries hit the LRU cache."""
        if isinstance(model, RiskMapService):
            return model
        from repro.core.predictor import PawsPredictor

        if isinstance(model, PawsPredictor):
            return RiskMapService(model)
        return model

    # ------------------------------------------------------------------
    # Construction from a saved model
    # ------------------------------------------------------------------
    @classmethod
    def from_saved(
        cls, path, grid: Grid, posts: Iterable[int],
        verify: bool = True, **kwargs,
    ) -> "PlanService":
        """Plan from a model persisted with ``PawsPredictor.save``.

        ``verify`` controls checksum verification of the saved model (see
        :func:`repro.runtime.persistence.load_model`); on by default.
        """
        return cls(
            RiskMapService.from_saved(path, verify=verify), grid, posts,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Per-post planners (built lazily, cached for structure reuse)
    # ------------------------------------------------------------------
    def planner_for(self, post: int) -> PatrolPlanner:
        """The cached planner of one post (its MILP structure cache lives
        for the life of the service, so repeated solves reuse the matrix).

        Thread-safe: concurrent callers racing on a cold post receive the
        same planner instance (the registry insertion is double-checked
        under the service lock).
        """
        post = int(post)
        planner = self._planners.get(post)
        if planner is None:
            if post not in self.posts:
                raise ConfigurationError(
                    f"post {post} is not served (posts: {self.posts})"
                )
            with self._lock:
                planner = self._planners.get(post)
                if planner is None:
                    planner = PatrolPlanner(
                        self.grid,
                        post,
                        horizon=self.horizon,
                        n_patrols=self.n_patrols,
                        n_segments=self.n_segments,
                        time_limit=self.time_limit,
                        solver_mode=self.solver_mode,
                        bnb_strategy=self.bnb_strategy,
                    )
                    self._planners[post] = planner
        return planner

    def breakpoints(self) -> np.ndarray:
        """Shared PWL abscissae on [0, T*K] (identical for every post)."""
        return PatrolPlanner.breakpoints_for(
            self.horizon, self.n_patrols, self.n_segments
        )

    def objective_for(self, features: np.ndarray, beta: float) -> RobustObjective:
        """The robust objective at ``beta``, served through the risk cache.

        Every post consumes this same objective, so the expensive
        effort-response surfaces are computed once per distinct
        ``features`` and then hit the service's LRU cache.
        """
        xs = self.breakpoints()
        risk, nu = self.service.effort_response(features, xs)
        return RobustObjective(xs, risk, nu, beta=beta)

    # ------------------------------------------------------------------
    # Planning entry points
    # ------------------------------------------------------------------
    def plan_post(
        self, post: int, features: np.ndarray, beta: float = 0.8,
        deadline: float | None = None,
    ) -> PatrolPlan:
        """Plan one post (equivalent to ``PatrolPlanner.plan_from_model``).

        ``deadline`` bounds the whole request — the effort-response
        prediction *and* the solve share one budget (seconds, or a shared
        :class:`~repro.runtime.resilience.Deadline`).
        """
        planner = self.planner_for(post)  # validate before predicting
        with deadline_scope(deadline) as budget:
            objective = self.objective_for(features, beta)
            if budget is not None:
                budget.check(f"plan_post({post})")
            return planner.plan(objective)

    def plan_all(
        self,
        features: np.ndarray,
        beta: float = 0.8,
        posts: Sequence[int] | None = None,
        n_jobs: int | None = None,
        deadline: float | None = None,
    ) -> dict[int, PatrolPlan]:
        """Plan every post (or a subset) against one shared objective.

        Phase 1 computes the effort-response surfaces once, serially;
        phase 2 fans the independent per-post solves out over threads.
        Results are bit-identical at any ``n_jobs``. ``deadline`` bounds
        the whole request — prediction and every solve draw down one shared
        budget; an overrun raises
        :class:`~repro.exceptions.DeadlineExceededError`.
        """
        chosen = self.posts if posts is None else [int(p) for p in posts]
        if not chosen:
            raise ConfigurationError("posts must name at least one patrol post")
        if len(set(chosen)) != len(chosen):
            raise ConfigurationError(f"duplicate posts in {chosen}")
        planners = [self.planner_for(post) for post in chosen]
        with deadline_scope(deadline), collect_stats() as stats:
            try:
                objective = self.objective_for(features, beta)
                # The full-park utility functions are identical for every
                # post, so they are built once here (phase 1) rather than
                # once per thread.
                source_functions = objective.utility_functions(beta)
                workers = self.n_jobs if n_jobs is None else n_jobs
                plans = parallel_map(
                    lambda planner: planner.plan(
                        objective, beta=beta, source_functions=source_functions
                    ),
                    planners,
                    n_jobs=workers,
                )
            finally:
                self._absorb(stats)
        return dict(zip(chosen, plans))

    def beta_sweep(
        self,
        post: int,
        features: np.ndarray,
        betas: Sequence[float],
    ) -> list[PatrolPlan]:
        """Re-plan one post across robustness weights.

        Only the objective row differs between solves, so every beta after
        the first reuses the cached MILP structure; results are identical
        to fresh ``PatrolPlanner.plan`` calls at each beta.
        """
        if len(betas) == 0:
            raise ConfigurationError("betas must contain at least one weight")
        objective = self.objective_for(features, betas[0])
        planner = self.planner_for(post)
        return [planner.plan(objective, beta=float(b)) for b in betas]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, dict[str, int]]:
        """Prediction-cache and per-post MILP-structure-cache counters."""
        structures = {
            "hits": 0,
            "misses": 0,
            "entries": 0,
        }
        # snapshot: the registry may gain planners concurrently
        for planner in list(self._planners.values()):
            info = planner.milp.structure_cache_info()
            for key in structures:
                structures[key] += info[key]
        prediction = (
            self.service.cache_info()
            if hasattr(self.service, "cache_info")
            else {}
        )
        return {"prediction": prediction, "structure": structures}

    def resilience_info(self) -> dict:
        """Accumulated fan-out survival counters (the daemon's ``/stats``).

        Covers every :meth:`plan_all` request end to end: the prediction
        fan-outs it triggered on cache misses *and* the per-post solve
        fan-out. All zeros on a healthy host.
        """
        with self._lock:
            return self._resilience.as_dict()

    def timed_plan_all(
        self,
        features: np.ndarray,
        beta: float = 0.8,
        n_jobs: int | None = None,
        deadline: float | None = None,
    ) -> tuple[dict[int, PatrolPlan], float]:
        """:meth:`plan_all` plus wall-clock seconds (for benchmarks/CLI)."""
        start = time.perf_counter()
        plans = self.plan_all(
            features, beta=beta, n_jobs=n_jobs, deadline=deadline
        )
        return plans, time.perf_counter() - start
