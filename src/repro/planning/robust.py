"""The uncertainty-penalised (robust) planning objective.

Equation 4 of the paper::

    U_v(c) = g_v(c) - beta * g_v(c) * nu_v(c)

``beta = 0`` trusts the point predictions; ``beta = 1`` is fully robust,
discounting every prediction by its (squashed, [0,1]) uncertainty. Because
``nu <= 1``, the objective stays nonnegative whenever ``g`` is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.planning.pwl import PiecewiseLinear, pwl_from_samples


def robust_utility(
    risk: np.ndarray, uncertainty: np.ndarray, beta: float
) -> np.ndarray:
    """Elementwise Eq. 4 utility.

    Parameters
    ----------
    risk:
        ``g`` values (any shape).
    uncertainty:
        ``nu`` values in [0, 1], same shape.
    beta:
        Robustness weight in [0, 1].
    """
    if not 0.0 <= beta <= 1.0:
        raise ConfigurationError(f"beta must be in [0, 1], got {beta}")
    risk = np.asarray(risk, dtype=float)
    uncertainty = np.asarray(uncertainty, dtype=float)
    if risk.shape != uncertainty.shape:
        raise ConfigurationError(
            f"risk {risk.shape} and uncertainty {uncertainty.shape} differ"
        )
    if (uncertainty < -1e-9).any() or (uncertainty > 1 + 1e-9).any():
        raise ConfigurationError("uncertainty scores must lie in [0, 1]")
    return risk * (1.0 - beta * uncertainty)


@dataclass
class RobustObjective:
    """Per-cell robust utility surfaces sampled on an effort grid.

    Attributes
    ----------
    effort_grid:
        Shared breakpoint abscissae (km of coverage).
    risk:
        ``(n_cells, m+1)`` sampled ``g_v`` values.
    uncertainty:
        ``(n_cells, m+1)`` sampled ``nu_v`` values in [0, 1].
    beta:
        Robustness weight.
    """

    effort_grid: np.ndarray
    risk: np.ndarray
    uncertainty: np.ndarray
    beta: float

    def __post_init__(self) -> None:
        self.effort_grid = np.asarray(self.effort_grid, dtype=float)
        self.risk = np.asarray(self.risk, dtype=float)
        self.uncertainty = np.asarray(self.uncertainty, dtype=float)
        if self.risk.shape != self.uncertainty.shape:
            raise ConfigurationError("risk/uncertainty shape mismatch")
        if self.risk.ndim != 2 or self.risk.shape[1] != self.effort_grid.size:
            raise ConfigurationError(
                "risk must be (n_cells, len(effort_grid))"
            )
        if not 0.0 <= self.beta <= 1.0:
            raise ConfigurationError(f"beta must be in [0, 1], got {self.beta}")

    @property
    def n_cells(self) -> int:
        return self.risk.shape[0]

    def utility_samples(self, beta: float | None = None) -> np.ndarray:
        """``(n_cells, m+1)`` Eq. 4 utilities at the grid points."""
        b = self.beta if beta is None else beta
        return robust_utility(self.risk, self.uncertainty, b)

    def utility_functions(self, beta: float | None = None) -> list[PiecewiseLinear]:
        """Per-cell PWL utility functions U_v^PWL (inputs to the MILP)."""
        return pwl_from_samples(self.effort_grid, self.utility_samples(beta))

    def evaluate_coverage(self, coverage: np.ndarray, beta: float | None = None) -> float:
        """Total utility ``U_beta(C)`` of a coverage vector (Section VI-D).

        Used both as the planning objective and as the "ground truth given
        by the objective with uncertainty" when scoring plans computed at a
        different beta.
        """
        coverage = np.asarray(coverage, dtype=float)
        if coverage.shape != (self.n_cells,):
            raise ConfigurationError(
                f"coverage must have shape ({self.n_cells},), got {coverage.shape}"
            )
        functions = self.utility_functions(beta)
        return float(sum(f(c) for f, c in zip(functions, coverage)))

    def with_beta(self, beta: float) -> "RobustObjective":
        """A copy sharing the samples but with a different beta."""
        return RobustObjective(
            effort_grid=self.effort_grid,
            risk=self.risk,
            uncertainty=self.uncertainty,
            beta=beta,
        )
