"""Time-unrolled patrol graph and the flow polytope F.

A patrol is a path on ``G' = (V', E')`` whose nodes are (cell, time) pairs:
it starts at the patrol post at t=0, moves to a rook-adjacent cell (or stays
put) each step, and is back at the post at t=T-1. One unit of flow from
``(post, 0)`` to ``(post, T-1)`` is exactly one feasible patrol (Eq. 2).

Nodes that cannot be reached from the source *and* still return in time are
pruned, which keeps the MILP small: a cell at geodesic distance d from the
post only has copies for ``d <= t <= T-1-d``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, PlanningError
from repro.geo.distance import geodesic_distance
from repro.geo.grid import Grid


class TimeUnrolledGraph:
    """The directed acyclic patrol graph over (cell, time) nodes.

    Parameters
    ----------
    grid:
        Park lattice (patrols move on rook adjacency and may wait in place).
    source_cell:
        Cell id of the patrol post (source at t=0 and sink at t=T-1).
    horizon:
        Number of time steps T; a patrol covers T cells of effort.
    """

    def __init__(self, grid: Grid, source_cell: int, horizon: int):
        if horizon < 2:
            raise ConfigurationError(f"horizon must be >= 2, got {horizon}")
        if not 0 <= source_cell < grid.n_cells:
            raise ConfigurationError(f"source cell {source_cell} outside the park")
        self.grid = grid
        self.source_cell = int(source_cell)
        self.horizon = int(horizon)

        dist = geodesic_distance(grid, [source_cell]) / grid.cell_km
        self._distance_steps = dist

        # A (cell, t) node exists iff the cell is reachable by t steps and
        # can return to the post in the remaining T-1-t steps.
        self._node_index: dict[tuple[int, int], int] = {}
        nodes: list[tuple[int, int]] = []
        for t in range(horizon):
            for v in range(grid.n_cells):
                d = dist[v]
                if np.isfinite(d) and d <= t and d <= horizon - 1 - t:
                    self._node_index[(v, t)] = len(nodes)
                    nodes.append((v, t))
        if (self.source_cell, 0) not in self._node_index:
            raise PlanningError("source node was pruned; horizon too small")
        self._nodes = nodes

        edges: list[tuple[int, int]] = []
        for idx, (v, t) in enumerate(nodes):
            if t + 1 >= horizon:
                continue
            for u in [v] + grid.neighbors(v, connectivity=4):
                j = self._node_index.get((u, t + 1))
                if j is not None:
                    edges.append((idx, j))
        self._edges = np.asarray(edges, dtype=np.int64)
        if self._edges.size == 0:
            raise PlanningError("time-unrolled graph has no edges")

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def n_edges(self) -> int:
        return self._edges.shape[0]

    @property
    def nodes(self) -> list[tuple[int, int]]:
        """(cell, time) of every kept node, in index order."""
        return list(self._nodes)

    @property
    def edges(self) -> np.ndarray:
        """``(n_edges, 2)`` array of (tail_node_idx, head_node_idx)."""
        return self._edges.copy()

    @property
    def source_node(self) -> int:
        return self._node_index[(self.source_cell, 0)]

    @property
    def sink_node(self) -> int:
        return self._node_index[(self.source_cell, self.horizon - 1)]

    def node_index(self, cell: int, t: int) -> int | None:
        """Index of node (cell, t), or None if pruned."""
        return self._node_index.get((cell, t))

    @property
    def reachable_cells(self) -> np.ndarray:
        """Cells with at least one surviving (cell, t) copy."""
        return np.unique([v for v, __ in self._nodes])

    # ------------------------------------------------------------------
    def incidence_lists(self) -> tuple[list[list[int]], list[list[int]]]:
        """(out_edges, in_edges) edge-index lists per node."""
        out_edges: list[list[int]] = [[] for __ in range(self.n_nodes)]
        in_edges: list[list[int]] = [[] for __ in range(self.n_nodes)]
        for e, (i, j) in enumerate(self._edges):
            out_edges[i].append(e)
            in_edges[j].append(e)
        return out_edges, in_edges

    def cell_visit_edges(self) -> dict[int, list[int]]:
        """For each cell, the edge indices *entering* any of its copies.

        Patrol effort at a cell is the expected number of time steps spent
        there: the flow into all (cell, t) copies plus the initial presence
        at the source. The source's t=0 presence has no incoming edge, so
        callers must add the unit source flow to the source cell's count.
        """
        by_cell: dict[int, list[int]] = {int(v): [] for v in self.reachable_cells}
        for e, (__, j) in enumerate(self._edges):
            cell, __t = self._nodes[j]
            by_cell[int(cell)].append(e)
        return by_cell
