"""Piecewise-linear approximation of black-box model responses.

The planner can only reason about the predictive model through sampled
points: "piecewise linear (PWL) approximations to these functions g_v are
constructed using m x N sampled points" (Section VI-B). The number of
segments trades approximation quality against MILP size — the paper's
Figs. 8(d-f) and 9 sweep it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class PiecewiseLinear:
    """A continuous piecewise-linear function on [x_0, x_m].

    Parameters
    ----------
    xs:
        Strictly increasing breakpoint abscissae.
    ys:
        Function values at the breakpoints.
    """

    def __init__(self, xs: np.ndarray, ys: np.ndarray):
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.ndim != 1 or xs.shape != ys.shape:
            raise ConfigurationError("xs and ys must be equal-length 1-D arrays")
        if xs.size < 2:
            raise ConfigurationError("a PWL function needs at least 2 breakpoints")
        if (np.diff(xs) <= 0).any():
            raise ConfigurationError("breakpoints must be strictly increasing")
        if not (np.isfinite(xs).all() and np.isfinite(ys).all()):
            raise ConfigurationError("breakpoints must be finite")
        self.xs = xs
        self.ys = ys

    @property
    def n_segments(self) -> int:
        return self.xs.size - 1

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate with flat extrapolation outside the breakpoint range."""
        scalar = np.isscalar(x)
        x_arr = np.clip(np.atleast_1d(np.asarray(x, dtype=float)),
                        self.xs[0], self.xs[-1])
        out = np.interp(x_arr, self.xs, self.ys)
        return float(out[0]) if scalar else out

    def max_value(self) -> float:
        """Largest breakpoint value (PWL maxima occur at breakpoints)."""
        return float(self.ys.max())

    def is_concave(self, tol: float = 1e-9) -> bool:
        """Whether segment slopes are nonincreasing.

        Concavity is what licenses the planner's LP fast path: a maximised
        concave PWL needs no SOS2 segment binaries, because the plain
        convex-combination (lambda) relaxation already attains the function
        value at every coverage level (see :class:`~repro.planning.milp.PatrolMILP`).

        ``tol`` is *relative to the slope magnitude* (with an absolute floor
        of ``tol`` itself for sub-unit slopes): slope differences are rounded
        quotients of breakpoint values, so their float noise scales with the
        slopes — an absolute test misfires on steep functions whose benign
        noise exceeds it.
        """
        slopes = np.diff(self.ys) / np.diff(self.xs)
        scale = max(1.0, float(np.abs(slopes).max()))
        return bool((np.diff(slopes) <= tol * scale).all())

    def concave_envelope(self) -> "PiecewiseLinear":
        """Least concave majorant of this function on the same breakpoints.

        The upper concave hull of the breakpoints, evaluated back at every
        breakpoint: pointwise ``>=`` this function, equal wherever the
        function is already concave. This is what the planner's certified
        envelope fast path relaxes non-concave utilities to (see
        :class:`~repro.planning.milp.PatrolMILP`).
        """
        xs, ys = self.xs, self.ys
        hull: list[int] = []
        for i in range(xs.size):
            # Drop hull points that fall below the chord to the new point.
            while len(hull) >= 2:
                i0, i1 = hull[-2], hull[-1]
                cross = (xs[i1] - xs[i0]) * (ys[i] - ys[i0]) - (
                    ys[i1] - ys[i0]
                ) * (xs[i] - xs[i0])
                if cross >= 0:
                    hull.pop()
                else:
                    break
            hull.append(i)
        env = np.interp(xs, xs[hull], ys[hull])
        # Guarantee the majorant property against interpolation rounding.
        return PiecewiseLinear(xs, np.maximum(env, ys))


def sample_breakpoints(
    max_effort: float, n_segments: int, spacing: str = "uniform"
) -> np.ndarray:
    """Breakpoint abscissae in [0, max_effort].

    Parameters
    ----------
    max_effort:
        Upper end of the effort domain (typically T*K, the coverage a fully
        concentrated strategy could place on one cell).
    n_segments:
        Number of PWL segments m (breakpoints = m + 1).
    spacing:
        ``"uniform"`` or ``"sqrt"`` (denser near zero, where detection
        curves bend the most).
    """
    if max_effort <= 0:
        raise ConfigurationError(f"max_effort must be positive, got {max_effort}")
    if n_segments < 1:
        raise ConfigurationError(f"n_segments must be >= 1, got {n_segments}")
    if spacing == "uniform":
        return np.linspace(0.0, max_effort, n_segments + 1)
    if spacing == "sqrt":
        u = np.linspace(0.0, 1.0, n_segments + 1)
        return max_effort * u**2
    raise ConfigurationError(f"unknown spacing '{spacing}'")


def pwl_from_samples(xs: np.ndarray, values: np.ndarray) -> list[PiecewiseLinear]:
    """One PWL function per row of a ``(n_cells, len(xs))`` sample matrix."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or values.shape[1] != np.asarray(xs).size:
        raise ConfigurationError(
            f"values must be (n_cells, {np.asarray(xs).size}), got {values.shape}"
        )
    return [PiecewiseLinear(xs, row) for row in values]
