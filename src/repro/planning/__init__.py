"""Game-theoretic patrol planning (the paper's prescriptive stage).

Planning is a single-defender resource-allocation game on the park graph
(Section VI): rangers pick a mixed strategy over patrol routes — paths on a
*time-unrolled* copy of the park graph that start and end at a patrol post —
to maximise expected detections of boundedly rational poachers' snares.

The optimisation problem (P) maximises a piecewise-linear approximation of
the black-box prediction ``g_v(c_v)`` subject to flow constraints; the
paper's contribution makes it *robust* by penalising predictions by their
GP-derived uncertainty: ``U_v(c) = g_v(c) - beta * g_v(c) * nu_v(c)``.

Modules
-------
* :mod:`repro.planning.graph` — time-unrolled graph and the flow polytope F.
* :mod:`repro.planning.pwl` — piecewise-linear approximations of g and nu.
* :mod:`repro.planning.robust` — the uncertainty-penalised objective (Eq. 4).
* :mod:`repro.planning.milp` — the MILP formulation solved with HiGHS.
* :mod:`repro.planning.branch_and_bound` — the from-scratch certified B&B
  solver (warm-started node LPs, best-bound/pseudo-cost search, cover cuts)
  that cross-validates the MILP backend and serves ``mode="bnb"``.
* :mod:`repro.planning.simplex` — the warm-startable dual-simplex node-LP
  oracle behind the B&B solver.
* :mod:`repro.planning.cuts` — cover/flow-cover cut separation.
* :mod:`repro.planning.paths` — flow decomposition into ranger routes.
* :mod:`repro.planning.planner` — the :class:`PatrolPlanner` facade.
* :mod:`repro.planning.service` — :class:`PlanService`, the parallel
  multi-post / multi-beta planning facade (LP fast path, model-structure
  reuse, cached effort-response surfaces).
* :mod:`repro.planning.game` — Green Security Game evaluation utilities.
"""

from repro.planning.graph import TimeUnrolledGraph
from repro.planning.pwl import PiecewiseLinear, sample_breakpoints
from repro.planning.robust import RobustObjective, robust_utility
from repro.planning.milp import PatrolMILP, MILPSolution, MILPStructure, SOLVER_MODES
from repro.planning.branch_and_bound import (
    BNB_STRATEGIES,
    BnBNode,
    BnBResult,
    BranchAndBoundSolver,
)
from repro.planning.paths import (
    PatrolRoute,
    coverage_of_routes,
    decompose_flow_into_routes,
    sample_routes,
)
from repro.planning.planner import PatrolPlan, PatrolPlanner
from repro.planning.game import GreenSecurityGame
from repro.planning.online import Exp3StrategySelector, run_online_deployment

__all__ = [
    "TimeUnrolledGraph",
    "PiecewiseLinear",
    "sample_breakpoints",
    "RobustObjective",
    "robust_utility",
    "PatrolMILP",
    "MILPSolution",
    "MILPStructure",
    "SOLVER_MODES",
    "BNB_STRATEGIES",
    "BnBNode",
    "BnBResult",
    "BranchAndBoundSolver",
    "PatrolRoute",
    "coverage_of_routes",
    "decompose_flow_into_routes",
    "sample_routes",
    "PatrolPlan",
    "PatrolPlanner",
    "PlanService",
    "GreenSecurityGame",
    "Exp3StrategySelector",
    "run_online_deployment",
]


def __getattr__(name: str):
    # PlanService sits above repro.core/runtime in the layering, so it is
    # exported lazily to keep `import repro.planning` lightweight (the same
    # idiom repro.runtime uses for RiskMapService).
    if name == "PlanService":
        from repro.planning.service import PlanService

        return PlanService
    raise AttributeError(f"module 'repro.planning' has no attribute '{name}'")
