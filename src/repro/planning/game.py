"""Green Security Game evaluation layer.

The paper's game model (Section VI-A): one defender (the ranger team)
against N boundedly rational adversaries, one per cell. The defender's
expected utility is the probability of detecting snares summed over cells
(Eq. 3). This module evaluates deployed coverage vectors against a ground
truth — either the simulator's :class:`~repro.data.poachers.PoacherModel`
or explicit attack probabilities — with a quantal-response adversary that
shifts attacks away from covered cells.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class GreenSecurityGame:
    """Defender-vs-boundedly-rational-poachers payoff evaluation.

    Parameters
    ----------
    base_attack_logits:
        ``(n_cells,)`` attack attractiveness on the log-odds scale (before
        coverage response).
    detect_rate:
        Detection-curve steepness: ``P(detect|attack, c) = 1 - e^{-k c}``.
    response_rationality:
        Quantal-response deterrence strength — how sharply adversaries shift
        probability away from patrolled cells. 0 = oblivious poachers.
    """

    def __init__(
        self,
        base_attack_logits: np.ndarray,
        detect_rate: float = 0.5,
        response_rationality: float = 0.5,
    ):
        self.base_attack_logits = np.asarray(base_attack_logits, dtype=float)
        if self.base_attack_logits.ndim != 1:
            raise ConfigurationError("base_attack_logits must be 1-D")
        if detect_rate <= 0:
            raise ConfigurationError(f"detect_rate must be positive, got {detect_rate}")
        if response_rationality < 0:
            raise ConfigurationError("response_rationality must be >= 0")
        self.detect_rate = float(detect_rate)
        self.response_rationality = float(response_rationality)

    @property
    def n_cells(self) -> int:
        return self.base_attack_logits.size

    # ------------------------------------------------------------------
    def _check_coverage(self, coverage: np.ndarray) -> np.ndarray:
        coverage = np.asarray(coverage, dtype=float)
        if coverage.shape != (self.n_cells,):
            raise ConfigurationError(
                f"coverage must have shape ({self.n_cells},), got {coverage.shape}"
            )
        if (coverage < -1e-9).any():
            raise ConfigurationError("coverage cannot be negative")
        return np.clip(coverage, 0.0, None)

    def attack_probabilities(self, coverage: np.ndarray) -> np.ndarray:
        """Adversary quantal response: attack odds fall with coverage."""
        coverage = self._check_coverage(coverage)
        logits = self.base_attack_logits - self.response_rationality * coverage
        logits = np.clip(logits, -60, 60)
        return 1.0 / (1.0 + np.exp(-logits))

    def detection_probabilities(self, coverage: np.ndarray) -> np.ndarray:
        """P(detect | attack) per cell."""
        coverage = self._check_coverage(coverage)
        return 1.0 - np.exp(-self.detect_rate * coverage)

    def defender_utility(self, coverage: np.ndarray) -> float:
        """Eq. 3: expected number of detected attacks across the park."""
        attack = self.attack_probabilities(coverage)
        detect = self.detection_probabilities(coverage)
        return float(np.sum(attack * detect))

    def adversary_utility(self, coverage: np.ndarray) -> float:
        """Total adversary payoff: expected *undetected* attacks."""
        attack = self.attack_probabilities(coverage)
        detect = self.detection_probabilities(coverage)
        return float(np.sum(attack * (1.0 - detect)))

    # ------------------------------------------------------------------
    def simulate_detections(
        self, coverage: np.ndarray, rng: np.random.Generator, n_rounds: int = 1
    ) -> int:
        """Monte-Carlo count of snares found under a coverage vector.

        Each round: adversaries attack (Bernoulli per cell under the quantal
        response), rangers detect with the effort-dependent probability.
        """
        if n_rounds < 1:
            raise ConfigurationError(f"n_rounds must be >= 1, got {n_rounds}")
        attack_p = self.attack_probabilities(coverage)
        detect_p = self.detection_probabilities(coverage)
        total = 0
        for __ in range(n_rounds):
            attacks = rng.random(self.n_cells) < attack_p
            detected = attacks & (rng.random(self.n_cells) < detect_p)
            total += int(detected.sum())
        return total

    @classmethod
    def from_poacher_model(cls, poachers, period_index: int = 0,
                           response_rationality: float | None = None
                           ) -> "GreenSecurityGame":
        """Build the game straight from a simulator ground truth."""
        p = poachers.attack_probability(period_index)
        p = np.clip(p, 1e-9, 1 - 1e-9)
        logits = np.log(p / (1 - p))
        rationality = (
            poachers.profile.deterrence
            if response_rationality is None
            else response_rationality
        )
        return cls(
            base_attack_logits=logits,
            detect_rate=poachers.profile.detect_rate,
            response_rationality=rationality,
        )
