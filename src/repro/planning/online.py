"""Online strategy selection between historical-model and exploratory plans.

The paper's related work (Section II-a) highlights the open loop between
planning and data gathering: "[Gholami et al. 2019] proposes an online
algorithm that balances a patrol-planning model trained with historical
data against a model with no prior knowledge to determine the usefulness of
historical data". This module implements that mechanism as an EXP3
adversarial bandit over *coverage strategies*: each period the selector
draws one strategy (e.g. the robust MILP plan, a uniform exploration plan,
the historical-habit plan), deploys it, observes the snares found, and
reweights.

EXP3's regret guarantee holds even when poachers adapt, which is exactly
the green-security setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, DataError


@dataclass
class OnlineRound:
    """Record of one deployment round."""

    strategy_index: int
    reward: float
    probabilities: np.ndarray


class Exp3StrategySelector:
    """EXP3 over a finite menu of coverage strategies.

    Parameters
    ----------
    n_strategies:
        Size of the strategy menu.
    gamma:
        Exploration rate in (0, 1]; probability mass spread uniformly.
    reward_scale:
        Rewards are clipped to [0, reward_scale] and normalised — pick a
        value near the plausible per-round maximum snare count.
    rng:
        Randomness for strategy draws.
    """

    def __init__(
        self,
        n_strategies: int,
        gamma: float = 0.2,
        reward_scale: float = 10.0,
        rng: np.random.Generator | None = None,
    ):
        if n_strategies < 2:
            raise ConfigurationError(
                f"need at least 2 strategies, got {n_strategies}"
            )
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1], got {gamma}")
        if reward_scale <= 0:
            raise ConfigurationError("reward_scale must be positive")
        self.n_strategies = n_strategies
        self.gamma = gamma
        self.reward_scale = reward_scale
        self.rng = rng or np.random.default_rng()
        self._log_weights = np.zeros(n_strategies)
        self.history: list[OnlineRound] = []

    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Current mixed strategy over the menu."""
        logw = self._log_weights - self._log_weights.max()
        w = np.exp(logw)
        p = (1.0 - self.gamma) * w / w.sum() + self.gamma / self.n_strategies
        return p / p.sum()

    def select(self) -> int:
        """Draw the strategy to deploy this round."""
        return int(self.rng.choice(self.n_strategies, p=self.probabilities()))

    def update(self, strategy_index: int, reward: float) -> None:
        """Feed back the observed reward for the deployed strategy."""
        if not 0 <= strategy_index < self.n_strategies:
            raise ConfigurationError(
                f"strategy index {strategy_index} out of range"
            )
        probs = self.probabilities()
        clipped = float(np.clip(reward, 0.0, self.reward_scale)) / self.reward_scale
        estimate = clipped / probs[strategy_index]
        self._log_weights[strategy_index] += (
            self.gamma * estimate / self.n_strategies
        )
        # Keep the log-weights bounded for numerical hygiene.
        self._log_weights -= self._log_weights.max()
        self.history.append(
            OnlineRound(strategy_index=strategy_index, reward=reward,
                        probabilities=probs)
        )

    # ------------------------------------------------------------------
    @property
    def n_rounds(self) -> int:
        return len(self.history)

    def empirical_pulls(self) -> np.ndarray:
        """How often each strategy has been deployed."""
        counts = np.zeros(self.n_strategies, dtype=np.int64)
        for r in self.history:
            counts[r.strategy_index] += 1
        return counts

    def mean_reward(self) -> float:
        """Average observed reward so far (0 before any round)."""
        if not self.history:
            return 0.0
        return float(np.mean([r.reward for r in self.history]))


def run_online_deployment(
    strategies: list[np.ndarray],
    game,
    n_rounds: int,
    rng: np.random.Generator,
    gamma: float = 0.2,
) -> Exp3StrategySelector:
    """Deploy EXP3 over coverage strategies against a Green Security Game.

    Parameters
    ----------
    strategies:
        Coverage vectors (one per menu entry), all over the same cells.
    game:
        A :class:`~repro.planning.game.GreenSecurityGame` ground truth.
    n_rounds:
        Number of deployment rounds (periods).
    rng:
        Randomness shared by selection and simulation.
    gamma:
        EXP3 exploration rate.
    """
    if not strategies:
        raise DataError("strategy menu is empty")
    n_cells = strategies[0].shape[0]
    for s in strategies:
        if s.shape != (n_cells,):
            raise DataError("all strategies must cover the same cells")
    expected_max = max(game.defender_utility(s) for s in strategies)
    selector = Exp3StrategySelector(
        n_strategies=len(strategies),
        gamma=gamma,
        reward_scale=max(4.0 * expected_max, 1.0),
        rng=rng,
    )
    for __ in range(n_rounds):
        arm = selector.select()
        reward = float(game.simulate_detections(strategies[arm], rng))
        selector.update(arm, reward)
    return selector
