"""Retained reference: the original naive depth-first branch and bound.

This is the pre-upgrade ``BranchAndBoundSolver`` kept verbatim (cold
``linprog`` solve at every node, most-fractional branching, incumbent
pruning) so the warm-started solver in ``branch_and_bound.py`` can be
golden-tested and benchmarked against it — the repo's standing contract
that every rewrite keeps its naive ancestor as an executable spec.  The
only change from the seed implementation is that the incumbent objective
is recomputed as ``c @ x_round`` after rounding the binaries, matching the
upgraded solver bit-for-bit on integer-valued instances.

Do not "improve" this module; its value is that it stays naive.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import ConfigurationError, InfeasibleError, PlanningError
from repro.planning.branch_and_bound import BnBResult, _split_rows


class ReferenceDFSSolver:
    """Depth-first 0/1 branch and bound with cold LP-relaxation bounds."""

    def __init__(self, integrality_tol: float = 1e-6, max_nodes: int = 20_000):
        if max_nodes < 1:
            raise ConfigurationError(f"max_nodes must be >= 1, got {max_nodes}")
        self.integrality_tol = integrality_tol
        self.max_nodes = max_nodes

    def solve(
        self,
        c: np.ndarray,
        a_matrix: sparse.spmatrix,
        row_lb: np.ndarray,
        row_ub: np.ndarray,
        binary_mask: np.ndarray,
    ) -> BnBResult:
        """Minimise ``c @ x`` over the constrained 0/1-mixed polytope."""
        c = np.asarray(c, dtype=float)
        binary_mask = np.asarray(binary_mask, dtype=bool)
        n = c.size
        if binary_mask.shape != (n,):
            raise ConfigurationError("binary_mask length must match c")

        a_csr = sparse.csr_matrix(a_matrix)
        if a_csr.shape[1] != n:
            raise ConfigurationError("constraint matrix width must match c")

        a_ub, b_ub, a_eq, b_eq = _split_rows(a_csr, row_lb, row_ub)

        best_obj = np.inf
        best_x: np.ndarray | None = None
        n_explored = 0
        stack: list[tuple[np.ndarray, np.ndarray]] = [
            (np.zeros(n), np.ones(n))
        ]
        while stack:
            if n_explored >= self.max_nodes:
                break
            lower, upper = stack.pop()
            n_explored += 1
            res = linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=np.stack([lower, upper], axis=1),
                method="highs",
            )
            if res.status != 0 or res.x is None:
                continue  # infeasible or unbounded branch
            if res.fun >= best_obj - 1e-9:
                continue  # bound prune
            x = res.x
            frac = np.abs(x - np.round(x))
            frac[~binary_mask] = 0.0
            worst = int(np.argmax(frac))
            if frac[worst] <= self.integrality_tol:
                x_round = x.copy()
                x_round[binary_mask] = np.round(x_round[binary_mask])
                best_obj = float(c @ x_round)
                best_x = x_round
                continue
            # Branch on the most fractional binary; explore the branch that
            # rounds toward the LP value first (pushed last = popped first).
            lo0, up0 = lower.copy(), upper.copy()
            up0[worst] = 0.0
            lo1, up1 = lower.copy(), upper.copy()
            lo1[worst] = 1.0
            if x[worst] >= 0.5:
                stack.append((lo0, up0))
                stack.append((lo1, up1))
            else:
                stack.append((lo1, up1))
                stack.append((lo0, up0))

        if best_x is None:
            if n_explored >= self.max_nodes:
                raise PlanningError(
                    f"branch and bound hit the {self.max_nodes}-node cap "
                    "without an incumbent"
                )
            raise InfeasibleError("branch and bound found no feasible solution")
        status = "node-limit" if stack else "optimal"
        return BnBResult(
            objective_value=best_obj,
            x=best_x.copy(),
            n_nodes_explored=n_explored,
            status=status,
            best_bound=best_obj if status == "optimal" else -np.inf,
            strategy="reference-dfs",
        )
