"""Cover-cut separation for the 0/1 branch-and-bound solver.

A knapsack-shaped row ``sum_j a_j x_j <= b`` over binaries admits *cover
cuts*: for any minimal set ``C`` with ``sum_{j in C} a_j > b``, every
feasible 0/1 point satisfies ``sum_{j in C} x_j <= |C| - 1``.  Rows with
negative coefficients are handled by complementing (``x_j -> 1 - x_j``),
and rows that also touch continuous columns are first relaxed by moving
each continuous term to its bound-wise extreme — the classic "flow cover"
relaxation of an effort-capacity row, which keeps the derived cut globally
valid because only the *root* variable bounds are used.

Separation is deterministic: candidate rows are scanned in order, the
greedy cover is built most-fractional-first with fixed tie-breaks, and the
returned cuts are sorted by violation (then by a canonical key).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

#: Minimum violation of ``sum x~_j - (|C| - 1)`` for a cut to be kept.
_VIOLATION_TOL = 1e-4
_EPS = 1e-9


@dataclass(frozen=True)
class CoverCut:
    """One cover cut ``sum_k coefs[k] * x[cols[k]] <= rhs`` (coefs are ±1).

    ``kind`` is ``"cover"`` for pure-binary source rows and ``"flow-cover"``
    when continuous columns had to be relaxed to their bounds first.
    """

    cols: tuple[int, ...]
    coefs: tuple[float, ...]
    rhs: float
    kind: str
    violation: float
    source_row: int

    def key(self) -> tuple:
        """Canonical identity used for deduplication across rounds."""
        return (self.cols, self.coefs, round(self.rhs, 9))


def cuts_to_rows(
    cuts: list[CoverCut], n: int
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Assemble cuts into an ``A_ub``-style row block over ``n`` columns."""
    rows = np.repeat(np.arange(len(cuts)), [len(cut.cols) for cut in cuts])
    cols = np.concatenate([cut.cols for cut in cuts])
    vals = np.concatenate([cut.coefs for cut in cuts])
    mat = sparse.csr_matrix((vals, (rows, cols)), shape=(len(cuts), n))
    rhs = np.array([cut.rhs for cut in cuts])
    return mat, rhs


def separate_cover_cuts(
    a_csr: sparse.csr_matrix,
    row_lb: np.ndarray,
    row_ub: np.ndarray,
    binary_mask: np.ndarray,
    var_lb: np.ndarray,
    var_ub: np.ndarray,
    x: np.ndarray,
    row_mask: np.ndarray | None = None,
    max_cuts: int = 16,
    seen: set | None = None,
) -> list[CoverCut]:
    """Find cover cuts violated by the LP point ``x``.

    Parameters
    ----------
    a_csr, row_lb, row_ub:
        The *original* (two-sided) row system — both senses of a row are
        tried when both bounds are finite.
    row_mask:
        Optional boolean filter of rows worth scanning (e.g. the
        knapsack-shaped rows flagged by ``MILPStructure.row_kinds``);
        ``None`` scans every row.
    seen:
        Mutable set of :meth:`CoverCut.key` values from earlier rounds;
        rediscovered cuts are skipped and new keys are added in place.
    """
    m = a_csr.shape[0]
    found: list[CoverCut] = []
    keys = seen if seen is not None else set()
    for i in range(m):
        if row_mask is not None and not row_mask[i]:
            continue
        row = a_csr.getrow(i)
        if row.nnz < 2:
            continue
        a = row.toarray().ravel()
        senses = []
        if np.isfinite(row_ub[i]):
            senses.append((a, float(row_ub[i])))
        if np.isfinite(row_lb[i]) and not np.isclose(row_lb[i], row_ub[i]):
            senses.append((-a, -float(row_lb[i])))
        for a_row, b in senses:
            cut = _cover_from_knapsack(
                a_row, b, i, binary_mask, var_lb, var_ub, x
            )
            if cut is None or cut.key() in keys:
                continue
            keys.add(cut.key())
            found.append(cut)
    found.sort(key=lambda cut: (-cut.violation, cut.key()))
    return found[:max_cuts]


def _cover_from_knapsack(
    a: np.ndarray,
    b: float,
    source_row: int,
    binary_mask: np.ndarray,
    var_lb: np.ndarray,
    var_ub: np.ndarray,
    x: np.ndarray,
) -> CoverCut | None:
    """Derive one maximally-violated minimal cover from ``a @ x <= b``."""
    nz = np.flatnonzero(np.abs(a) > _EPS)
    bin_idx = nz[binary_mask[nz]]
    cont_idx = nz[~binary_mask[nz]]
    if bin_idx.size < 2:
        return None
    # Relax continuous terms to their bound-wise minimum contribution; an
    # infinite bound would make the relaxation vacuous, so give up then.
    b_eff = b
    kind = "cover"
    for j in cont_idx:
        bound = var_lb[j] if a[j] > 0 else var_ub[j]
        if not np.isfinite(bound):
            return None
        b_eff -= a[j] * bound
        kind = "flow-cover"
    # Complement negative binary coefficients: x_j -> 1 - x_j.
    w = a[bin_idx].astype(float)
    xt = np.clip(x[bin_idx], 0.0, 1.0)
    comp = w < 0
    b_eff -= float(w[comp].sum())
    xt = np.where(comp, 1.0 - xt, xt)
    w = np.abs(w)
    keep = w > _EPS
    bin_idx, w, xt, comp = bin_idx[keep], w[keep], xt[keep], comp[keep]
    if bin_idx.size < 2 or b_eff < -_EPS or w.sum() <= b_eff + _EPS:
        return None
    # Greedy cover, most-fractional-first: ascending (1 - x~), tie-break by
    # descending weight, then by lowest column index.
    order = np.lexsort((bin_idx, -w, 1.0 - xt))
    csum = np.cumsum(w[order])
    k = int(np.searchsorted(csum, b_eff + 1e-7, side="right"))
    if k >= order.size:
        return None
    members = order[: k + 1]
    # Minimalise: dropping a member raises the violation by 1 - x~_j >= 0,
    # so shed members (smallest x~ first) while the set remains a cover.
    total = float(w[members].sum())
    drop_order = members[np.lexsort((bin_idx[members], -w[members], xt[members]))]
    kept = []
    for j in drop_order:
        if total - w[j] > b_eff + 1e-7:
            total -= w[j]
        else:
            kept.append(int(j))
    if len(kept) < 2:
        return None
    # Extend the minimal cover: any binary at least as heavy as the
    # heaviest cover member could replace it, so it joins the left-hand
    # side at the same right-hand side (Balas' extended cover).  This is
    # what collapses symmetric knapsacks, where minimal covers alone are
    # combinatorially many.
    w_max = float(w[kept].max())
    in_cover = np.zeros(bin_idx.size, dtype=bool)
    in_cover[kept] = True
    ext = np.flatnonzero(~in_cover & (w >= w_max - 1e-9))
    members = np.concatenate([np.asarray(kept, dtype=int), ext])
    violation = float(xt[members].sum()) - (len(kept) - 1)
    if violation < _VIOLATION_TOL:
        return None
    # Map complemented members back to original variables:
    # sum_{C+} x_j + sum_{C-} (1 - x_j) <= |C| - 1.
    cols = bin_idx[members]
    coefs = np.where(comp[members], -1.0, 1.0)
    rhs = float(len(kept) - 1 - comp[members].sum())
    sort = np.argsort(cols)
    return CoverCut(
        cols=tuple(int(j) for j in cols[sort]),
        coefs=tuple(float(v) for v in coefs[sort]),
        rhs=rhs,
        kind=kind,
        violation=violation,
        source_row=source_row,
    )
