"""The :class:`PatrolPlanner` facade — predictor in, deployable plan out.

Wires together the pieces of Section VI: build the time-unrolled graph for a
patrol post, resample the predictor's effort-response surfaces onto the PWL
breakpoints of problem (P), apply the robust (Eq. 4) penalty, solve the
MILP, and decompose the optimal flow into ranger routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geo.grid import Grid
from repro.planning.graph import TimeUnrolledGraph
from repro.planning.milp import MILPSolution, PatrolMILP, SOLVER_MODES
from repro.planning.paths import PatrolRoute, decompose_flow_into_routes
from repro.planning.pwl import PiecewiseLinear, pwl_from_samples, sample_breakpoints
from repro.planning.robust import RobustObjective


@dataclass
class PatrolPlan:
    """A solved patrol plan for one post and period.

    Attributes
    ----------
    coverage:
        ``(n_cells,)`` prescribed patrol effort (km) per cell.
    objective_value:
        Optimal robust utility at the planning beta.
    beta:
        Robustness weight the plan was computed with.
    routes:
        Mixed-strategy route decomposition (weights sum to ~1).
    solution:
        Raw MILP solution (flows, status).
    """

    coverage: np.ndarray
    objective_value: float
    beta: float
    routes: list[PatrolRoute]
    solution: MILPSolution


class PatrolPlanner:
    """Plans risk-aware patrols for a single patrol post.

    Parameters
    ----------
    grid:
        Park lattice.
    source_cell:
        Patrol post cell id.
    horizon:
        Patrol length T in time steps (cells).
    n_patrols:
        Patrols per period K (coverage scale).
    n_segments:
        PWL segments m in the MILP's utility approximation.
    time_limit:
        MILP time limit (seconds).
    solver_mode:
        ``"auto"`` (default) drops the SOS2 binaries and solves a pure LP
        whenever every utility is concave; ``"milp"`` always carries them;
        ``"lp"`` forces the fast path (rejecting non-concave utilities);
        ``"bnb"`` routes the full model through the from-scratch certified
        branch-and-bound backend.
    bnb_strategy:
        Node/variable selection of the ``"bnb"`` backend (one of
        :data:`~repro.planning.branch_and_bound.BNB_STRATEGIES`).
    """

    def __init__(
        self,
        grid: Grid,
        source_cell: int,
        horizon: int = 8,
        n_patrols: int = 4,
        n_segments: int = 10,
        time_limit: float = 60.0,
        solver_mode: str = "auto",
        bnb_strategy: str = "best_bound",
    ):
        if n_segments < 1:
            raise ConfigurationError(f"n_segments must be >= 1, got {n_segments}")
        if solver_mode not in SOLVER_MODES:
            raise ConfigurationError(
                f"solver_mode must be one of {SOLVER_MODES}, got '{solver_mode}'"
            )
        self.grid = grid
        self.source_cell = int(source_cell)
        self.horizon = int(horizon)
        self.n_patrols = int(n_patrols)
        self.n_segments = int(n_segments)
        self.time_limit = time_limit
        self.solver_mode = solver_mode
        self.bnb_strategy = bnb_strategy
        self.graph = TimeUnrolledGraph(grid, self.source_cell, self.horizon)
        self._milp = PatrolMILP(
            self.graph,
            n_patrols=self.n_patrols,
            time_limit=time_limit,
            bnb_strategy=bnb_strategy,
        )

    # ------------------------------------------------------------------
    @property
    def milp(self) -> PatrolMILP:
        """The underlying problem-(P) solver (owns the structure cache)."""
        return self._milp

    @property
    def max_coverage(self) -> float:
        """T*K, the largest coverage one cell could receive."""
        return self._milp.max_coverage

    @staticmethod
    def breakpoints_for(
        horizon: int, n_patrols: int, n_segments: int
    ) -> np.ndarray:
        """PWL abscissae on [0, T*K] for the given planner parameters.

        The single source of the breakpoint grid: planners and the
        multi-post :class:`~repro.planning.service.PlanService` must agree
        on it exactly, or shared utility functions would be resampled on a
        mismatched domain.
        """
        return sample_breakpoints(float(horizon * n_patrols), n_segments)

    def breakpoints(self) -> np.ndarray:
        """The planner's PWL abscissae on [0, T*K]."""
        return self.breakpoints_for(self.horizon, self.n_patrols, self.n_segments)

    def _utilities_from_objective(
        self,
        objective: RobustObjective,
        beta: float | None,
        source_functions: list[PiecewiseLinear] | None = None,
    ) -> dict[int, PiecewiseLinear]:
        """Resample the robust objective onto the planner breakpoints."""
        if objective.n_cells != self.grid.n_cells:
            raise ConfigurationError(
                f"objective covers {objective.n_cells} cells, park has "
                f"{self.grid.n_cells}"
            )
        xs = self.breakpoints()
        if source_functions is None:
            source_functions = objective.utility_functions(beta)
        utilities: dict[int, PiecewiseLinear] = {}
        for v in self.graph.reachable_cells:
            f = source_functions[int(v)]
            utilities[int(v)] = PiecewiseLinear(xs, np.asarray(f(xs)))
        return utilities

    def plan_from_model(
        self, model, features: np.ndarray, beta: float = 0.8
    ) -> PatrolPlan:
        """Predictor in, deployable plan out — the serving-path entry point.

        Samples the model's effort-response surfaces on this planner's PWL
        breakpoints, wraps them in a robust objective at ``beta``, and
        solves. ``model`` is anything exposing
        ``effort_response(features, xs) -> (risk, nu)``: a fitted
        :class:`~repro.core.predictor.PawsPredictor` or a cached
        :class:`~repro.runtime.service.RiskMapService` (which makes repeated
        planning at different betas hit the prediction cache).
        """
        xs = self.breakpoints()
        risk, nu = model.effort_response(features, xs)
        objective = RobustObjective(xs, risk, nu, beta=beta)
        return self.plan(objective)

    def plan(
        self,
        objective: RobustObjective,
        beta: float | None = None,
        source_functions: list[PiecewiseLinear] | None = None,
    ) -> PatrolPlan:
        """Solve problem (P) under the (robust) objective.

        Parameters
        ----------
        objective:
            Per-cell sampled risk and uncertainty surfaces.
        beta:
            Override the objective's robustness weight for this solve.
        source_functions:
            Pre-built ``objective.utility_functions(beta)`` output (must
            match ``beta``). Lets a multi-post service compute the
            full-park functions once and share them across planners
            instead of rebuilding them per post.
        """
        effective_beta = objective.beta if beta is None else beta
        utilities = self._utilities_from_objective(
            objective, effective_beta, source_functions
        )
        solution = self._milp.solve(utilities, mode=self.solver_mode)
        routes = decompose_flow_into_routes(self.graph, solution.edge_flows)
        return PatrolPlan(
            coverage=solution.coverage,
            objective_value=solution.objective_value,
            beta=effective_beta,
            routes=routes,
            solution=solution,
        )

    # ------------------------------------------------------------------
    def solution_quality_ratio(
        self,
        objective: RobustObjective,
        beta: float,
        baseline_plan: PatrolPlan | None = None,
    ) -> float:
        """Fig. 8's metric: ``U_beta(C_beta) / U_beta(C_{beta=0})``.

        Plans computed with and without the uncertainty penalty are both
        scored under the *robust* ground truth ``U_beta``; a ratio above 1
        means accounting for uncertainty changed the plan in a way the
        robust objective values.
        """
        robust_plan = self.plan(objective, beta=beta)
        if baseline_plan is None:
            baseline_plan = self.plan(objective, beta=0.0)
        numer = objective.evaluate_coverage(robust_plan.coverage, beta=beta)
        denom = objective.evaluate_coverage(baseline_plan.coverage, beta=beta)
        if abs(denom) < 1e-12:
            return 1.0
        return float(numer / denom)
