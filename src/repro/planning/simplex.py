"""Warm-startable node-LP oracle for the branch-and-bound solver.

Every node of a 0/1 branch and bound solves an LP that differs from its
parent's only in the bounds of one branched variable.  ``scipy``'s HiGHS
interface cannot exploit that (it neither accepts nor returns a simplex
basis), so each node would pay a full presolve-and-solve from scratch.
This module provides the missing piece: a bounded-variable **dual simplex**
that re-optimises a child LP starting from the parent's optimal basis.
The parent basis stays dual-feasible under bound changes, so a child
re-solve typically takes a handful of pivots instead of a cold solve.

Design constraints, in order:

1. **Never wrong.**  Every warm answer is verified before it is trusted:
   optimal bases are checked against the KKT conditions, infeasibility
   verdicts are re-derived from a refactorised Farkas row, and bound
   cutoffs re-validate dual feasibility.  Any check failure falls back to
   a cold ``linprog`` solve — the oracle can be slow, never incorrect.
2. **Deterministic.**  All tie-breaks are by lowest index; a fixed
   iteration budget and refactorisation cadence make runs reproducible,
   which the solver-zoo exploration fingerprints rely on.
3. **Small-instance honest.**  The basis inverse is dense (the patrol
   MILPs this certifies are a few hundred rows); pivots cost
   ``O(m^2 + nnz)`` and a refactorisation ``O(m^3)``.

The oracle works on the standard equality form

    min c'z   s.t.  [A_ub I 0; A_eq 0 I] z = [b_ub; b_eq],  L <= z <= U

with one slack per inequality row and one artificial (fixed to ``[0, 0]``)
per equality row, so column ``n + i`` is exactly the ``i``-th unit vector —
which makes basis crashes and Farkas checks one-liners.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.linalg import qr as dense_qr
from scipy.optimize import linprog

from repro.exceptions import PlanningError

#: Node-LP verdicts returned by :meth:`NodeLPOracle.solve`.
LP_OPTIMAL = "optimal"
LP_INFEASIBLE = "infeasible"
LP_CUTOFF = "cutoff"
LP_UNBOUNDED = "unbounded"

_AT_LOWER = 0
_AT_UPPER = 1
_BASIC = 2

_FEAS_TOL = 1e-7
_DUAL_TOL = 1e-7
_PIVOT_TOL = 1e-8
_REFACTOR_EVERY = 40


@dataclass
class Basis:
    """A simplex basis: which variable sits in each row, and where the rest
    rest (at lower or upper bound).  Stored with compact dtypes because every
    open branch-and-bound node keeps one."""

    basic: np.ndarray  # (m,) int32 variable indices, one per row
    status: np.ndarray  # (N,) int8 of _AT_LOWER/_AT_UPPER/_BASIC


@dataclass
class NodeLP:
    """Outcome of one node-LP solve.

    ``objective`` is the LP optimum for ``optimal``, a valid lower bound for
    ``cutoff``, and ``+inf`` for ``infeasible``.  ``x`` (structural part
    only) and ``basis`` are populated for ``optimal`` solves; ``warm`` says
    whether the dual simplex produced the answer or the cold path did.
    """

    status: str
    objective: float
    x: np.ndarray | None = None
    basis: Basis | None = None
    warm: bool = False


class NodeLPOracle:
    """LP oracle shared by every node of one branch-and-bound run.

    Parameters
    ----------
    c:
        Structural objective (minimisation).
    a_ub, b_ub, a_eq, b_eq:
        Row system in ``linprog`` form (either pair may be ``None``).
    warm_start:
        Master switch; ``False`` routes every solve through ``linprog``.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub: sparse.spmatrix | None,
        b_ub: np.ndarray | None,
        a_eq: sparse.spmatrix | None,
        b_eq: np.ndarray | None,
        warm_start: bool = True,
    ):
        self.n = int(c.size)
        self.a_ub = sparse.csr_matrix(a_ub) if a_ub is not None else None
        self.b_ub = np.asarray(b_ub, dtype=float) if b_ub is not None else None
        self.a_eq = sparse.csr_matrix(a_eq) if a_eq is not None else None
        self.b_eq = np.asarray(b_eq, dtype=float) if b_eq is not None else None
        self.warm_start = warm_start
        self.stats = {
            "cold_solves": 0,
            "warm_solves": 0,
            "warm_iterations": 0,
            "fallbacks": 0,
        }

        m_ub = self.a_ub.shape[0] if self.a_ub is not None else 0
        m_eq = self.a_eq.shape[0] if self.a_eq is not None else 0
        self.m = m_ub + m_eq
        self.m_ub = m_ub
        self.N = self.n + self.m

        blocks = []
        if self.a_ub is not None:
            blocks.append(self.a_ub)
        if self.a_eq is not None:
            blocks.append(self.a_eq)
        structural = (
            sparse.vstack(blocks, format="csc")
            if blocks
            else sparse.csc_matrix((0, self.n))
        )
        # Column n + i is the i-th unit vector: slack for inequality rows,
        # artificial (bounds [0, 0]) for equality rows.
        self.A = sparse.hstack(
            [structural, sparse.identity(self.m, format="csc")], format="csc"
        )
        self.A_csr = self.A.tocsr()
        self.b = np.concatenate(
            [v for v in (self.b_ub, self.b_eq) if v is not None]
        ) if self.m else np.zeros(0)
        self.c = np.concatenate([np.asarray(c, dtype=float), np.zeros(self.m)])
        # Slack/artificial bounds never change between nodes.
        self._tail_lb = np.zeros(self.m)
        self._tail_ub = np.concatenate(
            [np.full(m_ub, np.inf), np.zeros(m_eq)]
        )
        # A child node starts from its parent's exact basis, so the dense
        # inverse computed when the parent finished is reusable verbatim.
        # Keyed by the basic-index array; bounded FIFO to cap memory.
        self._binv_cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._binv_cache_max = 32

    # ------------------------------------------------------------------
    def solve(
        self,
        var_lb: np.ndarray,
        var_ub: np.ndarray,
        basis: Basis | None = None,
        cutoff: float = np.inf,
    ) -> NodeLP:
        """Solve the node LP under the given structural bounds.

        A parent ``basis`` triggers the warm dual-simplex path; without one
        (or with ``warm_start=False``) the cold ``linprog`` path runs.  A
        finite ``cutoff`` lets the dual simplex stop as soon as its (always
        valid) dual bound proves the node cannot beat the incumbent.
        """
        lb = np.concatenate([np.asarray(var_lb, dtype=float), self._tail_lb])
        ub = np.concatenate([np.asarray(var_ub, dtype=float), self._tail_ub])
        if basis is not None and self.warm_start:
            result = self._dual_simplex(lb, ub, basis, cutoff)
            if result is not None:
                return result
            self.stats["fallbacks"] += 1
        return self._cold_solve(lb, ub, cutoff)

    # ------------------------------------------------------------------
    # Cold path: linprog (HiGHS) + basis crash
    # ------------------------------------------------------------------
    def _cold_solve(self, lb: np.ndarray, ub: np.ndarray, cutoff: float) -> NodeLP:
        self.stats["cold_solves"] += 1
        res = linprog(
            self.c[: self.n],
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=np.stack([lb[: self.n], ub[: self.n]], axis=1),
            method="highs",
        )
        if res.status == 2:
            return NodeLP(LP_INFEASIBLE, np.inf)
        if res.status == 3:
            return NodeLP(LP_UNBOUNDED, -np.inf)
        if res.status != 0 or res.x is None:
            raise PlanningError(f"node LP solve failed: {res.message}")
        obj = float(res.fun)
        if obj >= cutoff:
            return NodeLP(LP_CUTOFF, obj)
        x = np.clip(np.asarray(res.x, dtype=float), lb[: self.n], ub[: self.n])
        basis = self._crash_basis(x, lb, ub) if self.warm_start else None
        return NodeLP(LP_OPTIMAL, obj, x=x, basis=basis)

    def _full_point(self, x: np.ndarray) -> np.ndarray:
        """Extend a structural point with its slack/artificial values."""
        z = np.empty(self.N)
        z[: self.n] = x
        if self.m_ub:
            z[self.n : self.n + self.m_ub] = self.b_ub - self.a_ub @ x
        if self.m > self.m_ub:
            z[self.n + self.m_ub :] = self.b_eq - self.a_eq @ x
        return z

    def _crash_basis(self, x: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> Basis | None:
        """Reconstruct a basis from a cold LP solution.

        Variables strictly inside their bounds must be basic; the basis is
        completed with unit (slack/artificial) columns via a pivoted QR in
        which candidate columns are up-weighted so the factorisation prefers
        them.  A degenerate vertex can defeat the reconstruction — then the
        child simply falls back to a cold solve, so ``None`` is acceptable.
        """
        if self.m == 0:
            return None
        z = self._full_point(x)
        away_lo = z - lb
        away_up = ub - z
        interior = np.minimum(away_lo, np.where(np.isfinite(ub), away_up, np.inf))
        cand = np.flatnonzero(interior > _FEAS_TOL)
        # Stage 1: pivoted QR over the interior candidates keeps a maximal
        # independent subset (they must all be basic at a vertex, but a
        # degenerate solution can include dependent ones).
        selected: list[int] = []
        q1 = None
        if cand.size:
            dense = self.A[:, cand].toarray()
            try:
                q_mat, r_mat, perm = dense_qr(dense, mode="economic", pivoting=True)
            except np.linalg.LinAlgError:  # pragma: no cover - finite data
                return None
            diag = np.abs(np.diag(r_mat))
            rank = int((diag > 1e-9 * max(diag[0], 1.0)).sum()) if diag.size else 0
            selected = [int(cand[j]) for j in perm[:rank]]
            q1 = q_mat[:, :rank]
        # Stage 2: complete with unit (slack/artificial) columns chosen by a
        # second pivoted QR on the identity projected off the selected span,
        # which guarantees joint independence.
        if len(selected) < self.m:
            proj = np.eye(self.m)
            if q1 is not None and q1.shape[1]:
                proj -= q1 @ q1.T
            try:
                __, r2, perm2 = dense_qr(proj, mode="economic", pivoting=True)
            except np.linalg.LinAlgError:  # pragma: no cover - finite data
                return None
            need = self.m - len(selected)
            diag2 = np.abs(np.diag(r2))
            if (diag2[:need] <= 1e-10).any():
                return None
            selected.extend(self.n + int(i) for i in perm2[:need])
        basic = np.asarray(selected)
        status = np.where(away_lo <= np.where(np.isfinite(ub), away_up, np.inf),
                          _AT_LOWER, _AT_UPPER).astype(np.int8)
        status[basic] = _BASIC
        return Basis(basic=np.sort(basic).astype(np.int32), status=status)

    # ------------------------------------------------------------------
    # Warm path: bounded-variable dual simplex from the parent basis
    # ------------------------------------------------------------------
    def _dual_simplex(
        self, lb: np.ndarray, ub: np.ndarray, parent: Basis, cutoff: float
    ) -> NodeLP | None:
        """Re-optimise from a (dual-feasible) parent basis.

        Returns ``None`` whenever any invariant cannot be certified — the
        caller then falls back to the cold path.
        """
        m, N = self.m, self.N
        if m == 0:
            return None
        basic = parent.basic.astype(np.intp).copy()
        status = parent.status.copy()
        b_inv = self._invert_basis(basic)
        if b_inv is None:
            return None

        # Establish dual feasibility before iterating: a crash basis from
        # the cold path can be primal-optimal yet dual-infeasible at a
        # degenerate vertex.  Nonbasic variables with wrong-sign reduced
        # costs are bound-flipped to their opposite (finite) bound; an
        # infinite opposite bound means the flip is impossible and the
        # warm start is hopeless, so fall back immediately.
        d = self._reduced_costs(basic, b_inv)
        tol = _DUAL_TOL * (1.0 + float(np.abs(self.c).max(initial=0.0)))
        movable = ub > lb
        wrong_lo = (status == _AT_LOWER) & movable & (d < -tol)
        wrong_up = (status == _AT_UPPER) & movable & (d > tol)
        if wrong_lo.any() or wrong_up.any():
            if (
                (wrong_lo & ~np.isfinite(ub)).any()
                or (wrong_up & ~np.isfinite(lb)).any()
            ):
                return None
            status[wrong_lo] = _AT_UPPER
            status[wrong_up] = _AT_LOWER

        self.stats["warm_solves"] += 1
        max_iter = 200 + 5 * m
        infeasible_retry = False
        for iteration in range(max_iter):
            self.stats["warm_iterations"] += 1
            if iteration and iteration % _REFACTOR_EVERY == 0:
                b_inv = self._invert_basis(basic)
                if b_inv is None:
                    return None
            z = self._basic_point(basic, status, lb, ub, b_inv)
            x_b = z[basic]
            viol_lo = lb[basic] - x_b
            viol_up = x_b - ub[basic]
            viol = np.maximum(viol_lo, viol_up)
            worst = float(viol.max()) if m else 0.0
            if worst <= _FEAS_TOL:
                obj = float(self.c @ z)
                basis = Basis(basic=basic.astype(np.int32), status=status)
                if not self._kkt_ok(z, basis, lb, ub, b_inv):
                    return None
                if obj >= cutoff:
                    return NodeLP(LP_CUTOFF, obj, warm=True)
                # This basis is exactly what the children will start from.
                self._store_binv(basic, b_inv)
                return NodeLP(
                    LP_OPTIMAL, obj, x=z[: self.n], basis=basis, warm=True
                )
            obj = float(self.c @ z)
            if obj >= cutoff:
                # The dual objective of a dual-feasible basis is a valid
                # lower bound; certify dual feasibility before pruning on it.
                basis = Basis(basic=basic.astype(np.int32), status=status)
                if self._dual_feasible(basis, lb, ub, b_inv):
                    return NodeLP(LP_CUTOFF, obj, warm=True)
                return None
            r = int(np.argmax(viol))
            below = viol_lo[r] >= viol_up[r]
            rho = b_inv[r]
            alpha = self.A_csr.T @ rho
            alpha[np.abs(alpha) < 1e-11] = 0.0
            movable = ub > lb  # fixed columns (artificials, branched
            at_lower = (status == _AT_LOWER) & movable  # binaries) can
            at_upper = (status == _AT_UPPER) & movable  # never enter
            if below:
                eligible = (at_lower & (alpha < 0)) | (at_upper & (alpha > 0))
            else:
                eligible = (at_lower & (alpha > 0)) | (at_upper & (alpha < 0))
            elig_idx = np.flatnonzero(eligible)
            if elig_idx.size == 0:
                # Dual unbounded => primal infeasible.  Re-derive the Farkas
                # row from a fresh factorisation once before trusting it.
                if not infeasible_retry:
                    infeasible_retry = True
                    b_inv = self._invert_basis(basic)
                    if b_inv is None:
                        return None
                    continue
                if self._farkas_certified(basic, status, lb, ub, b_inv, r, below):
                    return NodeLP(LP_INFEASIBLE, np.inf, warm=True)
                return None
            d = self._reduced_costs(basic, b_inv)
            ratios = np.abs(d[elig_idx]) / np.abs(alpha[elig_idx])
            best = float(ratios.min())
            # Tie-break: largest pivot magnitude for stability, then lowest
            # variable index for determinism.
            tied = elig_idx[ratios <= best + _DUAL_TOL]
            e = int(tied[np.lexsort((tied, -np.abs(alpha[tied])))[0]])
            col = self.A[:, e].toarray().ravel()
            u_vec = b_inv @ col
            if abs(u_vec[r]) < _PIVOT_TOL:
                b_inv = self._invert_basis(basic)
                if b_inv is None:
                    return None
                u_vec = b_inv @ col
                if abs(u_vec[r]) < _PIVOT_TOL:
                    return None
            leaving = basic[r]
            status[leaving] = _AT_LOWER if below else _AT_UPPER
            status[e] = _BASIC
            basic[r] = e
            # Product-form update of the dense inverse.
            pivot_row = b_inv[r] / u_vec[r]
            b_inv -= np.outer(u_vec, pivot_row)
            b_inv[r] = pivot_row
        return None  # iteration budget exhausted -> cold fallback

    # ------------------------------------------------------------------
    def _invert_basis(self, basic: np.ndarray) -> np.ndarray | None:
        """Dense inverse of the basis matrix, served from the cache when a
        sibling or child solve already factorised the same basis."""
        key = np.asarray(basic, dtype=np.int32).tobytes()
        cached = self._binv_cache.get(key)
        if cached is not None:
            self._binv_cache.move_to_end(key)
            return cached.copy()  # callers mutate their copy in place
        try:
            b_inv = np.linalg.inv(self.A[:, basic].toarray())
        except np.linalg.LinAlgError:
            return None
        self._store_binv(basic, b_inv)
        return b_inv

    def _store_binv(self, basic: np.ndarray, b_inv: np.ndarray) -> None:
        key = np.asarray(basic, dtype=np.int32).tobytes()
        self._binv_cache[key] = b_inv.copy()
        self._binv_cache.move_to_end(key)
        while len(self._binv_cache) > self._binv_cache_max:
            self._binv_cache.popitem(last=False)

    def _basic_point(self, basic, status, lb, ub, b_inv) -> np.ndarray:
        """The point where nonbasic vars sit on their bounds and the basics
        absorb the residual (recomputed fresh each pivot for robustness)."""
        z = np.where(status == _AT_UPPER, ub, lb)
        z[basic] = 0.0
        z[~np.isfinite(z)] = 0.0  # free nonbasics rest at 0
        rhs = self.b - self.A_csr @ z
        z[basic] = b_inv @ rhs
        return z

    def _reduced_costs(self, basic, b_inv) -> np.ndarray:
        y = self.c[basic] @ b_inv
        return self.c - self.A_csr.T @ y

    def _dual_feasible(self, basis: Basis, lb, ub, b_inv) -> bool:
        d = self._reduced_costs(basis.basic.astype(np.intp), b_inv)
        scale = 1.0 + float(np.abs(self.c).max(initial=0.0))
        tol = _DUAL_TOL * scale
        movable = ub > lb  # a fixed column's reduced cost carries no sign law
        if (d[(basis.status == _AT_LOWER) & movable] < -tol).any():
            return False
        if (d[(basis.status == _AT_UPPER) & movable] > tol).any():
            return False
        return True

    def _kkt_ok(self, z, basis: Basis, lb, ub, b_inv) -> bool:
        """Certify an optimal claim: primal feasibility + reduced-cost signs."""
        scale = 1.0 + float(np.abs(self.b).max(initial=0.0))
        if float(np.abs(self.A_csr @ z - self.b).max(initial=0.0)) > 1e-6 * scale:
            return False
        bound_tol = 1e-6 * (1.0 + float(np.abs(z).max(initial=0.0)))
        if (z < lb - bound_tol).any() or (z > ub + bound_tol).any():
            return False
        return self._dual_feasible(basis, lb, ub, b_inv)

    def _farkas_certified(self, basic, status, lb, ub, b_inv, r, below) -> bool:
        """Verify the infeasibility certificate row ``r`` of ``b_inv``.

        With ``rho = b_inv[r]``, every feasible point satisfies
        ``z[basic[r]] = rho @ b - sum_j alpha_j z_j`` over nonbasic ``j``;
        if the bound-wise extreme of the right-hand side still violates the
        basic variable's bound, no feasible point exists.
        """
        rho = b_inv[r]
        alpha = self.A_csr.T @ rho
        nonbasic = status != _BASIC
        # Bound-wise extreme of sum_j alpha_j z_j: minimised when the basic
        # variable must rise to its lower bound, maximised when it must drop.
        if below:
            bound_choice = np.where(alpha > 0, lb, ub)
        else:
            bound_choice = np.where(alpha > 0, ub, lb)
        # Infinite bounds with nonzero coefficients make the extreme
        # unbounded in the feasible direction - certificate fails.
        active = nonbasic & (np.abs(alpha) >= 1e-11)
        contrib = np.zeros(self.N)
        contrib[active] = alpha[active] * bound_choice[active]
        if not np.isfinite(contrib[active]).all():
            return False
        extreme = float(rho @ self.b) - float(contrib[active].sum())
        tol = _FEAS_TOL * (1.0 + abs(extreme))
        if below:
            return extreme < lb[basic[r]] - tol
        return extreme > ub[basic[r]] + tol
