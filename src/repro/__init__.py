"""PAWS reproduction: poaching prediction and patrol planning under uncertainty.

Reproduction of Xu, Gholami, Mc Carthy et al., "Stay Ahead of Poachers:
Illegal Wildlife Poaching Prediction and Patrol Planning Under Uncertainty
with Field Test Evaluations" (ICDE 2020).

Quick start::

    from repro import DataToDeploymentPipeline
    from repro.data import MFNP

    pipeline = DataToDeploymentPipeline(MFNP.scaled(0.5), beta=0.8, seed=0)
    result = pipeline.run(field_test=True)
    print(result.test_auc, result.field_p_value)

Subpackages
-----------
* :mod:`repro.geo` — grids, rasters, distances, feature stacks.
* :mod:`repro.data` — synthetic parks, poacher/ranger simulation, datasets.
* :mod:`repro.ml` — from-scratch classifiers (trees, bagging, SVM, GP).
* :mod:`repro.core` — the enhanced iWare-E ensemble (the paper's stage 1).
* :mod:`repro.planning` — the robust patrol-planning MILP (stage 2).
* :mod:`repro.runtime` — serving: batched prediction, parallel fitting,
  model persistence, and the cached :class:`RiskMapService`.
* :mod:`repro.fieldtest` — field-test design, simulation, and statistics.
* :mod:`repro.evaluation` — experiment runners and report rendering.
"""

from repro.exceptions import (
    AdmissionError,
    CircuitOpenError,
    ConfigurationError,
    ConvergenceError,
    DataError,
    DeadlineExceededError,
    InfeasibleError,
    NotFittedError,
    PersistenceError,
    PlanningError,
    ReproError,
    ResilienceError,
    WorkerCrashError,
)

__version__ = "1.7.0"

from repro.pipeline import DataToDeploymentPipeline, PipelineResult
from repro.planning.service import PlanService
from repro.runtime.service import RiskMapService

__all__ = [
    "DataToDeploymentPipeline",
    "PipelineResult",
    "PlanService",
    "RiskMapService",
    "ReproError",
    "ConfigurationError",
    "DataError",
    "NotFittedError",
    "ConvergenceError",
    "ResilienceError",
    "DeadlineExceededError",
    "WorkerCrashError",
    "AdmissionError",
    "CircuitOpenError",
    "PersistenceError",
    "PlanningError",
    "InfeasibleError",
    "__version__",
]
