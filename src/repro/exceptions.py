"""Exception hierarchy for the PAWS reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid configuration value or combination was supplied."""


class DataError(ReproError):
    """A dataset is malformed, empty, or inconsistent with its metadata."""


class NotFittedError(ReproError):
    """A model method requiring a fit was called before :meth:`fit`."""


class ConvergenceError(ReproError):
    """An iterative optimisation failed to converge."""


class PersistenceError(ReproError):
    """A saved model artifact is missing, corrupt, or incompatible."""


class ResilienceError(ReproError):
    """A supervised fan-out could not complete within its fault budget."""


class DeadlineExceededError(ResilienceError):
    """A request overran its deadline before every task completed."""


class WorkerCrashError(ResilienceError):
    """Pool workers kept dying and the retry/degradation budget ran out."""


class AdmissionError(ResilienceError):
    """A request was shed by admission control (server saturated or draining)."""


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open; the protected operation was not attempted."""


class PlanningError(ReproError):
    """Patrol-plan construction or MILP solution failed."""


class InfeasibleError(PlanningError):
    """The patrol-planning program has no feasible solution."""
