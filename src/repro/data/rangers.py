"""Ranger patrol simulator.

Simulates the patrols whose GPS traces populate the SMART database. The
simulator reproduces the data-collection pathologies the paper highlights:

* **Spatial bias** — patrols start at posts and prefer accessible,
  historically favoured terrain, so effort is unevenly distributed and some
  cells are never patrolled (Fig. 3).
* **Sparse waypoints** — GPS points are recorded only every
  ``waypoint_interval`` km (30-minute syncs; worse on motorbikes in SWS), so
  recorded effort must be *reconstructed* by interpolating between waypoints
  and differs from the true path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.park import SyntheticPark
from repro.exceptions import ConfigurationError


@dataclass
class PatrolRecord:
    """One ranger patrol: the true path and its recorded waypoints.

    Attributes
    ----------
    period_index:
        Time period during which the patrol happened.
    post:
        Cell id of the patrol post the patrol starts from.
    path:
        Sequence of cell ids actually visited (1 km per step).
    waypoints:
        Subsampled path — the GPS points that reach the SMART database.
    """

    period_index: int
    post: int
    path: list[int]
    waypoints: list[int] = field(default_factory=list)

    @property
    def length_km(self) -> float:
        """True patrol length in km (one km per path step)."""
        return float(len(self.path))


class PatrolSimulator:
    """Biased-random-walk patrol generator over a synthetic park.

    Parameters
    ----------
    park:
        The park to patrol.
    seed:
        Randomness for walk decisions and post choice.
    focus:
        Softmax temperature on the preference raster; larger = more biased
        (more concentrated, less exploratory) patrols.
    """

    def __init__(self, park: SyntheticPark, seed: int = 7, focus: float = 1.5):
        if focus <= 0:
            raise ConfigurationError(f"focus must be positive, got {focus}")
        self.park = park
        self.rng = np.random.default_rng(seed)
        self.focus = focus
        self._preference = self._build_preference()
        #: Per-cell neighbour lists, precomputed for walk speed.
        self._neighbors: list[list[int]] = [
            park.grid.neighbors(cid, connectivity=4) for cid in range(park.n_cells)
        ]

    # ------------------------------------------------------------------
    def _build_preference(self) -> np.ndarray:
        """Where rangers like to patrol: accessible, near posts, plus habit.

        The persistent random component models institutional habit — routes
        that have "always been patrolled" — which is a key source of bias in
        the historical data.
        """
        features = self.park.features
        z = lambda v: (v - v.mean()) / (v.std() + 1e-12)  # noqa: E731
        pref = (
            -0.8 * z(features.column("dist_patrol_post"))
            - 0.5 * z(features.column("dist_road"))
            + 0.3 * z(features.column("animal_density"))
            - 0.2 * z(features.column("slope"))
        )
        habit = self.rng.normal(0.0, 0.8, size=pref.shape)
        return pref + habit

    @property
    def preference(self) -> np.ndarray:
        """The (fixed) per-cell patrol preference on an arbitrary scale."""
        return self._preference.copy()

    # ------------------------------------------------------------------
    def simulate_patrol(self, period_index: int) -> PatrolRecord:
        """One patrol: biased random walk from a random post and back.

        The walk spends ``patrol_length_km`` steps moving between adjacent
        cells, preferring high-preference neighbours; the last third of the
        walk adds a homeward bias so patrols plausibly end near their post.
        """
        profile = self.park.profile
        post = int(self.rng.choice(self.park.patrol_posts))
        length = profile.patrol_length_km
        path = [post]
        current = post
        for __ in range(length - 1):
            options = self._neighbors[current]
            if not options:
                break
            # Avoid doubling straight back over the last few cells when any
            # fresh neighbour exists — real patrols sweep, they don't pace.
            recent = set(path[-3:])
            fresh = [o for o in options if o not in recent]
            candidates = fresh if fresh else options
            weights = np.exp(
                self.focus * np.array([self._preference[o] for o in candidates])
            )
            weights /= weights.sum()
            current = int(self.rng.choice(candidates, p=weights))
            path.append(current)
        waypoints = path[:: profile.waypoint_interval]
        if waypoints[-1] != path[-1]:
            waypoints.append(path[-1])
        return PatrolRecord(
            period_index=period_index, post=post, path=path, waypoints=waypoints
        )

    def simulate_period(
        self, period_index: int, n_patrols: int | None = None
    ) -> tuple[np.ndarray, list[PatrolRecord]]:
        """All patrols of one time period.

        Returns
        -------
        (true_effort, patrols):
            ``true_effort`` is the ``(n_cells,)`` km actually walked per
            cell; ``patrols`` the individual patrol records (whose waypoints
            feed the SMART reconstruction).
        """
        profile = self.park.profile
        n_patrols = profile.patrols_per_period if n_patrols is None else n_patrols
        if n_patrols < 0:
            raise ConfigurationError(f"n_patrols must be >= 0, got {n_patrols}")
        effort = np.zeros(self.park.n_cells)
        patrols: list[PatrolRecord] = []
        for __ in range(n_patrols):
            patrol = self.simulate_patrol(period_index)
            for cid in patrol.path:
                effort[cid] += 1.0
            patrols.append(patrol)
        return effort, patrols
