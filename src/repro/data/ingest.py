"""Ingesting real SMART-style exports into a :class:`PoachingDataset`.

Parks that adopt this library will have their own SMART exports rather than
our simulator. This module accepts the two CSV artifacts a SMART analyst
can produce and assembles the same dataset object the rest of the pipeline
consumes:

* a **cell-features CSV** — one row per grid cell: ``cell_id`` followed by
  static feature columns (the output of any GIS preprocessing);
* an **observations CSV** — one row per (period, cell) with recorded patrol
  effort: ``period, cell_id, effort_km, poaching`` where ``poaching`` is
  0/1 (whether any poaching sign was recorded there that period).

The previous-period effort covariate ``c_{t-1,n}`` is reconstructed from
the observation rows themselves (cells absent from a period are treated as
unpatrolled, effort 0 — exactly the SMART semantics).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.dataset import PoachingDataset
from repro.exceptions import DataError


def read_cell_features_csv(path) -> tuple[np.ndarray, list[str], dict[int, int]]:
    """Parse a cell-features CSV.

    Returns
    -------
    (features, feature_names, row_of_cell):
        ``features`` is ``(n_cells, k)`` in file order; ``row_of_cell``
        maps each ``cell_id`` to its row index.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path}: empty features file") from None
        if not header or header[0].strip().lower() != "cell_id":
            raise DataError(f"{path}: first column must be 'cell_id'")
        feature_names = [name.strip() for name in header[1:]]
        if not feature_names:
            raise DataError(f"{path}: no feature columns")
        rows: list[list[float]] = []
        row_of_cell: dict[int, int] = {}
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise DataError(
                    f"{path}:{line_no}: expected {len(header)} columns, "
                    f"got {len(row)}"
                )
            try:
                cell_id = int(row[0])
                values = [float(v) for v in row[1:]]
            except ValueError as exc:
                raise DataError(f"{path}:{line_no}: {exc}") from None
            if cell_id in row_of_cell:
                raise DataError(f"{path}:{line_no}: duplicate cell_id {cell_id}")
            row_of_cell[cell_id] = len(rows)
            rows.append(values)
    if not rows:
        raise DataError(f"{path}: no data rows")
    features = np.asarray(rows, dtype=float)
    if not np.isfinite(features).all():
        raise DataError(f"{path}: non-finite feature values")
    return features, feature_names, row_of_cell


def read_observations_csv(path) -> list[tuple[int, int, float, int]]:
    """Parse an observations CSV into (period, cell, effort, poaching) rows."""
    path = Path(path)
    required = ["period", "cell_id", "effort_km", "poaching"]
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = [h.strip().lower() for h in next(reader)]
        except StopIteration:
            raise DataError(f"{path}: empty observations file") from None
        if header != required:
            raise DataError(
                f"{path}: header must be {required}, got {header}"
            )
        out: list[tuple[int, int, float, int]] = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                period = int(row[0])
                cell = int(row[1])
                effort = float(row[2])
                poaching = int(row[3])
            except (ValueError, IndexError) as exc:
                raise DataError(f"{path}:{line_no}: {exc}") from None
            if effort < 0:
                raise DataError(f"{path}:{line_no}: negative effort")
            if poaching not in (0, 1):
                raise DataError(f"{path}:{line_no}: poaching must be 0/1")
            if period < 0:
                raise DataError(f"{path}:{line_no}: negative period")
            out.append((period, cell, effort, poaching))
    if not out:
        raise DataError(f"{path}: no observation rows")
    return out


def dataset_from_csv(
    features_path,
    observations_path,
    periods_per_year: int = 4,
    name: str = "imported",
) -> PoachingDataset:
    """Build a :class:`PoachingDataset` from the two CSV exports.

    Each observation row becomes a data point (the first period is skipped,
    since it has no previous-effort covariate). Duplicate (period, cell)
    rows are merged: efforts summed, poaching OR-ed — multiple patrols may
    visit the same cell in one period.
    """
    features, feature_names, row_of_cell = read_cell_features_csv(features_path)
    observations = read_observations_csv(observations_path)

    merged: dict[tuple[int, int], tuple[float, int]] = {}
    for period, cell, effort, poaching in observations:
        if cell not in row_of_cell:
            raise DataError(
                f"observation references cell {cell} missing from the "
                "features file"
            )
        key = (period, cell)
        prev_effort, prev_poach = merged.get(key, (0.0, 0))
        merged[key] = (prev_effort + effort, max(prev_poach, poaching))

    effort_of: dict[tuple[int, int], float] = {
        key: value[0] for key, value in merged.items()
    }
    rows_static: list[np.ndarray] = []
    prev_list: list[float] = []
    cur_list: list[float] = []
    labels: list[int] = []
    periods: list[int] = []
    cells: list[int] = []
    first_period = min(p for p, __ in merged)
    for (period, cell), (effort, poaching) in sorted(merged.items()):
        if period == first_period:
            continue  # no previous-effort covariate available
        rows_static.append(features[row_of_cell[cell]])
        prev_list.append(effort_of.get((period - 1, cell), 0.0))
        cur_list.append(effort)
        labels.append(poaching)
        periods.append(period)
        cells.append(cell)
    if not rows_static:
        raise DataError("observations cover a single period; nothing to learn")
    return PoachingDataset(
        static_features=np.asarray(rows_static),
        prev_effort=np.asarray(prev_list),
        current_effort=np.asarray(cur_list),
        labels=np.asarray(labels),
        period=np.asarray(periods),
        cell=np.asarray(cells),
        periods_per_year=periods_per_year,
        feature_names=feature_names,
        name=name,
    )


def export_dataset_to_csv(
    dataset: PoachingDataset, features_path, observations_path
) -> None:
    """Write a dataset back out as the two-CSV exchange format.

    Round-trips with :func:`dataset_from_csv` up to the first period (which
    carries no data points) and per-cell feature deduplication.
    """
    features_path = Path(features_path)
    observations_path = Path(observations_path)
    seen: dict[int, np.ndarray] = {}
    for i in range(dataset.n_points):
        cell = int(dataset.cell[i])
        if cell not in seen:
            seen[cell] = dataset.static_features[i]
    with features_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["cell_id"] + dataset.feature_names)
        for cell in sorted(seen):
            writer.writerow([cell] + [repr(float(v)) for v in seen[cell]])
    with observations_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["period", "cell_id", "effort_km", "poaching"])
        for i in range(dataset.n_points):
            writer.writerow(
                [
                    int(dataset.period[i]),
                    int(dataset.cell[i]),
                    repr(float(dataset.current_effort[i])),
                    int(dataset.labels[i]),
                ]
            )
        # Emit the previous-period efforts of the earliest points so the
        # importer can rebuild their c_{t-1} covariate.
        first = int(dataset.period.min())
        emitted: set[tuple[int, int]] = set(
            (int(p), int(c)) for p, c in zip(dataset.period, dataset.cell)
        )
        for i in range(dataset.n_points):
            if int(dataset.period[i]) != first:
                continue
            key = (first - 1, int(dataset.cell[i]))
            if key in emitted or dataset.prev_effort[i] <= 0:
                continue
            emitted.add(key)
            writer.writerow(
                [first - 1, int(dataset.cell[i]),
                 repr(float(dataset.prev_effort[i])), 0]
            )
