"""SMART-style observation records and effort reconstruction.

SMART (Spatial Monitoring and Reporting Tool) stores ranger observations as
GPS-stamped categorised records, and patrol effort must be *rebuilt* from
sequential waypoints (Section III-B: "we rebuild historical patrol effort
from these observations by using sequential waypoints to calculate patrol
trajectories"). This module provides the same record model and the waypoint
-> trajectory -> per-cell-effort reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.rangers import PatrolRecord
from repro.exceptions import ConfigurationError, DataError
from repro.geo.grid import Grid

#: Observation categories that count as poaching signs (Section III-B).
POACHING_CATEGORIES = (
    "snare",
    "firearm",
    "bullet_cartridge",
    "slain_animal",
    "poacher_sighting",
)

#: Non-poaching observations rangers also record.
NON_POACHING_CATEGORIES = (
    "animal_sighting",
    "human_sighting",
    "campsite",
    "cut_tree",
)

OBSERVATION_CATEGORIES = POACHING_CATEGORIES + NON_POACHING_CATEGORIES


@dataclass(frozen=True)
class ObservationRecord:
    """One ranger observation synced from a GPS tracker.

    Attributes
    ----------
    period_index:
        Discretised time period of the observation.
    cell:
        Cell id where the observation was made.
    category:
        One of :data:`OBSERVATION_CATEGORIES`.
    patrol_id:
        Index of the patrol (within its period) that made the observation.
    """

    period_index: int
    cell: int
    category: str
    patrol_id: int

    def __post_init__(self) -> None:
        if self.category not in OBSERVATION_CATEGORIES:
            raise ConfigurationError(f"unknown observation category '{self.category}'")

    @property
    def is_poaching(self) -> bool:
        """Whether this record is a sign of illegal poaching activity."""
        return self.category in POACHING_CATEGORIES


class SmartDatabase:
    """In-memory stand-in for a park's SMART database.

    Collects observation records and patrol waypoints, and answers the two
    queries the pipeline needs: which (period, cell) pairs had detected
    poaching, and what the *recorded* patrol effort was.
    """

    def __init__(self, grid: Grid):
        self.grid = grid
        self._records: list[ObservationRecord] = []
        self._patrols: list[PatrolRecord] = []

    # ------------------------------------------------------------------
    def add_record(self, record: ObservationRecord) -> None:
        """Store one observation."""
        if not 0 <= record.cell < self.grid.n_cells:
            raise DataError(f"record cell {record.cell} outside the park")
        self._records.append(record)

    def add_patrol(self, patrol: PatrolRecord) -> None:
        """Store one patrol's waypoints."""
        self._patrols.append(patrol)

    @property
    def n_records(self) -> int:
        return len(self._records)

    @property
    def n_patrols(self) -> int:
        return len(self._patrols)

    def records(self, period_index: int | None = None) -> list[ObservationRecord]:
        """All records, optionally filtered to one period."""
        if period_index is None:
            return list(self._records)
        return [r for r in self._records if r.period_index == period_index]

    def poaching_cells(self, period_index: int) -> set[int]:
        """Cells with at least one poaching-category record in a period."""
        return {
            r.cell
            for r in self._records
            if r.period_index == period_index and r.is_poaching
        }

    # ------------------------------------------------------------------
    def recorded_effort(self, period_index: int) -> np.ndarray:
        """Patrol effort (km per cell) reconstructed from waypoints."""
        effort = np.zeros(self.grid.n_cells)
        for patrol in self._patrols:
            if patrol.period_index != period_index:
                continue
            effort += rebuild_effort_from_waypoints(self.grid, patrol.waypoints)
        return effort


def rebuild_effort_from_waypoints(grid: Grid, waypoints: list[int]) -> np.ndarray:
    """Per-cell km of effort implied by a sequence of GPS waypoints.

    Consecutive waypoints are joined by a straight lattice line (the best an
    analyst can do without the true path); each traversed cell gets 1 km.
    With sparse waypoints (motorbike patrols) this *underestimates* true
    effort and can attribute effort to cells never visited — exactly the
    data-quality problem the paper describes for SWS.
    """
    effort = np.zeros(grid.n_cells)
    if not waypoints:
        return effort
    if len(waypoints) == 1:
        effort[waypoints[0]] += 1.0
        return effort
    for a, b in zip(waypoints[:-1], waypoints[1:]):
        for cid in _lattice_line(grid, a, b):
            effort[cid] += 1.0
    # The first waypoint of each segment is counted once per segment; add
    # the final endpoint which the loop's half-open convention skipped.
    effort[waypoints[-1]] += 1.0
    return effort


def _lattice_line(grid: Grid, start: int, end: int) -> list[int]:
    """Cells on a straight line between two cells (endpoint excluded).

    Uses a supercover Bresenham-style walk: steps one cell at a time in the
    dominant direction, which keeps consecutive cells rook-adjacent.
    """
    r0, c0 = grid.cell_rc(start)
    r1, c1 = grid.cell_rc(end)
    cells: list[int] = []
    r, c = r0, c0
    while (r, c) != (r1, c1):
        if grid.contains_rc(r, c):
            cells.append(grid.cell_id(r, c))
        dr = np.sign(r1 - r)
        dc = np.sign(c1 - c)
        # Move along the axis with the larger remaining gap (ties: rows).
        if abs(r1 - r) >= abs(c1 - c):
            r += int(dr)
        else:
            c += int(dc)
    return cells
