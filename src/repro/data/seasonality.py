"""Wet/dry seasonality for Southeast-Asian parks.

Section VII-C of the paper: "Our predictive model identified higher poaching
risk in the north during dry season and south during rainy season", which
matched ranger experience — rivers in the south become impassable when dry.
:func:`seasonal_risk_shift` implements exactly that north/south modulation.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geo.grid import Grid

#: Dry-season months in Cambodia (November through April), per the paper.
DRY_MONTHS = (11, 12, 1, 2, 3, 4)


class Season(Enum):
    """The two Cambodian seasons."""

    DRY = "dry"
    WET = "wet"


def season_of_month(month: int) -> Season:
    """Season of a calendar month (1-12)."""
    if not 1 <= month <= 12:
        raise ConfigurationError(f"month must be in 1..12, got {month}")
    return Season.DRY if month in DRY_MONTHS else Season.WET


def months_of_period(period_index: int, periods_per_year: int,
                     dry_season_only: bool = False) -> list[int]:
    """Calendar months covered by one discretised time period.

    Full-year datasets use quarters starting in January; dry-season datasets
    use 2-month periods starting in November (Nov-Dec, Jan-Feb, Mar-Apr),
    matching the paper's SWS-dry discretisation.
    """
    if period_index < 0:
        raise ConfigurationError("period_index must be >= 0")
    within_year = period_index % periods_per_year
    if dry_season_only:
        starts = (11, 1, 3)
        if periods_per_year != 3:
            raise ConfigurationError(
                "dry-season datasets use 3 two-month periods per year"
            )
        start = starts[within_year]
        return [start, 1 if start == 12 else start + 1]
    months_per_period = 12 // periods_per_year
    start = within_year * months_per_period + 1
    return list(range(start, start + months_per_period))


def period_season(period_index: int, periods_per_year: int,
                  dry_season_only: bool = False) -> Season:
    """Dominant season of a time period."""
    months = months_of_period(period_index, periods_per_year, dry_season_only)
    n_dry = sum(1 for m in months if season_of_month(m) is Season.DRY)
    return Season.DRY if n_dry * 2 >= len(months) else Season.WET


def seasonal_risk_shift(grid: Grid, season: Season, strength: float = 0.8) -> np.ndarray:
    """Per-cell additive log-odds shift of poaching risk for a season.

    Dry season pushes risk toward the north (low row index); wet season
    toward the south. Returns a ``(n_cells,)`` vector in
    ``[-strength/2, +strength/2]``.
    """
    if strength < 0:
        raise ConfigurationError(f"strength must be >= 0, got {strength}")
    rows = grid.all_cell_rc()[:, 0].astype(float)
    # 0 at the top (north) to 1 at the bottom (south).
    southness = rows / max(1.0, grid.height - 1.0)
    if season is Season.DRY:
        return strength * (0.5 - southness)
    return strength * (southness - 0.5)
