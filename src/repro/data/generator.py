"""End-to-end synthetic data generation.

:func:`generate_dataset` runs the full simulation loop for one park —
patrols, attacks, detections, SMART records — and assembles the supervised
:class:`~repro.data.dataset.PoachingDataset` plus the ground-truth artifacts
that evaluation needs (true attack probabilities, effort histories).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import PoachingDataset
from repro.data.park import SyntheticPark
from repro.data.poachers import PoacherModel
from repro.data.profiles import ParkProfile
from repro.data.rangers import PatrolSimulator
from repro.data.smart import (
    NON_POACHING_CATEGORIES,
    POACHING_CATEGORIES,
    ObservationRecord,
    SmartDatabase,
)


@dataclass
class ParkData:
    """Everything produced by one park simulation.

    Attributes
    ----------
    park:
        The synthetic park (grid + features).
    poachers:
        Ground-truth poacher model (the oracle for field-test simulation).
    dataset:
        Supervised dataset of patrolled (period, cell) points.
    smart:
        SMART-style database of raw records and patrols.
    true_effort:
        ``(T, N)`` km actually patrolled (the simulator's hidden truth).
    recorded_effort:
        ``(T, N)`` km reconstructed from waypoints (what analysts see).
    attacks:
        ``(T, N)`` boolean ground-truth attack realisations.
    detections:
        ``(T, N)`` boolean detected attacks (the observable labels).
    """

    park: SyntheticPark
    poachers: PoacherModel
    dataset: PoachingDataset
    smart: SmartDatabase
    true_effort: np.ndarray
    recorded_effort: np.ndarray
    attacks: np.ndarray
    detections: np.ndarray

    @property
    def profile(self) -> ParkProfile:
        return self.park.profile


def generate_dataset(
    profile: ParkProfile, seed: int = 0, calibration_iters: int = 4
) -> ParkData:
    """Simulate a park's full patrol history and build its dataset.

    The simulation loop per period: poachers place snares (Bernoulli per
    cell, deterred by last period's *true* effort); rangers patrol (biased
    walks); an attack is detected with probability ``1 - e^{-k c}`` in the
    cell's true effort ``c``; detections become SMART records; and recorded
    effort is rebuilt from (possibly sparse) waypoints.

    When the profile sets ``target_positive_rate``, the simulation is re-run
    up to ``calibration_iters`` times, shifting the poacher intercept on the
    log-odds scale, so the positive-label rate lands near the Table I value
    for every seed (park layouts vary a lot otherwise).

    Parameters
    ----------
    profile:
        Park profile (geometry, rates, patrol resources).
    seed:
        Master seed; park layout, poacher tastes, and patrol randomness all
        derive from it deterministically.
    calibration_iters:
        Maximum intercept-calibration re-simulations.

    Returns
    -------
    ParkData
        The park, ground truth, SMART database, and supervised dataset.
    """
    park = SyntheticPark.generate(profile, seed=seed)
    poachers = PoacherModel(park, seed=seed + 1)

    data = _simulate(park, poachers, profile, seed)
    target = profile.target_positive_rate
    if target is not None:
        for __ in range(calibration_iters):
            observed = data.dataset.positive_rate
            n = max(1, data.dataset.n_points)
            observed = min(max(observed, 0.5 / n), 1.0 - 0.5 / n)
            if abs(np.log(observed / (1 - observed))
                   - np.log(target / (1 - target))) < 0.15:
                break
            poachers.shift_intercept(
                np.log(target / (1 - target)) - np.log(observed / (1 - observed))
            )
            data = _simulate(park, poachers, profile, seed)
    return data


def _simulate(
    park: SyntheticPark,
    poachers: PoacherModel,
    profile: ParkProfile,
    seed: int,
) -> ParkData:
    """One deterministic pass of the full simulation loop."""
    simulator = PatrolSimulator(park, seed=seed + 2)
    event_rng = np.random.default_rng(seed + 3)
    smart = SmartDatabase(park.grid)

    n_periods = profile.n_periods
    n_cells = park.n_cells
    true_effort = np.zeros((n_periods, n_cells))
    recorded_effort = np.zeros((n_periods, n_cells))
    attacks = np.zeros((n_periods, n_cells), dtype=bool)
    detections = np.zeros((n_periods, n_cells), dtype=bool)

    prev_true = np.zeros(n_cells)
    for t in range(n_periods):
        attacks[t] = poachers.sample_attacks(t, event_rng, prev_effort=prev_true)
        effort_t, patrols = simulator.simulate_period(t)
        true_effort[t] = effort_t

        p_detect = poachers.detection_probability(effort_t)
        detections[t] = attacks[t] & (event_rng.random(n_cells) < p_detect)

        for patrol_id, patrol in enumerate(patrols):
            smart.add_patrol(patrol)
            recorded_effort[t] += _patrol_recorded_effort(park, patrol, profile)
            _emit_records(smart, patrol, patrol_id, detections[t], event_rng)
        prev_true = effort_t

    dataset = _assemble_dataset(park, recorded_effort, detections)
    return ParkData(
        park=park,
        poachers=poachers,
        dataset=dataset,
        smart=smart,
        true_effort=true_effort,
        recorded_effort=recorded_effort,
        attacks=attacks,
        detections=detections,
    )


def _patrol_recorded_effort(park: SyntheticPark, patrol, profile: ParkProfile) -> np.ndarray:
    """Recorded effort of one patrol.

    Foot patrols (waypoint every km) record their path exactly; sparse
    waypoints go through the SMART trajectory reconstruction.
    """
    from repro.data.smart import rebuild_effort_from_waypoints

    if profile.waypoint_interval == 1:
        effort = np.zeros(park.n_cells)
        for cid in patrol.path:
            effort[cid] += 1.0
        return effort
    return rebuild_effort_from_waypoints(park.grid, patrol.waypoints)


def _emit_records(
    smart: SmartDatabase,
    patrol,
    patrol_id: int,
    detections_t: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Turn a patrol's detections (and incidental sightings) into records."""
    seen: set[int] = set()
    for cid in patrol.path:
        if cid in seen:
            continue
        seen.add(cid)
        if detections_t[cid]:
            category = str(rng.choice(POACHING_CATEGORIES))
            smart.add_record(
                ObservationRecord(
                    period_index=patrol.period_index,
                    cell=cid,
                    category=category,
                    patrol_id=patrol_id,
                )
            )
        elif rng.random() < 0.05:
            category = str(rng.choice(NON_POACHING_CATEGORIES))
            smart.add_record(
                ObservationRecord(
                    period_index=patrol.period_index,
                    cell=cid,
                    category=category,
                    patrol_id=patrol_id,
                )
            )


def _assemble_dataset(
    park: SyntheticPark,
    recorded_effort: np.ndarray,
    detections: np.ndarray,
) -> PoachingDataset:
    """Build the supervised dataset from the simulated history.

    A data point exists for every (period, cell) with recorded effort > 0;
    the first period is skipped because it lacks a previous-effort
    covariate.
    """
    static = park.features.matrix
    n_periods = recorded_effort.shape[0]
    rows_static: list[np.ndarray] = []
    prev_eff: list[float] = []
    cur_eff: list[float] = []
    labels: list[int] = []
    periods: list[int] = []
    cells: list[int] = []
    for t in range(1, n_periods):
        patrolled = np.nonzero(recorded_effort[t] > 0)[0]
        for cid in patrolled:
            rows_static.append(static[cid])
            prev_eff.append(float(recorded_effort[t - 1, cid]))
            cur_eff.append(float(recorded_effort[t, cid]))
            labels.append(int(detections[t, cid]))
            periods.append(t)
            cells.append(int(cid))
    return PoachingDataset(
        static_features=np.asarray(rows_static),
        prev_effort=np.asarray(prev_eff),
        current_effort=np.asarray(cur_eff),
        labels=np.asarray(labels),
        period=np.asarray(periods),
        cell=np.asarray(cells),
        periods_per_year=park.profile.periods_per_year,
        feature_names=park.features.names,
        name=park.profile.name,
    )


def dataset_statistics(data: ParkData) -> dict[str, float]:
    """Table I row for one generated park dataset."""
    stats = data.dataset.statistics()
    stats["n_cells"] = data.park.n_cells
    return stats
