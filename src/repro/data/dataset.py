"""The supervised learning dataset built from patrol history.

Section III-B: records are discretised into T time steps and N locations;
each feature vector holds the static geospatial features plus one
time-variant covariate, ``c_{t-1,n}`` (previous-period patrol coverage,
modelling deterrence). Current effort ``c_{t,n}`` is *not* a feature (it is
unknown at prediction time) but is stored alongside because the iWare-E
thresholds filter on it. Only patrolled (period, cell) pairs become data
points — unpatrolled cells produce no record in SMART.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataError


@dataclass(frozen=True)
class YearSplit:
    """A train/test split by calendar year (train = 3 years before test)."""

    train: "PoachingDataset"
    test: "PoachingDataset"
    test_year: int


class PoachingDataset:
    """Point-per-patrolled-cell-period supervised dataset.

    Parameters
    ----------
    static_features:
        ``(n_points, k)`` static geospatial features of each point's cell.
    prev_effort:
        ``(n_points,)`` patrol effort in the same cell during the previous
        period (the deterrence covariate, part of the model input).
    current_effort:
        ``(n_points,)`` patrol effort during the point's own period (used
        only for iWare-E filtering / reliability weighting, never as input).
    labels:
        ``(n_points,)`` 1 if poaching was *detected* in the cell-period.
    period:
        ``(n_points,)`` time-period index of each point.
    cell:
        ``(n_points,)`` cell id of each point.
    periods_per_year:
        Number of discretised periods per year (4 quarterly, 3 dry-season).
    feature_names:
        Names of the static feature columns.
    name:
        Dataset label, e.g. ``"MFNP"``.
    """

    def __init__(
        self,
        static_features: np.ndarray,
        prev_effort: np.ndarray,
        current_effort: np.ndarray,
        labels: np.ndarray,
        period: np.ndarray,
        cell: np.ndarray,
        periods_per_year: int,
        feature_names: list[str] | None = None,
        name: str = "park",
    ):
        self.static_features = np.asarray(static_features, dtype=float)
        self.prev_effort = np.asarray(prev_effort, dtype=float)
        self.current_effort = np.asarray(current_effort, dtype=float)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.period = np.asarray(period, dtype=np.int64)
        self.cell = np.asarray(cell, dtype=np.int64)
        self.periods_per_year = int(periods_per_year)
        self.name = name
        if self.static_features.ndim != 2:
            raise DataError("static_features must be 2-D")
        n = self.static_features.shape[0]
        for arr, label in [
            (self.prev_effort, "prev_effort"),
            (self.current_effort, "current_effort"),
            (self.labels, "labels"),
            (self.period, "period"),
            (self.cell, "cell"),
        ]:
            if arr.shape != (n,):
                raise DataError(f"{label} must have shape ({n},), got {arr.shape}")
        if not np.isin(np.unique(self.labels), (0, 1)).all() and n > 0:
            raise DataError("labels must be binary")
        if (self.current_effort < 0).any() or (self.prev_effort < 0).any():
            raise DataError("patrol effort cannot be negative")
        if self.periods_per_year < 1:
            raise ConfigurationError("periods_per_year must be >= 1")
        if feature_names is None:
            feature_names = [f"f{i}" for i in range(self.static_features.shape[1])]
        if len(feature_names) != self.static_features.shape[1]:
            raise DataError("feature_names length must match feature count")
        self.feature_names = list(feature_names)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return self.static_features.shape[0]

    @property
    def n_features(self) -> int:
        """Model input width: static features + the prev-effort covariate."""
        return self.static_features.shape[1] + 1

    @property
    def feature_matrix(self) -> np.ndarray:
        """``(n_points, k+1)`` model inputs: static features + prev effort."""
        return np.hstack([self.static_features, self.prev_effort[:, None]])

    @property
    def input_feature_names(self) -> list[str]:
        return self.feature_names + ["prev_patrol_effort"]

    @property
    def positive_rate(self) -> float:
        """Fraction of positive labels (Table I's "Percent positive")."""
        if self.n_points == 0:
            return 0.0
        return float(self.labels.mean())

    @property
    def year(self) -> np.ndarray:
        """Calendar-year index (0-based) of each point."""
        return self.period // self.periods_per_year

    # ------------------------------------------------------------------
    # Subsetting and splits
    # ------------------------------------------------------------------
    def subset(self, mask: np.ndarray) -> "PoachingDataset":
        """A new dataset restricted to the rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self.n_points,):
            raise DataError("mask must be a boolean array over the points")
        return PoachingDataset(
            static_features=self.static_features[mask],
            prev_effort=self.prev_effort[mask],
            current_effort=self.current_effort[mask],
            labels=self.labels[mask],
            period=self.period[mask],
            cell=self.cell[mask],
            periods_per_year=self.periods_per_year,
            feature_names=self.feature_names,
            name=self.name,
        )

    def split_by_test_year(self, test_year: int, train_years: int = 3) -> YearSplit:
        """Paper-style temporal split: train on the N years before the test year.

        "training on the first three years and testing on the fourth"
        (Section V-A). Years are 0-based indices into the simulated history.
        """
        years = self.year
        if test_year not in np.unique(years):
            raise DataError(
                f"test year {test_year} not present; available: {np.unique(years)}"
            )
        if test_year < train_years:
            raise DataError(
                f"test year {test_year} has fewer than {train_years} prior years"
            )
        train_mask = (years >= test_year - train_years) & (years < test_year)
        test_mask = years == test_year
        if not train_mask.any() or not test_mask.any():
            raise DataError("empty train or test partition")
        return YearSplit(
            train=self.subset(train_mask),
            test=self.subset(test_mask),
            test_year=test_year,
        )

    # ------------------------------------------------------------------
    # Paper statistics
    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, float]:
        """Table I row: counts, positive rate, and mean effort."""
        return {
            "n_features": self.n_features,
            "n_points": self.n_points,
            "n_positive": int(self.labels.sum()),
            "percent_positive": 100.0 * self.positive_rate,
            "avg_effort_km": float(self.current_effort.mean()) if self.n_points else 0.0,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_npz(self, path) -> None:
        """Save the dataset to a compressed ``.npz`` archive."""
        np.savez_compressed(
            path,
            static_features=self.static_features,
            prev_effort=self.prev_effort,
            current_effort=self.current_effort,
            labels=self.labels,
            period=self.period,
            cell=self.cell,
            periods_per_year=np.asarray(self.periods_per_year),
            feature_names=np.asarray(self.feature_names, dtype="<U64"),
            name=np.asarray(self.name, dtype="<U64"),
        )

    @classmethod
    def from_npz(cls, path) -> "PoachingDataset":
        """Load a dataset previously written by :meth:`to_npz`."""
        with np.load(path, allow_pickle=False) as archive:
            required = {
                "static_features", "prev_effort", "current_effort",
                "labels", "period", "cell", "periods_per_year",
            }
            missing = required - set(archive.files)
            if missing:
                raise DataError(f"archive is missing arrays: {sorted(missing)}")
            return cls(
                static_features=archive["static_features"],
                prev_effort=archive["prev_effort"],
                current_effort=archive["current_effort"],
                labels=archive["labels"],
                period=archive["period"],
                cell=archive["cell"],
                periods_per_year=int(archive["periods_per_year"]),
                feature_names=[str(s) for s in archive["feature_names"]]
                if "feature_names" in archive.files else None,
                name=str(archive["name"]) if "name" in archive.files else "park",
            )

    def positive_rate_by_effort_percentile(
        self, percentiles: np.ndarray | list[float]
    ) -> np.ndarray:
        """Fig. 4: % positive labels above each patrol-effort percentile.

        For each percentile p, restrict to points whose current effort is at
        least the p-th percentile of effort and report the percent of
        positive labels among them. The curve increasing with p is the
        empirical signature of effort-dependent detection.
        """
        percentiles = np.asarray(percentiles, dtype=float)
        if ((percentiles < 0) | (percentiles > 100)).any():
            raise ConfigurationError("percentiles must be within [0, 100]")
        out = np.empty(percentiles.size)
        for i, p in enumerate(percentiles):
            threshold = np.percentile(self.current_effort, p)
            selected = self.current_effort >= threshold
            out[i] = 100.0 * self.labels[selected].mean() if selected.any() else np.nan
        return out
