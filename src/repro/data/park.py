"""Synthetic protected areas.

A :class:`SyntheticPark` bundles everything the GIS pipeline would supply for
a real park — grid, feature stack, landscape masks, patrol posts — generated
procedurally from a :class:`~repro.data.profiles.ParkProfile` and a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.profiles import ParkProfile
from repro.exceptions import ConfigurationError
from repro.geo.features import FeatureStack
from repro.geo.grid import Grid
from repro.geo.raster import (
    fractal_noise,
    linear_feature_mask,
    scatter_points,
    smooth_field,
)


@dataclass
class SyntheticPark:
    """A procedurally generated protected area.

    Attributes
    ----------
    profile:
        The park profile this park was generated from.
    grid:
        Cell lattice with park mask.
    features:
        Static per-cell geospatial feature stack.
    patrol_posts:
        Cell ids of ranger patrol posts (sources/sinks of every patrol).
    river_mask, road_mask:
        Boolean rasters of the linear landscape features.
    village_cells:
        Cell ids of villages just outside/inside the boundary.
    """

    profile: ParkProfile
    grid: Grid
    features: FeatureStack
    patrol_posts: np.ndarray
    river_mask: np.ndarray
    road_mask: np.ndarray
    village_cells: np.ndarray
    seed: int = 0

    @property
    def n_cells(self) -> int:
        return self.grid.n_cells

    @property
    def n_features(self) -> int:
        return self.features.n_features

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, profile: ParkProfile, seed: int = 0) -> "SyntheticPark":
        """Generate a park deterministically from a profile and seed."""
        rng = np.random.default_rng(seed)
        height, width = profile.shape
        if profile.geometry == "ellipse":
            grid = Grid.elliptical(height, width)
        else:
            grid = Grid.rectangular(height, width)

        shape = grid.shape
        river_mask = linear_feature_mask(shape, rng, n_lines=profile.n_rivers)
        road_mask = linear_feature_mask(shape, rng, n_lines=profile.n_roads, wobble=0.6)
        elevation = fractal_noise(shape, rng, octaves=4)
        forest_cover = fractal_noise(shape, rng, octaves=3)
        animal_density = smooth_field(shape, rng, scale=4)
        npp = smooth_field(shape, rng, scale=5)
        slope = np.abs(np.gradient(elevation)[0]) + np.abs(np.gradient(elevation)[1])

        villages = cls._sample_cells(grid, rng, profile.n_villages, prefer_edge=True)
        posts = cls._sample_cells(grid, rng, profile.n_patrol_posts, prefer_edge=True)

        stack = FeatureStack(grid)
        stack.add_direct("elevation", elevation)
        stack.add_direct("slope", slope)
        stack.add_direct("forest_cover", forest_cover)
        stack.add_direct("animal_density", animal_density)
        stack.add_direct("npp", npp)
        stack.add_distance("dist_river", river_mask)
        stack.add_distance("dist_road", road_mask)
        stack.add_boundary_distance("dist_boundary")
        stack.add_distance("dist_village", cls._cells_to_mask(grid, villages))
        stack.add_geodesic("dist_patrol_post", posts)
        for i in range(profile.extra_features):
            stack.add_direct(f"eco_{i}", smooth_field(shape, rng, scale=3 + i))

        return cls(
            profile=profile,
            grid=grid,
            features=stack,
            patrol_posts=posts,
            river_mask=river_mask,
            road_mask=road_mask,
            village_cells=villages,
            seed=seed,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _sample_cells(grid: Grid, rng: np.random.Generator, count: int,
                      prefer_edge: bool) -> np.ndarray:
        """Sample distinct in-park cells, optionally biased to the boundary."""
        if count < 1:
            raise ConfigurationError(f"need at least one cell, got {count}")
        if prefer_edge:
            pool = grid.boundary_cells()
            if pool.size < count:
                pool = np.arange(grid.n_cells)
        else:
            pool = np.arange(grid.n_cells)
        return np.sort(rng.choice(pool, size=min(count, pool.size), replace=False))

    @staticmethod
    def _cells_to_mask(grid: Grid, cells: np.ndarray) -> np.ndarray:
        mask = np.zeros(grid.shape, dtype=bool)
        for cid in cells:
            row, col = grid.cell_rc(int(cid))
            mask[row, col] = True
        return mask
