"""Synthetic wildlife-crime data substrate.

The paper's datasets (SMART patrol records from MFNP, QENP, SWS) are
proprietary; this subpackage synthesises statistically equivalent data. The
simulator reproduces the mechanisms that make the learning problem hard:

* extreme class imbalance (0.25%-14.3% positives depending on the park),
* one-sided label noise — positives are certain, negatives depend on how
  much effort rangers spent in the cell (``P(detect|attack) = 1 - e^{-kc}``),
* spatially biased patrol effort concentrated near posts and roads,
* a deterrence effect of the previous quarter's coverage, and
* wet/dry seasonality in SWS that shifts poaching north in the dry season.

Every park is generated from a :class:`~repro.data.profiles.ParkProfile`
(calibrated to Table I of the paper) and a seed.
"""

from repro.data.profiles import (
    MFNP,
    QENP,
    SWS,
    SWS_DRY,
    ParkProfile,
    get_profile,
    list_profiles,
)
from repro.data.park import SyntheticPark
from repro.data.poachers import PoacherModel
from repro.data.rangers import PatrolRecord, PatrolSimulator
from repro.data.smart import (
    OBSERVATION_CATEGORIES,
    POACHING_CATEGORIES,
    ObservationRecord,
    SmartDatabase,
    rebuild_effort_from_waypoints,
)
from repro.data.dataset import PoachingDataset, YearSplit
from repro.data.generator import dataset_statistics, generate_dataset
from repro.data.ingest import dataset_from_csv, export_dataset_to_csv
from repro.data.seasonality import Season, season_of_month, seasonal_risk_shift

__all__ = [
    "ParkProfile",
    "MFNP",
    "QENP",
    "SWS",
    "SWS_DRY",
    "get_profile",
    "list_profiles",
    "SyntheticPark",
    "PoacherModel",
    "PatrolSimulator",
    "PatrolRecord",
    "ObservationRecord",
    "SmartDatabase",
    "OBSERVATION_CATEGORIES",
    "POACHING_CATEGORIES",
    "rebuild_effort_from_waypoints",
    "PoachingDataset",
    "YearSplit",
    "generate_dataset",
    "dataset_statistics",
    "dataset_from_csv",
    "export_dataset_to_csv",
    "Season",
    "season_of_month",
    "seasonal_risk_shift",
]
