"""Ground-truth poacher behaviour model.

Green Security Games model poachers as boundedly rational attackers whose
attack propensity responds to landscape attractiveness and is deterred by
ranger coverage. This module is the *simulator's* ground truth — the thing
the predictive pipeline tries to learn — so it is deliberately richer than
any single learner: a logistic model over nonlinear feature interactions
plus seasonal modulation, deterrence from last period's patrols, and
idiosyncratic per-cell taste shocks.
"""

from __future__ import annotations

import numpy as np

from repro.data.profiles import ParkProfile
from repro.data.seasonality import Season, period_season, seasonal_risk_shift
from repro.data.park import SyntheticPark
from repro.exceptions import ConfigurationError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    z = np.clip(z, -60.0, 60.0)
    return 1.0 / (1.0 + np.exp(-z))


class PoacherModel:
    """Boundedly rational attack model over a synthetic park.

    Attack probability of cell ``n`` at period ``t``::

        p = sigmoid( b + u(n) + s(n, t) - deterrence * c_{t-1,n} )

    where ``u`` is a fixed attractiveness score built from park features,
    ``s`` the seasonal shift, ``c_{t-1,n}`` the previous period's patrol
    effort, and ``b`` an intercept calibrated so the *mean* attack
    probability with no patrolling matches ``profile.attack_rate``.

    Parameters
    ----------
    park:
        The synthetic park (supplies features and geometry).
    seed:
        Seed for the taste-shock draw (distinct from the park seed so two
        poacher populations can share one park).
    """

    def __init__(self, park: SyntheticPark, seed: int = 100):
        self.park = park
        self.profile: ParkProfile = park.profile
        rng = np.random.default_rng(seed)
        self._attractiveness = self._build_attractiveness(rng)
        self._intercept = self._calibrate_intercept(self.profile.attack_rate)

    # ------------------------------------------------------------------
    def _build_attractiveness(self, rng: np.random.Generator) -> np.ndarray:
        """Fixed per-cell attractiveness on the log-odds scale, zero mean."""
        features = self.park.features
        animal = self._z(features.column("animal_density"))
        dist_boundary = self._z(features.column("dist_boundary"))
        dist_village = self._z(features.column("dist_village"))
        dist_road = self._z(features.column("dist_road"))
        dist_river = self._z(features.column("dist_river"))
        forest = self._z(features.column("forest_cover"))
        slope = self._z(features.column("slope"))

        profile = self.profile
        score = (
            1.2 * animal                      # poachers go where animals are
            - profile.boundary_attraction * dist_boundary  # edges are easy
            - 0.6 * dist_village              # close to home
            - 0.3 * dist_road                 # accessible terrain
            - 0.4 * dist_river                # snares near water sources
            + 0.5 * forest                    # cover to hide snares
            - 0.3 * slope                     # avoid steep ground
            + 0.8 * animal * forest           # game trails under cover
        )
        score = score + rng.normal(0.0, profile.feature_noise, size=score.shape)
        return score - score.mean()

    @staticmethod
    def _z(column: np.ndarray) -> np.ndarray:
        std = column.std()
        if std < 1e-12:
            return np.zeros_like(column)
        return (column - column.mean()) / std

    def _calibrate_intercept(self, target_rate: float) -> float:
        """Bisection for the intercept giving the target mean attack rate."""
        if not 0.0 < target_rate < 1.0:
            raise ConfigurationError(f"target rate must be in (0,1), got {target_rate}")
        lo, hi = -30.0, 30.0
        for _ in range(80):
            mid = (lo + hi) / 2.0
            mean_rate = float(_sigmoid(self._attractiveness + mid).mean())
            if mean_rate < target_rate:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    # ------------------------------------------------------------------
    def shift_intercept(self, delta: float) -> None:
        """Shift the attack-rate intercept on the log-odds scale.

        Used by the dataset generator's calibration loop to steer the
        *observed* positive-label rate onto the profile target.
        """
        self._intercept += float(delta)

    @property
    def attractiveness(self) -> np.ndarray:
        """Zero-mean per-cell attractiveness (log-odds scale)."""
        return self._attractiveness.copy()

    def attack_probability(
        self,
        period_index: int,
        prev_effort: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-cell attack probability at a time period.

        Parameters
        ----------
        period_index:
            Index of the time period (drives the seasonal term).
        prev_effort:
            ``(n_cells,)`` patrol effort of the *previous* period in km;
            ``None`` means no deterrence.
        """
        z = self._attractiveness + self._intercept
        if self.profile.seasonal:
            season = period_season(
                period_index,
                self.profile.periods_per_year,
                self.profile.dry_season_only,
            )
            z = z + seasonal_risk_shift(self.park.grid, season)
        if prev_effort is not None:
            prev_effort = np.asarray(prev_effort, dtype=float)
            if prev_effort.shape != (self.park.n_cells,):
                raise ConfigurationError(
                    f"prev_effort must have shape ({self.park.n_cells},), "
                    f"got {prev_effort.shape}"
                )
            z = z - self.profile.deterrence * prev_effort
        return _sigmoid(z)

    def sample_attacks(
        self,
        period_index: int,
        rng: np.random.Generator,
        prev_effort: np.ndarray | None = None,
    ) -> np.ndarray:
        """Bernoulli attack realisation, one boolean per cell."""
        p = self.attack_probability(period_index, prev_effort)
        return rng.random(p.shape) < p

    def detection_probability(self, effort_km: np.ndarray) -> np.ndarray:
        """P(rangers detect an attack | attack) as a function of effort.

        The saturating curve ``1 - exp(-k c)`` creates the paper's one-sided
        noise: zero effort never detects, so low-effort negative labels are
        unreliable, and detection plateaus at high effort (Fig. 6's
        observation that likelihood of detection plateaus).
        """
        effort = np.asarray(effort_km, dtype=float)
        if (effort < 0).any():
            raise ConfigurationError("patrol effort cannot be negative")
        return 1.0 - np.exp(-self.profile.detect_rate * effort)

    def detected_attack_probability(
        self,
        period_index: int,
        effort_km: np.ndarray,
        prev_effort: np.ndarray | None = None,
    ) -> np.ndarray:
        """Joint probability Pr[a=1, o=1] the paper's riskmaps display."""
        return self.attack_probability(period_index, prev_effort) * \
            self.detection_probability(effort_km)
