"""Park profiles calibrated to Table I of the paper.

A :class:`ParkProfile` captures everything park-specific: geometry, feature
inventory, poaching prevalence, patrol resources, transport mode, and
seasonality. The four stock profiles mirror the paper's four dataset
variants (MFNP, QENP, SWS, and SWS dry-season), scaled down ~9x in cell
count so the full experiment grid runs on a laptop; all the *rates* (positive
label fraction, mean patrol effort per cell) target the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ParkProfile:
    """Static description of a protected area and its data regime.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"MFNP"``.
    shape:
        Lattice (height, width) in cells.
    geometry:
        ``"ellipse"`` (round parks, protected core — MFNP) or
        ``"rectangle"`` (long thin parks — QENP).
    n_rivers, n_roads, n_villages, n_patrol_posts:
        Landscape inventory counts.
    extra_features:
        Number of additional smooth ecological rasters (forest cover, NPP,
        etc.) so the total feature count matches Table I's "Number of
        features" row.
    attack_rate:
        Target mean per-cell-per-period probability of a poaching attack.
    detect_rate:
        Detection-curve steepness ``k`` in ``P(detect|attack) = 1-e^{-kc}``
        with ``c`` the km of patrol effort in the cell.
    mean_effort_km:
        Target mean patrol effort per *patrolled* cell per period (Table I's
        "Avg. patrol effort").
    patrols_per_period:
        Number of distinct patrols simulated in each time period.
    patrol_length_km:
        Length of a single patrol in km (= simulator steps).
    waypoint_interval:
        Record a GPS waypoint every this many km. Motorbike parks (SWS) have
        sparser waypoints (the paper: "waypoints ... are even more sparse").
    boundary_attraction:
        Weight on proximity-to-boundary in the poacher utility. High for
        MFNP ("most poaching occurs at the edges of the park").
    seasonal:
        Whether poaching intensity shifts with the wet/dry season (SWS).
    dry_season_only:
        Restrict datasets to dry-season months (the SWS-dry variant), using
        2-month periods instead of 3-month ones.
    deterrence:
        Strength of the deterrence effect of last period's patrol coverage
        on the attack probability.
    years:
        Number of simulated years of historical data.
    """

    name: str
    shape: tuple[int, int]
    geometry: str = "rectangle"
    n_rivers: int = 2
    n_roads: int = 2
    n_villages: int = 4
    n_patrol_posts: int = 4
    extra_features: int = 3
    attack_rate: float = 0.10
    detect_rate: float = 0.9
    mean_effort_km: float = 2.0
    patrols_per_period: int = 30
    patrol_length_km: int = 10
    waypoint_interval: int = 1
    boundary_attraction: float = 1.0
    seasonal: bool = False
    dry_season_only: bool = False
    deterrence: float = 0.5
    years: int = 6
    feature_noise: float = 0.15
    #: Target fraction of positive labels in the assembled dataset; the
    #: generator calibrates the poacher intercept to hit it (None = skip).
    target_positive_rate: float | None = None

    def __post_init__(self) -> None:
        if self.geometry not in ("ellipse", "rectangle"):
            raise ConfigurationError(f"unknown geometry '{self.geometry}'")
        if not 0.0 < self.attack_rate < 1.0:
            raise ConfigurationError(f"attack_rate must be in (0,1), got {self.attack_rate}")
        if self.detect_rate <= 0:
            raise ConfigurationError(f"detect_rate must be positive, got {self.detect_rate}")
        if self.years < 2:
            raise ConfigurationError(f"need >= 2 years of data, got {self.years}")
        if self.waypoint_interval < 1:
            raise ConfigurationError("waypoint_interval must be >= 1")
        if self.patrol_length_km < 2:
            raise ConfigurationError("patrol_length_km must be >= 2")

    @property
    def periods_per_year(self) -> int:
        """3-month periods normally; 2-month dry-season periods for SWS dry.

        The paper: "to process dry season, we discretize time into two-month
        periods (rather than three) to obtain three points per year" — both
        schemes give 3-4 periods/year; we use 4 for full-year parks
        (quarters) and 3 for dry-season-only datasets.
        """
        return 3 if self.dry_season_only else 4

    @property
    def n_periods(self) -> int:
        """Total number of time steps of historical data."""
        return self.years * self.periods_per_year

    def scaled(self, factor: float) -> "ParkProfile":
        """A copy with lattice dimensions scaled by ``factor`` (min 6x6).

        Useful for fast unit tests (factor < 1) or paper-scale runs
        (factor > 1).
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        height = max(6, int(round(self.shape[0] * factor)))
        width = max(6, int(round(self.shape[1] * factor)))
        return replace(self, shape=(height, width))


# ---------------------------------------------------------------------------
# Stock profiles (Table I, scaled down ~9x in cells, rates preserved)
# ---------------------------------------------------------------------------

#: Murchison Falls NP: circular savanna, high positive rate (14.3%),
#: poaching concentrated at the park edges, foot patrols.
MFNP = ParkProfile(
    name="MFNP",
    shape=(24, 24),
    geometry="ellipse",
    n_rivers=2,
    n_roads=2,
    n_villages=5,
    n_patrol_posts=5,
    extra_features=4,
    attack_rate=0.42,
    detect_rate=0.20,
    mean_effort_km=1.75,
    patrols_per_period=26,
    patrol_length_km=10,
    waypoint_interval=1,
    boundary_attraction=2.0,
    seasonal=False,
    deterrence=0.5,
    target_positive_rate=0.143,
)

#: Queen Elizabeth NP: long thin park, moderate positive rate (4.7%),
#: centre accessible from the boundary, foot patrols.
QENP = ParkProfile(
    name="QENP",
    shape=(12, 36),
    geometry="rectangle",
    n_rivers=2,
    n_roads=3,
    n_villages=5,
    n_patrol_posts=4,
    extra_features=2,
    attack_rate=0.088,
    detect_rate=0.20,
    mean_effort_km=2.08,
    patrols_per_period=28,
    patrol_length_km=10,
    waypoint_interval=1,
    boundary_attraction=0.8,
    seasonal=False,
    deterrence=0.5,
    target_positive_rate=0.047,
)

#: Srepok Wildlife Sanctuary: extreme imbalance (0.36% positives), dense
#: terrain, motorbike patrols with sparse waypoints, strong seasonality,
#: few rangers covering a large area.
SWS = ParkProfile(
    name="SWS",
    shape=(20, 20),
    geometry="rectangle",
    n_rivers=3,
    n_roads=2,
    n_villages=3,
    n_patrol_posts=3,
    extra_features=3,
    attack_rate=0.070,
    detect_rate=0.18,
    mean_effort_km=3.96,
    patrols_per_period=20,
    patrol_length_km=16,
    waypoint_interval=3,
    boundary_attraction=0.5,
    seasonal=True,
    deterrence=0.4,
    target_positive_rate=0.013,
)

#: SWS restricted to dry-season months: even fewer positives (0.25%),
#: 2-month discretisation.
SWS_DRY = ParkProfile(
    name="SWS dry",
    shape=(20, 20),
    geometry="rectangle",
    n_rivers=3,
    n_roads=2,
    n_villages=3,
    n_patrol_posts=3,
    extra_features=3,
    attack_rate=0.055,
    detect_rate=0.18,
    mean_effort_km=3.03,
    patrols_per_period=20,
    patrol_length_km=16,
    waypoint_interval=3,
    boundary_attraction=0.5,
    seasonal=True,
    dry_season_only=True,
    deterrence=0.4,
    target_positive_rate=0.010,
)

_PROFILES: dict[str, ParkProfile] = {
    "MFNP": MFNP,
    "QENP": QENP,
    "SWS": SWS,
    "SWS dry": SWS_DRY,
    "SWS_DRY": SWS_DRY,
}


def get_profile(name: str) -> ParkProfile:
    """Look up a stock profile by (case-insensitive) name."""
    for key, profile in _PROFILES.items():
        if key.lower() == name.lower():
            return profile
    raise ConfigurationError(
        f"unknown park profile '{name}'; available: {list_profiles()}"
    )


def list_profiles() -> list[str]:
    """Names of the stock park profiles."""
    return ["MFNP", "QENP", "SWS", "SWS dry"]
