"""Admission control: a bounded gate between the listener and the services.

A ``ThreadingHTTPServer`` happily spawns one thread per connection, which
under overload means unbounded concurrency: every request slows every other
request down, deadlines blow out across the board, and the process
eventually dies of memory pressure — the classic congestion collapse the
paper's deployed installations cannot afford. :class:`AdmissionGate` makes
saturation explicit instead:

* at most ``max_inflight`` requests execute at once;
* at most ``max_queue`` more may *wait* (bounded, for at most
  ``queue_wait`` seconds each) for a slot to free up;
* everything beyond that is **shed immediately** with
  :class:`~repro.exceptions.AdmissionError`, which the daemon maps to
  ``503 + Retry-After`` — a cheap, clean rejection the client can retry,
  instead of a queued request that times out after consuming resources;
* :meth:`begin_drain` flips the gate into drain mode: new arrivals (and
  already-queued waiters) are shed, in-flight requests run to completion,
  and :meth:`wait_idle` blocks until the last one finishes — the SIGTERM
  half of the daemon's graceful-shutdown contract.

A request queued for admission still burns its own
:class:`~repro.runtime.resilience.Deadline`; expiry while waiting raises
:class:`~repro.exceptions.DeadlineExceededError` (a ``504``, not a
``503`` — the budget was the client's, not the server's).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.exceptions import AdmissionError, ConfigurationError
from repro.runtime.concurrency import thread_shared
from repro.runtime.resilience import Deadline


@thread_shared
class AdmissionGate:
    """Bounded-concurrency admission with load shedding and drain.

    Parameters
    ----------
    max_inflight:
        Concurrent admitted requests (>= 1).
    max_queue:
        Requests allowed to wait for a slot when all ``max_inflight`` are
        busy; ``0`` sheds on the first request past the limit.
    queue_wait:
        Longest a queued request waits for a slot before being shed.
    """

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 16,
        queue_wait: float = 0.5,
    ):
        if int(max_inflight) < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if int(max_queue) < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0, got {max_queue}"
            )
        if float(queue_wait) < 0.0:
            raise ConfigurationError(
                f"queue_wait must be >= 0, got {queue_wait}"
            )
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.queue_wait = float(queue_wait)
        # Mutated only under self._lock (the @thread_shared contract, RP004).
        # The condition shares the lock so waiters wake on slot release and
        # on drain start.
        self._lock = threading.RLock()
        self._slots = threading.Condition(self._lock)
        self._inflight = 0
        self._queued = 0
        self._draining = False
        self._admitted = 0
        self._completed = 0
        self._shed_saturated = 0
        self._shed_draining = 0
        self._peak_inflight = 0
        self._peak_queued = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @contextmanager
    def admitted(self, deadline: Deadline | None = None, label: str = "request"):
        """Hold one admission slot for the duration of the block."""
        self.acquire(deadline=deadline, label=label)
        try:
            yield self
        finally:
            self.release()

    def acquire(
        self, deadline: Deadline | None = None, label: str = "request"
    ) -> None:
        """Claim a slot, queueing briefly if saturated; shed otherwise.

        Raises :class:`~repro.exceptions.AdmissionError` when the server is
        draining, the wait queue is full, or no slot frees within
        ``queue_wait`` seconds — the daemon's cue to answer
        ``503 + Retry-After``. Raises
        :class:`~repro.exceptions.DeadlineExceededError` if the caller's
        own deadline expires while queued.
        """
        with self._lock:
            if self._draining:
                self._shed_draining += 1
                raise AdmissionError(
                    f"{label} shed: the server is draining and admits no "
                    "new requests"
                )
            if self._inflight < self.max_inflight:
                self._admit_locked()
                return
            if self._queued >= self.max_queue:
                self._shed_saturated += 1
                raise AdmissionError(
                    f"{label} shed: {self._inflight} requests in flight "
                    f"(limit {self.max_inflight}) and the admission queue "
                    f"is full ({self.max_queue} waiting)"
                )
            self._queued += 1
            self._peak_queued = max(self._peak_queued, self._queued)
            started = time.monotonic()
            try:
                while True:
                    if deadline is not None:
                        deadline.check(f"{label} (queued for admission)")
                    remaining = self.queue_wait - (time.monotonic() - started)
                    if remaining <= 0.0:
                        self._shed_saturated += 1
                        raise AdmissionError(
                            f"{label} shed: no admission slot freed within "
                            f"{self.queue_wait:.3f}s "
                            f"({self._inflight} in flight, "
                            f"{self._queued} queued)"
                        )
                    if deadline is not None:
                        remaining = min(remaining, max(deadline.remaining(), 0.0))
                    # Wake early on release/drain; cap the nap so deadline
                    # expiry is noticed promptly even without a release.
                    self._slots.wait(timeout=min(remaining, 0.05))
                    if self._draining:
                        self._shed_draining += 1
                        raise AdmissionError(
                            f"{label} shed: the server began draining while "
                            "the request was queued for admission"
                        )
                    if self._inflight < self.max_inflight:
                        self._admit_locked()
                        return
            finally:
                self._queued -= 1

    def _admit_locked(self) -> None:
        # Callers already hold self._lock; re-entering the RLock keeps the
        # mutation visibly inside a lock block (the RP004 contract).
        with self._lock:
            self._inflight += 1
            self._admitted += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)

    def release(self) -> None:
        """Return a slot and wake queued requests (and any drain waiter)."""
        with self._lock:
            self._inflight -= 1
            self._completed += 1
            self._slots.notify_all()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; queued waiters are shed, in-flight ones finish."""
        with self._lock:
            self._draining = True
            self._slots.notify_all()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every in-flight request completed; False on timeout."""
        limit = None if timeout is None else time.monotonic() + float(timeout)
        with self._lock:
            while self._inflight > 0:
                rest = None if limit is None else limit - time.monotonic()
                if rest is not None and rest <= 0.0:
                    return False
                self._slots.wait(timeout=0.5 if rest is None else min(rest, 0.5))
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def info(self) -> dict:
        """A json-able counter snapshot (the daemon's ``/stats`` section)."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "queue_wait": self.queue_wait,
                "inflight": self._inflight,
                "queued": self._queued,
                "draining": self._draining,
                "admitted": self._admitted,
                "completed": self._completed,
                "shed_saturated": self._shed_saturated,
                "shed_draining": self._shed_draining,
                "peak_inflight": self._peak_inflight,
                "peak_queued": self._peak_queued,
            }
