"""The ``@thread_shared`` contract: classes safe to share across threads.

The park-service daemon (ROADMAP item 1) keeps one
:class:`~repro.runtime.service.RiskMapService` and one
:class:`~repro.planning.service.PlanService` hot and lets every request
thread hit them. That only works if their internal caches — LRU result
dicts, feature registries, MILP structure tables — are mutated under a
lock. :func:`thread_shared` is how a class *declares* that it honours the
contract, and the declaration has teeth twice over:

* **at runtime**, the decorator wraps ``__init__`` and raises
  :class:`~repro.exceptions.ConfigurationError` if the instance comes out
  without a ``self._lock``, so a refactor that drops the lock fails the
  first constructor call, not the first race;
* **statically**, the RP004 checker (:mod:`repro.analysis`) walks every
  decorated class and fails ``make lint`` when any method mutates a
  ``self._*`` attribute outside a ``with self._lock:`` block.

The locking style this enforces is *mutate-under-lock, read-lock-free*:
serving paths are read-mostly, CPython dict/OrderedDict single-op reads
are atomic under the GIL, and every cached value is immutable once
inserted (results are copied out to callers), so only the writes — which
could tear an LRU eviction or resize a dict mid-probe — need the lock.
Compute stays *outside* the lock: two threads missing on the same key
both compute (bit-identical by the package-wide determinism contract) and
the first insert wins, so a slow solve never serialises unrelated
requests.

Use :class:`threading.RLock` so a locked method may call another locked
method of the same object without deadlocking.
"""

from __future__ import annotations

import functools

from repro.exceptions import ConfigurationError

#: Qualified name -> class, for introspection and the RP004 checker's docs.
_THREAD_SHARED: dict[str, type] = {}


def thread_shared(cls: type) -> type:
    """Declare ``cls`` safe for cross-thread sharing (see module docs).

    Registers the class, and wraps ``__init__`` to verify the instance
    creates its ``self._lock``. The static half of the contract (every
    ``self._*`` mutation inside ``with self._lock:``) is enforced by
    ``repro lint`` rule RP004.
    """
    original_init = cls.__init__

    @functools.wraps(original_init)
    def checked_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        if not hasattr(self, "_lock"):
            raise ConfigurationError(
                f"@thread_shared class {cls.__name__}.__init__ must create "
                "self._lock (a threading.Lock/RLock)"
            )

    cls.__init__ = checked_init
    _THREAD_SHARED[f"{cls.__module__}.{cls.__qualname__}"] = cls
    return cls


def thread_shared_classes() -> dict[str, type]:
    """A snapshot of every class registered via :func:`thread_shared`."""
    return dict(_THREAD_SHARED)
