"""Deterministic fault injection: the chaos harness behind the resilience layer.

The resilience guarantees (worker-crash recovery in
:mod:`repro.runtime.resilience`, crash-safe persistence in
:mod:`repro.runtime.persistence`) are only worth stating if something can
*prove* them, and real faults — OOM-killed pool workers, a power cut mid
``save_model``, a flipped bit on disk — do not show up on demand. This module
injects them on demand, deterministically:

* a :class:`FaultPlan` is a small, seeded, json-able description of which
  faults fire where (worker crashes by fan-out task index, per-task slowdowns,
  pickling-probe failures, one kill checkpoint inside ``save_model``);
* :func:`active` installs a plan through an **environment variable** pointing
  at a plan file, so process-pool workers — which never share the parent's
  module state — resolve the same plan when they import this module;
* "fire once" faults (a worker crash that must not recur on the retry, or the
  retry would never converge) claim a marker file in the plan's scratch
  directory with ``O_CREAT | O_EXCL``, which is atomic across processes.

Every hook is a no-op costing one ``os.environ`` lookup when no plan is
installed, so production paths stay clean. The chaos suite
(``tests/test_chaos.py``, ``make test-chaos``) replays seeded plans against
real fits/serves/saves and asserts bit-identity of every recovered result.

Fault vocabulary
----------------
``crash_once`` / ``crash_always``
    Fan-out task indices whose *process-pool worker* dies mid-task via
    ``os._exit`` — indistinguishable from an OOM kill to the supervisor.
    Guarded by pid so a thread or serial run of the same task never takes
    the whole test process down (threads cannot be OOM-killed separately
    anyway); ``crash_always`` keeps firing to force pool degradation.
``slow``
    Task index -> seconds of injected latency (any backend), for deadline
    tests. Sleeps never change computed values, so bit-identity holds.
``fail_pickle_probe``
    Makes the ``backend="auto"`` picklability probe of
    :func:`repro.runtime.parallel.run_deferred` report unpicklable tasks,
    forcing the thread fallback path.
``kill_at``
    Name of one ``save_model`` checkpoint (see
    :data:`repro.runtime.persistence.SAVE_CHECKPOINTS`) where the save is
    killed by raising :class:`SimulatedCrash`.
``slow_requests``
    Daemon request label (e.g. ``"riskmap"``) -> seconds of injected
    latency, applied by :func:`on_request` *inside* the admission envelope,
    before the handler runs — the flood and drain chaos tests use it to
    hold admission slots open deterministically.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError

#: Environment variable naming the active plan file (visible to pool workers).
ENV_VAR = "REPRO_FAULT_PLAN"

#: Exit code of an injected worker crash (distinctive in core-dump triage).
WORKER_EXIT_CODE = 87


class SimulatedCrash(BaseException):
    """A simulated SIGKILL at a persistence checkpoint.

    Deliberately **not** a :class:`~repro.exceptions.ReproError` — and not
    even an :class:`Exception` — because a real kill cannot be caught: the
    simulation must escape every ``except ReproError`` and ``except
    Exception`` in the code under test, leaving the on-disk state exactly as
    the kill found it. Only the chaos harness itself catches it.
    """


@dataclass
class FaultPlan:
    """One deterministic schedule of injected faults (see module docs)."""

    seed: int = 0
    #: Directory for the plan file and cross-process once-markers.
    scratch: str = ""
    crash_once: tuple[int, ...] = ()
    crash_always: tuple[int, ...] = ()
    #: Task index -> injected seconds of latency.
    slow: dict[int, float] = field(default_factory=dict)
    fail_pickle_probe: bool = False
    #: A ``save_model`` checkpoint name, or "" for no kill.
    kill_at: str = ""
    #: Daemon request label -> injected latency (see :func:`on_request`).
    slow_requests: dict[str, float] = field(default_factory=dict)
    #: Pid of the installing process; crashes only fire in *other* pids.
    main_pid: int = field(default_factory=os.getpid)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        n_tasks: int,
        scratch: str,
        crash_rate: float = 0.25,
        slow_rate: float = 0.0,
        slow_seconds: float = 0.05,
    ) -> "FaultPlan":
        """A seeded plan over a fan-out of ``n_tasks`` tasks.

        The same ``(seed, n_tasks, rates)`` always yields the same plan, so
        a chaos failure reported with its seed replays exactly.
        """
        if n_tasks < 1:
            raise ConfigurationError(f"n_tasks must be >= 1, got {n_tasks}")
        rng = np.random.default_rng(seed)
        crashes = tuple(
            int(i) for i in np.flatnonzero(rng.random(n_tasks) < crash_rate)
        )
        slow = {
            int(i): float(slow_seconds)
            for i in np.flatnonzero(rng.random(n_tasks) < slow_rate)
        }
        return cls(seed=seed, scratch=scratch, crash_once=crashes, slow=slow)

    # ------------------------------------------------------------------
    # Serialisation (env-activated plans cross the process boundary as json)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "scratch": self.scratch,
                "crash_once": list(self.crash_once),
                "crash_always": list(self.crash_always),
                "slow": {str(k): v for k, v in self.slow.items()},
                "fail_pickle_probe": self.fail_pickle_probe,
                "kill_at": self.kill_at,
                "slow_requests": dict(self.slow_requests),
                "main_pid": self.main_pid,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"malformed fault plan: {exc}") from exc
        return cls(
            seed=int(raw.get("seed", 0)),
            scratch=str(raw.get("scratch", "")),
            crash_once=tuple(int(i) for i in raw.get("crash_once", ())),
            crash_always=tuple(int(i) for i in raw.get("crash_always", ())),
            slow={int(k): float(v) for k, v in raw.get("slow", {}).items()},
            fail_pickle_probe=bool(raw.get("fail_pickle_probe", False)),
            kill_at=str(raw.get("kill_at", "")),
            slow_requests={
                str(k): float(v)
                for k, v in raw.get("slow_requests", {}).items()
            },
            main_pid=int(raw.get("main_pid", 0)),
        )


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------
#: (plan-file path, parsed plan) — invalidated whenever the env var changes.
_cached: tuple[str, FaultPlan] | None = None


def active_plan() -> FaultPlan | None:
    """The installed plan, or ``None`` (the production fast path)."""
    global _cached
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    if _cached is not None and _cached[0] == spec:
        return _cached[1]
    try:
        text = Path(spec).read_text()
    except OSError:
        return None  # plan file withdrawn under us; behave as fault-free
    plan = FaultPlan.from_json(text)
    _cached = (spec, plan)
    return plan


@contextmanager
def active(plan: FaultPlan):
    """Install ``plan`` for this process *and its pool workers*.

    The plan is written to ``<scratch>/fault-plan.json`` and advertised via
    :data:`ENV_VAR`, which child worker processes inherit. On exit the
    previous environment is restored; marker files stay behind in the
    scratch directory (use a fresh scratch per plan).
    """
    global _cached
    if not plan.scratch:
        raise ConfigurationError("FaultPlan.scratch must name a directory")
    scratch = Path(plan.scratch)
    scratch.mkdir(parents=True, exist_ok=True)
    plan_path = scratch / "fault-plan.json"
    plan_path.write_text(plan.to_json())
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(plan_path)
    _cached = None
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        _cached = None


def _claim_once(plan: FaultPlan, name: str) -> bool:
    """Atomically claim a fire-once marker; True iff this caller won."""
    marker = Path(plan.scratch) / f"fired-{name}"
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


# ---------------------------------------------------------------------------
# Hooks (called from the production code; no-ops without a plan)
# ---------------------------------------------------------------------------
def on_task(index: int) -> None:
    """Fan-out hook: may slow this task down or kill its process worker."""
    plan = active_plan()
    if plan is None:
        return
    pause = plan.slow.get(int(index))
    if pause:
        time.sleep(pause)
    index = int(index)
    if index in plan.crash_always or index in plan.crash_once:
        if os.getpid() == plan.main_pid:
            return  # thread/serial execution: nothing to OOM-kill separately
        if index in plan.crash_always or _claim_once(plan, f"crash-{index}"):
            os._exit(WORKER_EXIT_CODE)


def checkpoint(name: str) -> None:
    """Persistence hook: kill the save when the plan names this step."""
    plan = active_plan()
    if plan is not None and plan.kill_at == name:
        raise SimulatedCrash(f"simulated kill at checkpoint '{name}'")


def on_request(route: str) -> None:
    """Daemon hook: may slow one HTTP route down (any request thread).

    Injected latency never changes computed values, so served payloads stay
    bit-identical; it only widens the window the chaos suite needs to
    observe saturation (flood tests) or in-flight work (drain tests).
    """
    plan = active_plan()
    if plan is None:
        return
    pause = plan.slow_requests.get(str(route))
    if pause:
        time.sleep(pause)


def on_pickle_probe() -> None:
    """Probe hook: make the auto-backend picklability probe fail."""
    plan = active_plan()
    if plan is not None and plan.fail_pickle_probe:
        raise pickle.PicklingError("injected pickling failure (fault plan)")


def flip_byte(path, seed: int) -> int:
    """Deterministically flip one bit of a file; returns the byte offset.

    The on-disk corruption primitive of the chaos suite: the same
    ``(file, seed)`` always flips the same bit, so a checksum-verification
    failure replays exactly from its reported seed.
    """
    target = Path(path)
    data = bytearray(target.read_bytes())
    if not data:
        raise ConfigurationError(f"cannot corrupt empty file '{target}'")
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(len(data)))
    data[offset] ^= 1 << int(rng.integers(8))
    target.write_bytes(bytes(data))
    return offset
