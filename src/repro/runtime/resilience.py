"""Supervised fan-out: worker crashes, deadlines, and degradation ladders.

The pool fan-outs of :mod:`repro.runtime.parallel` historically dispatched
through bare ``pool.map``: one OOM-killed process worker aborted the entire
fan-out, nothing could say "this request has a deadline", and a failure left
no trace of what degraded. :func:`supervised_map` replaces that dispatch with
per-task futures under a supervisor that extends the B&B solver's "never
wrong, only slow" contract to the runtime:

* **Crash recovery.** A dead worker (``BrokenProcessPool``) fails only the
  tasks that had not completed; the supervisor re-runs exactly the missing
  ones in a fresh pool, with bounded retries and a deterministic exponential
  backoff. Tasks are pure and idempotent by the package-wide two-phase
  contract, so a retry cannot change a bit — recovered results are
  bit-identical to a fault-free serial run.
* **Degradation ladder.** When retries on a rung are exhausted the fan-out
  degrades ``process -> thread -> serial`` and keeps going; the serial rung
  cannot crash, so a supervised fan-out only fails with the *task's own*
  exception (task bugs always propagate, never retried — a deterministic
  task that raised once would raise again), with
  :class:`~repro.exceptions.DeadlineExceededError`, or — when degradation is
  disabled — with :class:`~repro.exceptions.WorkerCrashError`.
* **Deadlines.** A :class:`Deadline` is a monotonic-clock budget checked
  between serial tasks and while awaiting futures. It can be passed
  per-call or installed ambiently for the current thread with
  :func:`deadline_scope`, so a request handler can bound *every* fan-out a
  model pass performs without threading a parameter through the predictor
  stack. Expiry cancels unstarted tasks and abandons the pool (running
  native code cannot be interrupted; it finishes in the background).
* **Accounting.** Failures and degradations are recorded, not silent: every
  fan-out folds a :class:`ResilienceStats` into the sinks installed with
  :func:`collect_stats`, which is how ``RiskMapService`` / ``PlanService``
  accumulate per-service counters for the future daemon's ``/stats``.

Faults are injected — deterministically, for the chaos suite — through the
hooks of :mod:`repro.runtime.faults`; every hook is a no-op in production.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TypeVar

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    WorkerCrashError,
)
from repro.runtime import faults

T = TypeVar("T")
R = TypeVar("R")

#: Degradation order; a fan-out starts at its backend's rung and falls right.
LADDER = ("process", "thread", "serial")

_POOLS = {"process": ProcessPoolExecutor, "thread": ThreadPoolExecutor}

_MISSING = object()


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
class Deadline:
    """A monotonic-clock budget for one request (shared by its fan-outs)."""

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: float):
        seconds = float(seconds)
        if not seconds > 0.0:
            raise ConfigurationError(
                f"deadline must be > 0 seconds, got {seconds}"
            )
        self.seconds = seconds
        self._expires_at = time.monotonic() + seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, context: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        rest = self.remaining()
        if rest <= 0.0:
            raise DeadlineExceededError(
                f"deadline of {self.seconds:.3f}s exceeded by {-rest:.3f}s "
                f"at {context}"
            )

    @classmethod
    def resolve(cls, value) -> "Deadline | None":
        """Normalise a deadline argument.

        ``None`` falls back to the thread's ambient :func:`deadline_scope`
        (itself usually ``None``); a number becomes a fresh budget starting
        now; an existing :class:`Deadline` is shared as-is.
        """
        if value is None:
            return ambient_deadline()
        if isinstance(value, Deadline):
            return value
        return cls(value)


_LOCAL = threading.local()


def _deadline_stack() -> list:
    try:
        return _LOCAL.deadlines
    except AttributeError:
        _LOCAL.deadlines = []
        return _LOCAL.deadlines


def _sink_stack() -> list:
    try:
        return _LOCAL.sinks
    except AttributeError:
        _LOCAL.sinks = []
        return _LOCAL.sinks


@contextmanager
def deadline_scope(deadline: "Deadline | float | None"):
    """Ambient deadline for every fan-out this thread starts in the block.

    ``None`` is a no-op scope, so call sites can pass an optional user
    deadline straight through. Scopes nest; the innermost wins (fan-outs
    resolve the top of the stack).
    """
    if deadline is None:
        yield None
        return
    deadline = deadline if isinstance(deadline, Deadline) else Deadline(deadline)
    stack = _deadline_stack()
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


def ambient_deadline() -> "Deadline | None":
    """The innermost active :func:`deadline_scope` of this thread, if any."""
    stack = _deadline_stack()
    return stack[-1] if stack else None


# ---------------------------------------------------------------------------
# Retry policy and accounting
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised fan-out responds to pool-infrastructure failures.

    Only infrastructure failures (dead workers) consume this budget;
    task-raised exceptions always propagate immediately. The backoff is
    deterministic — ``backoff_base * 2**(attempt-1)`` capped at
    ``backoff_cap`` — so recovery timing is reproducible too.
    """

    max_retries: int = 2
    backoff_base: float = 0.01
    backoff_cap: float = 0.25
    #: Fall down the process -> thread -> serial ladder when retries on a
    #: rung run out; with False the fan-out raises WorkerCrashError instead.
    degrade: bool = True

    def backoff(self, attempt: int) -> float:
        if self.backoff_base <= 0.0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2.0 ** (attempt - 1))


@dataclass
class ResilienceStats:
    """What one (or many, merged) supervised fan-outs survived."""

    fanouts: int = 0
    tasks: int = 0
    retries: int = 0
    worker_deaths: int = 0
    degradations: int = 0
    pickle_fallbacks: int = 0
    deadline_exceeded: int = 0
    #: Remaining budget when the most recent deadlined fan-out finished.
    deadline_remaining: float | None = None
    #: Completion rung -> fan-out count (e.g. {"process": 3, "serial": 1}).
    backends: dict = field(default_factory=dict)

    def merge(self, other: "ResilienceStats") -> "ResilienceStats":
        self.fanouts += other.fanouts
        self.tasks += other.tasks
        self.retries += other.retries
        self.worker_deaths += other.worker_deaths
        self.degradations += other.degradations
        self.pickle_fallbacks += other.pickle_fallbacks
        self.deadline_exceeded += other.deadline_exceeded
        if other.deadline_remaining is not None:
            self.deadline_remaining = other.deadline_remaining
        for rung, count in other.backends.items():
            self.backends[rung] = self.backends.get(rung, 0) + count
        return self

    def as_dict(self) -> dict:
        """A json-able snapshot (the daemon's ``/stats`` payload shape)."""
        return {
            "fanouts": self.fanouts,
            "tasks": self.tasks,
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "degradations": self.degradations,
            "pickle_fallbacks": self.pickle_fallbacks,
            "deadline_exceeded": self.deadline_exceeded,
            "deadline_remaining": self.deadline_remaining,
            "backends": dict(self.backends),
        }


@contextmanager
def collect_stats():
    """Collect the stats of every fan-out this thread runs in the block.

    Sinks nest (an outer request scope and an inner service scope both see
    the same fan-outs); each fan-out merges itself into every active sink.
    """
    sink = ResilienceStats()
    stack = _sink_stack()
    stack.append(sink)
    try:
        yield sink
    finally:
        # pop by position, not value: ResilienceStats is a dataclass, so
        # list.remove would match the first sink with *equal counters*.
        stack.pop()


def record_stats(stats: ResilienceStats) -> None:
    """Fold ``stats`` into every active :func:`collect_stats` sink."""
    for sink in _sink_stack():
        sink.merge(stats)


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------
def _guarded(fn, item, index: int):
    """One supervised task (module-level so process pools can pickle it)."""
    faults.on_task(index)
    return fn(item)


def _pooled_attempt(
    pool_cls,
    fn,
    items: Sequence,
    indices: Sequence[int],
    workers: int,
    deadline: Deadline | None,
    results: list,
    label: str,
) -> bool:
    """One executor lifetime over the missing tasks; fills ``results``.

    Returns ``True`` when the pool infrastructure broke (a worker died) and
    some tasks are still missing — the supervisor's cue to retry them.
    Task-raised exceptions and deadline expiry propagate unchanged.
    """
    crashed = False
    abandoned = False
    task_error: BaseException | None = None
    pool = pool_cls(max_workers=min(workers, len(indices)))
    futures: dict = {}
    try:
        try:
            for i in indices:
                futures[pool.submit(_guarded, fn, items[i], i)] = i
        except BrokenExecutor:
            crashed = True  # broke mid-submission; drain what was queued
        pending = set(futures)
        while pending:
            if deadline is not None and deadline.expired():
                abandoned = True
                deadline.check(label)
            timeout = None if deadline is None else max(0.0, deadline.remaining())
            done, pending = futures_wait(
                pending, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done and deadline is not None and deadline.expired():
                abandoned = True
                deadline.check(label)
            for future in done:
                if future.cancelled():
                    continue
                error = future.exception()
                if error is None:
                    results[futures[future]] = future.result()
                elif isinstance(error, BrokenExecutor):
                    crashed = True
                elif task_error is None:
                    # First task-raised error: stop the fan-out, but DRAIN
                    # the remaining futures before raising — shutting an
                    # executor down while its feeder thread is still
                    # pickling work items can deadlock the final join
                    # (observed on CPython 3.11). Unstarted tasks are
                    # cancelled; once everything has resolved, shutdown is
                    # an ordinary quiet join.
                    task_error = error
                    for undone in pending:
                        undone.cancel()
        if task_error is not None:
            raise task_error
        return crashed
    finally:
        # On abandonment (deadline, task error) unstarted tasks are
        # cancelled and running ones are left to finish in the background —
        # native code cannot be interrupted mid-flight.
        pool.shutdown(wait=not abandoned, cancel_futures=True)


def supervised_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int = 1,
    backend: str = "thread",
    deadline: "Deadline | float | None" = None,
    policy: RetryPolicy | None = None,
    label: str = "fan-out",
) -> list[R]:
    """``[fn(x) for x in items]`` under supervision — see module docs.

    Results come back in input order and bit-identical to a serial run in
    every recovery path (tasks are pure and idempotent by the two-phase
    contract). ``backend`` is the starting rung: ``"process"``,
    ``"thread"``, or ``"serial"`` (forced when ``workers <= 1`` or there are
    fewer than two items). ``deadline`` accepts seconds, a shared
    :class:`Deadline`, or ``None`` (which falls back to the thread's
    ambient :func:`deadline_scope`).
    """
    items = list(items)
    if policy is None:
        policy = RetryPolicy()
    deadline = Deadline.resolve(deadline)
    n = len(items)
    if workers <= 1 or n <= 1:
        backend = "serial"
    if backend not in LADDER:
        raise ConfigurationError(
            f"supervised_map backend must be one of {LADDER}, got '{backend}'"
        )
    stats = ResilienceStats(fanouts=1, tasks=n)
    results: list = [_MISSING] * n
    completed_on = backend
    try:
        rungs = LADDER[LADDER.index(backend):]
        for rung_number, rung in enumerate(rungs):
            missing = [i for i in range(n) if results[i] is _MISSING]
            if not missing:
                break
            completed_on = rung
            if rung == "serial":
                for i in missing:
                    if deadline is not None:
                        deadline.check(f"{label} (task {i})")
                    results[i] = _guarded(fn, items[i], i)
                break
            attempt = 0
            while missing:
                if deadline is not None:
                    deadline.check(label)
                crashed = _pooled_attempt(
                    _POOLS[rung], fn, items, missing, workers, deadline,
                    results, label,
                )
                missing = [i for i in missing if results[i] is _MISSING]
                if not missing:
                    break
                if not crashed:
                    crashed = True  # defensive: missing results ARE a failure
                stats.worker_deaths += 1
                if attempt >= policy.max_retries:
                    if policy.degrade and rung_number + 1 < len(rungs):
                        stats.degradations += 1
                        break  # fall to the next rung with only the missing
                    raise WorkerCrashError(
                        f"{label}: {len(missing)} task(s) lost to worker "
                        f"crashes on the {rung} pool after "
                        f"{attempt + 1} attempt(s), and degradation is "
                        "disabled"
                    )
                attempt += 1
                stats.retries += 1
                pause = policy.backoff(attempt)
                if pause > 0.0:
                    time.sleep(pause)
        stats.backends[completed_on] = stats.backends.get(completed_on, 0) + 1
        return list(results)
    except DeadlineExceededError:
        stats.deadline_exceeded += 1
        raise
    finally:
        if deadline is not None:
            stats.deadline_remaining = deadline.remaining()
        record_stats(stats)
