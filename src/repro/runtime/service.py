"""The risk-map serving facade: fit (or load) once, predict many.

Deployed PAWS installations (Section VII: MFNP, QENP, SWS) serve risk maps
repeatedly from one fitted model — every patrol post queries the same
effort-response surfaces, dashboards re-render the same maps, and planners
re-solve under different robustness weights. :class:`RiskMapService` wraps a
fitted :class:`~repro.core.predictor.PawsPredictor` with

* the **batched** effort-response path (one ensemble pass per request
  instead of one per effort level),
* the **tiled, parallel** prediction engine (``tile_size`` bounds transient
  memory at ``O(n_train x tile)``; ``n_jobs`` spreads ``(member x tile)``
  tasks over the hint-selected pool — surfaces are bit-identical to the
  serial, untiled path at any setting),
* an **LRU result cache** keyed on the request arrays, so repeated queries
  (the common case: same park features, same planner breakpoints) cost a
  dictionary lookup, and
* **feature registration**: parks whose feature matrix is served over and
  over register it once (:meth:`register_features`), paying the SHA-256
  content hash at registration instead of on every query.

Combined with model persistence, this is the "serve without refit" workload::

    predictor.save("models/mfnp-gpb")           # once, after training
    service = RiskMapService.from_saved("models/mfnp-gpb",
                                        tile_size=4096, n_jobs=4)
    park = service.register_features("mfnp", features)
    risk, nu = service.effort_response(park, planner.breakpoints())
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.core.predictor import PawsPredictor
from repro.exceptions import ConfigurationError, NotFittedError
from repro.runtime.concurrency import thread_shared
from repro.runtime.parallel import check_backend, resolve_n_jobs
from repro.runtime.resilience import (
    ResilienceStats,
    collect_stats,
    deadline_scope,
)


@thread_shared
class RiskMapService:
    """Cached serving facade over a fitted predictor.

    The service is ``@thread_shared``: one instance may serve many request
    threads concurrently (the park-service daemon's deployment shape).
    Cache and registry mutations happen under ``self._lock``; reads are
    lock-free; concurrent misses on one key each compute the bit-identical
    result and the first insertion wins. One caveat inherited from the
    predictor API: ``effort_response`` restores the predictor's
    ``uncertainty_scaler`` alongside each result, and that attribute lives
    on the (shared) predictor — concurrent queries over *different*
    feature sets leave it matching whichever query finished last.

    Parameters
    ----------
    predictor:
        A fitted :class:`~repro.core.predictor.PawsPredictor`.
    max_entries:
        LRU capacity; each entry holds one query's result arrays. Zero
        disables caching.
    tile_size:
        Rows per prediction tile (``None`` = untiled). Bounds the serving
        path's transient memory at ``O(n_train x tile_size)`` per in-flight
        task instead of ``O(n_train x n_cells)``.
    n_jobs:
        Workers for the ``(member x tile)`` prediction fan-out (1 = serial,
        -1 = all cores). Served surfaces are bit-identical to serial.
    backend:
        Pool flavour for that fan-out: ``"thread"``, ``"process"``, or
        ``"auto"`` (hint-based, like fitting: tree members to processes,
        BLAS-heavy GP members to threads).
    """

    def __init__(
        self,
        predictor: PawsPredictor,
        max_entries: int = 32,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ):
        if not isinstance(predictor, PawsPredictor):
            raise ConfigurationError(
                f"expected a PawsPredictor, got {type(predictor).__name__}"
            )
        try:
            predictor._check_fitted()
        except NotFittedError:
            raise NotFittedError(
                "RiskMapService needs a fitted predictor (fit it, or load "
                "one with RiskMapService.from_saved)"
            ) from None
        if max_entries < 0:
            raise ConfigurationError(f"max_entries must be >= 0, got {max_entries}")
        if tile_size is not None and int(tile_size) < 1:
            raise ConfigurationError(f"tile_size must be >= 1, got {tile_size}")
        resolve_n_jobs(n_jobs)
        self.predictor = predictor
        self.max_entries = max_entries
        self.tile_size = None if tile_size is None else int(tile_size)
        self.n_jobs = n_jobs
        self.backend = check_backend(backend)
        # Mutated only under self._lock (the @thread_shared contract, RP004):
        # one service instance is shared by every request thread of the
        # park-service daemon. Reads stay lock-free — single dict operations
        # are atomic under the GIL and cached values are never mutated after
        # insertion (results are copied out to callers).
        self._lock = threading.RLock()
        self._cache: OrderedDict[str, tuple] = OrderedDict()
        #: name -> (array, registration-time digest); see register_features.
        self._registered: dict[str, tuple[np.ndarray, str]] = {}
        #: id(array) -> name, so passing the registered object skips hashing.
        self._registered_ids: dict[int, str] = {}
        self._hits = 0
        self._misses = 0
        #: Accumulated fan-out survival counters (the daemon's /stats feed).
        self._resilience = ResilienceStats()

    @property
    def hits(self) -> int:
        """Cache hits served so far (read-only)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Cache misses (i.e. computed queries) so far (read-only)."""
        return self._misses

    # ------------------------------------------------------------------
    # Construction from a saved model
    # ------------------------------------------------------------------
    @classmethod
    def from_saved(
        cls,
        path,
        max_entries: int = 32,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
        verify: bool = True,
    ) -> "RiskMapService":
        """Serve a predictor persisted with ``PawsPredictor.save``.

        ``verify`` controls checksum verification of the saved arrays (see
        :func:`repro.runtime.persistence.load_model`); on by default.
        """
        return cls(
            PawsPredictor.load(path, verify=verify), max_entries=max_entries,
            tile_size=tile_size, n_jobs=n_jobs, backend=backend,
        )

    def save(self, path) -> None:
        """Persist the underlying predictor (the cache is not saved)."""
        self.predictor.save(path)

    # ------------------------------------------------------------------
    # Feature registration (hash once, serve many)
    # ------------------------------------------------------------------
    def register_features(self, name: str, features: np.ndarray) -> str:
        """Register a park's feature matrix; returns a token for queries.

        The SHA-256 content hash — linear in the matrix, tens of
        milliseconds per million cells — is computed **once**, here.
        Queries made with the returned token (or with the registered array
        object itself) key the LRU by token + cheap metadata instead of
        re-hashing the full matrix every call; unregistered arrays fall
        back to per-query content hashing.

        **Mutation contract**: the service keys the cache by the
        registration-time hash and does not re-inspect the array, so
        mutating a registered array in place serves stale results. Treat
        registered arrays as frozen — copy before editing, or call
        :meth:`register_features` again (same name) to re-hash.

        Registering a new array under an existing name replaces the
        registration; cached results of the old array are keyed by its old
        digest and simply age out of the LRU.
        """
        features = np.asarray(features, dtype=float)
        digest = self._array_digest(features)  # hash outside the lock
        with self._lock:
            previous = self._registered.get(name)
            if previous is not None:
                self._registered_ids.pop(id(previous[0]), None)
            self._registered[name] = (features, digest)
            self._registered_ids[id(features)] = name
        return name

    def _resolve_features(self, features) -> tuple[np.ndarray, str]:
        """``(array, cache-key part)`` for a token, registered, or ad-hoc query."""
        if isinstance(features, str):
            if features not in self._registered:
                raise ConfigurationError(
                    f"no features registered under '{features}' "
                    "(call register_features first)"
                )
            array, digest = self._registered[features]
            return array, f"token/{features}/{digest}"
        array = np.asarray(features, dtype=float)
        name = self._registered_ids.get(id(array))
        if name is not None and self._registered[name][0] is array:
            return array, f"token/{name}/{self._registered[name][1]}"
        return array, self._array_digest(array)

    # ------------------------------------------------------------------
    # Cached queries
    # ------------------------------------------------------------------
    @staticmethod
    def _array_digest(array: np.ndarray) -> str:
        """Content hash of one array (shape + dtype + bytes)."""
        array = np.ascontiguousarray(array)
        digest = hashlib.sha256()
        digest.update(str(array.shape).encode())
        digest.update(array.dtype.str.encode())
        digest.update(array.tobytes())
        return digest.hexdigest()

    @classmethod
    def _key(cls, tag: str, *parts) -> str:
        """Cache key from a tag and string/array parts (arrays are hashed)."""
        digest = hashlib.sha256()
        digest.update(tag.encode())
        for part in parts:
            if isinstance(part, str):
                digest.update(part.encode())
            else:
                digest.update(cls._array_digest(np.asarray(part)).encode())
        return digest.hexdigest()

    def _cached(self, key: str, compute) -> tuple:
        if self.max_entries == 0:
            return compute()
        with self._lock:
            if key in self._cache:
                self._hits += 1
                self._cache.move_to_end(key)
                return self._cache[key]
            self._misses += 1
        # Compute outside the lock: concurrent misses on the same key both
        # compute (bit-identical results by the determinism contract) and
        # the incumbent insertion wins, so a slow model pass never blocks
        # unrelated requests.
        result = compute()
        with self._lock:
            incumbent = self._cache.get(key)
            if incumbent is not None:
                self._cache.move_to_end(key)
                return incumbent
            self._cache[key] = result
            if len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
        return result

    def _absorb(self, stats: ResilienceStats) -> None:
        """Fold one request's fan-out stats into the service counters."""
        with self._lock:
            self._resilience.merge(stats)

    def effort_response(
        self,
        features,
        effort_grid: np.ndarray,
        deadline: float | None = None,
        backend: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cached batched ``(g_v(c), nu_v(c))`` surfaces for planner input.

        ``features`` is a matrix, a registered array, or a token from
        :meth:`register_features`. Returns copies, so callers may mutate the
        results freely without poisoning the cache. The predictor's
        ``uncertainty_scaler`` is cached with each result and restored on
        hits, so it always matches the surfaces just returned — exactly as
        if the query had been recomputed.

        ``deadline`` bounds the compute on a cache miss (seconds, or a
        shared :class:`~repro.runtime.resilience.Deadline`); an overrun
        raises :class:`~repro.exceptions.DeadlineExceededError` and caches
        nothing. Hits return immediately regardless.

        ``backend`` overrides the service's pool flavour for this one query
        (the daemon's degraded-dispatch path). Results are bit-identical
        across backends, so the cache key is unchanged.
        """
        array, feature_key = self._resolve_features(features)
        effort_grid = np.asarray(effort_grid, dtype=float)
        key = self._key("effort_response", feature_key, effort_grid)
        chosen_backend = self.backend if backend is None else check_backend(backend)

        def compute():
            with deadline_scope(deadline), collect_stats() as stats:
                try:
                    risk, nu = self.predictor.effort_response(
                        array, effort_grid,
                        tile_size=self.tile_size, n_jobs=self.n_jobs,
                        backend=chosen_backend,
                    )
                finally:
                    self._absorb(stats)
            return risk, nu, self.predictor.uncertainty_scaler

        risk, nu, scaler = self._cached(key, compute)
        self.predictor._uncertainty_scaler = scaler
        return risk.copy(), nu.copy()

    def risk_map(
        self,
        features,
        effort: float | None = None,
        deadline: float | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Cached per-cell attack-detection probability at one effort level.

        ``effort=None`` gives the unconditional (prior-corrected) map; a
        value conditions on that hypothetical patrol effort, as in the
        Fig. 6 risk maps. ``features`` may be a token, as in
        :meth:`effort_response`; ``deadline`` bounds a cache-miss compute
        and ``backend`` overrides the pool flavour the same way.
        """
        array, feature_key = self._resolve_features(features)
        effort_tag = "none" if effort is None else repr(float(effort))
        key = self._key(f"risk_map/{effort_tag}", feature_key)
        chosen_backend = self.backend if backend is None else check_backend(backend)

        def compute():
            with deadline_scope(deadline), collect_stats() as stats:
                try:
                    risk = self.predictor.predict_proba(
                        array, effort=effort,
                        tile_size=self.tile_size, n_jobs=self.n_jobs,
                        backend=chosen_backend,
                    )
                finally:
                    self._absorb(stats)
            return (risk,)

        (risk,) = self._cached(key, compute)
        return risk.copy()

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters (for logs and benchmarks)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._cache),
            "max_entries": self.max_entries,
        }

    def resilience_info(self) -> dict:
        """Accumulated fan-out survival counters (the daemon's ``/stats``).

        Counts what every cache-miss compute survived: retries, worker
        deaths, degradations, pickle fallbacks, deadline overruns, and the
        completion backend of each fan-out. All zeros on a healthy host.
        """
        with self._lock:
            return self._resilience.as_dict()

    def clear_cache(self) -> None:
        """Drop every cached result (counters are kept)."""
        with self._lock:
            self._cache.clear()
