"""The risk-map serving facade: fit (or load) once, predict many.

Deployed PAWS installations (Section VII: MFNP, QENP, SWS) serve risk maps
repeatedly from one fitted model — every patrol post queries the same
effort-response surfaces, dashboards re-render the same maps, and planners
re-solve under different robustness weights. :class:`RiskMapService` wraps a
fitted :class:`~repro.core.predictor.PawsPredictor` with

* the **batched** effort-response path (one ensemble pass per request
  instead of one per effort level), and
* an **LRU result cache** keyed on the request arrays, so repeated queries
  (the common case: same park features, same planner breakpoints) cost a
  dictionary lookup.

Combined with model persistence, this is the "serve without refit" workload::

    predictor.save("models/mfnp-gpb")           # once, after training
    service = RiskMapService.from_saved("models/mfnp-gpb")
    risk, nu = service.effort_response(features, planner.breakpoints())
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.core.predictor import PawsPredictor
from repro.exceptions import ConfigurationError, NotFittedError


class RiskMapService:
    """Cached serving facade over a fitted predictor.

    Parameters
    ----------
    predictor:
        A fitted :class:`~repro.core.predictor.PawsPredictor`.
    max_entries:
        LRU capacity; each entry holds one query's result arrays. Zero
        disables caching.
    """

    def __init__(self, predictor: PawsPredictor, max_entries: int = 32):
        if not isinstance(predictor, PawsPredictor):
            raise ConfigurationError(
                f"expected a PawsPredictor, got {type(predictor).__name__}"
            )
        try:
            predictor._check_fitted()
        except NotFittedError:
            raise NotFittedError(
                "RiskMapService needs a fitted predictor (fit it, or load "
                "one with RiskMapService.from_saved)"
            ) from None
        if max_entries < 0:
            raise ConfigurationError(f"max_entries must be >= 0, got {max_entries}")
        self.predictor = predictor
        self.max_entries = max_entries
        self._cache: OrderedDict[str, tuple[np.ndarray, ...]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Construction from a saved model
    # ------------------------------------------------------------------
    @classmethod
    def from_saved(cls, path, max_entries: int = 32) -> "RiskMapService":
        """Serve a predictor persisted with ``PawsPredictor.save``."""
        return cls(PawsPredictor.load(path), max_entries=max_entries)

    def save(self, path) -> None:
        """Persist the underlying predictor (the cache is not saved)."""
        self.predictor.save(path)

    # ------------------------------------------------------------------
    # Cached queries
    # ------------------------------------------------------------------
    @staticmethod
    def _key(tag: str, *arrays: np.ndarray) -> str:
        digest = hashlib.sha256()
        digest.update(tag.encode())
        for array in arrays:
            array = np.ascontiguousarray(array)
            digest.update(str(array.shape).encode())
            digest.update(array.dtype.str.encode())
            digest.update(array.tobytes())
        return digest.hexdigest()

    def _cached(self, key: str, compute) -> tuple[np.ndarray, ...]:
        if self.max_entries == 0:
            return compute()
        if key in self._cache:
            self.hits += 1
            self._cache.move_to_end(key)
            return self._cache[key]
        self.misses += 1
        result = compute()
        self._cache[key] = result
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return result

    def effort_response(
        self, features: np.ndarray, effort_grid: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cached batched ``(g_v(c), nu_v(c))`` surfaces for planner input.

        Returns copies, so callers may mutate the results freely without
        poisoning the cache. The predictor's ``uncertainty_scaler`` is
        cached with each result and restored on hits, so it always matches
        the surfaces just returned — exactly as if the query had been
        recomputed.
        """
        features = np.asarray(features, dtype=float)
        effort_grid = np.asarray(effort_grid, dtype=float)
        key = self._key("effort_response", features, effort_grid)

        def compute():
            risk, nu = self.predictor.effort_response(features, effort_grid)
            return risk, nu, self.predictor.uncertainty_scaler

        risk, nu, scaler = self._cached(key, compute)
        self.predictor._uncertainty_scaler = scaler
        return risk.copy(), nu.copy()

    def risk_map(
        self, features: np.ndarray, effort: float | None = None
    ) -> np.ndarray:
        """Cached per-cell attack-detection probability at one effort level.

        ``effort=None`` gives the unconditional (prior-corrected) map; a
        value conditions on that hypothetical patrol effort, as in the
        Fig. 6 risk maps.
        """
        features = np.asarray(features, dtype=float)
        effort_tag = "none" if effort is None else repr(float(effort))
        key = self._key(f"risk_map/{effort_tag}", features)
        (risk,) = self._cached(
            key,
            lambda: (self.predictor.predict_proba(features, effort=effort),),
        )
        return risk.copy()

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters (for logs and benchmarks)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._cache),
            "max_entries": self.max_entries,
        }

    def clear_cache(self) -> None:
        """Drop every cached result (counters are kept)."""
        self._cache.clear()
