"""Circuit breakers: stop hammering an operation that keeps failing.

Two daemon operations can fail repeatedly in ways retrying makes *worse*:

* **model loads** — a corrupt artifact fails its checksum every time, and
  re-hashing a multi-megabyte npz on every request turns one bad disk
  block into a CPU denial of service;
* **process-pool dispatch** — a host that OOM-kills workers will OOM-kill
  the replacement pool too, and every request pays the full
  retry/degradation ladder of :func:`~repro.runtime.resilience.supervised_map`
  before completing.

:class:`CircuitBreaker` is the standard three-state machine over a
monotonic clock:

* ``closed`` — healthy; operations proceed, failures are counted, and
  ``failure_threshold`` consecutive failures open the circuit;
* ``open`` — operations are refused (:meth:`allow` returns ``False``; the
  caller sheds with :class:`~repro.exceptions.CircuitOpenError` or serves a
  degraded path) until ``recovery_after`` seconds elapse;
* ``half-open`` — after the cool-down exactly **one probe** operation is
  let through: success closes the circuit, failure re-opens it for another
  full cool-down. :meth:`cancel_probe` returns an unused probe (e.g. the
  probed request was served entirely from cache and produced no evidence
  either way).

The breaker never *retries* anything itself — it only gates; timing is
deterministic given the injected clock, which the tests replace.
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import CircuitOpenError, ConfigurationError
from repro.runtime.concurrency import thread_shared

#: The three breaker states, as reported by :meth:`CircuitBreaker.state`.
STATES = ("closed", "open", "half_open")


@thread_shared
class CircuitBreaker:
    """One named three-state circuit breaker (see module docs).

    Parameters
    ----------
    name:
        Label used in :class:`~repro.exceptions.CircuitOpenError` messages
        and ``/health`` payloads (e.g. ``"load:MFNP"``).
    failure_threshold:
        Consecutive failures that open a closed circuit.
    recovery_after:
        Cool-down seconds before an open circuit allows a probe.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        recovery_after: float = 5.0,
        clock=time.monotonic,
    ):
        if int(failure_threshold) < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if float(recovery_after) < 0.0:
            raise ConfigurationError(
                f"recovery_after must be >= 0, got {recovery_after}"
            )
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.recovery_after = float(recovery_after)
        self._clock = clock
        # Mutated only under self._lock (the @thread_shared contract, RP004).
        self._lock = threading.RLock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._opened_total = 0
        self._probes = 0

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the protected operation run right now?

        ``True`` while closed; after an open circuit's cool-down, ``True``
        exactly once (the half-open probe) until the probe reports back.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.recovery_after
            ):
                self._state = "half_open"
            if self._state == "half_open" and not self._probing:
                self._probing = True
                self._probes += 1
                return True
            return False

    def check(self) -> None:
        """:meth:`allow` or raise :class:`~repro.exceptions.CircuitOpenError`."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit '{self.name}' is open after "
                f"{self._failures} consecutive failure(s); "
                f"retry in {self.retry_after():.1f}s"
            )

    def call(self, operation, trip_on: type | tuple = Exception):
        """Run ``operation()`` under the breaker.

        Refuses with :class:`~repro.exceptions.CircuitOpenError` when open;
        otherwise records success/failure (only exceptions matching
        ``trip_on`` count as failures — anything else propagates without
        touching the breaker).
        """
        self.check()
        try:
            result = operation()
        except BaseException as exc:
            if isinstance(exc, trip_on):
                self.record_failure()
            else:
                self.cancel_probe()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A protected operation completed cleanly; close the circuit."""
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        """A protected operation failed; maybe open the circuit."""
        with self._lock:
            self._failures += 1
            was_probe = self._probing
            self._probing = False
            if was_probe or self._failures >= self.failure_threshold:
                if self._state != "open":
                    self._opened_total += 1
                self._state = "open"
                self._opened_at = self._clock()

    def cancel_probe(self) -> None:
        """Return an unused half-open probe (no evidence either way)."""
        with self._lock:
            if self._probing:
                self._probing = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state(self) -> str:
        """Current state, resolving an elapsed cool-down to ``half_open``."""
        with self._lock:
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.recovery_after
            ):
                return "half_open"
            return self._state

    def healthy(self) -> bool:
        """True iff closed (the ``/health`` \"not flagged\" condition)."""
        return self.state() == "closed"

    def retry_after(self) -> float:
        """Seconds until an open circuit next allows a probe (0 if now)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(
                0.0, self.recovery_after - (self._clock() - self._opened_at)
            )

    def info(self) -> dict:
        """A json-able snapshot for ``/health`` and ``/stats``."""
        with self._lock:
            return {
                "name": self.name,
                "state": self.state(),
                "failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "recovery_after": self.recovery_after,
                "opened_total": self._opened_total,
                "probes": self._probes,
                "retry_after": self.retry_after(),
            }
