"""The multi-park model registry: lazy, verified loads and atomic hot-swap.

One daemon process fronts many parks. Each park's fitted model lives on
disk as a ``save_model`` directory under one *models root*::

    models/
      MFNP/manifest.json  arrays-<sha>.npz
      QENP/manifest.json  arrays-<sha>.npz

:class:`ModelRegistry` maps park names to live :class:`ParkEntry` objects:

* **lazy, checksum-verified loads** — a park's model is read (and its
  sha256 manifest verified) on first request, through a per-park *load
  breaker* so a corrupt artifact cannot grind the CPU re-hashing itself on
  every request (:class:`~repro.runtime.breaker.CircuitBreaker`);
* **LRU memory budget** — at most ``max_parks`` entries stay hot; loading
  one more evicts the least recently used (its result caches and feature
  registrations go with it; the on-disk model is untouched);
* **atomic hot-swap** — :meth:`reload` loads and verifies the *new* model
  off to the side and only then swaps the registry entry under the lock.
  A corrupt replacement raises
  :class:`~repro.exceptions.PersistenceError`, counts against the load
  breaker, and leaves the old entry serving — in-flight requests keep the
  entry they already resolved either way;
* **degraded dispatch** — each entry carries a *dispatch breaker* fed by
  the per-request :class:`~repro.runtime.resilience.ResilienceStats`:
  repeated worker deaths / pool degradations open it, after which the
  entry serves on the thread (then serial) rung instead of paying the
  process-pool crash-recovery ladder per request, until a half-open probe
  at full backend comes back clean.

Everything here is shared by every request thread; all registry and entry
state mutates under ``self._lock`` (the ``@thread_shared`` contract).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    PersistenceError,
    ResilienceError,
)
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.concurrency import thread_shared
from repro.runtime.persistence import MANIFEST_NAME
from repro.runtime.resilience import Deadline, ResilienceStats, collect_stats
from repro.runtime.service import RiskMapService


class _ParkContext:
    """Everything needed to serve one ``(seed, scale)`` view of a park.

    The daemon's clients name parks, not feature matrices; the feature
    matrix (and the grid/posts the planner needs) is derived
    deterministically from the park profile, seed, and scale — exactly the
    arrays a direct library call would build — then registered with the
    entry's :class:`~repro.runtime.service.RiskMapService` so repeated
    queries key its LRU by token instead of re-hashing.
    """

    __slots__ = ("seed", "scale", "data", "features", "token", "plan_service")

    def __init__(self, seed: int, scale: float, data, features, token):
        self.seed = seed
        self.scale = scale
        self.data = data
        self.features = features
        self.token = token
        self.plan_service = None


@thread_shared
class ParkEntry:
    """One hot park: a loaded model plus its serving state.

    Built by :class:`ModelRegistry`; requests never construct one directly.
    """

    #: Contexts (seed, scale) kept per entry before LRU eviction.
    MAX_CONTEXTS = 4

    def __init__(
        self,
        name: str,
        path: Path,
        service: RiskMapService,
        version: int,
        n_jobs: int | None = 1,
        dispatch_breaker: CircuitBreaker | None = None,
    ):
        self.name = name
        self.path = Path(path)
        self.service = service
        self.version = int(version)
        self.n_jobs = n_jobs
        self.dispatch_breaker = dispatch_breaker or CircuitBreaker(
            f"dispatch:{name}"
        )
        # Mutated only under self._lock (the @thread_shared contract, RP004).
        self._lock = threading.RLock()
        self._contexts: OrderedDict[tuple[int, float], _ParkContext] = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Contexts
    # ------------------------------------------------------------------
    def install_context(self, seed: int, scale: float, data) -> _ParkContext:
        """Register pre-generated park data for ``(seed, scale)``.

        The daemon calls this indirectly through :meth:`context`; tests and
        benchmarks call it directly to reuse an already-generated park
        instead of paying ``generate_dataset`` again (the arrays are
        deterministic in ``(profile, seed)``, so the served results are
        identical either way).
        """
        key = (int(seed), float(scale))
        features = self.service.predictor.cell_feature_matrix(
            data.park, data.recorded_effort[-1]
        )
        token = self.service.register_features(
            f"{self.name}/seed={key[0]}/scale={key[1]}", features
        )
        context = _ParkContext(key[0], key[1], data, features, token)
        with self._lock:
            incumbent = self._contexts.get(key)
            if incumbent is not None:
                return incumbent
            self._contexts[key] = context
            if len(self._contexts) > self.MAX_CONTEXTS:
                self._contexts.popitem(last=False)
        return context

    def context(self, seed: int = 0, scale: float = 1.0) -> _ParkContext:
        """The (cached) serving context for one ``(seed, scale)`` view."""
        key = (int(seed), float(scale))
        context = self._contexts.get(key)
        if context is not None:
            with self._lock:
                if key in self._contexts:
                    self._contexts.move_to_end(key)
            return context
        from repro.data import generate_dataset, get_profile

        profile = get_profile(self.name)
        if key[1] != 1.0:
            profile = profile.scaled(key[1])
        data = generate_dataset(profile, seed=key[0])
        return self.install_context(key[0], key[1], data)

    def _plan_service(self, context: _ParkContext):
        """The lazily built per-context :class:`~repro.planning.service.PlanService`."""
        if context.plan_service is None:
            from repro.planning.service import PlanService

            service = PlanService(
                self.service,
                context.data.park.grid,
                context.data.park.patrol_posts,
                n_jobs=self.n_jobs,
            )
            with self._lock:
                if context.plan_service is None:
                    context.plan_service = service
        return context.plan_service

    # ------------------------------------------------------------------
    # Dispatch through the breaker
    # ------------------------------------------------------------------
    def _dispatch(self, operation):
        """Run one request's compute, feeding the dispatch breaker.

        ``operation(backend)`` receives ``None`` (serve on the entry's
        configured backend) while the breaker is closed or probing, and
        ``"thread"`` (the degraded rung — threads cannot be OOM-killed
        separately) while it is open. Evidence comes from the fan-out
        stats: worker deaths or degradations recorded at full backend are
        a failure, a clean full-backend fan-out is a success, and a
        cache-hit request (no fan-outs) returns an unused probe.
        """
        full_backend = self.dispatch_breaker.allow()
        backend = None if full_backend else "thread"
        stats = ResilienceStats()
        try:
            with collect_stats() as stats:
                result = operation(backend)
        except ResilienceError:
            if full_backend:
                self.dispatch_breaker.record_failure()
            raise
        if full_backend:
            if stats.worker_deaths or stats.degradations:
                self.dispatch_breaker.record_failure()
            elif stats.fanouts:
                self.dispatch_breaker.record_success()
            else:
                self.dispatch_breaker.cancel_probe()
        return result

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def risk_map(
        self,
        effort: float | None = None,
        seed: int = 0,
        scale: float = 1.0,
        deadline=None,
    ) -> np.ndarray:
        """The park's per-cell risk map (the ``/riskmap`` payload)."""
        context = self.context(seed, scale)
        return self._dispatch(
            lambda backend: self.service.risk_map(
                context.token, effort=effort, deadline=deadline,
                backend=backend,
            )
        )

    def plan(
        self,
        beta: float = 0.8,
        post: int | None = None,
        seed: int = 0,
        scale: float = 1.0,
        deadline=None,
    ) -> dict:
        """Patrol plans for one post (or all posts) — the ``/plan`` payload."""
        context = self.context(seed, scale)
        plan_service = self._plan_service(context)

        def compute(backend):
            # Plan solves fan out over threads regardless; the breaker only
            # sees the prediction fan-outs a cache miss triggers.
            if post is not None:
                plan = plan_service.plan_post(
                    int(post), context.token, beta=beta, deadline=deadline
                )
                return {int(post): plan}
            return plan_service.plan_all(
                context.token, beta=beta, deadline=deadline
            )

        return self._dispatch(compute)

    def degraded(self) -> bool:
        """True when the dispatch breaker is steering serving off-process."""
        return not self.dispatch_breaker.healthy()

    def stats(self) -> dict:
        """Per-entry counters for ``/stats``."""
        plan_info = None
        for context in list(self._contexts.values()):
            if context.plan_service is not None:
                merged = plan_info or ResilienceStats()
                merged.merge(
                    ResilienceStats(
                        **{
                            key: value
                            for key, value in
                            context.plan_service.resilience_info().items()
                        }
                    )
                )
                plan_info = merged
        return {
            "version": self.version,
            "path": str(self.path),
            "contexts": len(self._contexts),
            "degraded": self.degraded(),
            "dispatch_breaker": self.dispatch_breaker.info(),
            "cache": self.service.cache_info(),
            "resilience": self.service.resilience_info(),
            "plan_resilience": (
                plan_info.as_dict() if plan_info is not None else None
            ),
        }


@thread_shared
class ModelRegistry:
    """Park name -> :class:`ParkEntry`, with LRU budget and hot-swap.

    Parameters
    ----------
    models_dir:
        Root directory; each immediate subdirectory containing a
        ``manifest.json`` is a servable park (its name must match a park
        profile so features can be derived deterministically).
    max_parks:
        Hot entries kept before LRU eviction (>= 1).
    tile_size, n_jobs, backend, cache_entries:
        Forwarded to each entry's :class:`~repro.runtime.service.RiskMapService`.
    verify:
        Checksum-verify models on load. Hot-swap *always* verifies,
        regardless — a reload that skipped verification could swap a
        corrupt model over a good one.
    load_failure_threshold, load_recovery_after:
        Per-park load-breaker tuning (see
        :class:`~repro.runtime.breaker.CircuitBreaker`).
    """

    def __init__(
        self,
        models_dir,
        max_parks: int = 8,
        tile_size: int | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
        cache_entries: int = 32,
        verify: bool = True,
        load_failure_threshold: int = 3,
        load_recovery_after: float = 5.0,
    ):
        self.models_dir = Path(models_dir)
        if not self.models_dir.is_dir():
            raise ConfigurationError(
                f"models_dir '{models_dir}' is not a directory"
            )
        if int(max_parks) < 1:
            raise ConfigurationError(f"max_parks must be >= 1, got {max_parks}")
        self.max_parks = int(max_parks)
        self.tile_size = tile_size
        self.n_jobs = n_jobs
        self.backend = backend
        self.cache_entries = int(cache_entries)
        self.verify = bool(verify)
        self.load_failure_threshold = int(load_failure_threshold)
        self.load_recovery_after = float(load_recovery_after)
        # Mutated only under self._lock (the @thread_shared contract, RP004).
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, ParkEntry] = OrderedDict()
        self._load_breakers: dict[str, CircuitBreaker] = {}
        self._versions: dict[str, int] = {}
        self._loads = 0
        self._reloads = 0
        self._rejected_reloads = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def available(self) -> list[str]:
        """Parks present on disk (sorted), loaded or not."""
        return sorted(
            child.name
            for child in self.models_dir.iterdir()
            if child.is_dir() and (child / MANIFEST_NAME).is_file()
        )

    def has_model(self, park: str) -> bool:
        return (self.models_dir / park / MANIFEST_NAME).is_file()

    def loaded(self) -> list[str]:
        """Currently hot parks, least recently used first."""
        return list(self._entries)

    def _path(self, park: str) -> Path:
        path = self.models_dir / park
        if not (path / MANIFEST_NAME).is_file():
            raise ConfigurationError(
                f"no saved model for park '{park}' under "
                f"'{self.models_dir}' (available: {self.available()})"
            )
        return path

    def _breaker(self, park: str) -> CircuitBreaker:
        breaker = self._load_breakers.get(park)
        if breaker is None:
            with self._lock:
                breaker = self._load_breakers.get(park)
                if breaker is None:
                    breaker = CircuitBreaker(
                        f"load:{park}",
                        failure_threshold=self.load_failure_threshold,
                        recovery_after=self.load_recovery_after,
                    )
                    self._load_breakers[park] = breaker
        return breaker

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load_service(self, path: Path, verify: bool) -> RiskMapService:
        return RiskMapService.from_saved(
            path,
            max_entries=self.cache_entries,
            tile_size=self.tile_size,
            n_jobs=self.n_jobs,
            backend=self.backend,
            verify=verify,
        )

    def _build_entry(
        self, park: str, verify: bool, deadline: Deadline | None = None
    ) -> ParkEntry:
        """Load + verify one park through its load breaker (off-lock)."""
        path = self._path(park)
        if deadline is not None:
            # Fail before the expensive disk load, not after: a request
            # that has already blown its budget must not pay for a model
            # load whose result it can never use.
            deadline.check(f"load model for park '{park}'")
        service = self._breaker(park).call(
            lambda: self._load_service(path, verify),
            trip_on=PersistenceError,
        )
        with self._lock:
            version = self._versions.get(park, 0) + 1
            self._versions[park] = version
            self._loads += 1
        return ParkEntry(
            park, path, service, version=version, n_jobs=self.n_jobs
        )

    def entry(self, park: str, deadline: Deadline | None = None) -> ParkEntry:
        """The hot entry for ``park``, loading (and maybe evicting) lazily.

        Raises :class:`~repro.exceptions.CircuitOpenError` while the park's
        load breaker is open, :class:`~repro.exceptions.PersistenceError`
        when the artifact fails verification, and
        :class:`~repro.exceptions.ConfigurationError` when no model exists.
        """
        incumbent = self._entries.get(park)
        if incumbent is not None:
            with self._lock:
                if park in self._entries:
                    self._entries.move_to_end(park)
            return incumbent
        entry = self._build_entry(park, verify=self.verify, deadline=deadline)
        with self._lock:
            incumbent = self._entries.get(park)
            if incumbent is not None:
                return incumbent  # a racing load won; serve its entry
            self._entries[park] = entry
            while len(self._entries) > self.max_parks:
                self._entries.popitem(last=False)
                self._evictions += 1
        return entry

    def reload(self, park: str, deadline: Deadline | None = None) -> ParkEntry:
        """Atomic hot-swap: load-and-verify aside, swap only on success.

        The replacement is loaded with ``verify=True`` unconditionally and
        its feature contexts are rebuilt from scratch; the old entry —
        which in-flight requests may still hold — keeps serving until the
        single swap below, and forever if the new artifact is rejected.
        """
        current = self._entries.get(park)
        try:
            entry = self._build_entry(park, verify=True, deadline=deadline)
        except PersistenceError:
            with self._lock:
                self._rejected_reloads += 1
            raise
        # Carry warm contexts over so a hot-swap does not force the next
        # request to regenerate park data (features re-register against the
        # new service; cached *results* start cold, as they must).
        if current is not None:
            for context in list(current._contexts.values()):
                entry.install_context(context.seed, context.scale, context.data)
        with self._lock:
            self._entries[park] = entry
            self._entries.move_to_end(park)
            self._reloads += 1
            while len(self._entries) > self.max_parks:
                self._entries.popitem(last=False)
                self._evictions += 1
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def park_health(self) -> dict:
        """Per-park health flags (the ``/health`` parks section)."""
        with self._lock:
            entries = dict(self._entries)
            load_breakers = dict(self._load_breakers)
        report = {}
        for park in self.available():
            entry = entries.get(park)
            load_breaker = load_breakers.get(park)
            flags = {
                "loaded": entry is not None,
                "version": entry.version if entry is not None else None,
                "degraded": entry.degraded() if entry is not None else False,
                "load_breaker": (
                    load_breaker.state() if load_breaker is not None
                    else "closed"
                ),
                "dispatch_breaker": (
                    entry.dispatch_breaker.state() if entry is not None
                    else "closed"
                ),
            }
            flags["ok"] = (
                flags["load_breaker"] == "closed" and not flags["degraded"]
            )
            report[park] = flags
        return report

    def info(self) -> dict:
        """Registry counters for ``/stats``."""
        # Snapshot the mutable counters under the lock, then walk the
        # models directory *outside* it: available() is disk I/O, and a
        # slow filesystem must not stall every thread that touches the
        # registry (RP008: no blocking calls under a shared lock).
        with self._lock:
            counters = {
                "loaded": list(self._entries),
                "loads": self._loads,
                "reloads": self._reloads,
                "rejected_reloads": self._rejected_reloads,
                "evictions": self._evictions,
            }
        return {
            "models_dir": str(self.models_dir),
            "max_parks": self.max_parks,
            "available": self.available(),
            **counters,
        }

    def stats(self) -> dict:
        """Per-loaded-park stats (the ``/stats`` parks section)."""
        with self._lock:
            entries = dict(self._entries)
        return {park: entry.stats() for park, entry in sorted(entries.items())}
