"""Thread-pool fan-out for model fitting and multi-post planning.

Fitting an iWare-E ensemble is embarrassingly parallel at two levels — one
weak learner per effort threshold, one base classifier per bootstrap — but
every stochastic choice (bootstrap indices, child seeds) must come from the
single master generator in a fixed order, or results stop being
reproducible. The contract used throughout the package is therefore
*two-phase execution*: perform all shared/stateful work serially (draw
randomness, construct members, compute shared surfaces), then fan the pure
per-item calls out through :func:`parallel_map`. The fanned work only
touches per-item state, so parallel results are bit-identical to serial
ones.

Two workloads ride on this machinery:

* **fitting** — each member's ``fit`` touches only its own pre-drawn child
  generator (:class:`~repro.core.ensemble.IWareEnsemble`, bagging);
* **planning** — :class:`~repro.planning.service.PlanService` computes the
  shared effort-response surfaces once, then solves each patrol post's
  (deterministic) MILP/LP on its own planner.

Threads (not processes) are the right pool here: weak-learner factories are
closures over the master generator and cannot be pickled, and the expensive
work (GP Cholesky factorisations, kernel products, HiGHS solves) lives in
GIL-releasing native code.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

from repro.exceptions import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request to a positive worker count.

    ``None`` and ``1`` mean serial; positive values are taken literally;
    negative values count back from the CPU count (``-1`` = all cores,
    ``-2`` = all but one, ...). Zero is rejected.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ConfigurationError("n_jobs must not be 0 (use 1 for serial)")
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], n_jobs: int | None = 1
) -> list[R]:
    """``[fn(x) for x in items]``, optionally through a thread pool.

    Results come back in input order. With ``n_jobs`` of ``None``/``1`` (or
    fewer than two items) this is a plain list comprehension, so the serial
    path has zero overhead and identical semantics.
    """
    materialised: Sequence[T] = list(items)
    workers = min(resolve_n_jobs(n_jobs), len(materialised))
    if workers <= 1 or len(materialised) <= 1:
        return [fn(item) for item in materialised]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, materialised))
