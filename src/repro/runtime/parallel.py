"""Thread/process fan-out for model fitting, prediction, and planning.

Fitting an iWare-E ensemble is embarrassingly parallel at two levels — one
weak learner per effort threshold, one base classifier per bootstrap — but
every stochastic choice (bootstrap indices, child seeds) must come from the
single master generator in a fixed order, or results stop being
reproducible. The contract used throughout the package is therefore
*two-phase execution*: perform all shared/stateful work serially (draw
randomness, construct members, compute shared surfaces), then fan the pure
per-item calls out through :func:`parallel_map` / :func:`run_deferred`. The
fanned work only touches per-item state, so parallel results are
bit-identical to serial ones — with any backend.

Prediction is even easier: a fitted model is read-only state and every test
row is independent, so *serving* fans out over ``(member x tile)`` tasks
with no phase split at all (:func:`predict_map`). Tiling the test rows
serves a second purpose beyond parallelism: each task's transient
allocations (a GP member's ``(n_train x tile)`` kernel slab, a tree's
per-level index lanes) are bounded by the tile size instead of the full
query, which is what keeps million-cell risk maps memory-bounded.

Two pool backends are available, because the fanned workloads split into two
classes:

* ``"thread"`` — right when the heavy lifting happens in GIL-releasing
  native code (GP Cholesky factorisations, kernel products, HiGHS solves).
  Zero serialisation cost; tasks may share state by reference.
* ``"process"`` — right for pure-Python/numpy-dispatch work (decision-tree
  growth, SVM epochs) that the GIL would serialise in a thread pool. Tasks
  cross the process boundary by pickling, so they must be picklable
  (two-phase fit tasks are: phase 1 strips the unpicklable factory
  closures, and fitted models travel back as plain arrays — the same
  representation the npz persistence layer uses).
* ``"auto"`` — inspects the tasks' ``backend_hint`` attributes (see
  :meth:`repro.ml.base.Classifier.fit_backend_hint`) and picks the process
  pool only when every task asks for it; tasks that fail an explicit
  picklability probe fall back to threads rather than erroring — while
  exceptions raised by the tasks *themselves* always propagate.

Dispatch goes through :func:`repro.runtime.resilience.supervised_map`
rather than bare ``pool.map``: each task is an individually supervised
future, so an OOM-killed process worker fails only the tasks it was
holding — the supervisor re-runs exactly the missing ones (bounded retries,
deterministic backoff, degradation ``process -> thread -> serial``) and the
two-phase purity contract makes every recovered result bit-identical to the
fault-free serial run. Every fan-out here also accepts an optional
``deadline`` (seconds or a shared :class:`~repro.runtime.resilience.Deadline`)
enforced between tasks and while awaiting futures.

The picklability requirement is machine-checked: analyzer rule RP003
(``repro.analysis``, run by ``make lint``) resolves the classes constructed
at :func:`parallel_map` / :func:`run_deferred` / :func:`predict_map` call
sites and rejects any that capture lambdas, locally-defined functions, or
``threading`` primitives in ``__init__`` — unless a ``__getstate__`` strips
them before the task crosses the process boundary.

Worker counts are clamped to the CPUs actually available to this process
(cgroup/affinity aware): oversubscribing a small container with more workers
than cores only adds pool overhead, so ``n_jobs=8`` on a 2-core box runs 2
workers — and on a single core every backend degrades to the plain serial
loop, keeping "parallel" never slower than serial.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

import numpy as np

from repro.exceptions import ConfigurationError
from repro.runtime import faults
from repro.runtime.resilience import (
    Deadline,
    ResilienceStats,
    RetryPolicy,
    record_stats,
    supervised_map,
)

T = TypeVar("T")
R = TypeVar("R")

#: Valid ``backend`` arguments accepted throughout the package.
BACKENDS = ("auto", "thread", "process")


def effective_cpu_count() -> int:
    """CPUs usable by this process (respects scheduler affinity masks)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request to a positive worker count.

    ``None`` and ``1`` mean serial; positive values are taken literally;
    negative values count back from the count of *usable* CPUs — the
    affinity/cgroup-aware :func:`effective_cpu_count`, not the raw host
    core count — so ``-1`` on a 2-core cgroup of a 64-core box means 2
    workers, not 64 (``-1`` = all usable cores, ``-2`` = all but one, ...).
    Zero is rejected.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ConfigurationError("n_jobs must not be 0 (use 1 for serial)")
    if n_jobs < 0:
        return max(1, effective_cpu_count() + 1 + n_jobs)
    return n_jobs


def check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got '{backend}'"
        )
    return backend


def _call(task: Callable[[], R]) -> R:
    """Invoke a zero-argument task (module-level so process pools can map it)."""
    return task()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: int | None = 1,
    backend: str = "thread",
    deadline: "Deadline | float | None" = None,
    policy: RetryPolicy | None = None,
) -> list[R]:
    """``[fn(x) for x in items]``, optionally through a supervised pool.

    Results come back in input order and bit-identical to serial, even
    across worker-crash recovery. With ``n_jobs`` of ``None``/``1``, fewer
    than two items, or a single usable CPU, this is a plain serial loop.
    ``backend="process"`` requires ``fn`` and every item to be picklable
    (``fn`` should be a module-level function). ``deadline`` bounds the
    whole fan-out (seconds, or a :class:`~repro.runtime.resilience.Deadline`
    shared with other fan-outs of the same request); ``policy`` overrides
    the default :class:`~repro.runtime.resilience.RetryPolicy`.
    """
    if backend == "auto":
        raise ConfigurationError(
            "parallel_map needs an explicit backend; use run_deferred for "
            "hint-based auto selection"
        )
    check_backend(backend)
    materialised: Sequence[T] = list(items)
    workers = min(
        resolve_n_jobs(n_jobs), len(materialised), effective_cpu_count()
    )
    return supervised_map(
        fn,
        materialised,
        workers=workers,
        backend=backend,
        deadline=deadline,
        policy=policy,
        label="parallel_map",
    )


def vote_backend(hints: Sequence[str]) -> str:
    """Resolve a pool flavour from per-task backend hints.

    The process pool only pays off when every *substantive* task is
    GIL-bound Python work (a single thread-happy GP fit would serialise
    behind the pickling anyway): ``"process"`` wins iff at least one task
    asks for it and none asks for ``"thread"``. Trivial no-op tasks
    advertise ``"any"`` and do not get a vote; a group of nothing but
    abstainers stays ``"any"`` so it cannot poison an outer vote either.
    """
    votes = [hint for hint in hints if hint != "any"]
    if not votes:
        return "any"
    if all(vote == "process" for vote in votes):
        return "process"
    return "thread"


def preferred_backend(tasks: Sequence[object]) -> str:
    """Resolve ``"auto"`` from the tasks' ``backend_hint`` attributes."""
    result = vote_backend(
        [getattr(task, "backend_hint", "thread") for task in tasks]
    )
    return "process" if result == "process" else "thread"


def _tasks_picklable(tasks: Sequence[object]) -> bool:
    """Probe whether every *task object* survives the process boundary.

    The probe pickles the tasks themselves — never runs them — so a
    ``TypeError`` (or anything else) raised by task *logic* can no longer
    be mistaken for a serialisation failure and silently rerouted.
    """
    try:
        faults.on_pickle_probe()
        for task in tasks:
            pickle.dumps(task)
    except (pickle.PicklingError, AttributeError, TypeError):
        return False
    return True


def run_deferred(
    tasks: Sequence[Callable[[], R]],
    n_jobs: int | None = 1,
    backend: str = "auto",
    deadline: "Deadline | float | None" = None,
    policy: RetryPolicy | None = None,
) -> list[R]:
    """Run phase-2 fit tasks (zero-argument callables), optionally pooled.

    This is the fan-out entry point of the two-phase fit protocol
    (:meth:`repro.ml.base.Classifier.fit_deferred`): phase 1 has already
    drawn all shared randomness serially, so the tasks here are pure and
    order-independent — any backend, and any crash-recovery path, yields
    bit-identical results.

    With ``backend="auto"`` the pool is chosen from the tasks'
    ``backend_hint`` attributes; a process vote is then confirmed by
    explicitly pickling the task objects (:func:`_tasks_picklable`), and
    tasks that do not pickle (e.g. closures over live model state) fall
    back to the thread pool — recorded as a ``pickle_fallbacks`` stat, not
    silent. Exceptions raised *by* the tasks always propagate, whatever
    the backend. An explicit ``backend="process"`` skips the probe and
    propagates pickling errors too.
    """
    check_backend(backend)
    tasks = list(tasks)
    workers = min(resolve_n_jobs(n_jobs), len(tasks), effective_cpu_count())
    chosen = preferred_backend(tasks) if backend == "auto" else backend
    if (
        backend == "auto"
        and chosen == "process"
        and workers > 1
        and len(tasks) > 1
        and not _tasks_picklable(tasks)
    ):
        chosen = "thread"
        record_stats(ResilienceStats(pickle_fallbacks=1))
    return supervised_map(
        _call,
        tasks,
        workers=workers,
        backend=chosen,
        deadline=deadline,
        policy=policy,
        label="run_deferred",
    )


# ---------------------------------------------------------------------------
# Prediction fan-out: (member x tile) tasks over fitted, read-only models
# ---------------------------------------------------------------------------

def tile_slices(n: int, tile_size: int | None) -> list[slice]:
    """Row slices covering ``[0, n)`` in fixed-size tiles.

    ``None`` means one whole-array tile (the untiled path). A final partial
    tile covers any remainder; ``n == 0`` still yields one empty slice so
    downstream assembly produces correctly-shaped empty outputs.
    """
    if tile_size is None:
        return [slice(0, n)]
    tile_size = int(tile_size)
    if tile_size < 1:
        raise ConfigurationError(f"tile_size must be >= 1, got {tile_size}")
    if n <= 0:
        return [slice(0, 0)]
    return [slice(s, min(s + tile_size, n)) for s in range(0, n, tile_size)]


class PredictTask:
    """One ``(member, tile)`` unit of a prediction fan-out.

    A zero-argument callable invoking ``getattr(model, method)(X_tile)``.
    Models are fitted and read-only, rows are independent, so tasks need no
    phase split; they pickle whenever the model does (``X_tile`` is a view
    that serialises as just the tile). ``backend_hint`` advertises the
    model's :attr:`~repro.ml.base.Classifier.predict_backend_hint`, so the
    ``"auto"`` vote routes GIL-bound members (trees) to the process pool and
    BLAS-heavy members (GPs) to threads — mirroring the fitting fan-out.
    """

    def __init__(self, model, X, method: str = "prediction_stats"):
        self.model = model
        self.X = X
        self.method = method

    @property
    def backend_hint(self) -> str:
        return getattr(self.model, "predict_backend_hint", "thread")

    def __call__(self):
        return getattr(self.model, self.method)(self.X)


def _assemble(chunks: list):
    """Concatenate one model's per-tile results back into full arrays."""
    if len(chunks) == 1:
        return chunks[0]
    if isinstance(chunks[0], tuple):
        return tuple(
            np.concatenate([chunk[i] for chunk in chunks])
            for i in range(len(chunks[0]))
        )
    return np.concatenate(chunks)


def predict_map(
    models: Sequence[object],
    X,
    tile_size: int | None = None,
    n_jobs: int | None = 1,
    backend: str = "auto",
    method: str | Sequence[str] = "prediction_stats",
    deadline: "Deadline | float | None" = None,
) -> list:
    """Tiled, parallel prediction over fitted models — bit-identical to serial.

    Schedules one :class:`PredictTask` per ``(model, tile)`` pair through
    :func:`run_deferred` and reassembles each model's tiles in order, so the
    result equals ``[getattr(m, method)(X) for m in models]`` exactly: every
    per-row statistic the package serves (GP latent moments, tree paths,
    bagging member mixtures) is computed row-independently, and tiles are
    concatenated in input order, so neither the tile size, the pool flavour,
    nor a worker-crash recovery can change a single bit of the output.

    Parameters
    ----------
    models:
        Fitted predictors; each needs the requested ``method``.
    X:
        ``(n, k)`` test rows, tiled along axis 0.
    tile_size:
        Rows per tile (``None`` = one tile). Besides enabling parallelism,
        this bounds per-task transient memory: a GP member touching a tile
        allocates ``O(n_train x tile_size)`` instead of ``O(n_train x n)``.
    n_jobs, backend:
        Pool request, resolved exactly like the fitting fan-out (hint-based
        ``"auto"`` vote, worker clamping, pickling fallback to threads).
        The process pool serialises each task's model per tile — fine for
        the compact packed-array models that vote for it (trees), while
        the BLAS-heavy models that would be expensive to ship vote for
        threads and are shared by reference.
    method:
        Bound-method name to call per task (default ``"prediction_stats"``),
        or one name per model (e.g. mixing ``"mean_member_variance"`` for
        bagging members with ``"predict_variance"`` for plain ones).
    deadline:
        Optional budget (seconds or a shared
        :class:`~repro.runtime.resilience.Deadline`) for the whole serve;
        raises :class:`~repro.exceptions.DeadlineExceededError` on overrun.

    Returns
    -------
    One entry per model: the assembled return value of its ``method``
    (an array, or a tuple of arrays for ``"prediction_stats"``).
    """
    check_backend(backend)
    models = list(models)
    methods = (
        [method] * len(models)
        if isinstance(method, str)
        else [str(m) for m in method]
    )
    if len(methods) != len(models):
        raise ConfigurationError(
            f"got {len(methods)} methods for {len(models)} models"
        )
    X = np.asarray(X)
    slices = tile_slices(X.shape[0], tile_size)
    tasks = [
        PredictTask(model, X[sl], name)
        for model, name in zip(models, methods)
        for sl in slices
    ]
    results = run_deferred(
        tasks, n_jobs=n_jobs, backend=backend, deadline=deadline
    )
    n_tiles = len(slices)
    return [
        _assemble(results[i * n_tiles : (i + 1) * n_tiles])
        for i in range(len(models))
    ]
